"""E13 — [50] comparison: recursive-ORAM roundtrips vs DP-RAM's two."""

from conftest import write_report

from repro.baselines.recursive_oram import RecursivePathORAM
from repro.simulation.experiments import experiment_e13_roundtrips
from repro.storage.blocks import integer_database


def test_e13_table():
    table = experiment_e13_roundtrips(sizes=(256, 1024, 4096), queries=60)
    write_report(table)
    print("\n" + table.to_text())
    roundtrips = [row[2] for row in table.rows]
    # Recursion depth grows with n while DP-RAM stays at 2.
    assert roundtrips == sorted(roundtrips)
    assert roundtrips[-1] > 2
    for row in table.rows:
        assert row[4] == 2          # DP-RAM roundtrips
        assert row[6] == 3.0        # DP-RAM blocks/op
        assert row[-1] == 0         # no mismatches anywhere


def test_e13_client_map_shrinks_with_depth(rng):
    oram = RecursivePathORAM(integer_database(4096), positions_per_block=8,
                             client_map_limit=32, rng=rng.spawn("o"))
    assert oram.client_position_entries <= 32
    assert oram.levels >= 3


def test_e13_recursive_access_throughput(benchmark, rng):
    n = 1024
    oram = RecursivePathORAM(integer_database(n), rng=rng.spawn("oram"))
    source = rng.spawn("queries")
    benchmark(lambda: oram.read(source.randbelow(n)))
