"""E11 — the headline gap: DP-RAM/DP-KVS vs Path ORAM/ORAM-KVS."""

from conftest import write_report

from repro.baselines.path_oram import PathORAM
from repro.simulation.experiments import (
    experiment_e11_vs_oram,
    experiment_e11b_kvs_vs_oram,
)
from repro.storage.blocks import integer_database


def test_e11_ram_table():
    table = experiment_e11_vs_oram(sizes=(256, 1024, 4096), queries=300)
    write_report(table)
    print("\n" + table.to_text())
    factors = [row[-1] for row in table.rows]
    # The factor grows with n (Theta(log n) vs O(1)) and is large already.
    assert factors == sorted(factors)
    assert factors[0] > 10
    for row in table.rows:
        assert row[1] == 1.0   # plaintext baseline
        assert row[2] == 3.0   # DP-RAM constant


def test_e11b_kvs_table():
    table = experiment_e11b_kvs_vs_oram(sizes=(256, 1024), operations=150)
    write_report(table)
    print("\n" + table.to_text())
    factors = [row[-1] for row in table.rows]
    assert factors == sorted(factors)
    assert all(factor > 2 for factor in factors)


def test_e11_path_oram_throughput(benchmark, rng):
    n = 4096
    oram = PathORAM(integer_database(n), rng=rng.spawn("oram"))
    source = rng.spawn("queries")
    benchmark(lambda: oram.read(source.randbelow(n)))
