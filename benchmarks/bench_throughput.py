"""Cross-scheme throughput at a common size (n = 4096).

The per-experiment benches time each scheme in its own context; this file
lines them all up at one database size so `--benchmark-compare` shows the
library-wide picture in a single group.
"""

import math

import pytest

from repro.baselines.linear_pir import LinearScanPIR
from repro.baselines.plaintext import PlaintextKVS, PlaintextRAM
from repro.core.batch_ir import BatchDPIR
from repro.core.dp_ir import DPIR
from repro.core.dp_kvs import DPKVS
from repro.core.dp_ram import DPRAM
from repro.core.sharded_ir import ShardedDPIR
from repro.storage.blocks import encode_int, integer_database

N = 4096


@pytest.fixture(scope="module")
def database():
    return integer_database(N)


def test_throughput_plaintext_read(benchmark, rng, database):
    scheme = PlaintextRAM(database)
    source = rng.spawn("q")
    benchmark(lambda: scheme.read(source.randbelow(N)))


def test_throughput_dpir_query(benchmark, rng, database):
    scheme = DPIR(database, epsilon=math.log(N), alpha=0.05,
                  rng=rng.spawn("s"))
    source = rng.spawn("q")
    benchmark(lambda: scheme.query(source.randbelow(N)))


def test_throughput_batch_dpir_8(benchmark, rng, database):
    scheme = BatchDPIR(database, epsilon=math.log(N), alpha=0.05,
                       rng=rng.spawn("s"))
    source = rng.spawn("q")
    benchmark(
        lambda: scheme.query_batch([source.randbelow(N) for _ in range(8)])
    )


def test_throughput_sharded_dpir(benchmark, rng, database):
    scheme = ShardedDPIR(database, shard_count=4, epsilon=math.log(N),
                         alpha=0.05, rng=rng.spawn("s"))
    source = rng.spawn("q")
    benchmark(lambda: scheme.query(source.randbelow(N)))


def test_throughput_dpram_read(benchmark, rng, database):
    scheme = DPRAM(database, rng=rng.spawn("s"))
    source = rng.spawn("q")
    benchmark(lambda: scheme.read(source.randbelow(N)))


def test_throughput_dpram_write(benchmark, rng, database):
    scheme = DPRAM(database, rng=rng.spawn("s"))
    source = rng.spawn("q")
    payload = encode_int(1)
    benchmark(lambda: scheme.write(source.randbelow(N), payload))


def test_throughput_dpkvs_get(benchmark, rng):
    scheme = DPKVS(N, rng=rng.spawn("s"))
    for i in range(128):
        scheme.put(f"key-{i}".encode(), b"value")
    source = rng.spawn("q")
    benchmark(lambda: scheme.get(f"key-{source.randbelow(128)}".encode()))


def test_throughput_plaintext_kvs_get(benchmark, rng):
    scheme = PlaintextKVS(N)
    for i in range(128):
        scheme.put(f"key-{i}".encode(), b"value")
    source = rng.spawn("q")
    benchmark(lambda: scheme.get(f"key-{source.randbelow(128)}".encode()))


def test_throughput_linear_pir(benchmark, rng, database):
    scheme = LinearScanPIR(database)
    source = rng.spawn("q")
    benchmark(lambda: scheme.query(source.randbelow(N)))
