"""Bulk-crypto benchmark — encrypt_many vs the per-block loop, as claims.

Two claims under test (see :mod:`repro.storage.bench`):

* **Throughput**: one ``encrypt_many`` / ``decrypt_many`` round over a
  batch of bucket-node-sized blocks runs >= 3x faster than the frozen
  per-block reference loop (``encrypt_reference`` — the seed
  implementation, kept verbatim as the baseline).  The speedup is the
  median of interleaved paired ratios, so CPU-quota throttling cancels
  out of the comparison.
* **Invariance**: a DP-RAM running bulk crypto on the slab backend is
  observationally identical to the per-block baseline — answers,
  per-query transcript multisets, operation counters, exact ε and the
  stored ciphertext bytes all match bit-for-bit.
"""

import pytest

from conftest import write_report

from repro.simulation.reporting import ExperimentTable
from repro.storage.bench import crypto_comparison, crypto_invariance

#: The acceptance bar for bulk crypto over the per-block reference.
BULK_CRYPTO_SPEEDUP_FLOOR = 3.0


@pytest.fixture(scope="module")
def comparison():
    return crypto_comparison()


@pytest.fixture(scope="module")
def invariance():
    return crypto_invariance()


def test_crypto_table(comparison, invariance):
    table = ExperimentTable(
        "CRYPTO",
        "bulk encrypt_many/decrypt_many beats the per-block reference "
        ">= 3x, bit-identically through the DP-RAM",
        headers=["path", "per-block", "bulk", "speedup"],
    )
    table.add_row(
        f"encrypt+decrypt ({comparison['block_size']}B blocks/s)",
        f"{comparison['per_block_blocks_per_sec']:,.0f}",
        f"{comparison['bulk_blocks_per_sec']:,.0f}",
        f"{comparison['speedup']:.2f}x",
    )
    table.add_note(
        f"batch={comparison['batch']}, {comparison['batches']} batches "
        "per side, median of interleaved paired ratios (throttle-robust)"
    )
    table.add_note(
        f"invariance witness: n={invariance['n']}, "
        f"{invariance['queries']} queries, bulk+slab vs per-block "
        "bit-identical on answers/transcripts/counters/storage"
    )
    write_report(table)
    print("\n" + table.to_text())


def test_bulk_crypto_speedup_at_least_3x(comparison):
    assert comparison["speedup"] >= BULK_CRYPTO_SPEEDUP_FLOOR, (
        f"bulk crypto is only {comparison['speedup']:.2f}x the "
        f"per-block reference loop (floor {BULK_CRYPTO_SPEEDUP_FLOOR}x)"
    )
    assert (
        comparison["bulk_blocks_per_sec"]
        > comparison["per_block_blocks_per_sec"]
    )


def test_bulk_slab_observationally_identical(invariance):
    assert invariance["identical_answers"]
    assert invariance["identical_transcripts"]
    assert invariance["identical_counters"]
    assert invariance["identical_storage_bytes"]
    assert (
        invariance["epsilon"]["per_block"]
        == invariance["epsilon"]["bulk_slab"]
    )
