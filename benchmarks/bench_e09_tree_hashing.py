"""E9 — Theorem 7.2 + Lemma 7.3: tree-bucket occupancy and super root."""

from conftest import write_report

from repro.analysis.tails import beta_sequence_closed_form
from repro.hashing.tree_buckets import TreeBucketLayout, TreeOccupancySimulator
from repro.simulation.experiments import experiment_e09_tree_hashing


def test_e09_table():
    table = experiment_e09_tree_hashing(sizes=(4096, 16384, 65536, 262144))
    write_report(table)
    print("\n" + table.to_text())
    for row in table.rows:
        n, buckets, nodes, super_root, phi, within, h0, beta0 = row
        assert within is True
        assert buckets >= n
        assert nodes <= 3 * n           # O(n) server storage
        assert h0 <= max(3 * beta0, 20)  # level occupancy dominated by beta


def test_e09_level_occupancy_decays(rng):
    n = 65536
    layout = TreeBucketLayout.for_capacity(n)
    simulator = TreeOccupancySimulator(layout)
    source = rng.spawn("keys")
    for _ in range(n):
        simulator.insert_random(source)
    occupancy = simulator.level_occupancy()
    # Filled-node counts must collapse moving up the tree.
    positive = [h for h in occupancy if h > 0]
    assert occupancy[0] == max(occupancy)
    assert sum(occupancy[2:]) <= occupancy[0] // 2 + 10
    assert len(positive) <= len(occupancy)


def test_e09_node_capacity_ablation(rng):
    # Larger t pushes the spill probability down dramatically.
    n = 16384
    spills = []
    for t in (1, 2, 4):
        layout = TreeBucketLayout.for_capacity(n, node_capacity=t)
        simulator = TreeOccupancySimulator(layout)
        source = rng.spawn(f"t{t}")
        for _ in range(n):
            simulator.insert_random(source)
        spills.append(simulator.super_root_load)
    assert spills[0] >= spills[1] >= spills[2]
    assert spills[2] == 0


def test_e09_beta_sequence_consistency():
    n = 262144
    values = [beta_sequence_closed_form(n, level) for level in range(4)]
    assert values == sorted(values, reverse=True)


def test_e09_insert_throughput(benchmark, rng):
    layout = TreeBucketLayout.for_capacity(65536)
    simulator = TreeOccupancySimulator(layout)
    source = rng.spawn("balls")
    benchmark(lambda: simulator.insert_random(source))
