"""E7 — Lemmas 6.4/6.5 + 6.7: exact transcript ratios under the budget."""

from conftest import write_report

from repro.analysis.dp_ram_exact import (
    sample_transcript_pairs,
    transcript_log_likelihood,
)
from repro.simulation.experiments import experiment_e07_dpram_ratios


def test_e07_table():
    table = experiment_e07_dpram_ratios(n=8, length=5, trials=2000)
    write_report(table)
    print("\n" + table.to_text())
    assert all(row[-1] is True for row in table.rows)
    for row in table.rows:
        _, _, _, sampled, exact, budget, _ = row
        # Sampled ratios are positive, never exceed the exact worst case,
        # and the exact worst case sits under the analytic budget.
        assert 0 < sampled <= exact + 1e-9 or exact != exact  # nan guard
        assert exact != exact or exact < budget


def test_e07_likelihood_throughput(benchmark, rng):
    n, p = 16, 0.1
    queries = [rng.randbelow(n) for _ in range(64)]
    pairs = sample_transcript_pairs(queries, n, p, rng.spawn("t"))
    benchmark(lambda: transcript_log_likelihood(queries, pairs, n, p))


def test_e07_sampler_throughput(benchmark, rng):
    n, p = 1024, 0.05
    queries = [rng.randbelow(n) for _ in range(128)]
    source = rng.spawn("s")
    benchmark(lambda: sample_transcript_pairs(queries, n, p, source))
