"""Cluster layer — scaling, failover and detection, as claim assertions.

Three claims under test:

* **Scaling**: growing the shard count ``D`` cuts ops/request and p95
  (the per-query pad splits as ``K/D``) and per-server storage to
  ``n/D`` — while the per-shard exact ε stays equal to the
  single-server budget (the ``ln((1−α)n/(αK)+1)`` invariance).
* **Failover**: with R=2 replicas and a 10 % flaky-read rate the
  cluster completes every query *correctly*, at a measured
  operation-count overhead over the fault-free run.
* **Detection**: a corrupting replica behind authenticated storage is
  detected and failed over (zero mismatches); behind plain storage the
  same corruption is silent (mismatches > 0).
"""

import pytest

from conftest import write_report

from repro.cluster.bench import (
    DEFAULT_ALPHA,
    DEFAULT_N,
    DEFAULT_PAD,
    detection_comparison,
    failover_curve,
    scaling_curve,
    single_server_epsilon,
)
from repro.simulation.reporting import ExperimentTable


@pytest.fixture(scope="module")
def scaling_results():
    return scaling_curve()


@pytest.fixture(scope="module")
def failover_results():
    return failover_curve()


@pytest.fixture(scope="module")
def detection_results():
    return detection_comparison()


def test_cluster_scaling_table(scaling_results):
    table = ExperimentTable(
        "CLUSTER_SCALING",
        "sharding cuts ops/request and per-server storage at a fixed "
        "exact budget",
        headers=["shards", "ops/request", "p95 ms", "per-server blocks",
                 "per-query eps", "Jain"],
    )
    for row in scaling_results:
        table.add_row(
            row["shards"], round(row["ops_per_request"], 2),
            round(row["p95_ms"], 2), row["per_server_storage_blocks"],
            round(row["per_query_epsilon"], 4),
            round(row["load_jain_index"], 3),
        )
    table.add_note(
        f"n={DEFAULT_N}, global pad K={DEFAULT_PAD}, alpha={DEFAULT_ALPHA}, "
        "uniform reads, deterministic seed, LAN cost model"
    )
    write_report(table)
    print("\n" + table.to_text())


def test_ops_and_storage_drop_with_shard_count(scaling_results):
    ops = [row["ops_per_request"] for row in scaling_results]
    p95 = [row["p95_ms"] for row in scaling_results]
    storage = [row["per_server_storage_blocks"] for row in scaling_results]
    assert ops == sorted(ops, reverse=True)
    assert all(a > b for a, b in zip(ops, ops[1:]))
    assert all(a >= b for a, b in zip(p95, p95[1:]))
    for row in scaling_results:
        # Per-server storage is exactly ceil(n/D) here (D divides n).
        assert row["per_server_storage_blocks"] == \
            DEFAULT_N // row["shards"]


def test_cluster_epsilon_matches_single_server_exact_budget(scaling_results):
    single = single_server_epsilon()
    for row in scaling_results:
        assert row["per_query_epsilon"] == pytest.approx(single), (
            f"D={row['shards']} budget drifted from the single-server "
            f"exact budget {single:.4f}"
        )


def test_every_scaled_query_correct(scaling_results):
    for row in scaling_results:
        assert row["completed"] == 64
        assert row["mismatches"] == 0


def test_failover_completes_every_query_correctly(failover_results):
    # The acceptance claim: R=2 replicas, 10 % flaky reads, zero losses.
    flaky = [row for row in failover_results if row["flake_rate"] == 0.10]
    assert flaky, "10% flake point missing from the curve"
    for row in flaky:
        assert row["replicas"] == 2
        assert row["completed"] == row["requests"]
        assert row["mismatches"] == 0
        assert row["failovers"] > 0
        assert row["failed_operations"] > 0


def test_failover_overhead_grows_with_flake_rate(failover_results):
    overheads = [row["failover_overhead"] for row in failover_results]
    assert overheads[0] == pytest.approx(0.0)
    assert overheads == sorted(overheads)
    assert overheads[-1] > 0.0


def test_failover_table(failover_results):
    table = ExperimentTable(
        "CLUSTER_FAILOVER",
        "R=2 replicas turn flaky reads into retries, never wrong answers",
        headers=["flake rate", "completed", "mismatches", "failovers",
                 "ops/request", "overhead"],
    )
    for row in failover_results:
        table.add_row(
            row["flake_rate"], row["completed"], row["mismatches"],
            row["failovers"], round(row["ops_per_request"], 2),
            f"{row['failover_overhead']:.1%}",
        )
    table.add_note("4 shard groups x 2 replicas, deterministic seed")
    write_report(table)
    print("\n" + table.to_text())


def test_authenticated_detection_versus_silent_corruption(detection_results):
    by_auth = {row["authenticated"]: row for row in detection_results}
    detected = by_auth[True]
    silent = by_auth[False]
    # Authenticated storage: every tampered answer detected, failover
    # serves the right block.
    assert detected["mismatches"] == 0
    assert detected["detected_corruptions"] > 0
    # Plain storage: corruption slips through as wrong answers.
    assert silent["mismatches"] > 0
    assert silent["detected_corruptions"] == 0


def test_cluster_query_throughput(benchmark, rng):
    from repro.cluster.scheme import ClusterIR
    from repro.storage.blocks import integer_database

    ir = ClusterIR(integer_database(256), shard_count=4, replica_count=2,
                   pad_size=16, rng=rng.spawn("bench"))
    indices = iter(range(10**9))
    benchmark(lambda: ir.query(next(indices) % 256))
