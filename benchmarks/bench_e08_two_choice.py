"""E8 — Theorem A.1: power of two choices max-load separation."""

from conftest import write_report

from repro.crypto.prf import PRF
from repro.hashing.two_choice import DChoiceTable
from repro.simulation.experiments import experiment_e08_two_choice


def test_e08_table():
    table = experiment_e08_two_choice(sizes=(1024, 4096, 16384, 65536))
    write_report(table)
    print("\n" + table.to_text())
    one_choice = [row[1] for row in table.rows]
    two_choice = [row[2] for row in table.rows]
    # One choice grows with n; two choices stay within log log n + slack.
    assert one_choice[-1] > one_choice[0]
    for row in table.rows:
        n, _, d2, d3, _, loglog = row
        assert d2 <= loglog + 2
        assert d3 <= d2 + 1
    # The separation widens: ratio at the largest n exceeds the smallest.
    ratios = [row[1] / row[2] for row in table.rows]
    assert ratios[-1] >= ratios[0]


def test_e08_random_insert_throughput(benchmark, rng):
    table = DChoiceTable(bins=65536, choices=2)
    source = rng.spawn("balls")
    benchmark(lambda: table.insert_random(source))


def test_e08_keyed_insert_throughput(benchmark):
    table = DChoiceTable(bins=65536, choices=2, prf=PRF(b"bench"))
    counter = [0]

    def insert():
        counter[0] += 1
        table.insert(counter[0].to_bytes(8, "big"))

    benchmark(insert)
