"""Hot-path benchmark — real client-side ops/sec, as claim assertions.

Three claims under test (see :mod:`repro.storage.bench`):

* **Read path**: one batched ``read_many`` round serves a DP-IR pad set
  at >= 4x the slot-ops/sec of the per-slot ``read()`` loop, on pad
  sets drawn by the scheme's own sampler.
* **End-to-end**: a full ``DPIR.query`` is strictly faster batched than
  per-slot at the same seed (sampling and bookkeeping shared).
* **Invariance**: batched and per-slot execution are observationally
  identical — answers, counters, per-query transcript multisets, exact
  ε, ops/request and storage.
"""

import pytest

from conftest import write_report

from repro.simulation.reporting import ExperimentTable
from repro.storage.bench import hotpath_comparison

#: The acceptance bar for the retrieval hot path.  Raised from 3.0
#: once presence-tracking backends let ``read_many`` skip the
#: never-written scan on loaded databases.
READ_PATH_SPEEDUP_FLOOR = 4.0


@pytest.fixture(scope="module")
def results():
    return hotpath_comparison()


def test_hotpath_table(results):
    read_path = results["read_path"]
    query = results["query"]
    table = ExperimentTable(
        "HOTPATH",
        "batched read_many serves pad sets >= 4x faster than the "
        "per-slot loop, observationally identically",
        headers=["path", "per-slot", "batched", "speedup"],
    )
    table.add_row(
        "read path (slot ops/s)",
        f"{read_path['per_slot_ops_per_sec']:,.0f}",
        f"{read_path['batched_ops_per_sec']:,.0f}",
        f"{read_path['speedup']:.2f}x",
    )
    table.add_row(
        "DPIR.query (queries/s)",
        f"{query['per_slot_queries_per_sec']:,.0f}",
        f"{query['batched_queries_per_sec']:,.0f}",
        f"{query['speedup']:.2f}x",
    )
    table.add_note(
        f"n={read_path['n']}, K={read_path['pad_size']}, seeded workload, "
        "best-of-5 wall-clock timing (not modeled ms)"
    )
    write_report(table)
    print("\n" + table.to_text())


def test_read_path_speedup_at_least_4x(results):
    read_path = results["read_path"]
    assert read_path["speedup"] >= READ_PATH_SPEEDUP_FLOOR, (
        f"read_many is only {read_path['speedup']:.2f}x the per-slot "
        f"loop (floor {READ_PATH_SPEEDUP_FLOOR}x)"
    )
    assert read_path["batched_ops_per_sec"] > read_path["per_slot_ops_per_sec"]


def test_end_to_end_query_is_faster_batched(results):
    query = results["query"]
    assert query["speedup"] > 1.0, (
        f"batched DPIR.query ({query['batched_queries_per_sec']:.0f}/s) "
        f"is not faster than per-slot "
        f"({query['per_slot_queries_per_sec']:.0f}/s)"
    )


def test_modes_observationally_identical(results):
    invariance = results["invariance"]
    assert invariance["identical_answers"]
    assert invariance["identical_counters"]
    assert invariance["identical_transcript_multisets"]
    assert (
        invariance["epsilon"]["per_slot"]
        == invariance["epsilon"]["batched"]
    )
    assert (
        invariance["ops_per_request"]["per_slot"]
        == invariance["ops_per_request"]["batched"]
        == invariance["pad_size"]
    )
    assert (
        invariance["storage_blocks"]["per_slot"]
        == invariance["storage_blocks"]["batched"]
        == invariance["n"]
    )
    # The α-error coin actually fired in the witness run — the
    # invariance covers error events too, not just clean retrievals.
    assert invariance["errors"]["per_slot"] == invariance["errors"]["batched"]
    assert invariance["errors"]["batched"] > 0
