"""E2 — Theorem 3.4: DP-IR with error α obeys the Ω((1−α−δ)n/e^ε) floor."""

import math

from conftest import write_report

from repro.analysis.bounds import dp_ir_error_lower_bound
from repro.core.dp_ir import DPIR
from repro.simulation.experiments import experiment_e02_dpir_lower_bound
from repro.storage.blocks import integer_database


def test_e02_table():
    table = experiment_e02_dpir_lower_bound(n=2048, queries=400)
    write_report(table)
    print("\n" + table.to_text())
    assert all(row[-1] is True for row in table.rows)
    # The construction tracks the floor within a constant factor at the
    # epsilon it actually achieves (the bound is tight per Theorem 5.1).
    for row in table.rows:
        _, _, exact_eps, pad, floor, measured, _ = row
        if floor > 1:
            assert measured <= 40 * floor


def test_e02_bound_epsilon_sweep_shape():
    # The floor decays exponentially in epsilon: halving checks.
    n, alpha = 4096, 0.05
    floors = [dp_ir_error_lower_bound(n, eps, alpha) for eps in (2, 3, 4, 5)]
    for earlier, later in zip(floors, floors[1:]):
        assert later < earlier / 2


def test_e02_query_throughput(benchmark, rng):
    n = 2048
    scheme = DPIR(integer_database(n), epsilon=math.log(n), alpha=0.05,
                  rng=rng.spawn("scheme"))
    source = rng.spawn("queries")
    benchmark(lambda: scheme.query(source.randbelow(n)))
