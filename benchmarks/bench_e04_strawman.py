"""E4 — Section 4: the strawman is broken (δ → (n−1)/n, attack wins)."""

from conftest import write_report

from repro.core.strawman import StrawmanIR
from repro.simulation.experiments import experiment_e04_strawman
from repro.storage.blocks import integer_database


def test_e04_table():
    table = experiment_e04_strawman(sizes=(64, 256, 1024), trials=3000)
    write_report(table)
    print("\n" + table.to_text())
    for row in table.rows:
        n, delta, straw_success, dpir_success, ceiling = row
        assert delta > 0.98
        assert straw_success > 0.95           # adversary nearly always wins
        assert dpir_success <= ceiling + 0.03  # DP-IR stays under its ceiling
        assert straw_success > dpir_success


def test_e04_query_throughput(benchmark, rng):
    scheme = StrawmanIR(integer_database(1024), rng=rng.spawn("scheme"))
    source = rng.spawn("queries")
    benchmark(lambda: scheme.query(source.randbelow(1024)))
