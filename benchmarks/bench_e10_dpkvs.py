"""E10 — Theorem 7.5: DP-KVS O(log log n) overhead, O(n) server storage."""

from conftest import write_report

from repro.core.dp_kvs import DPKVS
from repro.simulation.experiments import experiment_e10_dpkvs


def test_e10_table():
    table = experiment_e10_dpkvs(sizes=(256, 1024, 4096, 16384),
                                 operations=250)
    write_report(table)
    print("\n" + table.to_text())
    for row in table.rows:
        n, path_len, measured, predicted, nodes_per_n, padded_per_n, mism = row
        assert measured == predicted          # 6 * path_length exactly
        assert nodes_per_n < 3                # tree sharing keeps O(n)
        assert padded_per_n > nodes_per_n     # the padded-bins blow-up
        assert mism == 0
    # Overhead grows like log log n: doubling n four times moves the cost
    # by at most one path-node step.
    costs = [row[2] for row in table.rows]
    assert costs[-1] - costs[0] <= 12


def test_e10_storage_ablation_padded_vs_tree():
    from repro.crypto.prf import PRF
    from repro.hashing.padded import PaddedTwoChoiceStore
    from repro.hashing.tree_buckets import TreeBucketLayout

    for n in (2**10, 2**14, 2**18):
        tree_nodes = TreeBucketLayout.for_capacity(n).node_count
        padded_slots = PaddedTwoChoiceStore(n, PRF(b"ablate")).server_slots
        assert padded_slots / tree_nodes > 3  # the gap the paper closes


def test_e10_get_throughput(benchmark, rng):
    store = DPKVS(4096, rng=rng.spawn("store"))
    for i in range(64):
        store.put(f"key-{i}".encode(), f"value-{i}".encode())
    source = rng.spawn("queries")
    benchmark(lambda: store.get(f"key-{source.randbelow(64)}".encode()))


def test_e10_put_throughput(benchmark, rng):
    store = DPKVS(4096, rng=rng.spawn("store"))
    for i in range(64):
        store.put(f"key-{i}".encode(), b"seed")
    source = rng.spawn("queries")
    benchmark(
        lambda: store.put(f"key-{source.randbelow(64)}".encode(), b"fresh")
    )
