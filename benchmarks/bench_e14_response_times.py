"""E14 — intro motivation: simulated response times per link model."""

from conftest import write_report

from repro.simulation.experiments import experiment_e14_response_times
from repro.storage.network import WAN


def test_e14_table():
    table = experiment_e14_response_times(n=4096, queries=120)
    write_report(table)
    print("\n" + table.to_text())
    by_scheme = {row[0]: row for row in table.rows}
    # On every link, plaintext <= DP-IR and DP-RAM << PIR.
    for column in (3, 4, 5):
        assert by_scheme["plaintext"][column] <= \
            by_scheme["DP-IR (alpha=0.05)"][column]
        assert by_scheme["DP-RAM"][column] < \
            by_scheme["linear PIR"][column]
    # On the WAN, the recursive ORAM's roundtrips dominate Path ORAM's.
    assert by_scheme["recursive ORAM"][4] > by_scheme["Path ORAM"][4]
    # DP-RAM's WAN time is within 2.5 RTTs of plaintext-ish floor.
    assert by_scheme["DP-RAM"][4] < 3 * WAN.rtt_ms


def test_e14_model_evaluation_throughput(benchmark):
    benchmark(lambda: WAN.response_time_ms(2, 3, 4096))
