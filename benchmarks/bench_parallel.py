"""Parallel execution layer — speedup and equivalence, as claim assertions.

Two claims under test:

* **Speedup**: with batched dispatch across ``D`` shard groups, the
  parallel executor's wall-clock is *strictly below* the serial
  executor's at every ``D ≥ 4`` (the acceptance bar), while
  ops/request, per-server storage and the exact per-query ε stay
  exactly invariant — overlap changes when legs run, never what the
  ledger sees.
* **Equivalence**: under injected flaky-read and corruption faults,
  serial, threaded-parallel and simulated-parallel executors return
  bit-identical retrievals, identical privacy budgets and identical
  failover counters.
"""

import pytest

from conftest import write_report

from repro.parallel.bench import (
    DEFAULT_BATCH,
    executor_equivalence,
    speedup_curve,
)
from repro.simulation.reporting import ExperimentTable


@pytest.fixture(scope="module")
def speedup_results():
    return speedup_curve()


@pytest.fixture(scope="module")
def equivalence_result():
    return executor_equivalence()


def test_parallel_speedup_table(speedup_results):
    table = ExperimentTable(
        "PARALLEL_SPEEDUP",
        "cross-shard fan-out overlaps wall-clock at invariant "
        "ops/request, storage and epsilon",
        headers=["shards", "serial ms", "parallel ms", "speedup",
                 "ops/request", "per-query eps"],
    )
    for row in speedup_results:
        table.add_row(
            row["shards"], round(row["serial_ms"], 1),
            round(row["parallel_ms"], 1), round(row["speedup"], 2),
            round(row["ops_per_request"]["parallel"], 2),
            round(row["per_query_epsilon"]["parallel"], 4),
        )
    table.add_note(
        f"batched dispatch ({DEFAULT_BATCH}/round), uniform reads, "
        "deterministic seed, LAN cost model"
    )
    write_report(table)
    print("\n" + table.to_text())


def test_parallel_wall_clock_strictly_below_serial_at_four_shards(
    speedup_results,
):
    # The acceptance claim: parallel wall-clock < serial at D >= 4.
    eligible = [row for row in speedup_results if row["shards"] >= 4]
    assert eligible, "the curve must include a D >= 4 point"
    for row in eligible:
        assert row["parallel_ms"] < row["serial_ms"], (
            f"D={row['shards']}: parallel {row['parallel_ms']:.1f} ms is "
            f"not below serial {row['serial_ms']:.1f} ms"
        )
        assert row["speedup"] > 1.0


def test_speedup_grows_with_shard_count(speedup_results):
    speedups = [row["speedup"] for row in speedup_results]
    assert speedups == sorted(speedups)
    # A single shard has one leg per round: nothing to overlap.
    single = [row for row in speedup_results if row["shards"] == 1]
    for row in single:
        assert row["speedup"] == pytest.approx(1.0)


def test_invariants_hold_under_every_executor(speedup_results):
    for row in speedup_results:
        for witness in ("ops_per_request", "per_query_epsilon",
                        "worst_shard_epsilon", "per_server_storage_blocks",
                        "errors", "mismatches"):
            values = row[witness]
            assert values["serial"] == values["parallel"], (
                f"D={row['shards']}: {witness} differs across executors "
                f"({values})"
            )
        assert row["mismatches"]["serial"] == 0


def test_executors_bit_identical_under_faults(equivalence_result):
    assert equivalence_result["identical_answers"]
    assert equivalence_result["identical_budgets"]
    assert equivalence_result["identical_fault_counters"]
    # The fault injection actually bit: failovers happened.
    assert equivalence_result["fault_counters"].get("failovers", 0) > 0


def test_equivalence_table(equivalence_result):
    table = ExperimentTable(
        "PARALLEL_EQUIVALENCE",
        "serial, parallel and simulated executors agree bit-for-bit "
        "under injected faults",
        headers=["witness", "identical"],
    )
    for witness in ("identical_answers", "identical_budgets",
                    "identical_fault_counters"):
        table.add_row(witness.removeprefix("identical_"),
                      equivalence_result[witness])
    table.add_note(
        f"D={equivalence_result['shards']} x "
        f"R={equivalence_result['replicas']}, flaky replica 0, "
        "corrupting replica 0, authenticated storage"
    )
    write_report(table)
    print("\n" + table.to_text())
