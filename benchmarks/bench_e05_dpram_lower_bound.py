"""E5 — Theorem 3.7: the log_c((1−α)n/e^ε) DP-RAM floor."""

import math

from conftest import write_report

from repro.analysis.bounds import dp_ram_lower_bound, min_epsilon_for_ram_bandwidth
from repro.simulation.experiments import experiment_e05_dpram_lower_bound


def test_e05_table():
    table = experiment_e05_dpram_lower_bound(n=4096)
    write_report(table)
    print("\n" + table.to_text())
    assert all(row[-1] is True for row in table.rows)
    # The floor is monotone decreasing in epsilon.
    floors = [row[2] for row in table.rows]
    assert floors == sorted(floors, reverse=True)


def test_e05_constant_epsilon_is_oram_regime():
    # At eps = O(1) the floor matches the classic ORAM Omega(log n).
    for n in (2**12, 2**16, 2**20):
        floor = dp_ram_lower_bound(n, epsilon=1.0, client_blocks=2)
        assert floor >= 0.5 * math.log2(n) - 3


def test_e05_inversion_answers_title_question():
    # "What privacy is achievable with small overhead?": eps = Omega(log n).
    for n in (2**12, 2**16, 2**20):
        eps = min_epsilon_for_ram_bandwidth(n, bandwidth=3, client_blocks=4)
        assert eps >= math.log(n) - 3 * math.log(4) - 1e-9


def test_e05_bound_evaluation_throughput(benchmark):
    benchmark(lambda: dp_ram_lower_bound(2**20, 5.0, 64))
