"""E1 — Theorem 3.3: errorless DP-IR moves ≥ (1−δ)·n blocks per query."""

from conftest import write_report

from repro.baselines.linear_pir import LinearScanPIR
from repro.simulation.experiments import experiment_e01_errorless_ir
from repro.storage.blocks import integer_database


def test_e01_table():
    table = experiment_e01_errorless_ir(sizes=(256, 512, 1024, 2048))
    write_report(table)
    print("\n" + table.to_text())
    for row in table.rows:
        n, bound, measured, meets = row
        assert meets is True
        assert measured == bound == n  # linear scan realizes the bound tightly


def test_e01_query_throughput(benchmark, rng):
    scheme = LinearScanPIR(integer_database(1024))
    source = rng.spawn("queries")
    benchmark(lambda: scheme.query(source.randbelow(1024)))
