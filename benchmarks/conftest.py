"""Shared benchmark fixtures.

Every experiment bench does two things:

* asserts the paper claim its table encodes (so ``pytest benchmarks/``
  doubles as a claims regression suite), and
* writes the rendered table to ``benchmarks/reports/`` for inspection.

The timed portions use pytest-benchmark on a representative operation of
the scheme under test.
"""

import pathlib

import pytest

from repro.crypto.rng import SeededRandomSource

REPORTS = pathlib.Path(__file__).parent / "reports"


@pytest.fixture(scope="session", autouse=True)
def reports_dir():
    REPORTS.mkdir(exist_ok=True)
    return REPORTS


@pytest.fixture
def rng():
    return SeededRandomSource(0xBE9C)


def write_report(table) -> None:
    """Persist an ExperimentTable under benchmarks/reports/."""
    REPORTS.mkdir(exist_ok=True)
    path = REPORTS / f"{table.experiment.lower()}.txt"
    path.write_text(table.to_text() + "\n")
