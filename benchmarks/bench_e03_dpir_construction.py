"""E3 — Theorem 5.1: ε = Θ(log n) DP-IR with O(1) bandwidth and error α."""

import math

from conftest import write_report

from repro.core.dp_ir import DPIR
from repro.simulation.experiments import experiment_e03_dpir_construction
from repro.storage.blocks import integer_database


def test_e03_table():
    table = experiment_e03_dpir_construction(
        sizes=(256, 1024, 4096, 16384), queries=600
    )
    write_report(table)
    print("\n" + table.to_text())
    # Pad size flat across n at fixed alpha (the O(1) claim).
    for alpha in (0.01, 0.05, 0.1):
        pads = [row[2] for row in table.rows if row[1] == alpha]
        assert max(pads) - min(pads) <= 2
    # Measured error rate tracks alpha.
    for row in table.rows:
        _, alpha, _, _, _, _, error_rate = row
        assert abs(error_rate - alpha) < 0.05


def test_e03_alpha_bandwidth_tradeoff():
    # Ablation: at fixed epsilon, larger alpha buys a smaller pad.
    n, epsilon = 4096, math.log(4096)
    pads = [
        DPIR(integer_database(n), epsilon=epsilon, alpha=alpha).pad_size
        for alpha in (0.01, 0.05, 0.2, 0.5)
    ]
    assert pads == sorted(pads, reverse=True)


def test_e03_query_throughput(benchmark, rng):
    n = 16384
    scheme = DPIR(integer_database(n), epsilon=math.log(n), alpha=0.05,
                  rng=rng.spawn("scheme"))
    source = rng.spawn("queries")
    benchmark(lambda: scheme.query(source.randbelow(n)))
