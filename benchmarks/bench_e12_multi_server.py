"""E12 — Theorem C.1: multi-server DP-IR vs the t-fraction floor."""

import math

from conftest import write_report

from repro.core.multi_server import MultiServerDPIR
from repro.simulation.experiments import experiment_e12_multi_server
from repro.storage.blocks import integer_database


def test_e12_table():
    table = experiment_e12_multi_server(n=2048, server_count=4, queries=400)
    write_report(table)
    print("\n" + table.to_text())
    assert all(row[-1] is True for row in table.rows)
    # Corrupted view scales with t; full corruption sees everything.
    views = [row[4] for row in table.rows]
    assert views == sorted(views)
    totals = {row[3] for row in table.rows}
    assert views[-1] <= max(totals) + 0.01


def test_e12_t_one_collapses_to_single_server():
    # With every server corrupted the bound equals Theorem 3.4's.
    from repro.analysis.bounds import (
        dp_ir_error_lower_bound,
        multi_server_ir_lower_bound,
    )

    n, eps, alpha = 4096, 5.0, 0.05
    multi = multi_server_ir_lower_bound(n, eps, alpha, t=1.0)
    single = dp_ir_error_lower_bound(n + 1, eps, alpha)
    assert math.isclose(multi, single, rel_tol=0.01)


def test_e12_sharded_vs_replicated_storage(rng):
    # Deployment trade: sharding keeps total storage at n (vs D*n) while
    # preserving the single-server exact epsilon.
    from repro.core.sharded_ir import ShardedDPIR
    from repro.storage.blocks import integer_database

    n, shards = 1024, 4
    db = integer_database(n)
    sharded = ShardedDPIR(db, shard_count=shards, pad_size=8, alpha=0.05,
                          rng=rng.spawn("sharded"))
    replicated = MultiServerDPIR(db, server_count=shards, pad_size=8,
                                 alpha=0.05, rng=rng.spawn("replicated"))
    assert sharded.total_storage_blocks() == n
    replicated_storage = sum(s.capacity for s in replicated.pool)
    assert replicated_storage == shards * n
    assert sharded.epsilon == replicated.epsilon


def test_e12_query_throughput(benchmark, rng):
    n = 2048
    scheme = MultiServerDPIR(integer_database(n), server_count=4,
                             epsilon=math.log(n), alpha=0.05,
                             rng=rng.spawn("scheme"))
    source = rng.spawn("queries")
    benchmark(lambda: scheme.query(source.randbelow(n)))
