"""E6 — Theorem 6.1 + Lemma D.1: DP-RAM O(1) bandwidth, bounded stash."""

import math

from conftest import write_report

from repro.analysis.tails import stash_overflow_bound
from repro.core.dp_ram import DPRAM, ReadOnlyDPRAM
from repro.simulation.experiments import experiment_e06_dpram_construction
from repro.storage.blocks import encode_int, integer_database


def test_e06_table():
    table = experiment_e06_dpram_construction(
        sizes=(256, 1024, 4096, 16384), queries=600
    )
    write_report(table)
    print("\n" + table.to_text())
    for row in table.rows:
        _, phi, blocks, stash_peak, cap, eps_bound, ratio, mismatches = row
        assert blocks == 3.0
        assert stash_peak <= cap + 5
        assert mismatches == 0
        assert ratio < 16  # eps bound = O(log n)


def test_e06_stash_probability_ablation(rng):
    # Larger p buys nothing in bandwidth (always 3) but costs client memory.
    n = 2048
    peaks = []
    for p in (0.005, 0.02, 0.08):
        ram = DPRAM(integer_database(n), stash_probability=p,
                    rng=rng.spawn(f"p{p}"))
        source = rng.spawn(f"load{p}")
        for _ in range(300):
            ram.read(source.randbelow(n))
        peaks.append(ram.stash_peak)
    assert peaks == sorted(peaks)


def test_e06_lemma_d1_bound_holds_empirically(rng):
    # Pr[stash > (1+slack)c] across many fresh schemes vs the Chernoff cap.
    n, p, slack = 512, 0.05, 1.0
    expected = p * n  # c = 25.6
    cap = (1 + slack) * expected
    trials = 60
    overflows = 0
    for trial in range(trials):
        ram = DPRAM(integer_database(n), stash_probability=p,
                    rng=rng.spawn(f"t{trial}"))
        if ram.stash_size > cap:
            overflows += 1
    bound = stash_overflow_bound(expected, slack)
    assert overflows / trials <= max(bound * 5, 0.05)


def test_e06_read_throughput(benchmark, rng):
    n = 16384
    ram = DPRAM(integer_database(n), rng=rng.spawn("scheme"))
    source = rng.spawn("queries")
    benchmark(lambda: ram.read(source.randbelow(n)))


def test_e06_write_throughput(benchmark, rng):
    n = 16384
    ram = DPRAM(integer_database(n), rng=rng.spawn("scheme"))
    source = rng.spawn("queries")
    payload = encode_int(7)
    benchmark(lambda: ram.write(source.randbelow(n), payload))


def test_e06_read_only_variant_throughput(benchmark, rng):
    n = 16384
    ram = ReadOnlyDPRAM(integer_database(n), rng=rng.spawn("scheme"))
    source = rng.spawn("queries")
    benchmark(lambda: ram.read(source.randbelow(n)))
