"""Serving layer — batched dispatch versus per-request FIFO.

The claim under test: routing grouped requests through the protocol's
``query_many`` entry points lets schemes with real batched
implementations serve a saturating multi-client workload with fewer
server operations per request (and lower tail latency) than dispatching
the same requests one at a time.  Plain ``DPIR`` is the control — its
``query_many`` is a per-query loop, so batching must not change its
operation count.
"""

import pytest

from conftest import write_report

from repro.serving import ServingConfig, serve
from repro.serving.bench import compare_dispatch, continuous_flood
from repro.simulation.reporting import ExperimentTable


def _comparison_table(results) -> ExperimentTable:
    table = ExperimentTable(
        "SERVING",
        "batched dispatch amortizes pad-set unions under concurrent load",
        headers=["scheme", "scheduler", "ops/request", "p50 ms", "p95 ms",
                 "p99 ms", "throughput req/s", "mean batch"],
    )
    for row in results:
        table.add_row(
            row["scheme"], row["scheduler"],
            round(row["ops_per_request"], 2),
            round(row["p50_ms"], 2), round(row["p95_ms"], 2),
            round(row["p99_ms"], 2),
            round(row["throughput_rps"], 1),
            round(row["mean_batch_size"], 2),
        )
    table.add_note(
        "open-loop Poisson arrivals above the FIFO service rate; "
        "deterministic seed, LAN cost model"
    )
    return table


@pytest.fixture(scope="module")
def dispatch_results():
    return compare_dispatch()


def test_serving_dispatch_table(dispatch_results):
    table = _comparison_table(dispatch_results)
    write_report(table)
    print("\n" + table.to_text())


def test_batching_amortizes_batch_dpir(dispatch_results):
    by = {(r["scheme"], r["scheduler"]): r for r in dispatch_results}
    fifo = by[("batch_dp_ir", "fifo")]
    batch = by[("batch_dp_ir", "batch")]
    # Union-of-pad-sets downloads measurably fewer blocks per request...
    assert batch["ops_per_request"] < 0.9 * fifo["ops_per_request"]
    # ...which shows up as lower tail latency and higher throughput too.
    assert batch["p95_ms"] < fifo["p95_ms"]
    assert batch["throughput_rps"] > fifo["throughput_rps"]
    assert batch["mean_batch_size"] > 1.5


def test_batching_amortizes_multi_server_dpir(dispatch_results):
    by = {(r["scheme"], r["scheduler"]): r for r in dispatch_results}
    fifo = by[("multi_server_dp_ir", "fifo")]
    batch = by[("multi_server_dp_ir", "batch")]
    # Coalesced per-replica reads: strictly fewer operations per request.
    assert batch["ops_per_request"] < 0.9 * fifo["ops_per_request"]


def test_plain_dpir_is_the_control(dispatch_results):
    by = {(r["scheme"], r["scheduler"]): r for r in dispatch_results}
    fifo = by[("dp_ir", "fifo")]
    batch = by[("dp_ir", "batch")]
    # DPIR's query_many is a per-query loop: exactly K ops per request
    # under either scheduler.
    assert batch["ops_per_request"] == pytest.approx(
        fifo["ops_per_request"]
    )


def test_all_requests_complete(dispatch_results):
    for row in dispatch_results:
        assert row["completed"] == row["requests"]


@pytest.fixture(scope="module")
def flood_results():
    return continuous_flood()


def test_continuous_flood_table(flood_results):
    table = ExperimentTable(
        "SERVING-FLOOD",
        "continuous batching sustains the flood; caps bound the tail",
        headers=["scheduler", "req/s", "p99 ms", "max queue", "in-flight",
                 "shed"],
    )
    for row in flood_results:
        table.add_row(
            row["scheduler"], round(row["throughput_rps"], 1),
            round(row["p99_ms"], 2), row["max_queue_depth"],
            row["max_in_flight"], row["shed"],
        )
    table.add_note(
        "open-loop Poisson flood at 8 tenants far past the service "
        "rate; deterministic seed, LAN cost model"
    )
    write_report(table)
    print("\n" + table.to_text())


def test_continuous_beats_windowed_under_flood(flood_results):
    by = {r["scheduler"]: r for r in flood_results}
    # Pipelined dispatch keeps the worker busy across rounds: strictly
    # higher sustained throughput than the lock-step window baseline.
    assert by["continuous"]["throughput_rps"] > \
        by["window"]["throughput_rps"]
    assert by["continuous"]["max_in_flight"] > 1


def test_admission_caps_bound_queue_and_tail(flood_results):
    by = {r["scheduler"]: r for r in flood_results}
    capped = by["continuous+caps"]
    uncapped = by["continuous"]
    # Shedding the flood is the whole point: the queue stays bounded
    # and p99 reflects service time, not backlog age.
    assert capped["shed"] > 0
    assert capped["completed"] + capped["shed"] == capped["requests"]
    assert capped["max_queue_depth"] < uncapped["max_queue_depth"]
    assert capped["p99_ms"] < uncapped["p99_ms"]


def test_serving_simulation_throughput(benchmark):
    config = ServingConfig(
        clients=4, requests_per_client=6, n=128, seed=11
    )
    benchmark(lambda: serve("batch_dp_ir", config))
