"""Shared fixtures for the test suite."""

import pytest

from repro.crypto.rng import SeededRandomSource
from repro.storage.blocks import integer_database


@pytest.fixture
def rng():
    """A deterministic randomness source; spawn substreams per test need."""
    return SeededRandomSource(0xC0FFEE)


@pytest.fixture
def small_db():
    """A 32-record database with self-describing contents."""
    return integer_database(32)


@pytest.fixture
def tiny_db():
    """An 8-record database for exhaustive checks."""
    return integer_database(8)
