"""Property-based tests for the crypto substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.crypto.encryption import (
    IntegrityError,
    SecretKey,
    decrypt,
    decrypt_authenticated_many,
    decrypt_many,
    encrypt,
    encrypt_authenticated_many,
    encrypt_authenticated_reference,
    encrypt_many,
    encrypt_reference,
)
from repro.crypto.prf import PRF
from repro.crypto.prg import CounterPRG
from repro.crypto.rng import SeededRandomSource


keys = st.binary(min_size=32, max_size=32).map(SecretKey)
payloads = st.binary(min_size=0, max_size=512)
batches = st.lists(st.binary(min_size=0, max_size=128), max_size=12)
seeds = st.integers(min_value=0, max_value=2**63)


class TestEncryptionProperties:
    @given(key=keys, plaintext=payloads, seed=seeds)
    @settings(max_examples=60)
    def test_roundtrip(self, key, plaintext, seed):
        rng = SeededRandomSource(seed)
        assert decrypt(key, encrypt(key, plaintext, rng)) == plaintext

    @given(key=keys, plaintext=payloads, seed=seeds)
    @settings(max_examples=60)
    def test_length_preserving_plus_nonce(self, key, plaintext, seed):
        rng = SeededRandomSource(seed)
        assert len(encrypt(key, plaintext, rng)) == len(plaintext) + 16

    @given(key=keys, plaintext=st.binary(min_size=1, max_size=64),
           seed=seeds)
    @settings(max_examples=60)
    def test_reencryption_unlinkable(self, key, plaintext, seed):
        rng = SeededRandomSource(seed)
        assert encrypt(key, plaintext, rng) != encrypt(key, plaintext, rng)


class TestBulkEncryptionProperties:
    @given(key=keys, plaintexts=batches, seed=seeds)
    @settings(max_examples=60)
    def test_encrypt_many_equals_sequential_loop(
        self, key, plaintexts, seed
    ):
        # Same rng seed, identical ciphertexts AND identical generator
        # state afterwards: the bulk nonce draw is invisible.
        bulk_rng = SeededRandomSource(seed)
        loop_rng = SeededRandomSource(seed)
        bulk = encrypt_many(key, plaintexts, bulk_rng)
        loop = [encrypt(key, p, loop_rng) for p in plaintexts]
        assert bulk == loop
        assert bulk_rng.bytes(16) == loop_rng.bytes(16)

    @given(key=keys, plaintexts=batches, seed=seeds)
    @settings(max_examples=60)
    def test_optimized_matches_reference_implementation(
        self, key, plaintexts, seed
    ):
        # The word-wise XOR / cached-HMAC path must be bit-identical to
        # the frozen seed implementation the benchmarks baseline on.
        opt_rng = SeededRandomSource(seed)
        ref_rng = SeededRandomSource(seed)
        assert encrypt_many(key, plaintexts, opt_rng) == [
            encrypt_reference(key, p, ref_rng) for p in plaintexts
        ]

    @given(key=keys, plaintexts=batches, seed=seeds)
    @settings(max_examples=60)
    def test_decrypt_many_inverts_encrypt_many(self, key, plaintexts, seed):
        rng = SeededRandomSource(seed)
        ciphertexts = encrypt_many(key, plaintexts, rng)
        assert decrypt_many(key, ciphertexts) == list(plaintexts)

    @given(key=keys, plaintexts=batches, seed=seeds)
    @settings(max_examples=60)
    def test_authenticated_bulk_roundtrip_matches_reference(
        self, key, plaintexts, seed
    ):
        bulk_rng = SeededRandomSource(seed)
        ref_rng = SeededRandomSource(seed)
        ciphertexts = encrypt_authenticated_many(key, plaintexts, bulk_rng)
        assert ciphertexts == [
            encrypt_authenticated_reference(key, p, ref_rng)
            for p in plaintexts
        ]
        assert decrypt_authenticated_many(key, ciphertexts) == list(
            plaintexts
        )

    @given(key=keys,
           plaintexts=st.lists(st.binary(min_size=0, max_size=64),
                               min_size=1, max_size=8),
           seed=seeds,
           data=st.data())
    @settings(max_examples=60)
    def test_authenticated_rejects_tampering_per_block(
        self, key, plaintexts, seed, data
    ):
        # Flipping any bit of any block in the batch must be detected.
        rng = SeededRandomSource(seed)
        ciphertexts = encrypt_authenticated_many(key, plaintexts, rng)
        victim = data.draw(
            st.integers(min_value=0, max_value=len(ciphertexts) - 1)
        )
        block = bytearray(ciphertexts[victim])
        position = data.draw(
            st.integers(min_value=0, max_value=len(block) - 1)
        )
        block[position] ^= 1 << data.draw(
            st.integers(min_value=0, max_value=7)
        )
        tampered = list(ciphertexts)
        tampered[victim] = bytes(block)
        with pytest.raises(IntegrityError):
            decrypt_authenticated_many(key, tampered)


class TestPrfProperties:
    @given(key=st.binary(min_size=1, max_size=64),
           message=st.binary(max_size=128),
           modulus=st.integers(min_value=1, max_value=10**9))
    @settings(max_examples=60)
    def test_integer_in_range(self, key, message, modulus):
        value = PRF(key).integer(message, modulus)
        assert 0 <= value < modulus

    @given(key=st.binary(min_size=1, max_size=64),
           message=st.binary(max_size=64),
           modulus=st.integers(min_value=1, max_value=1000),
           count=st.integers(min_value=0, max_value=8))
    @settings(max_examples=60)
    def test_choices_shape(self, key, message, modulus, count):
        choices = PRF(key).choices(message, modulus, count)
        assert len(choices) == count
        assert all(0 <= c < modulus for c in choices)


class TestPrgProperties:
    @given(seed=st.binary(min_size=1, max_size=64),
           first=st.integers(min_value=0, max_value=100),
           second=st.integers(min_value=0, max_value=100))
    @settings(max_examples=60)
    def test_stream_consistency(self, seed, first, second):
        stream = CounterPRG(seed)
        combined = stream.read(first) + stream.read(second)
        assert combined == CounterPRG.expand(seed, first + second)
