"""Property-based tests for the crypto substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.encryption import SecretKey, decrypt, encrypt
from repro.crypto.prf import PRF
from repro.crypto.prg import CounterPRG
from repro.crypto.rng import SeededRandomSource


keys = st.binary(min_size=32, max_size=32).map(SecretKey)
payloads = st.binary(min_size=0, max_size=512)
seeds = st.integers(min_value=0, max_value=2**63)


class TestEncryptionProperties:
    @given(key=keys, plaintext=payloads, seed=seeds)
    @settings(max_examples=60)
    def test_roundtrip(self, key, plaintext, seed):
        rng = SeededRandomSource(seed)
        assert decrypt(key, encrypt(key, plaintext, rng)) == plaintext

    @given(key=keys, plaintext=payloads, seed=seeds)
    @settings(max_examples=60)
    def test_length_preserving_plus_nonce(self, key, plaintext, seed):
        rng = SeededRandomSource(seed)
        assert len(encrypt(key, plaintext, rng)) == len(plaintext) + 16

    @given(key=keys, plaintext=st.binary(min_size=1, max_size=64),
           seed=seeds)
    @settings(max_examples=60)
    def test_reencryption_unlinkable(self, key, plaintext, seed):
        rng = SeededRandomSource(seed)
        assert encrypt(key, plaintext, rng) != encrypt(key, plaintext, rng)


class TestPrfProperties:
    @given(key=st.binary(min_size=1, max_size=64),
           message=st.binary(max_size=128),
           modulus=st.integers(min_value=1, max_value=10**9))
    @settings(max_examples=60)
    def test_integer_in_range(self, key, message, modulus):
        value = PRF(key).integer(message, modulus)
        assert 0 <= value < modulus

    @given(key=st.binary(min_size=1, max_size=64),
           message=st.binary(max_size=64),
           modulus=st.integers(min_value=1, max_value=1000),
           count=st.integers(min_value=0, max_value=8))
    @settings(max_examples=60)
    def test_choices_shape(self, key, message, modulus, count):
        choices = PRF(key).choices(message, modulus, count)
        assert len(choices) == count
        assert all(0 <= c < modulus for c in choices)


class TestPrgProperties:
    @given(seed=st.binary(min_size=1, max_size=64),
           first=st.integers(min_value=0, max_value=100),
           second=st.integers(min_value=0, max_value=100))
    @settings(max_examples=60)
    def test_stream_consistency(self, seed, first, second):
        stream = CounterPRG(seed)
        combined = stream.read(first) + stream.read(second)
        assert combined == CounterPRG.expand(seed, first + second)
