"""Property-based tests: every storage scheme vs a reference model.

The central invariant of the whole library — privacy mechanisms must never
change answers.  Hypothesis drives random operation sequences against
DP-RAM, Path ORAM, BucketDPRAM and DP-KVS, comparing against plain dicts.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.path_oram import PathORAM
from repro.core.bucket_ram import BucketDPRAM
from repro.core.dp_kvs import DPKVS
from repro.core.dp_ram import DPRAM
from repro.crypto.rng import SeededRandomSource
from repro.storage.blocks import encode_int, integer_database


N = 12

ram_ops = st.lists(
    st.tuples(
        st.sampled_from(["read", "write"]),
        st.integers(min_value=0, max_value=N - 1),
        st.integers(min_value=0, max_value=10**6),
    ),
    max_size=40,
)


class TestDPRAMModel:
    @given(ops=ram_ops, seed=st.integers(0, 2**32),
           p=st.floats(min_value=0.01, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_matches_dict_model(self, ops, seed, p):
        ram = DPRAM(integer_database(N), stash_probability=p,
                    rng=SeededRandomSource(seed))
        model = {i: encode_int(i) for i in range(N)}
        for kind, index, payload in ops:
            if kind == "read":
                assert ram.read(index) == model[index]
            else:
                value = encode_int(payload)
                ram.write(index, value)
                model[index] = value

    @given(ops=ram_ops, seed=st.integers(0, 2**32))
    @settings(max_examples=30, deadline=None)
    def test_constant_bandwidth_invariant(self, ops, seed):
        ram = DPRAM(integer_database(N), rng=SeededRandomSource(seed))
        for kind, index, payload in ops:
            before = ram.server.operations
            if kind == "read":
                ram.read(index)
            else:
                ram.write(index, encode_int(payload))
            assert ram.server.operations - before == 3


class TestPathORAMModel:
    @given(ops=ram_ops, seed=st.integers(0, 2**32))
    @settings(max_examples=30, deadline=None)
    def test_matches_dict_model(self, ops, seed):
        oram = PathORAM(integer_database(N), rng=SeededRandomSource(seed))
        model = {i: encode_int(i) for i in range(N)}
        for kind, index, payload in ops:
            if kind == "read":
                assert oram.read(index) == model[index]
            else:
                value = encode_int(payload)
                oram.write(index, value)
                model[index] = value


class TestBucketDPRAMModel:
    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 255)), max_size=30
        ),
        seed=st.integers(0, 2**32),
        p=st.floats(min_value=0.05, max_value=1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_overlapping_buckets_consistent(self, ops, seed, p):
        # 4 buckets sharing node 8 plus pairwise shared mid nodes.
        buckets = [(0, 4, 8), (1, 4, 8), (2, 5, 8), (3, 5, 8)]
        blocks = [bytes([i]) * 4 for i in range(9)]
        ram = BucketDPRAM(blocks, buckets, stash_probability=p,
                          rng=SeededRandomSource(seed))
        model = {node: blocks[node] for node in range(9)}
        for bucket, payload in ops:
            target = buckets[bucket][payload % 3]
            value = bytes([payload]) * 4
            snapshot = ram.query(bucket, new_contents={target: value})
            for node in buckets[bucket]:
                assert snapshot[node] == model[node]
            model[target] = value


kv_ops = st.lists(
    st.tuples(
        st.sampled_from(["get", "put", "delete"]),
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=255),
    ),
    max_size=30,
)


class TestDPKVSModel:
    @given(ops=kv_ops, seed=st.integers(0, 2**32))
    @settings(max_examples=40, deadline=None)
    def test_matches_dict_model(self, ops, seed):
        store = DPKVS(64, key_size=4, value_size=4,
                      rng=SeededRandomSource(seed))
        model: dict[bytes, bytes] = {}
        for kind, key_id, payload in ops:
            key = f"k{key_id:02d}".encode()
            if kind == "get":
                value = store.get(key)
                if key.ljust(4, b"\x00") in model:
                    assert value == model[key.ljust(4, b"\x00")]
                else:
                    assert value is None
            elif kind == "put":
                value = bytes([payload]) * 4
                store.put(key, value)
                model[key.ljust(4, b"\x00")] = value
            else:
                existed = store.delete(key)
                assert existed == (key.ljust(4, b"\x00") in model)
                model.pop(key.ljust(4, b"\x00"), None)

    @given(seed=st.integers(0, 2**32))
    @settings(max_examples=20, deadline=None)
    def test_operation_cost_constant_for_fixed_n(self, seed):
        store = DPKVS(64, key_size=4, value_size=4,
                      rng=SeededRandomSource(seed))
        expected = store.blocks_per_operation()
        costs = set()
        for i in range(10):
            before = store.server.operations
            store.put(f"k{i}".encode(), b"v")
            costs.add(store.server.operations - before)
        assert costs == {expected}
