"""Property tests: executors never change answers or privacy budgets.

The headline invariant of :mod:`repro.parallel`: for any cluster
geometry, fault injection and workload, the serial, threaded-parallel
and simulated-parallel executors return bit-identical retrievals,
charge identical privacy-ledger budgets and count identical failovers.
Overlap is a wall-clock accounting change, never a mechanism change.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.scheme import ClusterIR, ClusterKVS
from repro.crypto.rng import SeededRandomSource
from repro.storage.blocks import integer_database


def _ledger_signature(instance):
    report = instance.ledger.report()
    return (
        report.queries,
        report.per_query_epsilon,
        report.worst_shard_epsilon,
        report.colluding_epsilon,
    )


class TestExecutorEquivalenceProperties:
    @settings(max_examples=10, deadline=None)
    @given(
        n=st.integers(16, 64),
        shards=st.integers(1, 4),
        replicas=st.integers(1, 3),
        flaky=st.booleans(),
        corrupting=st.booleans(),
        batch=st.integers(1, 9),
        seed=st.integers(0, 2**16),
    )
    def test_ir_retrievals_and_budgets_identical_under_faults(
        self, n, shards, replicas, flaky, corrupting, batch, seed
    ):
        shards = min(shards, n)
        blocks = integer_database(n)
        failure = (
            tuple([0.25] + [0.0] * (replicas - 1)) if flaky and replicas > 1
            else 0.0
        )
        corruption = (
            tuple([0.2] + [0.0] * (replicas - 1))
            if corrupting and replicas > 1
            else 0.0
        )
        outcomes = {}
        for executor in ("serial", "parallel", "simulated"):
            instance = ClusterIR(
                blocks,
                shard_count=shards,
                replica_count=replicas,
                pad_size=min(8, n),
                alpha=0.05,
                failure_rate=failure,
                corruption_rate=corruption,
                rng=SeededRandomSource(seed),
                executor=executor,
            )
            answers = []
            indices = list(range(n))
            for start in range(0, n, batch):
                answers.extend(instance.query_many(indices[start:start + batch]))
            outcomes[executor] = (
                answers,
                _ledger_signature(instance),
                instance.fault_counters(),
                instance.serial_operations(),
            )
        serial = outcomes["serial"]
        for executor in ("parallel", "simulated"):
            assert outcomes[executor] == serial, (
                f"{executor} diverged from serial"
            )
        # Wall-clock may only ever shrink relative to serial.
        assert serial[3] >= 0

    @settings(max_examples=8, deadline=None)
    @given(
        n=st.integers(16, 64),
        shards=st.integers(1, 4),
        replicas=st.integers(1, 3),
        flaky=st.booleans(),
        keys=st.integers(4, 24),
        seed=st.integers(0, 2**16),
    )
    def test_kvs_values_and_budgets_identical_under_faults(
        self, n, shards, replicas, flaky, keys, seed
    ):
        failure = (
            tuple([0.2] + [0.0] * (replicas - 1)) if flaky and replicas > 1
            else 0.0
        )
        outcomes = {}
        for executor in ("serial", "parallel", "simulated"):
            instance = ClusterKVS(
                n,
                shard_count=shards,
                replica_count=replicas,
                failure_rate=failure,
                # Head-room for the worst hash skew the strategy can
                # produce (all `keys` landing on one shard): with
                # n >= 16 and shards <= 4, ceil(8 * 16 / 4) = 32 > 24.
                capacity_slack=8.0,
                rng=SeededRandomSource(seed),
                executor=executor,
            )
            for i in range(keys):
                instance.put(b"key-%d" % i, b"value-%d" % i)
            got = instance.get_many([b"key-%d" % i for i in range(keys)])
            outcomes[executor] = (
                got,
                _ledger_signature(instance),
                instance.fault_counters(),
            )
        serial = outcomes["serial"]
        assert outcomes["parallel"] == serial
        assert outcomes["simulated"] == serial
        assert serial[0] == [b"value-%d" % i for i in range(keys)]

    @settings(max_examples=8, deadline=None)
    @given(
        n=st.integers(16, 48),
        shards=st.integers(2, 4),
        new_shards=st.integers(1, 4),
        seed=st.integers(0, 2**16),
    )
    def test_reshard_wall_clock_never_exceeds_serial(
        self, n, shards, new_shards, seed
    ):
        shards = min(shards, n)
        new_shards = min(new_shards, n)
        blocks = integer_database(n)
        instance = ClusterIR(
            blocks,
            shard_count=shards,
            replica_count=1,
            pad_size=min(8, n),
            rng=SeededRandomSource(seed),
            executor="simulated",
        )
        report = instance.reshard(new_shards)
        assert report.wall_clock_ms <= report.serial_ms
        if shards > 1:
            assert report.wall_clock_ms < report.serial_ms
        for index in range(n):
            answer = None
            for _ in range(64):
                answer = instance.query(index)
                if answer is not None:
                    break
            assert answer == blocks[index]
