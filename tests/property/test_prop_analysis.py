"""Property-based tests for the analysis layer invariants."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.dp_ir_exact import (
    dpir_exact_delta,
    dpir_transcript_probability,
)
from repro.analysis.dp_ram_exact import (
    dp_ram_analytic_epsilon,
    sample_transcript_pairs,
    transcript_log_likelihood,
    transcript_log_ratio,
)
from repro.analysis.tails import beta_sequence, beta_sequence_closed_form
from repro.core.params import dp_ir_exact_epsilon, dp_ir_pad_size
from repro.crypto.rng import SeededRandomSource


class TestDpirExactProperties:
    @given(n=st.integers(2, 64), epsilon=st.floats(0.1, 20),
           alpha=st.floats(0.01, 0.99))
    @settings(max_examples=80)
    def test_resolver_never_exceeds_target(self, n, epsilon, alpha):
        pad = dp_ir_pad_size(n, epsilon, alpha)
        assert 1 <= pad <= n
        assert dp_ir_exact_epsilon(n, pad, alpha) <= epsilon + 1e-9

    @given(n=st.integers(2, 20), k=st.integers(1, 20),
           alpha=st.floats(0.01, 0.99), query=st.integers(0, 19),
           data=st.data())
    @settings(max_examples=60)
    def test_probability_in_unit_interval(self, n, k, alpha, query, data):
        assume(k <= n and query < n)
        subset = frozenset(
            data.draw(st.permutations(range(n)).map(lambda p: p[:k]))
        )
        probability = dpir_transcript_probability(n, k, alpha, query, subset)
        assert 0.0 <= probability <= 1.0

    @given(n=st.integers(2, 64), k=st.integers(1, 64),
           alpha=st.floats(0.05, 0.95),
           epsilon=st.floats(0, 10))
    @settings(max_examples=80)
    def test_delta_in_unit_interval_and_monotone(self, n, k, alpha, epsilon):
        assume(k <= n)
        delta = dpir_exact_delta(n, k, alpha, epsilon)
        assert 0.0 <= delta <= 1.0
        assert dpir_exact_delta(n, k, alpha, epsilon + 1) <= delta + 1e-12


class TestDpRamLikelihoodProperties:
    @given(
        n=st.integers(2, 8),
        p=st.floats(0.05, 0.95),
        queries=st.lists(st.integers(0, 7), min_size=1, max_size=6),
        seed=st.integers(0, 2**32),
    )
    @settings(max_examples=80, deadline=None)
    def test_sampled_transcripts_have_positive_likelihood(
        self, n, p, queries, seed
    ):
        assume(all(q < n for q in queries))
        rng = SeededRandomSource(seed)
        pairs = sample_transcript_pairs(queries, n, p, rng)
        log_prob = transcript_log_likelihood(queries, pairs, n, p)
        assert log_prob > float("-inf")
        assert log_prob <= 0.0

    @given(
        n=st.integers(3, 8),
        p=st.floats(0.05, 0.95),
        length=st.integers(1, 5),
        position=st.integers(0, 4),
        seed=st.integers(0, 2**32),
    )
    @settings(max_examples=60, deadline=None)
    def test_adjacent_ratio_within_analytic_budget(
        self, n, p, length, position, seed
    ):
        assume(position < length)
        rng = SeededRandomSource(seed)
        queries_a = [rng.randbelow(n) for _ in range(length)]
        queries_b = list(queries_a)
        queries_b[position] = (queries_a[position] + 1 +
                               rng.randbelow(n - 1)) % n
        pairs = sample_transcript_pairs(queries_a, n, p, rng)
        ratio = transcript_log_ratio(queries_a, queries_b, pairs, n, p)
        assert abs(ratio) <= dp_ram_analytic_epsilon(n, p) + 1e-9

    @given(
        n=st.integers(2, 8),
        p=st.floats(0.05, 0.95),
        queries=st.lists(st.integers(0, 7), min_size=1, max_size=5),
        seed=st.integers(0, 2**32),
    )
    @settings(max_examples=50, deadline=None)
    def test_ratio_zero_for_identical_sequences(self, n, p, queries, seed):
        assume(all(q < n for q in queries))
        rng = SeededRandomSource(seed)
        pairs = sample_transcript_pairs(queries, n, p, rng)
        assert transcript_log_ratio(queries, queries, pairs, n, p) == 0.0


class TestBetaSequenceProperties:
    @given(n=st.integers(100, 10**9), levels=st.integers(0, 8))
    @settings(max_examples=80)
    def test_recurrence_equals_closed_form(self, n, levels):
        values = beta_sequence(n, levels)
        for level, value in enumerate(values):
            closed = beta_sequence_closed_form(n, level)
            assert math.isclose(value, closed, rel_tol=1e-6)

    @given(n=st.integers(1000, 10**9))
    @settings(max_examples=40)
    def test_monotone_decreasing(self, n):
        values = beta_sequence(n, 6)
        assert all(a >= b for a, b in zip(values, values[1:]))
