"""SlabBackend conformance: indistinguishable from InMemoryBackend.

The slab packs fixed-size blocks into one contiguous buffer with a
presence bitmap and a variable-size spill path; none of that machinery
may be observable through the :class:`~repro.storage.backends
.StorageBackend` contract.  We drive both backends through randomized
read/write/load interleavings — including never-written slots, empty
blocks, mixed block sizes and batched rounds — and require identical
observations at every step.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.backends import InMemoryBackend, SlabBackend

CAPACITY = 8

slots = st.integers(min_value=0, max_value=CAPACITY - 1)
fixed_blocks = st.binary(min_size=16, max_size=16)
any_blocks = st.one_of(
    st.binary(min_size=16, max_size=16),   # slab-resident size
    st.binary(min_size=0, max_size=4),     # spill path
    st.binary(min_size=17, max_size=40),   # spill path
)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("read"), slots),
        st.tuples(st.just("write"), st.tuples(slots, any_blocks)),
        st.tuples(
            st.just("read_slots"),
            st.lists(slots, max_size=CAPACITY),
        ),
        st.tuples(
            st.just("write_slots"),
            st.lists(st.tuples(slots, any_blocks), max_size=CAPACITY),
        ),
        st.tuples(
            st.just("load"),
            st.lists(any_blocks, min_size=CAPACITY, max_size=CAPACITY),
        ),
        st.tuples(st.just("peek"), slots),
    ),
    max_size=30,
)


class TestSlabConformance:
    @given(ops=operations)
    @settings(max_examples=120)
    def test_interleavings_match_in_memory_backend(self, ops):
        slab = SlabBackend(CAPACITY)
        reference = InMemoryBackend(CAPACITY)
        for kind, argument in ops:
            if kind == "read":
                assert slab.read_slot(argument) == reference.read_slot(
                    argument
                )
            elif kind == "write":
                index, block = argument
                slab.write_slot(index, block)
                reference.write_slot(index, block)
            elif kind == "read_slots":
                assert slab.read_slots(argument) == reference.read_slots(
                    argument
                )
            elif kind == "write_slots":
                slab.write_slots(argument)
                reference.write_slots(argument)
            elif kind == "load":
                slab.load(argument)
                reference.load(argument)
            else:
                assert slab.peek_slot(argument) == reference.peek_slot(
                    argument
                )
        # Final sweep: every slot agrees, absent slots included.
        indices = list(range(CAPACITY))
        assert slab.read_slots(indices) == reference.read_slots(indices)

    @given(
        blocks=st.lists(
            fixed_blocks, min_size=CAPACITY, max_size=CAPACITY
        ),
        reads=st.lists(slots, max_size=16),
    )
    @settings(max_examples=60)
    def test_fully_loaded_fast_path_matches(self, blocks, reads):
        # With every slot present and uniform sizes the slab serves the
        # contiguous fast path; outputs must still match the list backend.
        slab = SlabBackend(CAPACITY)
        reference = InMemoryBackend(CAPACITY)
        slab.load(blocks)
        reference.load(blocks)
        assert slab.spilled_slots == 0
        assert slab.read_slots(reads) == reference.read_slots(reads)
