"""Property-based tests for the extension modules."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.ledger import PrivacyLedger
from repro.core.batch_ir import BatchDPIR
from repro.crypto.encryption import (
    IntegrityError,
    decrypt_authenticated,
    encrypt_authenticated,
    generate_key,
)
from repro.crypto.rng import SeededRandomSource
from repro.baselines.recursive_oram import RecursivePathORAM
from repro.storage.blocks import encode_int, integer_database
from repro.storage.network import NetworkModel
from repro.workloads.replay import load_trace, save_trace
from repro.workloads.trace import Operation, Trace

import pytest


class TestAuthenticatedEncryptionProperties:
    @given(seed=st.integers(0, 2**63), payload=st.binary(max_size=256))
    @settings(max_examples=60)
    def test_roundtrip(self, seed, payload):
        rng = SeededRandomSource(seed)
        key = generate_key(rng)
        assert decrypt_authenticated(
            key, encrypt_authenticated(key, payload, rng)
        ) == payload

    @given(
        seed=st.integers(0, 2**63),
        payload=st.binary(min_size=1, max_size=128),
        position=st.integers(min_value=0),
        bit=st.integers(0, 7),
    )
    @settings(max_examples=60)
    def test_any_single_bit_flip_detected(self, seed, payload, position, bit):
        rng = SeededRandomSource(seed)
        key = generate_key(rng)
        sealed = bytearray(encrypt_authenticated(key, payload, rng))
        position %= len(sealed)
        sealed[position] ^= 1 << bit
        with pytest.raises(IntegrityError):
            decrypt_authenticated(key, bytes(sealed))


class TestBatchDpirProperties:
    @given(
        seed=st.integers(0, 2**32),
        batch=st.lists(st.integers(0, 31), min_size=1, max_size=10),
        pad=st.integers(1, 16),
    )
    @settings(max_examples=40, deadline=None)
    def test_batch_answers_correct_or_none(self, seed, batch, pad):
        rng = SeededRandomSource(seed)
        db = integer_database(32)
        scheme = BatchDPIR(db, pad_size=pad, alpha=0.2, rng=rng)
        answers = scheme.query_batch(batch)
        for index, answer in zip(batch, answers):
            assert answer is None or answer == db[index]

    @given(
        seed=st.integers(0, 2**32),
        batch=st.lists(st.integers(0, 31), min_size=1, max_size=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_union_cost_bounded(self, seed, batch):
        rng = SeededRandomSource(seed)
        scheme = BatchDPIR(integer_database(32), pad_size=4, alpha=0.2,
                           rng=rng)
        before = scheme.server.reads
        scheme.query_batch(batch)
        cost = scheme.server.reads - before
        assert cost <= min(32, len(batch) * 4)
        assert cost >= 4  # at least one full pad set


class TestLedgerProperties:
    @given(charges=st.lists(st.floats(0.0, 5.0), max_size=30))
    @settings(max_examples=60)
    def test_totals_are_sums(self, charges):
        ledger = PrivacyLedger()
        for epsilon in charges:
            ledger.charge(epsilon)
        assert ledger.epsilon_spent == pytest.approx(sum(charges))
        assert ledger.queries == len(charges)

    @given(
        cap=st.floats(0.5, 20.0),
        charges=st.lists(st.floats(0.01, 3.0), min_size=1, max_size=40),
    )
    @settings(max_examples=60)
    def test_cap_never_exceeded(self, cap, charges):
        from repro.analysis.ledger import BudgetExceededError

        ledger = PrivacyLedger(epsilon_cap=cap)
        for epsilon in charges:
            try:
                ledger.charge(epsilon)
            except BudgetExceededError:
                pass
        assert ledger.epsilon_spent <= cap + 1e-9


class TestNetworkProperties:
    @given(
        rtt=st.floats(0.0, 1000.0),
        bandwidth=st.floats(0.1, 10_000.0),
        roundtrips=st.integers(0, 100),
        blocks=st.floats(0, 10_000),
        block_bytes=st.integers(1, 1 << 16),
    )
    @settings(max_examples=80)
    def test_monotone_in_all_arguments(
        self, rtt, bandwidth, roundtrips, blocks, block_bytes
    ):
        link = NetworkModel(rtt_ms=rtt, bandwidth_mbps=bandwidth)
        base = link.response_time_ms(roundtrips, blocks, block_bytes)
        assert base >= 0
        assert link.response_time_ms(roundtrips + 1, blocks,
                                     block_bytes) >= base
        assert link.response_time_ms(roundtrips, blocks + 1,
                                     block_bytes) >= base


class TestReplayProperties:
    @given(
        data=st.lists(
            st.tuples(st.booleans(), st.integers(0, 15),
                      st.integers(0, 10**6)),
            max_size=25,
        )
    )
    @settings(max_examples=40)
    def test_roundtrip_arbitrary_traces(self, data, tmp_path_factory):
        operations = []
        for is_write, index, payload in data:
            if is_write:
                operations.append(Operation.write(index, encode_int(payload)))
            else:
                operations.append(Operation.read(index))
        trace = Trace(operations, universe=16, name="prop")
        path = tmp_path_factory.mktemp("replay") / "trace.jsonl"
        save_trace(trace, path)
        assert load_trace(path).operations == operations


class TestRecursiveOramProperties:
    @given(
        seed=st.integers(0, 2**32),
        ops=st.lists(
            st.tuples(st.booleans(), st.integers(0, 63),
                      st.integers(0, 10**6)),
            max_size=15,
        ),
    )
    @settings(max_examples=15, deadline=None)
    def test_matches_dict_model(self, seed, ops):
        rng = SeededRandomSource(seed)
        oram = RecursivePathORAM(integer_database(64), positions_per_block=4,
                                 client_map_limit=8, rng=rng)
        model = {i: encode_int(i) for i in range(64)}
        for is_write, index, payload in ops:
            if is_write:
                value = encode_int(payload)
                oram.write(index, value)
                model[index] = value
            else:
                assert oram.read(index) == model[index]
