"""Property tests for the batched hot path.

Three families:

* ``read_many`` / ``write_many`` are observationally equivalent to the
  per-slot loop — identical blocks, counters and transcript event
  sequences — including under fault injection (``FlakyServer``
  mid-batch leaves exactly the per-slot prefix behind).
* ``sample_distinct`` draws uniform distinct subsets: exact size, exact
  range, distinctness, a chi-square smoke over all subsets, and the
  hole-shifted pad-set construction preserves the real index.
* ``DPIR`` under ``batched=True`` and ``batched=False`` is the same
  scheme at the same seed — answers, counters and per-query transcript
  multisets all agree.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dp_ir import DPIR
from repro.core.sampling import draw_pad_set
from repro.crypto.rng import SeededRandomSource
from repro.storage.blocks import integer_database
from repro.storage.errors import StorageError
from repro.storage.faults import FlakyServer, ServerFault
from repro.storage.server import StorageServer
from repro.storage.transcript import Transcript

seeds = st.integers(min_value=0, max_value=2**32)


def _loaded_server(n: int) -> StorageServer:
    server = StorageServer(n)
    server.load(integer_database(n))
    return server


class TestReadManyEquivalence:
    @given(
        seed=seeds,
        indices=st.lists(
            st.integers(min_value=0, max_value=31), min_size=0, max_size=48
        ),
    )
    @settings(max_examples=60)
    def test_matches_per_slot_loop(self, seed, indices):
        del seed  # reads draw no randomness; kept for shrinking variety
        loop_server = _loaded_server(32)
        batch_server = _loaded_server(32)
        loop_log, batch_log = Transcript(), Transcript()
        loop_server.attach_transcript(loop_log)
        batch_server.attach_transcript(batch_log)
        loop_server.begin_query(7)
        batch_server.begin_query(7)

        loop_blocks = [loop_server.read(index) for index in indices]
        batch_blocks = batch_server.read_many(indices)

        assert loop_blocks == batch_blocks
        assert loop_server.reads == batch_server.reads == len(indices)
        assert loop_log.signature() == batch_log.signature()

    @given(
        items=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=15),
                st.binary(min_size=4, max_size=4),
            ),
            min_size=0,
            max_size=24,
        )
    )
    @settings(max_examples=60)
    def test_write_many_matches_per_slot_loop(self, items):
        loop_server = _loaded_server(16)
        batch_server = _loaded_server(16)
        loop_log, batch_log = Transcript(), Transcript()
        loop_server.attach_transcript(loop_log)
        batch_server.attach_transcript(batch_log)

        for index, block in items:
            loop_server.write(index, block)
        batch_server.write_many(items)

        assert loop_server.writes == batch_server.writes == len(items)
        assert loop_log.signature() == batch_log.signature()
        for slot in range(16):
            assert loop_server.peek(slot) == batch_server.peek(slot)

    def test_out_of_range_fails_before_side_effects(self):
        server = _loaded_server(8)
        log = Transcript()
        server.attach_transcript(log)
        with pytest.raises(StorageError):
            server.read_many([0, 1, 99])
        # Fail-fast: no counters bumped, no events recorded.
        assert server.reads == 0
        assert len(log) == 0

    def test_unwritten_slot_fails_before_side_effects(self):
        server = StorageServer(4)
        server.write(0, b"x")
        with pytest.raises(StorageError):
            server.read_many([0, 1])
        assert server.reads == 0

    def test_empty_batch_is_free(self):
        server = _loaded_server(4)
        assert server.read_many([]) == []
        server.write_many([])
        assert server.operations == 0


class TestFaultInjectionEquivalence:
    @given(seed=seeds)
    @settings(max_examples=40)
    def test_flaky_mid_batch_matches_per_slot_loop(self, seed):
        indices = list(range(16))
        outcomes = []
        for mode in ("loop", "batch"):
            server = _loaded_server(16)
            log = Transcript()
            server.attach_transcript(log)
            flaky = FlakyServer(server, 0.3, SeededRandomSource(seed))
            served = None
            fault = None
            try:
                if mode == "loop":
                    served = [flaky.read(index) for index in indices]
                else:
                    served = flaky.read_many(indices)
            except ServerFault as exc:
                fault = str(exc)
            outcomes.append(
                (served, fault, server.reads, flaky.fault_counters(),
                 log.signature())
            )
        # Same answers (or the same fault at the same slot), the same
        # inner counter state, fault tally and transcript prefix.
        assert outcomes[0] == outcomes[1]

    def test_read_many_does_not_bypass_the_fault_layer(self):
        # A rate-1.0 flaky server must fail the very first batched slot;
        # if __getattr__ routed read_many to the inner server it would
        # silently succeed.
        server = _loaded_server(8)
        flaky = FlakyServer(server, 1.0, SeededRandomSource(0))
        with pytest.raises(ServerFault):
            flaky.read_many([0, 1, 2])
        assert flaky.failures == 1
        assert server.reads == 0


class TestSampleDistinct:
    @given(
        seed=seeds,
        universe=st.integers(min_value=1, max_value=200),
        data=st.data(),
    )
    @settings(max_examples=80)
    def test_exact_size_range_distinct(self, seed, universe, data):
        count = data.draw(st.integers(min_value=0, max_value=universe))
        picked = SeededRandomSource(seed).sample_distinct(universe, count)
        assert len(picked) == count
        assert len(set(picked)) == count
        assert all(0 <= value < universe for value in picked)

    def test_full_universe_is_a_permutation(self):
        picked = SeededRandomSource(3).sample_distinct(10, 10)
        assert sorted(picked) == list(range(10))

    def test_rejects_bad_counts(self):
        source = SeededRandomSource(4)
        with pytest.raises(ValueError):
            source.sample_distinct(5, 6)
        with pytest.raises(ValueError):
            source.sample_distinct(5, -1)

    def test_chi_square_uniform_over_subsets(self):
        # All C(6, 2) = 15 subsets of a 6-element universe should be
        # equally likely; a chi-square smoke with a generous bound
        # (p ~ 1e-4 has chi2 ~ 40 at 14 dof).
        source = SeededRandomSource(0x5A17)
        trials = 6000
        counts: dict[frozenset, int] = {}
        for _ in range(trials):
            subset = frozenset(source.sample_distinct(6, 2))
            counts[subset] = counts.get(subset, 0) + 1
        assert len(counts) == 15
        expected = trials / 15
        chi2 = sum(
            (observed - expected) ** 2 / expected
            for observed in counts.values()
        )
        assert chi2 < 40.0

    def test_inclusion_rate_is_k_over_n(self):
        source = SeededRandomSource(0xFACE)
        trials = 4000
        hits = sum(
            1 for _ in range(trials) if 7 in source.sample_distinct(20, 5)
        )
        assert abs(hits / trials - 5 / 20) < 0.03


class TestDrawPadSet:
    @given(seed=seeds, index=st.integers(min_value=0, max_value=63))
    @settings(max_examples=80)
    def test_shape(self, seed, index):
        pad, include_real = draw_pad_set(
            SeededRandomSource(seed), 64, 8, 0.2, index
        )
        assert len(pad) == 8
        assert len(set(pad)) == 8
        assert all(0 <= value < 64 for value in pad)
        if include_real:
            assert pad[0] == index

    def test_error_branch_rate(self):
        rng = SeededRandomSource(0xA1FA)
        trials = 3000
        errors = sum(
            1
            for _ in range(trials)
            if not draw_pad_set(rng, 32, 4, 0.25, 0)[1]
        )
        assert 0.21 < errors / trials < 0.29


class TestDPIRModeEquivalence:
    @given(seed=seeds)
    @settings(max_examples=25)
    def test_batched_and_per_slot_are_the_same_scheme(self, seed):
        n = 64
        blocks = integer_database(n)
        workload = SeededRandomSource(seed ^ 0xBEEF)
        indices = [workload.randbelow(n) for _ in range(30)]
        witnesses = []
        for batched in (False, True):
            scheme = DPIR(
                blocks,
                epsilon=math.log(n),
                alpha=0.2,
                rng=SeededRandomSource(seed),
                batched=batched,
            )
            log = Transcript()
            scheme.attach_transcript(log)
            answers = [scheme.query(index) for index in indices]
            witnesses.append(
                (answers, scheme.server.reads, scheme.error_count,
                 log.signature())
            )
        assert witnesses[0] == witnesses[1]
