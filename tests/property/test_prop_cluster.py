"""Property-based tests for the cluster layer.

The headline invariant: for any shard/replica geometry, placement and
reshard target, every logical index retrieves its own block — before
the migration, after it, and with a dead replica in every group.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.router import HashRouter, RangeRouter
from repro.cluster.scheme import ClusterIR
from repro.crypto.rng import SeededRandomSource
from repro.storage.blocks import integer_database


def _read(ir, index):
    """Retry the α coin; the pad draw is fresh per attempt."""
    for _ in range(64):
        answer = ir.query(index)
        if answer is not None:
            return answer
    raise AssertionError(f"index {index} never answered")


class TestClusterRetrievalProperties:
    @settings(max_examples=12, deadline=None)
    @given(
        n=st.integers(8, 48),
        shards=st.integers(1, 4),
        new_shards=st.integers(1, 4),
        placement=st.sampled_from(["range", "hash"]),
        kill_first_replica=st.booleans(),
        seed=st.integers(0, 2**16),
    )
    def test_every_index_retrieves_across_reshard_and_failure(
        self, n, shards, new_shards, placement, kill_first_replica, seed
    ):
        shards = min(shards, n)
        new_shards = min(new_shards, n)
        blocks = integer_database(n)
        ir = ClusterIR(
            blocks,
            shard_count=shards,
            replica_count=2,
            placement=placement,
            pad_size=min(4, n),
            alpha=0.05,
            failure_rate=(1.0, 0.0) if kill_first_replica else 0.0,
            rng=SeededRandomSource(seed),
        )
        for index in range(n):
            assert _read(ir, index) == blocks[index]
        ir.reshard(new_shards)
        assert ir.shard_count == new_shards
        for index in range(n):
            assert _read(ir, index) == blocks[index]

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(2, 256),
        shards=st.integers(1, 8),
        loads=st.lists(st.floats(0.0, 1000.0), min_size=1, max_size=8),
    )
    def test_range_rebalance_is_a_partition(self, n, shards, loads):
        shards = min(shards, n)
        router = RangeRouter(n, shards)
        rebalanced = router.rebalanced((loads * shards)[:shards])
        owned = rebalanced.assignment()
        flattened = [index for shard in owned for index in shard]
        assert sorted(flattened) == list(range(n))
        assert all(shard for shard in owned)    # every shard non-empty

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(2, 256), shards=st.integers(1, 8))
    def test_hash_router_is_a_partition(self, n, shards):
        shards = min(shards, n)
        router = HashRouter(n, shards)
        owned = router.assignment()
        flattened = [index for shard in owned for index in shard]
        assert sorted(flattened) == list(range(n))
