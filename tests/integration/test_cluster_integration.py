"""Integration: the cluster layer end to end.

Retrieval correctness across reshard/rebalance and replica failure, the
serving simulator driving a cluster through the batch scheduler, fault
counts surfacing in reports, and the cluster CLI.
"""

import json

import pytest

import repro
from repro.__main__ import main
from repro.cluster import ClusterIR, ClusterKVS
from repro.storage.blocks import integer_database

N = 64


def _assert_all_retrievable(ir, blocks, label=""):
    """Every index answers correctly (α events excepted, and re-tried)."""
    for index in range(len(blocks)):
        answer = None
        for _ in range(50):
            answer = ir.query(index)
            if answer is not None:
                break
        assert answer == blocks[index], f"{label} index {index}"


class TestRetrievalPreserved:
    @pytest.mark.parametrize("base", ["dp_ir", "batch_dp_ir"])
    def test_before_and_after_reshard(self, rng, base):
        blocks = integer_database(N)
        ir = ClusterIR(blocks, base=base, shard_count=2, replica_count=2,
                       pad_size=8, alpha=0.05, rng=rng.spawn(base))
        _assert_all_retrievable(ir, blocks, "before")
        migration = ir.reshard(4)
        assert migration.shards_before == 2
        assert migration.shards_after == 4
        assert migration.migration_operations > 0
        assert ir.shard_count == 4
        _assert_all_retrievable(ir, blocks, "after reshard")

    def test_reshard_to_hash_placement(self, rng):
        blocks = integer_database(N)
        ir = ClusterIR(blocks, shard_count=2, replica_count=1,
                       pad_size=8, rng=rng.spawn("c"))
        ir.reshard(4, placement="hash")
        assert ir.router.policy == "hash"
        _assert_all_retrievable(ir, blocks, "hash placement")

    def test_under_replica_failure(self, rng):
        # Replica 0 of every group is dead; reads fail over to replica 1
        # and every index still retrieves correctly.
        blocks = integer_database(N)
        ir = ClusterIR(blocks, shard_count=2, replica_count=2,
                       pad_size=8, alpha=0.05,
                       failure_rate=(1.0, 0.0), rng=rng.spawn("c"))
        _assert_all_retrievable(ir, blocks, "replica failure")
        counters = ir.fault_counters()
        assert counters["failovers"] > 0

    def test_reshard_works_over_a_dead_replica(self, rng):
        blocks = integer_database(N)
        ir = ClusterIR(blocks, shard_count=2, replica_count=2,
                       pad_size=8, failure_rate=(1.0, 0.0),
                       rng=rng.spawn("c"))
        ir.reshard(4)
        _assert_all_retrievable(ir, blocks, "reshard over failure")

    def test_corruption_detected_and_survived(self, rng):
        # A tampering replica behind authenticated storage: detected,
        # failed over, every answer still exact.
        blocks = integer_database(N)
        ir = ClusterIR(blocks, shard_count=2, replica_count=2,
                       pad_size=8, corruption_rate=(1.0, 0.0),
                       authenticated=True, rng=rng.spawn("c"))
        _assert_all_retrievable(ir, blocks, "corruption")
        assert ir.fault_counters()["detected_corruptions"] > 0

    def test_silent_corruption_without_authentication(self, rng):
        # The contrast: plain storage garbles silently (no exception,
        # wrong bytes) — exactly the gap authenticated mode closes.
        blocks = integer_database(16)
        ir = ClusterIR(blocks, shard_count=1, replica_count=1,
                       pad_size=4, alpha=0.01, corruption_rate=1.0,
                       authenticated=False, rng=rng.spawn("c"))
        wrong = 0
        for index in range(16):
            answer = ir.query(index)
            if answer is not None and answer != blocks[index]:
                wrong += 1
        assert wrong > 0
        assert ir.fault_counters().get("detected_corruptions", 0) == 0

    def test_kvs_reshard_preserves_every_key(self, rng):
        kvs = ClusterKVS(64, shard_count=2, replica_count=2,
                         value_size=8, rng=rng.spawn("kvs"))
        items = {f"key-{i}".encode(): bytes([i]) * 3 for i in range(24)}
        for key, value in items.items():
            kvs.put(key, value)
        migration = kvs.reshard(4)
        assert kvs.shard_count == 4
        assert migration.migration_operations > 0
        for key, value in items.items():
            assert kvs.get(key) == value, key
        assert kvs.get(b"missing") is None

    def test_kvs_survives_replica_death(self, rng):
        kvs = ClusterKVS(64, shard_count=2, replica_count=2,
                         value_size=8, failure_rate=(1.0, 0.0),
                         rng=rng.spawn("kvs"))
        items = {f"key-{i}".encode(): bytes([i]) for i in range(12)}
        for key, value in items.items():
            kvs.put(key, value)
        for key, value in items.items():
            assert kvs.get(key) == value
        assert kvs.fault_counters()["dead_replicas"] > 0


class TestRebalance:
    def test_hotspot_load_evens_out(self, rng):
        # Drive a hot range, rebalance, drive it again: the hot range is
        # spread over more shards so the Jain index improves.
        blocks = integer_database(128)
        ir = ClusterIR(blocks, shard_count=4, replica_count=1,
                       pad_size=8, alpha=0.05, rng=rng.spawn("c"))
        hot = rng.spawn("hot")
        for _ in range(120):
            ir.query(hot.randbelow(16))     # all load on shard 0's range
        before = ir.load_balance_index()
        migration = ir.rebalance()
        assert migration.shards_after == 4
        for _ in range(120):
            ir.query(hot.randbelow(16))
        after = ir.load_balance_index()
        assert after > before
        # The hot prefix is now split across several shards.
        assert ir.router.boundaries[1] < 16

    def test_rebalance_requires_range_placement(self, rng):
        ir = ClusterIR(integer_database(32), shard_count=2,
                       replica_count=1, pad_size=4, placement="hash",
                       rng=rng.spawn("c"))
        with pytest.raises(ValueError, match="range placement"):
            ir.rebalance()


class TestServingIntegration:
    def test_cluster_behind_batch_scheduler_compounds(self):
        # Sharding cuts the pad to K/D; batching through query_many
        # additionally coalesces per-shard pad unions.  The cluster of
        # BatchDPIR bases must beat its own FIFO dispatch.
        fifo = repro.serve("cluster_batch_dp_ir", clients=6,
                           requests_per_client=8, scheduler="fifo",
                           n=256, seed=11, rate_rps=200.0)
        batch = repro.serve("cluster_batch_dp_ir", clients=6,
                            requests_per_client=8, scheduler="batch",
                            n=256, seed=11, rate_rps=200.0)
        assert fifo.completed == fifo.requests
        assert batch.completed == batch.requests
        assert batch.ops_per_request < fifo.ops_per_request

    def test_serving_report_surfaces_cluster_faults(self, rng):
        from repro.serving import (
            BatchScheduler,
            ClientSession,
            ServingSimulator,
        )
        from repro.serving.load import OpenLoopLoad
        from repro.workloads import catalogue

        ir = ClusterIR(integer_database(64), shard_count=2,
                       replica_count=2, pad_size=8,
                       failure_rate=(1.0, 0.0), rng=rng.spawn("c"))
        sessions = []
        for client in range(3):
            trace = catalogue.index_trace(
                "uniform", 64, 8, rng.spawn(f"t{client}"),
                write_fraction=0.0,
            )
            plan = OpenLoopLoad(100.0).plan(
                len(trace.operations), rng.spawn(f"a{client}")
            )
            sessions.append(
                ClientSession(f"tenant-{client}", trace.operations, plan)
            )
        report = ServingSimulator(
            ir, sessions, BatchScheduler(window_ms=2.0, max_batch=8)
        ).run()
        assert report.completed == report.requests
        assert report.faults.get("failovers", 0) > 0
        assert report.faults.get("failed_operations", 0) > 0
        assert "faults" in report.to_dict()
        assert "failovers" in report.to_text()

    def test_harness_metrics_surface_faults(self, rng):
        from repro.simulation.harness import run_trace
        from repro.workloads import catalogue

        ir = ClusterIR(integer_database(32), shard_count=2,
                       replica_count=2, pad_size=4,
                       failure_rate=(1.0, 0.0), rng=rng.spawn("c"))
        trace = catalogue.index_trace(
            "uniform", 32, 16, rng.spawn("t"), write_fraction=0.0,
        )
        metrics = run_trace(ir, trace, expected=integer_database(32))
        assert metrics.mismatches == 0
        assert metrics.fault_counters.get("failovers", 0) > 0


class TestClusterCLI:
    def test_smoke(self, capsys):
        assert main(["cluster", "--shards", "4", "--replicas", "2",
                     "--n", "128", "--requests", "32", "--seed", "7"]) == 0
        output = capsys.readouterr().out
        assert "shard groups" in output
        assert "Per-shard load" in output
        assert "latency p99.9 ms" in output

    def test_json_output(self, capsys):
        assert main(["cluster", "--shards", "4", "--replicas", "2",
                     "--n", "128", "--requests", "32", "--seed", "7",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["shards"] == 4
        assert payload["replicas"] == 2
        assert payload["completed"] == 32
        assert payload["mismatches"] == 0
        assert "p999" in payload["latency_ms"]
        assert payload["budget"]["per_query_epsilon"] > 0

    def test_kvs_base(self, capsys):
        assert main(["cluster", "--scheme", "dp_kvs", "--shards", "2",
                     "--replicas", "2", "--n", "64", "--requests", "24",
                     "--workload", "ycsb-b", "--seed", "7"]) == 0
        output = capsys.readouterr().out
        assert "ClusterKVS" in output

    def test_flaky_run_completes(self, capsys):
        assert main(["cluster", "--shards", "2", "--replicas", "2",
                     "--n", "64", "--requests", "24", "--seed", "7",
                     "--failure-rate", "0.1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["completed"] == 24
        assert payload["mismatches"] == 0
        assert payload["faults"].get("failed_operations", 0) > 0

    def test_list_shows_aliases(self, capsys):
        assert main(["cluster", "--list"]) == 0
        output = capsys.readouterr().out
        assert "cluster_dp_ir" in output
        assert "cluster_dpir" in output
        assert "dp_ram" not in output    # RAM bases are not clusterable

    def test_ram_base_rejected(self, capsys):
        assert main(["cluster", "--scheme", "dp_ram", "--n", "64",
                     "--requests", "8", "--seed", "1"]) == 2
        assert "IR or KVS" in capsys.readouterr().err

    def test_unknown_scheme_reports_catalogue(self, capsys):
        assert main(["cluster", "--scheme", "warp_drive"]) == 2
        assert "registered schemes" in capsys.readouterr().err

    def test_hyphenated_alias(self, capsys):
        assert main(["cluster", "--scheme", "batch-dpir", "--shards", "2",
                     "--n", "64", "--requests", "16", "--seed", "7"]) == 0
        assert "batch_dp_ir" in capsys.readouterr().out
