"""Integration: the parallel layer threaded through cluster + serving.

Covers the fault-injection acceptance scenario — a ``FlakyServer``
raising mid-fan-out triggers per-leg replica failover without poisoning
sibling legs, with ``fault_counters()`` totals matching the serial path
— plus the wall-clock-versus-serial accounting surfaced end to end
(cluster runs, serving reports, reshard migrations).
"""

import pytest

from repro.cluster import cluster as cluster_pkg
from repro.cluster.group import GroupExhaustedError
from repro.cluster.scheme import ClusterIR
from repro.crypto.rng import SeededRandomSource
from repro.serving import serve
from repro.storage.blocks import integer_database
from repro.storage.faults import FlakyServer, wrap_scheme_servers

cluster = cluster_pkg  # the callable subpackage


class TestFaultInjectionUnderParallelExecutor:
    def _build(self, executor, seed=21):
        return ClusterIR(
            integer_database(128),
            shard_count=4,
            replica_count=2,
            pad_size=16,
            alpha=0.05,
            failure_rate=(0.3, 0.0),
            rng=SeededRandomSource(seed),
            executor=executor,
        )

    def test_flaky_leg_fails_over_without_poisoning_siblings(self):
        instance = self._build("parallel")
        answers = instance.query_many(list(range(128)))
        blocks = integer_database(128)
        # Every answered index is correct; the flaky replica forced
        # failovers but never corrupted or lost a sibling leg's answer.
        answered = 0
        for index, answer in enumerate(answers):
            if answer is not None:
                assert answer == blocks[index]
                answered += 1
        assert answered > 0
        assert instance.fault_counters().get("failovers", 0) > 0

    def test_fault_counter_totals_match_the_serial_path(self):
        serial = self._build("serial")
        parallel = self._build("parallel")
        assert serial.query_many(list(range(128))) == parallel.query_many(
            list(range(128))
        )
        assert serial.fault_counters() == parallel.fault_counters()
        assert (
            serial.ledger.report().worst_shard_epsilon
            == parallel.ledger.report().worst_shard_epsilon
        )

    def test_exhausted_shard_does_not_poison_healthy_legs(self):
        instance = ClusterIR(
            integer_database(64),
            shard_count=2,
            replica_count=1,
            pad_size=8,
            max_attempts=2,
            rng=SeededRandomSource(5),
            executor="parallel",
        )
        # Kill every replica of shard 0 only: its legs exhaust while
        # shard 1 keeps serving.
        dead_group = instance.groups[0]
        for replica in dead_group.replicas:
            wrap_scheme_servers(
                replica,
                lambda server: FlakyServer(
                    server, 1.0, SeededRandomSource(7).spawn("kill")
                ),
            )
        healthy_before = instance.groups[1].draws
        with pytest.raises(GroupExhaustedError):
            instance.query_many(list(range(64)))
        # The healthy shard's leg completed and was charged.
        assert instance.groups[1].draws > healthy_before
        healthy_indices = [
            index for index in range(64)
            if instance.router.shard_of(index) == 1
        ]
        answers = instance.query_many(healthy_indices)
        assert len(answers) == len(healthy_indices)


class TestWallClockAccountingEndToEnd:
    def test_cluster_run_overlaps_at_four_shards(self):
        reports = {
            executor: cluster(
                "dp_ir", shards=4, replicas=1, n=256, pad_size=32,
                requests=32, seed=11, executor=executor, batch=8,
            )
            for executor in ("serial", "parallel")
        }
        serial, parallel = reports["serial"], reports["parallel"]
        assert parallel.wall_clock_ms < serial.wall_clock_ms
        assert parallel.serial_ms == pytest.approx(serial.serial_ms)
        assert parallel.overlap_speedup > 1.0
        assert serial.overlap_speedup == pytest.approx(1.0)
        # Executor-invariant witnesses.
        assert parallel.ops_per_request == serial.ops_per_request
        assert (
            parallel.budget.worst_shard_epsilon
            == serial.budget.worst_shard_epsilon
        )
        assert parallel.latency.p95_ms < serial.latency.p95_ms

    def test_cluster_report_surfaces_executor_fields(self):
        report = cluster(
            "dp_ir", shards=2, replicas=1, n=64, pad_size=8,
            requests=8, seed=3, executor="simulated", batch=4,
        )
        assert report.executor == "simulated"
        assert report.batch == 4
        payload = report.to_dict()
        assert payload["executor"] == "simulated"
        assert payload["wall_clock_ms"] <= payload["serial_ms"]
        assert "overlap speedup" in report.to_text()

    def test_serving_report_shows_overlap_for_cluster_schemes(self):
        reports = {
            executor: serve(
                "cluster_dp_ir",
                clients=4,
                requests_per_client=8,
                n=256,
                seed=13,
                scheduler="batch",
                shard_count=4,
                replica_count=1,
                pad_size=32,
                executor=executor,
            )
            for executor in ("serial", "parallel")
        }
        serial, parallel = reports["serial"], reports["parallel"]
        assert parallel.wall_clock_ms < parallel.serial_ms
        assert serial.wall_clock_ms == pytest.approx(serial.serial_ms)
        assert parallel.overlap_speedup > 1.0
        # Overlapped service time shortens the simulated makespan, so
        # throughput rises while the work done stays identical.
        assert parallel.server_operations == serial.server_operations
        assert parallel.throughput_rps > serial.throughput_rps
        payload = parallel.to_dict()
        assert payload["wall_clock_ms"] < payload["serial_ms"]

    def test_serve_rejects_executor_for_fanout_free_schemes(self):
        with pytest.raises(ValueError, match="no fan-out"):
            serve("dp_ir", clients=2, requests_per_client=2, n=64,
                  seed=1, executor="parallel")

    def test_migration_reports_overlapped_drain(self):
        instance = ClusterIR(
            integer_database(128),
            shard_count=4,
            replica_count=1,
            pad_size=16,
            rng=SeededRandomSource(17),
            executor="parallel",
        )
        report = instance.reshard(2)
        assert report.migration_operations > 0
        assert 0.0 < report.wall_clock_ms < report.serial_ms
        serial_instance = ClusterIR(
            integer_database(128),
            shard_count=4,
            replica_count=1,
            pad_size=16,
            rng=SeededRandomSource(17),
            executor="serial",
        )
        serial_report = serial_instance.reshard(2)
        assert serial_report.wall_clock_ms == pytest.approx(
            serial_report.serial_ms
        )
        assert serial_report.migration_operations == \
            report.migration_operations
