"""End-to-end serving runs: the CLI path and the batching payoff.

Covers the acceptance criteria for the serving subsystem: the
``python -m repro serve`` subcommand runs a concurrent workload end to
end and prints tail percentiles, and the batching scheduler issues
measurably fewer server operations per request than per-request FIFO
dispatch on ``BatchDPIR``.
"""

import json

import pytest

from repro.__main__ import main
from repro.serving import serve


class TestBatchingBeatsFIFO:
    @pytest.fixture(scope="class")
    def reports(self):
        common = dict(clients=8, requests_per_client=12, n=256, seed=7,
                      rate_rps=150.0, workload="uniform", network="lan")
        return {
            scheduler: serve("batch_dp_ir", scheduler=scheduler, **common)
            for scheduler in ("fifo", "batch")
        }

    def test_measurably_fewer_ops_per_request(self, reports):
        fifo, batch = reports["fifo"], reports["batch"]
        assert fifo.completed == batch.completed == 96
        # FIFO pays the full pad set per request; the batcher downloads
        # pad-set unions, so collisions shave off a measurable share.
        assert batch.ops_per_request < 0.9 * fifo.ops_per_request

    def test_batching_improves_tails_under_load(self, reports):
        fifo, batch = reports["fifo"], reports["batch"]
        assert batch.latency.p95_ms < fifo.latency.p95_ms
        assert batch.throughput_rps > fifo.throughput_rps

    def test_groups_actually_formed(self, reports):
        assert reports["batch"].mean_batch_size > 2.0
        assert reports["fifo"].mean_batch_size == pytest.approx(1.0)


class TestServeCLI:
    def test_end_to_end_prints_throughput_and_tails(self, capsys):
        assert main(["serve", "--scheme", "batch-dpir", "--clients", "8",
                     "--requests", "8", "--n", "256", "--seed", "7"]) == 0
        output = capsys.readouterr().out
        assert "throughput req/s" in output
        assert "latency p50 ms" in output
        assert "latency p95 ms" in output
        assert "latency p99 ms" in output
        assert "Per-tenant isolation" in output

    def test_json_report_round_trips(self, capsys):
        assert main(["serve", "--scheme", "batch-dpir", "--clients", "4",
                     "--requests", "6", "--n", "128", "--seed", "3",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scheme"] == "batch_dp_ir"
        assert payload["completed"] == 24
        assert {"p50", "p95", "p99"} <= set(payload["latency_ms"])

    def test_closed_loop_ram_workload(self, capsys):
        assert main(["serve", "--scheme", "dp_ram", "--clients", "4",
                     "--requests", "5", "--n", "64", "--seed", "5",
                     "--load", "closed", "--workload", "readwrite"]) == 0
        assert "dp_ram" in capsys.readouterr().out

    def test_scheduler_comparison_visible_from_cli(self, capsys):
        args = ["serve", "--scheme", "batch-dpir", "--clients", "8",
                "--requests", "8", "--n", "256", "--seed", "7", "--json"]
        assert main(args + ["--scheduler", "fifo"]) == 0
        fifo = json.loads(capsys.readouterr().out)
        assert main(args + ["--scheduler", "batch"]) == 0
        batch = json.loads(capsys.readouterr().out)
        assert batch["ops_per_request"] < fifo["ops_per_request"]
