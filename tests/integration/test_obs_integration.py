"""Integration: observability across the serving/cluster/parallel stack.

The tentpole contracts under test:

* span *trees* are executor-invariant — serial, parallel and simulated
  fan-out produce identical hierarchies, names and labels (only wall
  timing differs), including under injected faults;
* traces are deterministic — two runs with the same seed export
  identical JSON modulo the wall-clock fields;
* tracing is an observer — attaching a tracer changes no answer, no
  draw, no exact ε;
* the ε timeline, trace summary, and the ``--trace`` / ``--metrics`` /
  ``audit`` CLI surfaces.
"""

import json
from fractions import Fraction

import pytest

from repro.__main__ import main
from repro.cluster.service import cluster
from repro.obs import (
    BudgetTimeline,
    MetricsRegistry,
    Tracer,
    canonical_trace,
    trace_summary,
)
from repro.serving import serve

RUN = dict(shards=4, replicas=1, n=256, requests=48, seed=13,
           pad_size=16, batch=8)


def _tree(trace):
    """(id, parent, name, sorted labels) for every span — the identity
    a trace keeps across executors."""
    return [
        (s["id"], s["parent"], s["name"], tuple(sorted(s["labels"].items())))
        for s in trace["spans"]
    ]


class TestExecutorInvariance:
    @pytest.mark.parametrize("faults", [
        {},
        {"failure_rate": 0.15, "corruption_rate": 0.1},
    ], ids=["clean", "faulty"])
    def test_three_executors_emit_identical_span_trees(self, faults):
        trees = {}
        reports = {}
        for executor in ("serial", "parallel", "simulated"):
            tracer = Tracer(executor)
            reports[executor] = cluster(
                executor=executor, tracer=tracer, **faults, **RUN,
            )
            trees[executor] = _tree(tracer.export())
        assert trees["serial"] == trees["parallel"]
        assert trees["serial"] == trees["simulated"]
        # And the runs themselves stay executor-invariant.
        completed = {r.completed for r in reports.values()}
        assert len(completed) == 1

    def test_fault_spans_record_the_error_type(self):
        # Every replica of every group is dead, so the round exhausts
        # its group; the propagating error must land on the spans it
        # unwound through.
        tracer = Tracer("faulty")
        with pytest.raises(Exception):
            cluster(executor="serial", tracer=tracer,
                    failure_rate=1.0, **RUN)
        errors = {s["error"] for s in tracer.export()["spans"]
                  if s["error"]}
        assert "GroupExhaustedError" in errors


class TestDeterminism:
    def test_same_seed_same_trace_modulo_wall_clock(self):
        exports = []
        for _ in range(2):
            tracer = Tracer("run")
            cluster(executor="parallel", tracer=tracer, **RUN)
            exports.append(canonical_trace(tracer.export()))
        assert json.dumps(exports[0]) == json.dumps(exports[1])

    def test_serving_trace_is_deterministic_too(self):
        exports = []
        for _ in range(2):
            tracer = Tracer("serve")
            serve("batch_dp_ir", clients=4, requests_per_client=6,
                  n=128, seed=5, tracer=tracer)
            exports.append(canonical_trace(tracer.export()))
        assert exports[0] == exports[1]


class TestTracingIsAnObserver:
    def test_traced_run_is_bit_identical_to_untraced(self):
        plain = cluster(**RUN)
        tracer = Tracer("observed")
        timeline = BudgetTimeline()
        registry = MetricsRegistry()
        traced = cluster(tracer=tracer, metrics_registry=registry,
                         timeline=timeline, **RUN)
        assert traced.to_dict() == plain.to_dict()
        assert len(tracer) > 0
        # The timeline replays the ledger exactly: summed spend events
        # equal the worst-shard/colluding accounting's total.
        total = sum(
            (event.epsilon for event in timeline.events), Fraction(0)
        )
        assert float(total) == pytest.approx(
            traced.budget.colluding_epsilon
        )

    def test_serving_answers_unchanged_under_tracing(self):
        plain = serve("batch_dp_ir", clients=4, requests_per_client=6,
                      n=128, seed=5)
        traced = serve("batch_dp_ir", clients=4, requests_per_client=6,
                       n=128, seed=5, tracer=Tracer("t"),
                       metrics_registry=MetricsRegistry())
        assert traced.to_dict() == plain.to_dict()


class TestTimelineAndMetrics:
    def test_timeline_flags_first_crossing(self):
        generous = BudgetTimeline(cap=10**6)
        cluster(timeline=generous, **RUN)
        assert generous.first_crossing is None
        assert generous.total_spent > 0
        tight = BudgetTimeline(cap=Fraction(1, 1000))
        cluster(timeline=tight, **RUN)
        crossing = tight.first_crossing
        assert crossing is not None and crossing.operator.startswith("shard-")

    def test_registry_absorbs_cluster_counters(self):
        registry = MetricsRegistry()
        report = cluster(metrics_registry=registry,
                         failure_rate=0.15, **RUN)
        values = {
            (s["name"], tuple(sorted(s["labels"].items()))): s["value"]
            for s in registry.collect()
        }
        assert values[("repro_queries", ())] == report.requests
        assert values[("repro_epsilon_spent", (("scope", "colluding"),))] \
            == pytest.approx(report.budget.colluding_epsilon)
        fault_kinds = {labels for name, labels in values
                       if name == "repro_faults"}
        assert (("kind", "failed_operations"),) in fault_kinds
        prometheus = registry.to_prometheus()
        assert "repro_epsilon_spent" in prometheus


class TestTraceSummary:
    def test_reconstructs_per_round_critical_paths(self):
        tracer = Tracer("summary")
        cluster(executor="parallel", tracer=tracer, **RUN)
        summary = trace_summary(tracer.export())
        assert summary["spans"] == len(tracer)
        rounds = [r for r in summary["rounds"]
                  if r["name"] == "cluster.query_many"]
        assert rounds
        for entry in rounds:
            assert entry["legs"] >= 1
            assert entry["straggler"]["name"] == "cluster.shard_leg"
            assert entry["serial_wall_ms"] >= entry["straggler_wall_ms"]
            assert entry["overlap_speedup"] >= 1.0


class TestObservabilityCli:
    def test_cluster_trace_and_metrics_flags(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        code = main([
            "cluster", "--shards", "2", "--replicas", "1", "--n", "128",
            "--requests", "16", "--seed", "3",
            "--trace", str(trace_path), "--metrics",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_server_reads gauge" in out
        payload = json.loads(trace_path.read_text())
        assert payload["version"] == 1
        assert payload["spans"]

    def test_serve_trace_flag(self, tmp_path):
        trace_path = tmp_path / "serve.json"
        code = main([
            "serve", "--scheme", "batch-dpir", "--clients", "2",
            "--requests", "4", "--n", "128", "--seed", "3",
            "--trace", str(trace_path),
        ])
        assert code == 0
        names = {s["name"]
                 for s in json.loads(trace_path.read_text())["spans"]}
        assert "serve.round" in names

    def test_audit_without_cap_exits_zero(self, capsys):
        code = main([
            "audit", "--shards", "2", "--requests", "16", "--seed", "3",
            "--timeline",
        ])
        assert code == 0
        assert "epsilon spend timeline" in capsys.readouterr().out

    def test_audit_cap_crossing_exits_one(self, capsys):
        code = main([
            "audit", "--shards", "2", "--requests", "16", "--seed", "3",
            "--cap", "0.001",
        ])
        assert code == 1
        assert "cap crossed" in capsys.readouterr().err

    def test_audit_json_is_exact(self, capsys):
        code = main([
            "audit", "--shards", "2", "--requests", "16", "--seed", "3",
            "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["events"]
        assert "/" in payload["total"]["fraction"]
