"""Every example script must run clean — they are part of the deliverable.

Executed as subprocesses (fresh interpreter, like a user would) with
output sanity checks instead of golden files, since the examples print
measured numbers.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)

EXPECTED_MARKERS = {
    "quickstart.py": ["DP-RAM", "DP-IR", "DP-KVS", "Done."],
    "cluster_deployment.py": ["shard groups", "failover", "resharding",
                              "retrieval preserved", "Done."],
    "concurrent_serving.py": ["FIFO", "batched", "latency p95", "Done."],
    "continuous_batching.py": ["registered schedulers", "continuous",
                               "shed", "bounding the queue", "Done."],
    "private_advertising.py": ["impressions", "DP-IR", "linear PIR"],
    "kv_store_workload.py": ["YCSB", "DP-KVS", "ORAM-KVS"],
    "privacy_audit.py": ["strawman", "delta", "attack"],
    "oram_comparison.py": ["DP-RAM", "ORAM", "factor"],
    "deployment_review.py": ["Datasheet", "WAN", "budget"],
    "trace_cluster.py": ["span tree", "straggler", "Prometheus",
                         "epsilon spend timeline",
                         "identical canonical trace: True", "Done."],
    "monitor_serving.py": ["within bound", "TRIPPED",
                           "caught the cheat", "Done."],
}


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    for marker in EXPECTED_MARKERS.get(script.name, []):
        assert marker in result.stdout, (
            f"{script.name} output missing {marker!r}"
        )


def test_all_examples_have_markers():
    names = {path.name for path in EXAMPLES}
    assert names == set(EXPECTED_MARKERS), (
        "keep EXPECTED_MARKERS in sync with examples/"
    )
