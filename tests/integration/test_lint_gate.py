"""Integration: the lint gate over the real repository.

Mirrors the CI step: ``python -m repro lint`` from the repo root must
come out clean against the committed baseline, and a deliberately
planted violation must fail the gate.
"""

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import Baseline, lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / "lint_baseline.json"


@pytest.mark.skipif(not SRC.is_dir(), reason="needs a source checkout")
class TestRepoIsClean:
    def test_linter_is_clean_on_the_whole_repo(self):
        result = lint_paths([SRC], display_root=REPO_ROOT)
        diff = Baseline.load(BASELINE).diff(result.findings)
        assert diff.new == [], "\n".join(
            f"{f.location()}: [{f.rule}] {f.message}" for f in diff.new
        )

    def test_baseline_has_no_stale_entries(self):
        result = lint_paths([SRC], display_root=REPO_ROOT)
        diff = Baseline.load(BASELINE).diff(result.findings)
        assert diff.stale == []

    def test_every_rule_ran(self):
        result = lint_paths([SRC], display_root=REPO_ROOT)
        assert set(result.rules) == {
            "rng-discipline",
            "backend-bypass",
            "deprecated-serving-kwargs",
            "nondeterministic-iteration",
            "secret-dependent-branch",
            "float-budget",
            "fan-out-mutation",
            "trace-hygiene",
        }
        assert result.files > 50


@pytest.mark.skipif(not SRC.is_dir(), reason="needs a source checkout")
class TestGateCatchesViolations:
    def _run_gate(self, tree: Path) -> subprocess.CompletedProcess:
        return subprocess.run(
            [sys.executable, "-m", "repro", "lint", "--json", "src/repro"],
            cwd=tree,
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )

    def test_planted_violation_fails_the_gate(self, tmp_path):
        # Copy the tree, plant `import random` in a core module — the
        # exact regression the CI step exists to catch.
        tree = tmp_path / "checkout"
        (tree / "src").mkdir(parents=True)
        shutil.copytree(SRC, tree / "src" / "repro")
        shutil.copy(BASELINE, tree / "lint_baseline.json")
        victim = tree / "src" / "repro" / "core" / "dp_ir.py"
        victim.write_text(
            "import random\n" + victim.read_text(encoding="utf-8"),
            encoding="utf-8",
        )
        completed = self._run_gate(tree)
        assert completed.returncode == 1, completed.stdout + completed.stderr
        payload = json.loads(completed.stdout)
        new_rules = {finding["rule"] for finding in payload["findings"]}
        assert "rng-discipline" in new_rules

    def test_unmodified_tree_passes_the_gate(self, tmp_path):
        tree = tmp_path / "checkout"
        (tree / "src").mkdir(parents=True)
        shutil.copytree(SRC, tree / "src" / "repro")
        shutil.copy(BASELINE, tree / "lint_baseline.json")
        completed = self._run_gate(tree)
        assert completed.returncode == 0, completed.stdout + completed.stderr
