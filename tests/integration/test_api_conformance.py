"""Protocol-conformance suite over every registered scheme.

Parametrized over the full :func:`repro.api.available_schemes`
catalogue, so a newly registered scheme is automatically held to the
same contract: builds by name, implements its protocol, reports scheme
info, agrees between ``*_many`` and single operations, and attaches /
detaches transcripts symmetrically.
"""

import pytest

from repro.api import (
    PrivateIR,
    PrivateKVS,
    PrivateRAM,
    Scheme,
    available_schemes,
    build,
    scheme_spec,
)
from repro.storage.server import StorageServer
from repro.storage.transcript import Transcript

N = 32
_PROTOCOLS = {"ir": PrivateIR, "ram": PrivateRAM, "kvs": PrivateKVS}


def _build(name, **overrides):
    kwargs = {"n": N, "seed": 0xFEED}
    kwargs.update(overrides)
    return build(name, **kwargs)


def all_schemes():
    names = available_schemes()
    assert len(names) >= 11
    return names


@pytest.mark.parametrize("name", all_schemes())
class TestConformance:
    def test_build_round_trip(self, name):
        scheme = _build(name)
        spec = scheme_spec(name)
        assert isinstance(scheme, Scheme)
        assert isinstance(scheme, _PROTOCOLS[spec.kind])
        assert scheme.kind == spec.kind
        # Building again with the same arguments yields a fresh,
        # equally-shaped instance.
        again = _build(name)
        assert type(again) is type(scheme)
        assert again.n == scheme.n
        assert again.block_size == scheme.block_size

    def test_scheme_info_surface(self, name):
        scheme = _build(name)
        assert scheme.n == N
        assert isinstance(scheme.block_size, int) and scheme.block_size > 0
        servers = scheme.servers()
        assert isinstance(servers, tuple) and servers
        for server in servers:
            assert isinstance(server, StorageServer)
        reads, writes = scheme.server_counters()
        assert reads == sum(s.reads for s in servers)
        assert writes == sum(s.writes for s in servers)
        peak = scheme.client_peak_blocks
        assert peak is None or peak >= 0

    def test_counters_move_with_operations(self, name):
        scheme = _build(name)
        before = scheme.server_operations()
        _exercise(scheme)
        assert scheme.server_operations() > before

    def test_transcript_attach_detach_symmetry(self, name):
        scheme = _build(name)
        transcript = Transcript()
        scheme.attach_transcript(transcript)
        _exercise(scheme)
        detached = scheme.detach_transcript()
        assert detached is transcript
        assert len(transcript) > 0
        # Detached means detached: further operations record nothing,
        # and a second detach returns None.
        recorded = len(transcript)
        _exercise(scheme)
        assert len(transcript) == recorded
        assert scheme.detach_transcript() is None

    def test_many_agrees_with_single(self, name):
        spec = scheme_spec(name)
        if spec.kind == "ir":
            # The builders load integer_database(N), so the expected
            # answer for every index is known; batched and single paths
            # must agree with it whenever they answer (the α-error event
            # returns None on either path).
            from repro.storage.blocks import integer_database

            expected = integer_database(N)
            scheme = _build(name)
            indices = [0, 3, 3, N - 1]
            batched = scheme.query_many(indices)
            singles = [scheme.query(i) for i in indices]
            assert len(batched) == len(indices)
            for answers in (batched, singles):
                for index, answer in zip(indices, answers):
                    if answer is not None:
                        assert answer == expected[index]
        elif spec.kind == "ram":
            scheme = _build(name)
            indices = [0, 1, N - 1]
            singles = [scheme.read(i) for i in indices]
            assert scheme.read_many(indices) == singles
            if scheme.writable:
                payload = b"\xab" * scheme.block_size
                scheme.write_many([(i, payload) for i in indices])
                assert all(value == payload for value in scheme.read_many(indices))
        else:
            scheme = _build(name)
            items = {b"alpha": b"1", b"beta": b"22", b"gamma": b""}
            for key, value in items.items():
                scheme.put(key, value)
            keys = sorted(items) + [b"missing"]
            singles = [scheme.get(key) for key in keys]
            assert scheme.get_many(keys) == singles
            assert singles == [items[k] for k in sorted(items)] + [None]

    def test_kvs_values_exact_and_delete(self, name):
        spec = scheme_spec(name)
        if spec.kind != "kvs":
            pytest.skip("KVS-only contract")
        scheme = _build(name, value_size=8)
        assert scheme.value_size == 8
        scheme.put(b"k", b"v\x00\x00")   # trailing zeros must survive
        assert scheme.get(b"k") == b"v\x00\x00"
        assert scheme.delete(b"k") is True
        assert scheme.get(b"k") is None
        assert scheme.delete(b"k") is False


def _exercise(scheme: Scheme) -> None:
    """Run a couple of operations appropriate to the scheme's protocol."""
    if isinstance(scheme, PrivateKVS):
        scheme.put(b"probe", b"x")
        scheme.get(b"probe")
    elif isinstance(scheme, PrivateIR):
        scheme.query(0)
        scheme.query(scheme.n - 1)
    else:
        scheme.read(0)
        scheme.read(scheme.n - 1)
