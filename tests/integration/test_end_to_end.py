"""End-to-end integration: schemes x workloads through the harness."""

import math

import pytest

from repro.baselines.linear_pir import LinearScanPIR
from repro.baselines.oram_kvs import ORAMKeyValueStore
from repro.baselines.path_oram import PathORAM
from repro.baselines.plaintext import PlaintextKVS, PlaintextRAM
from repro.core.dp_ir import DPIR
from repro.core.dp_kvs import DPKVS
from repro.core.dp_ram import DPRAM, ReadOnlyDPRAM
from repro.core.multi_server import MultiServerDPIR
from repro.simulation.harness import run_ir_trace, run_kv_trace, run_ram_trace
from repro.storage.blocks import integer_database
from repro.workloads.generators import (
    hotspot_trace,
    read_write_trace,
    sequential_trace,
    uniform_trace,
    zipf_trace,
)
from repro.workloads.kv_traces import insert_then_lookup_trace, ycsb_trace


N = 128


@pytest.fixture
def database():
    return integer_database(N)


class TestRamSchemesAcrossWorkloads:
    @pytest.mark.parametrize("make_trace", [
        lambda rng: uniform_trace(N, 150, rng),
        lambda rng: sequential_trace(N, 150),
        lambda rng: zipf_trace(N, 150, rng),
        lambda rng: hotspot_trace(N, 150, rng),
        lambda rng: read_write_trace(N, 150, rng, write_fraction=0.4),
    ])
    def test_dpram_correct_on_all_workloads(self, rng, database, make_trace):
        scheme = DPRAM(database, rng=rng.spawn("scheme"))
        trace = make_trace(rng.spawn("trace"))
        metrics = run_ram_trace(scheme, trace, initial=database)
        assert metrics.mismatches == 0
        assert metrics.blocks_per_operation == 3.0

    def test_path_oram_matches_dpram_answers(self, rng, database):
        trace = read_write_trace(N, 200, rng.spawn("t"), write_fraction=0.3)
        dpram_metrics = run_ram_trace(
            DPRAM(database, rng=rng.spawn("a")), trace, initial=database
        )
        oram_metrics = run_ram_trace(
            PathORAM(database, rng=rng.spawn("b")), trace, initial=database
        )
        assert dpram_metrics.mismatches == 0
        assert oram_metrics.mismatches == 0
        # The headline gap, end to end:
        assert oram_metrics.blocks_per_operation > \
            5 * dpram_metrics.blocks_per_operation

    def test_read_only_dpram_on_read_workloads(self, rng, database):
        scheme = ReadOnlyDPRAM(database, rng=rng.spawn("ro"))
        trace = zipf_trace(N, 300, rng.spawn("t"))
        metrics = run_ram_trace(scheme, trace, initial=database)
        assert metrics.mismatches == 0
        assert metrics.blocks_uploaded == 0


class TestIrSchemes:
    def test_dpir_vs_linear_pir_costs(self, rng, database):
        trace = uniform_trace(N, 100, rng.spawn("t"))
        dpir = DPIR(database, epsilon=math.log(N), alpha=0.05,
                    rng=rng.spawn("dpir"))
        pir = LinearScanPIR(database)
        dpir_metrics = run_ir_trace(dpir, trace, expected=database)
        pir_metrics = run_ir_trace(pir, trace, expected=database)
        assert dpir_metrics.mismatches == 0
        assert pir_metrics.mismatches == 0
        assert pir_metrics.blocks_per_operation == N
        assert dpir_metrics.blocks_per_operation < N / 2

    def test_multi_server_through_harness(self, rng, database):
        scheme = MultiServerDPIR(database, server_count=3, pad_size=9,
                                 alpha=0.1, rng=rng.spawn("ms"))
        trace = uniform_trace(N, 120, rng.spawn("t"))
        metrics = run_ir_trace(scheme, trace, expected=database)
        assert metrics.mismatches == 0
        assert metrics.blocks_per_operation == 9.0


class TestKvsSchemes:
    @pytest.mark.parametrize("profile", ["A", "B", "C"])
    def test_dpkvs_on_ycsb(self, rng, profile):
        scheme = DPKVS(256, rng=rng.spawn(f"kvs-{profile}"))
        trace = ycsb_trace(40, 120, rng.spawn(f"t-{profile}"), profile=profile)
        metrics = run_kv_trace(scheme, trace)
        assert metrics.mismatches == 0

    def test_dpkvs_negative_lookups(self, rng):
        scheme = DPKVS(256, rng=rng.spawn("kvs"))
        trace = insert_then_lookup_trace(30, 80, rng.spawn("t"),
                                         missing_fraction=0.4)
        metrics = run_kv_trace(scheme, trace)
        assert metrics.mismatches == 0

    def test_all_kvs_schemes_agree(self, rng):
        trace = ycsb_trace(30, 100, rng.spawn("shared"), profile="A")
        results = {}
        for name, scheme in (
            ("plain", PlaintextKVS(256)),
            ("dpkvs", DPKVS(256, rng=rng.spawn("d"))),
            ("oramkvs", ORAMKeyValueStore(256, rng=rng.spawn("o"))),
        ):
            metrics = run_kv_trace(scheme, trace)
            results[name] = metrics
            assert metrics.mismatches == 0, name
        assert results["plain"].blocks_per_operation < \
            results["dpkvs"].blocks_per_operation < \
            results["oramkvs"].blocks_per_operation


class TestCrossSchemeConsistency:
    def test_same_trace_same_answers(self, rng, database):
        """Every RAM scheme must produce identical read results."""
        trace = read_write_trace(N, 150, rng.spawn("t"), write_fraction=0.3)
        answers = {}
        for name, scheme in (
            ("plain", PlaintextRAM(database)),
            ("dpram", DPRAM(database, rng=rng.spawn("x"))),
            ("oram", PathORAM(database, rng=rng.spawn("y"))),
        ):
            collected = []
            for operation in trace:
                if operation.value is None:
                    collected.append(scheme.read(operation.index))
                else:
                    scheme.write(operation.index, operation.value)
            answers[name] = collected
        assert answers["plain"] == answers["dpram"] == answers["oram"]
