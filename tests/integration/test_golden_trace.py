"""The committed golden trace matches a fresh run of its frozen config.

This is the same gate CI's ``golden-trace`` job enforces, in-process:
regenerate the pinned cluster run and structurally diff it against
``benchmarks/baselines/trace_cluster_golden.json``.  If a legitimate
change alters the span tree, regenerate with
``python scripts/update_golden_trace.py`` and commit the new golden.
"""

import importlib.util
import json
import pathlib

import pytest

from repro.obs import diff_traces

REPO = pathlib.Path(__file__).resolve().parents[2]
GOLDEN = REPO / "benchmarks" / "baselines" / "trace_cluster_golden.json"


def _load_generator():
    spec = importlib.util.spec_from_file_location(
        "update_golden_trace", REPO / "scripts" / "update_golden_trace.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def generator():
    return _load_generator()


@pytest.fixture(scope="module")
def committed():
    with open(GOLDEN, encoding="utf-8") as handle:
        return json.load(handle)


def test_golden_file_is_committed_and_canonical(committed):
    assert committed["spans"], "golden trace must not be empty"
    for span in committed["spans"]:
        assert "wall_ms" not in span, "golden must be canonical"


def test_fresh_run_matches_the_committed_golden(generator, committed):
    fresh = generator.golden_trace()
    diff = diff_traces(committed, fresh)
    assert diff.identical, (
        "golden trace drifted; inspect the diff and, if intended, "
        "regenerate via scripts/update_golden_trace.py:\n"
        + diff.to_text(limit=10)
    )


def test_regeneration_is_deterministic(generator):
    assert diff_traces(
        generator.golden_trace(), generator.golden_trace()
    ).identical


def test_config_change_is_caught(generator, committed):
    original = dict(generator.GOLDEN_CONFIG)
    try:
        generator.GOLDEN_CONFIG["seed"] = original["seed"] + 1
        drifted = generator.golden_trace()
    finally:
        generator.GOLDEN_CONFIG.clear()
        generator.GOLDEN_CONFIG.update(original)
    diff = diff_traces(committed, drifted)
    assert not diff.identical
