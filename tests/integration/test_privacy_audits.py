"""Integration: empirical privacy audits against the exact calculators.

These tests close the loop between the constructions (repro.core), the
closed-form privacy results (repro.analysis.dp_ir_exact / dp_ram_exact)
and the distribution-free estimators (repro.analysis.estimators):
sampled behaviour must match the formulas the paper proves.
"""

import math

import pytest

from repro.analysis.dp_ir_exact import (
    dpir_membership_probabilities,
    strawman_exact_delta,
)
from repro.analysis.dp_ram_exact import (
    dp_ram_analytic_epsilon,
    sample_transcript_pairs,
    transcript_log_ratio,
)
from repro.analysis.estimators import estimate_delta, estimate_epsilon
from repro.core.dp_ir import DPIR
from repro.core.dp_ram import DPRAM
from repro.core.strawman import StrawmanIR
from repro.storage.blocks import integer_database


class TestDpirAudit:
    def test_membership_rates_match_closed_form(self, rng):
        n, k, alpha = 32, 4, 0.2
        scheme = DPIR(integer_database(n), pad_size=k, alpha=alpha,
                      rng=rng.spawn("s"))
        trials = 4000
        own = sum(1 for _ in range(trials)
                  if 3 in scheme.sample_query_set(3)) / trials
        other = sum(1 for _ in range(trials)
                    if 7 in scheme.sample_query_set(3)) / trials
        exact_own, exact_other = dpir_membership_probabilities(n, k, alpha)
        assert own == pytest.approx(exact_own, abs=0.03)
        assert other == pytest.approx(exact_other, abs=0.03)

    def test_estimated_epsilon_below_exact(self, rng):
        # The empirical estimate over set-signatures cannot exceed the true
        # worst-case epsilon (it only explores observed events).
        n, k, alpha = 16, 4, 0.25
        scheme = DPIR(integer_database(n), pad_size=k, alpha=alpha,
                      rng=rng.spawn("s"))
        estimate = estimate_epsilon(
            lambda r: scheme.sample_query_set(0),
            lambda r: scheme.sample_query_set(1),
            trials=3000,
            rng=rng.spawn("audit"),
        )
        assert estimate.epsilon_hat <= scheme.epsilon + 0.5

    def test_delta_at_exact_epsilon_near_zero(self, rng):
        # Small support (C(8,2)=28 transcripts) keeps the plug-in estimator's
        # one-sided sampling bias below the assertion threshold.
        n, k, alpha = 8, 2, 0.25
        scheme = DPIR(integer_database(n), pad_size=k, alpha=alpha,
                      rng=rng.spawn("s"))
        delta = estimate_delta(
            lambda r: scheme.sample_query_set(0),
            lambda r: scheme.sample_query_set(1),
            epsilon=scheme.epsilon,
            trials=6000,
            rng=rng.spawn("audit"),
        )
        assert delta < 0.1


class TestStrawmanAudit:
    def test_estimated_delta_matches_exact(self, rng):
        n = 32
        scheme = StrawmanIR(integer_database(n), rng=rng.spawn("s"))
        # At any epsilon, delta should be ~(n-1)/n; test at a generous eps.
        delta = estimate_delta(
            lambda r: scheme.sample_query_set(0),
            lambda r: scheme.sample_query_set(1),
            epsilon=2 * math.log(n),
            trials=3000,
            rng=rng.spawn("audit"),
        )
        assert delta == pytest.approx(strawman_exact_delta(n, 0), abs=0.08)

    def test_strawman_vs_dpir_separation(self, rng):
        # Same bandwidth ballpark, wildly different delta.  Small n keeps
        # the transcript support small enough for the plug-in estimator.
        n = 16
        strawman = StrawmanIR(integer_database(n), rng=rng.spawn("a"))
        dpir = DPIR(integer_database(n), pad_size=2, alpha=0.25,
                    rng=rng.spawn("b"))
        reference_eps = dpir.epsilon
        straw_delta = estimate_delta(
            lambda r: strawman.sample_query_set(0),
            lambda r: strawman.sample_query_set(1),
            epsilon=reference_eps, trials=4000, rng=rng.spawn("c"),
        )
        dpir_delta = estimate_delta(
            lambda r: dpir.sample_query_set(0),
            lambda r: dpir.sample_query_set(1),
            epsilon=reference_eps, trials=4000, rng=rng.spawn("d"),
        )
        assert straw_delta > 0.7
        assert dpir_delta < 0.15


class TestDpramAudit:
    def test_real_scheme_ratios_within_budget(self, rng):
        """Transcripts from the *real* DPRAM (not the fast sampler) have
        exact likelihood ratios within the analytic budget."""
        n, p = 6, 0.3
        queries_a = [0, 1, 2, 1]
        queries_b = [0, 4, 2, 1]
        budget = dp_ram_analytic_epsilon(n, p)
        for trial in range(60):
            ram = DPRAM(integer_database(n), stash_probability=p,
                        rng=rng.spawn(f"r{trial}"))
            for q in queries_a:
                ram.read(q)
            ratio = transcript_log_ratio(
                queries_a, queries_b, ram.transcript_pairs, n, p
            )
            assert abs(ratio) <= budget

    def test_identical_prefix_suffix_ratio_one(self, rng):
        """Lemma 6.6/6.7: transcripts only weigh the 3 special positions —
        sequences differing at the last position have ratios driven by
        that position alone; check ratio is 0 when transcripts avoid it."""
        n, p = 5, 0.4
        queries_a = [0, 1, 2]
        queries_b = [0, 1, 3]
        # Transcript where position 2 looks maximally uninformative: both
        # d and o at a fourth block; ratio = (p/n)^2 / (p/n)^2 = 1.
        pairs = [(0, 0), (1, 1), (4, 4)]
        ratio = transcript_log_ratio(queries_a, queries_b, pairs, n, p)
        assert ratio == pytest.approx(0.0)

    def test_estimator_agrees_with_exact_sampler(self, rng):
        """estimate_epsilon over sampled pair-signatures stays below the
        exact worst-case ratio observed by direct likelihood search."""
        n, p = 4, 0.4
        queries_a, queries_b = [0, 1], [0, 2]
        estimate = estimate_epsilon(
            lambda r: sample_transcript_pairs(queries_a, n, p, r),
            lambda r: sample_transcript_pairs(queries_b, n, p, r),
            trials=4000,
            rng=rng.spawn("e"),
        )
        assert estimate.epsilon_hat <= dp_ram_analytic_epsilon(n, p)
        assert estimate.support > 10
