"""Scale guards: no hidden superlinear behaviour at moderate sizes.

These are not micro-benchmarks (pytest-benchmark owns timing); they run
the schemes at sizes large enough that an accidental O(n)-per-query bug
(or an O(n²) setup) would blow past the generous wall-clock ceilings.
"""

import time

import pytest

from repro.core.dp_ir import DPIR
from repro.core.dp_kvs import DPKVS
from repro.core.dp_ram import DPRAM
from repro.storage.blocks import encode_int, integer_database


N = 1 << 14  # 16384


class TestDPRAMScale:
    def test_setup_and_queries(self, rng):
        started = time.perf_counter()
        ram = DPRAM(integer_database(N), rng=rng.spawn("ram"))
        setup_seconds = time.perf_counter() - started

        started = time.perf_counter()
        source = rng.spawn("ops")
        for step in range(500):
            index = source.randbelow(N)
            if step % 3 == 0:
                ram.write(index, encode_int(step))
            else:
                ram.read(index)
        query_seconds = time.perf_counter() - started

        assert setup_seconds < 20.0   # O(n) encryption passes
        assert query_seconds < 5.0    # O(1) per query
        assert ram.query_count == 500

    def test_bandwidth_flat_at_scale(self, rng):
        ram = DPRAM(integer_database(N), rng=rng.spawn("ram"))
        before = ram.server.operations
        for _ in range(100):
            ram.read(rng.randbelow(N))
        assert ram.server.operations - before == 300


class TestDPIRScale:
    def test_constant_pad_at_scale(self, rng):
        import math

        scheme = DPIR(integer_database(N), epsilon=math.log(N), alpha=0.05,
                      rng=rng.spawn("ir"))
        assert scheme.pad_size <= 25
        started = time.perf_counter()
        for _ in range(500):
            scheme.query(rng.randbelow(N))
        assert time.perf_counter() - started < 5.0


class TestDPKVSScale:
    def test_insert_and_query_thousand_keys(self, rng):
        store = DPKVS(N, rng=rng.spawn("kvs"))
        started = time.perf_counter()
        for i in range(1000):
            store.put(f"key-{i:05d}".encode(), f"val-{i}".encode())
        insert_seconds = time.perf_counter() - started

        started = time.perf_counter()
        for i in range(0, 1000, 7):
            value = store.get(f"key-{i:05d}".encode())
            assert value is not None
        query_seconds = time.perf_counter() - started

        assert insert_seconds < 30.0
        assert query_seconds < 10.0
        assert store.size == 1000
        # Server storage stays ~2n node blocks regardless of fill level.
        assert store.server_node_count < 3 * N

    def test_cost_independent_of_fill(self, rng):
        store = DPKVS(1 << 12, rng=rng.spawn("kvs"))
        cost = store.blocks_per_operation()
        before = store.server.operations
        store.get(b"empty-probe")
        assert store.server.operations - before == cost
        for i in range(200):
            store.put(f"k{i}".encode(), b"v")
        before = store.server.operations
        store.get(b"k7")
        assert store.server.operations - before == cost


@pytest.mark.parametrize("exponent", [10, 12, 14])
class TestGeometryScaling:
    def test_tree_nodes_linear(self, exponent):
        from repro.hashing.tree_buckets import TreeBucketLayout

        n = 1 << exponent
        layout = TreeBucketLayout.for_capacity(n)
        assert layout.node_count <= 3 * n

    def test_path_loglog(self, exponent):
        import math

        from repro.core.params import DPKVSParams

        n = 1 << exponent
        params = DPKVSParams.for_capacity(n)
        assert params.shape.path_length <= math.log2(math.log2(n)) + 4
