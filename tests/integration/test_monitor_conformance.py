"""Leakage-monitor conformance: every registered scheme stays in bound.

The ISSUE's acceptance bar: for every scheme in the registry, driving
it under ``watch_scheme(default_monitors(...))`` must leave the
empirical adversary advantage at or below the ε-implied ceiling plus
the finite-sample slack — honest implementations never trip their own
monitor.  The one scheme engineered to cheat (an under-padded DP-IR)
must trip.  Together these pin both directions of the gate: no false
alarms on the registry, no silence on a real leak.
"""

import pytest

from repro import DPIR, SeededRandomSource
from repro.api import available_schemes, build, scheme_spec
from repro.obs import default_monitors, watch_scheme
from repro.storage.blocks import integer_database

N = 64
ROUNDS = 96


def all_schemes():
    names = available_schemes()
    assert len(names) >= 11
    return names


def _drive(scheme, kind):
    if kind == "ir":
        for index in range(ROUNDS):
            scheme.query(index * 7 % N)
    elif kind == "ram":
        payload = b"\xab" * scheme.block_size
        for index in range(ROUNDS):
            slot = index * 5 % N
            if scheme.writable and index % 3 == 0:
                scheme.write(slot, payload)
            else:
                scheme.read(slot)
    else:
        for index in range(N // 2):
            scheme.put(b"key-%d" % index, b"%d" % index)
        for index in range(ROUNDS):
            scheme.get(b"key-%d" % (index % N))


@pytest.mark.parametrize("name", all_schemes())
def test_registered_scheme_stays_within_its_bound(name):
    scheme = build(name, n=N, seed=0xFEED)
    monitors = default_monitors(scheme, rng=SeededRandomSource(0xFEED))
    watch = watch_scheme(scheme, monitors)
    try:
        _drive(scheme, scheme_spec(name).kind)
    finally:
        watch.unwatch()
    assert monitors, "every scheme gets at least the membership monitor"
    for monitor in monitors:
        report = monitor.report()
        assert report.trials > 0, f"{name}: monitor saw no rounds"
        assert report.empirical_success <= report.bound + report.slack, (
            f"{name}/{report.attack}: empirical {report.empirical_success} "
            f"exceeds bound {report.bound} + slack {report.slack}"
        )
        assert not report.tripped, f"{name} tripped its own monitor"
    assert not watch.tripped


def test_under_padded_scheme_is_caught():
    class UnderPaddedDPIR(DPIR):
        def _draw_set(self, index):
            return [index], True

    rng = SeededRandomSource(0xFEED)
    cheat = UnderPaddedDPIR(
        integer_database(N), epsilon=1.0, alpha=0.05,
        rng=rng.spawn("scheme"),
    )
    monitors = default_monitors(cheat, rng=rng.spawn("monitor"))
    watch = watch_scheme(cheat, monitors)
    try:
        for index in range(2 * ROUNDS):
            cheat.query(index % N)
    finally:
        watch.unwatch()
    assert watch.tripped
    report = monitors[0].report()
    assert report.tripped_at is not None
    assert report.tripped_at >= report.min_trials
