"""Integration: schemes under injected server faults.

The paper assumes an honest-but-curious server; these tests document what
happens outside that model and that the provided hardening (authenticated
encryption, fault wrappers) behaves as designed end to end.
"""

import pytest

from repro.core.dp_ram import DPRAM
from repro.crypto.encryption import (
    IntegrityError,
    decrypt_authenticated,
    encrypt_authenticated,
    generate_key,
)
from repro.storage.blocks import integer_database
from repro.storage.faults import CorruptingServer, FlakyServer, ServerFault
from repro.storage.server import StorageServer


class TestDPRAMUnderFaults:
    def test_flaky_server_surfaces_faults(self, rng):
        """A DP-RAM whose server times out propagates the fault cleanly
        (no silent wrong answers, no corrupted client state)."""
        db = integer_database(32)
        ram = DPRAM(db, stash_probability=0.2, rng=rng.spawn("ram"))
        ram._server = FlakyServer(ram._server, 0.3, rng.spawn("faults"))
        answered, faulted = 0, 0
        for i in range(100):
            try:
                value = ram.read(i % 32)
            except ServerFault:
                faulted += 1
            else:
                answered += 1
                # When an answer does come back it is the right one
                # (stale state from failed overwrites is acceptable only
                # for never-written records, which is all we read here).
                assert value == db[i % 32]
        assert faulted > 0
        assert answered > 0

    def test_corrupting_server_garbles_plain_dpram(self, rng):
        """Without authentication, corruption turns into silent garbage —
        exactly the gap the authenticated mode closes."""
        db = integer_database(16)
        ram = DPRAM(db, stash_probability=1e-9, rng=rng.spawn("ram"))
        ram._server = CorruptingServer(ram._server, 1.0, rng.spawn("faults"))
        wrong = sum(1 for i in range(16) if ram.read(i) != db[i])
        assert wrong > 0  # silent corruption, no exception raised


class TestAuthenticatedStoreUnderFaults:
    def _authenticated_array(self, rng, count=8):
        key = generate_key(rng.spawn("key"))
        server = StorageServer(count)
        server.load([
            encrypt_authenticated(key, bytes([i]) * 32, rng.spawn(f"enc{i}"))
            for i in range(count)
        ])
        return key, server

    def test_every_corruption_detected(self, rng):
        key, inner = self._authenticated_array(rng)
        server = CorruptingServer(inner, 1.0, rng.spawn("faults"))
        for i in range(8):
            with pytest.raises(IntegrityError):
                decrypt_authenticated(key, server.read(i))

    def test_clean_reads_verify(self, rng):
        key, inner = self._authenticated_array(rng)
        server = CorruptingServer(inner, 0.0, rng.spawn("faults"))
        for i in range(8):
            assert decrypt_authenticated(key, server.read(i)) == bytes([i]) * 32

    def test_partial_corruption_rate_matches(self, rng):
        key, inner = self._authenticated_array(rng, count=1)
        server = CorruptingServer(inner, 0.4, rng.spawn("faults"))
        detected = 0
        for _ in range(300):
            try:
                decrypt_authenticated(key, server.read(0))
            except IntegrityError:
                detected += 1
        assert detected == server.corrupted_reads
        assert 70 < detected < 170
