"""Integration: every experiment driver runs and its table shape holds.

The benches exercise the same drivers with bigger parameters; these tests
keep them runnable (small sizes) and assert the *claims* encoded in each
table, so a regression in any scheme breaks the experiment that cites it.
"""

import inspect
import math

import pytest

from repro.simulation import experiments


class TestDriversProduceTables:
    @pytest.mark.parametrize("driver", experiments.ALL_EXPERIMENTS,
                             ids=lambda d: d.__name__)
    def test_driver_runs_with_defaults_shape(self, driver):
        # Smoke at reduced scale where the signature allows it.
        parameters = inspect.signature(driver).parameters
        kwargs = {}
        if "sizes" in parameters:
            kwargs["sizes"] = (64, 128)
        if "queries" in parameters:
            kwargs["queries"] = 20
        if "operations" in parameters:
            kwargs["operations"] = 20
        if "trials" in parameters:
            kwargs["trials"] = 100
        if "n" in parameters:
            kwargs["n"] = 64
        table = driver(**kwargs)
        assert table.rows
        assert all(len(row) == len(table.headers) for row in table.rows)
        assert table.to_text()
        assert table.to_markdown()


class TestClaimsHold:
    def test_e1_bound_met_with_equality(self):
        table = experiments.experiment_e01_errorless_ir(sizes=(128,), queries=10)
        for row in table.rows:
            n, bound, measured, ok = row
            assert ok is True
            assert measured == n == bound

    def test_e2_constructions_above_floor(self):
        table = experiments.experiment_e02_dpir_lower_bound(n=256, queries=60)
        assert all(row[-1] is True for row in table.rows)

    def test_e3_pad_constant_across_n(self):
        table = experiments.experiment_e03_dpir_construction(
            sizes=(256, 1024, 4096), alphas=(0.05,), queries=50
        )
        pads = [row[2] for row in table.rows]
        assert max(pads) - min(pads) <= 2  # O(1): flat across n

    def test_e3_error_rate_tracks_alpha(self):
        table = experiments.experiment_e03_dpir_construction(
            sizes=(512,), alphas=(0.1,), queries=1500
        )
        error_rate = table.rows[0][-1]
        assert 0.06 < error_rate < 0.14

    def test_e4_strawman_broken_dpir_not(self):
        table = experiments.experiment_e04_strawman(sizes=(128,), trials=600)
        for row in table.rows:
            _, delta, straw_success, dpir_success, ceiling = row
            assert delta > 0.9
            assert straw_success > 0.9
            assert dpir_success <= ceiling + 0.05

    def test_e5_floor_vanishes_at_log_n(self):
        table = experiments.experiment_e05_dpram_lower_bound(n=256)
        last_rows = [row for row in table.rows if row[1] >= math.log(256)]
        assert all(row[2] <= 3.0 for row in last_rows)

    def test_e6_constant_bandwidth_and_bounded_stash(self):
        table = experiments.experiment_e06_dpram_construction(
            sizes=(128, 512), queries=100
        )
        for row in table.rows:
            _, phi, blocks, stash_peak, cap, *_rest, mismatches = row
            assert blocks == 3.0
            assert stash_peak <= cap + 5
            assert mismatches == 0

    def test_e7_ratios_within_budget(self):
        table = experiments.experiment_e07_dpram_ratios(trials=200)
        assert all(row[-1] is True for row in table.rows)

    def test_e8_one_choice_worse(self):
        table = experiments.experiment_e08_two_choice(sizes=(2048,))
        for row in table.rows:
            _, one, two, three, *_ = row
            assert one > two
            assert three <= two + 1

    def test_e9_super_root_within_phi(self):
        table = experiments.experiment_e09_tree_hashing(sizes=(2048, 8192))
        assert all(row[5] is True for row in table.rows)

    def test_e10_storage_linear_and_costs_loglog(self):
        table = experiments.experiment_e10_dpkvs(sizes=(128, 512),
                                                 operations=40)
        for row in table.rows:
            _, path_len, measured, predicted, nodes_per_n, padded_per_n, mism = row
            assert measured == predicted
            assert nodes_per_n < 3
            assert padded_per_n > nodes_per_n
            assert mism == 0

    def test_e11_factor_grows(self):
        table = experiments.experiment_e11_vs_oram(sizes=(128, 1024),
                                                   queries=40)
        factors = [row[-1] for row in table.rows]
        assert factors[0] < factors[-1]

    def test_e12_bound_met_and_view_scales(self):
        table = experiments.experiment_e12_multi_server(n=256, queries=60)
        assert all(row[-1] is True for row in table.rows)
        views = [row[4] for row in table.rows]
        assert views == sorted(views)

    def test_run_all_renders(self):
        # Tiny global smoke via markdown path (uses default params for one
        # driver only would be slow; rely on the parametrized smoke above).
        assert callable(experiments.run_all)
