"""Unit tests for the exact ε-budget timeline."""

import json
from fractions import Fraction

from repro.obs import BudgetTimeline


class TestRecord:
    def test_events_are_exact_and_sequenced(self):
        timeline = BudgetTimeline()
        timeline.record(epsilon=Fraction(1, 3), operator="shard-0",
                        shard=0)
        timeline.record(epsilon=Fraction(1, 6), operator="shard-1",
                        shard=1, epoch=2, tenant="t0")
        events = timeline.events
        assert [e.sequence for e in events] == [0, 1]
        assert events[0].epsilon == Fraction(1, 3)
        assert events[1].tenant == "t0"
        assert events[1].epoch == 2
        # Exact accumulation: 1/3 + 1/6 == 1/2 with no float round-off.
        assert timeline.total_spent == Fraction(1, 2)

    def test_per_operator_totals(self):
        timeline = BudgetTimeline()
        for _ in range(3):
            timeline.record(epsilon=Fraction(1, 7), operator="shard-0")
        timeline.record(epsilon=Fraction(2, 7), operator="shard-1")
        assert timeline.per_operator() == {
            "shard-0": Fraction(3, 7),
            "shard-1": Fraction(2, 7),
        }

    def test_cumulative_series_per_operator_and_global(self):
        timeline = BudgetTimeline()
        timeline.record(epsilon=1, operator="a")
        timeline.record(epsilon=2, operator="b")
        timeline.record(epsilon=3, operator="a")
        assert timeline.cumulative_series("a") == [
            (0, Fraction(1)), (2, Fraction(4)),
        ]
        assert timeline.cumulative_series() == [
            (0, Fraction(1)), (1, Fraction(3)), (2, Fraction(6)),
        ]


class TestCap:
    def test_first_crossing_is_per_operator_cumulative(self):
        timeline = BudgetTimeline(cap=Fraction(5, 2))
        timeline.record(epsilon=1, operator="a")
        timeline.record(epsilon=2, operator="b")
        assert timeline.first_crossing is None
        timeline.record(epsilon=2, operator="a")  # a hits 3 > 5/2
        crossing = timeline.first_crossing
        assert crossing is not None
        assert crossing.sequence == 2
        assert crossing.operator == "a"
        # Later crossings do not overwrite the first.
        timeline.record(epsilon=10, operator="b")
        assert timeline.first_crossing.sequence == 2

    def test_decimal_string_cap_stays_exact(self):
        timeline = BudgetTimeline(cap="0.1")
        assert timeline.cap == Fraction(1, 10)

    def test_no_cap_never_crosses(self):
        timeline = BudgetTimeline()
        timeline.record(epsilon=10**9, operator="a")
        assert timeline.first_crossing is None


class TestExport:
    def test_to_dict_renders_exact_fraction_strings(self):
        timeline = BudgetTimeline(cap=Fraction(2))
        timeline.record(epsilon=Fraction(1, 3), delta=Fraction(1, 1000),
                        operator="shard-0", shard=0)
        payload = timeline.to_dict()
        assert payload["version"] == 1
        assert payload["cap"]["fraction"] == "2/1"
        event = payload["events"][0]
        assert event["epsilon"]["fraction"] == "1/3"
        assert event["delta"]["fraction"] == "1/1000"
        assert payload["total"]["fraction"] == "1/3"
        assert payload["first_crossing"] is None
        json.dumps(payload)

    def test_to_text_bars_and_crossing_flag(self):
        timeline = BudgetTimeline(cap=2)
        timeline.record(epsilon=1, operator="shard-0")
        timeline.record(epsilon=3, operator="shard-1")
        text = timeline.to_text()
        assert "shard-0" in text and "shard-1" in text
        assert "OVER CAP" in text
        assert "first cap-crossing: event #1" in text
        # The crossing message reports the cumulative *at* the crossing.
        assert "cumulative 3.0000" in text

    def test_to_text_without_events(self):
        assert "no spend events" in BudgetTimeline().to_text()
