"""Unit tests for the metrics registry and its exporters."""

import json

import pytest

from repro.core.dp_ir import DPIR
from repro.crypto.rng import SeededRandomSource
from repro.obs import MetricsRegistry, collect_scheme_metrics
from repro.storage.blocks import integer_database


class TestCounter:
    def test_inc_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total")
        counter.inc()
        counter.inc(2)
        assert counter.value() == 3

    def test_label_order_addresses_the_same_series(self):
        counter = MetricsRegistry().counter("c")
        counter.inc(shard=1, op="read")
        counter.inc(op="read", shard=1)
        assert counter.value(shard=1, op="read") == 2

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)


class TestGaugeAndHistogram:
    def test_gauge_set_overwrites(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(5, shard=0)
        gauge.set(7, shard=0)
        assert gauge.value(shard=0) == 7

    def test_histogram_summary_reuses_latency_summary(self):
        histogram = MetricsRegistry().histogram("h")
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value, op="read")
        summary = histogram.summary(op="read")
        assert summary.count == 4
        assert summary.max_ms == 4.0


class TestRegistry:
    def test_get_or_create_returns_same_metric(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("m")

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("bad name!")

    def test_collect_is_deterministic_and_json_ready(self):
        registry = MetricsRegistry()
        registry.counter("b_total").inc(shard=1)
        registry.counter("a_total").inc()
        registry.gauge("g").set(2.5)
        samples = registry.collect()
        assert [s["name"] for s in samples] == ["a_total", "b_total", "g"]
        json.dumps(registry.to_json())

    def test_prometheus_text_format(self):
        registry = MetricsRegistry()
        registry.counter("reqs_total", "Requests.").inc(3, shard=0)
        registry.histogram("lat_ms").observe(5.0)
        text = registry.to_prometheus()
        assert "# HELP reqs_total Requests." in text
        assert "# TYPE reqs_total counter" in text
        assert 'reqs_total{shard="0"} 3' in text
        assert "# TYPE lat_ms histogram" in text
        assert 'lat_ms{quantile="0.5"} 5' in text
        assert "lat_ms_count 1" in text
        assert "lat_ms_sum 5" in text
        assert text.endswith("\n")


def _unescape_label_value(raw: str) -> str:
    """Decode a Prometheus exposition label value (the client's job)."""
    out = []
    i = 0
    while i < len(raw):
        ch = raw[i]
        if ch == "\\" and i + 1 < len(raw):
            nxt = raw[i + 1]
            out.append({"\\": "\\", '"': '"', "n": "\n"}.get(nxt, nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


class TestPrometheusEscaping:
    HOSTILE = [
        'quote " inside',
        "back\\slash",
        "line\nbreak",
        'all \\ of " it\n together',
        "trailing backslash \\",
    ]

    @pytest.mark.parametrize("value", HOSTILE, ids=repr)
    def test_hostile_label_values_round_trip(self, value):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(3, tenant=value)
        text = registry.to_prometheus()
        line = next(
            ln for ln in text.splitlines() if ln.startswith("c_total{")
        )
        # Each sample stays a single line no matter the label value...
        assert "\n" not in line
        raw = line[line.index('tenant="') + len('tenant="'):line.rindex('"')]
        # ...and a spec-compliant client recovers the exact original.
        assert _unescape_label_value(raw) == value

    def test_hostile_help_text_stays_one_line(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "help with \\ and\nnewline").inc()
        text = registry.to_prometheus()
        help_line = next(
            ln for ln in text.splitlines()
            if ln.startswith("# HELP c_total")
        )
        assert help_line == "# HELP c_total help with \\\\ and\\nnewline"

    def test_escaping_orders_backslash_first(self):
        # The classic double-escape bug: escaping quotes before
        # backslashes would turn `\"` input into `\\\"` -> `\"` -> `"`.
        registry = MetricsRegistry()
        registry.counter("c_total").inc(1, op='\\"')
        line = next(
            ln for ln in registry.to_prometheus().splitlines()
            if ln.startswith("c_total{")
        )
        assert 'op="\\\\\\""' in line


class TestCollectSchemeMetrics:
    def test_absorbs_scheme_counters(self):
        scheme = DPIR(
            integer_database(64), pad_size=8, alpha=0.1,
            rng=SeededRandomSource(7), batched=True,
        )
        for index in range(10):
            scheme.query(index % 64)
        registry = MetricsRegistry()
        collect_scheme_metrics(scheme, registry)
        by_name = {
            (s["name"], tuple(sorted(s["labels"].items()))): s["value"]
            for s in registry.collect()
        }
        assert by_name[("repro_queries", ())] == 10
        assert by_name[("repro_server_reads", ())] == scheme.server.reads
        assert by_name[("repro_servers", ())] >= 1
