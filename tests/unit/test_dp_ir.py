"""Tests for repro.core.dp_ir (Algorithm 1)."""

import math

import pytest

from repro.core.dp_ir import DPIR
from repro.storage.blocks import integer_database
from repro.storage.errors import RetrievalError
from repro.storage.transcript import Transcript


def _scheme(rng, n=64, epsilon=None, alpha=0.1, pad_size=None):
    db = integer_database(n)
    if epsilon is None and pad_size is None:
        epsilon = math.log(n)
    return DPIR(db, epsilon=epsilon, pad_size=pad_size, alpha=alpha,
                rng=rng.spawn("dpir")), db


class TestConstruction:
    def test_requires_exactly_one_parameter(self, small_db):
        with pytest.raises(ValueError):
            DPIR(small_db, epsilon=1.0, pad_size=2)
        with pytest.raises(ValueError):
            DPIR(small_db)

    def test_rejects_empty_database(self):
        with pytest.raises(ValueError):
            DPIR([], epsilon=1.0)

    def test_pad_size_resolution(self, rng):
        scheme, _ = _scheme(rng, n=1000, epsilon=math.log(1000), alpha=0.05)
        expected = math.ceil(0.95 * 1000 / (0.05 * (1000 - 1)))
        assert scheme.pad_size == expected
        assert scheme.epsilon <= math.log(1000)

    def test_explicit_pad_size(self, rng):
        scheme, _ = _scheme(rng, pad_size=5)
        assert scheme.pad_size == 5

    def test_exposes_exact_epsilon(self, rng):
        scheme, _ = _scheme(rng, n=64, pad_size=4, alpha=0.1)
        expected = math.log(0.9 * 64 / (0.1 * 4) + 1)
        assert scheme.epsilon == pytest.approx(expected)


class TestQuery:
    def test_successful_query_returns_block(self, rng):
        scheme, db = _scheme(rng, alpha=0.01)
        answers = [scheme.query(7) for _ in range(50)]
        successes = [a for a in answers if a is not None]
        assert successes  # alpha=0.01 so most succeed
        assert all(a == db[7] for a in successes)

    def test_error_rate_near_alpha(self, rng):
        scheme, _ = _scheme(rng, alpha=0.3)
        trials = 2000
        errors = sum(1 for _ in range(trials) if scheme.query(3) is None)
        assert 0.25 < errors / trials < 0.35

    def test_error_counter(self, rng):
        scheme, _ = _scheme(rng, alpha=0.5)
        for _ in range(100):
            scheme.query(0)
        assert scheme.query_count == 100
        assert scheme.error_count > 10
        assert scheme.error_count == sum(
            1 for _ in ()
        ) + scheme.error_count  # counter is stable

    def test_bandwidth_is_exactly_pad_size(self, rng):
        scheme, _ = _scheme(rng, pad_size=6)
        before = scheme.server.reads
        scheme.query(1)
        assert scheme.server.reads - before == 6

    def test_out_of_range_rejected(self, rng):
        scheme, _ = _scheme(rng)
        with pytest.raises(RetrievalError):
            scheme.query(scheme.n)
        with pytest.raises(RetrievalError):
            scheme.query(-1)

    def test_stateless_between_queries(self, rng):
        # IR keeps no client state: identical distributions per query,
        # checked coarsely via the pad contents covering the universe.
        scheme, _ = _scheme(rng, n=16, pad_size=4)
        seen = set()
        for _ in range(400):
            seen |= scheme.sample_query_set(0)
        assert seen == set(range(16))


class TestSampleQuerySet:
    def test_size_is_pad_size(self, rng):
        scheme, _ = _scheme(rng, pad_size=7)
        for _ in range(50):
            assert len(scheme.sample_query_set(2)) == 7

    def test_real_index_inclusion_rate(self, rng):
        scheme, _ = _scheme(rng, n=64, pad_size=2, alpha=0.25)
        trials = 3000
        included = sum(
            1 for _ in range(trials) if 5 in scheme.sample_query_set(5)
        )
        # Pr[q in T] = (1-a) + a*K/n = 0.75 + 0.25*2/64
        expected = 0.75 + 0.25 * 2 / 64
        assert abs(included / trials - expected) < 0.04

    def test_other_index_inclusion_rate(self, rng):
        scheme, _ = _scheme(rng, n=64, pad_size=2, alpha=0.25)
        trials = 3000
        included = sum(
            1 for _ in range(trials) if 9 in scheme.sample_query_set(5)
        )
        # Pr[q' in T] = (1-a)(K-1)/(n-1) + a*K/n
        expected = 0.75 * 1 / 63 + 0.25 * 2 / 64
        assert abs(included / trials - expected) < 0.03

    def test_does_not_touch_server(self, rng):
        scheme, _ = _scheme(rng)
        before = scheme.server.operations
        scheme.sample_query_set(0)
        assert scheme.server.operations == before


class TestTranscriptIntegration:
    def test_transcript_records_downloads_only(self, rng):
        scheme, _ = _scheme(rng, pad_size=3)
        transcript = Transcript()
        scheme.attach_transcript(transcript)
        scheme.query(4)
        assert len(transcript.downloads()) == 3
        assert len(transcript.uploads()) == 0

    def test_transcript_query_attribution(self, rng):
        scheme, _ = _scheme(rng, pad_size=2)
        transcript = Transcript()
        scheme.attach_transcript(transcript)
        scheme.query(0)
        scheme.query(1)
        assert transcript.query_count() == 2
