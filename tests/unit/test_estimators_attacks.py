"""Tests for repro.analysis.estimators and repro.analysis.attacks."""

import math

import pytest

from repro.analysis.attacks import (
    max_success_probability,
    membership_attack,
)
from repro.analysis.estimators import estimate_delta, estimate_epsilon


def _biased_sampler(bias):
    """Samples 'heads'/'tails' with Pr[heads] = bias."""

    def sampler(rng):
        return "heads" if rng.random() < bias else "tails"

    return sampler


class TestEstimateEpsilon:
    def test_identical_distributions_give_small_epsilon(self, rng):
        estimate = estimate_epsilon(
            _biased_sampler(0.5), _biased_sampler(0.5), 4000, rng
        )
        assert estimate.epsilon_hat < 0.2

    def test_distinct_distributions_detected(self, rng):
        estimate = estimate_epsilon(
            _biased_sampler(0.9), _biased_sampler(0.1), 4000, rng
        )
        # True log-ratio is ln(9) ~ 2.2; smoothing pulls it down a bit.
        assert estimate.epsilon_hat > 1.5

    def test_support_counted(self, rng):
        estimate = estimate_epsilon(
            _biased_sampler(0.5), _biased_sampler(0.5), 500, rng
        )
        assert estimate.support == 2
        assert estimate.trials == 500

    def test_reference_epsilon_delta(self, rng):
        estimate = estimate_epsilon(
            _biased_sampler(0.9), _biased_sampler(0.1), 3000, rng,
            reference_epsilon=0.0,
        )
        # At eps=0 the delta is about the total variation distance ~ 0.8.
        assert estimate.delta_hat == pytest.approx(0.8, abs=0.1)
        assert estimate.reference_epsilon == 0.0

    def test_rejects_bad_args(self, rng):
        with pytest.raises(ValueError):
            estimate_epsilon(_biased_sampler(0.5), _biased_sampler(0.5), 0, rng)
        with pytest.raises(ValueError):
            estimate_epsilon(
                _biased_sampler(0.5), _biased_sampler(0.5), 10, rng,
                smoothing=-1,
            )


class TestEstimateDelta:
    def test_identical_distributions_zero(self, rng):
        delta = estimate_delta(
            _biased_sampler(0.5), _biased_sampler(0.5), 1.0, 3000, rng
        )
        assert delta < 0.05

    def test_disjoint_supports_give_one(self, rng):
        delta = estimate_delta(
            _biased_sampler(1.0), _biased_sampler(0.0), 5.0, 1000, rng
        )
        assert delta == pytest.approx(1.0)

    def test_larger_epsilon_smaller_delta(self, rng):
        sampler_a, sampler_b = _biased_sampler(0.8), _biased_sampler(0.2)
        small = estimate_delta(sampler_a, sampler_b, 0.0, 3000,
                               rng.spawn("s"))
        large = estimate_delta(sampler_a, sampler_b, 2.0, 3000,
                               rng.spawn("l"))
        assert large < small

    def test_rejects_negative_epsilon(self, rng):
        with pytest.raises(ValueError):
            estimate_delta(_biased_sampler(0.5), _biased_sampler(0.5),
                           -1.0, 10, rng)


class TestMaxSuccessProbability:
    def test_perfect_privacy_is_coin_flip(self):
        assert max_success_probability(0.0, 0.0) == pytest.approx(0.5)

    def test_no_privacy_is_certainty(self):
        assert max_success_probability(0.0, 1.0) == pytest.approx(1.0)
        assert max_success_probability(50.0) == pytest.approx(1.0)

    def test_monotone_in_epsilon(self):
        values = [max_success_probability(eps) for eps in (0, 1, 2, 4)]
        assert values == sorted(values)

    def test_formula(self):
        assert max_success_probability(math.log(3)) == pytest.approx(
            1 - 1 / 6
        )

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            max_success_probability(-1)
        with pytest.raises(ValueError):
            max_success_probability(1, delta=2)


class TestMembershipAttack:
    def test_breaks_strawman(self, rng):
        from repro.core.strawman import StrawmanIR
        from repro.storage.blocks import integer_database

        scheme = StrawmanIR(integer_database(64), rng=rng.spawn("straw"))
        result = membership_attack(
            scheme.sample_query_set, 0, 1, 800, rng.spawn("attack")
        )
        assert result.success_rate > 0.9
        assert result.advantage > 0.4

    def test_respects_dpir_ceiling(self, rng):
        from repro.core.dp_ir import DPIR
        from repro.storage.blocks import integer_database

        scheme = DPIR(integer_database(64), pad_size=16, alpha=0.3,
                      rng=rng.spawn("dpir"))
        result = membership_attack(
            scheme.sample_query_set, 0, 1, 1500, rng.spawn("attack"),
            epsilon=scheme.epsilon,
        )
        assert result.bound is not None
        assert result.success_rate <= result.bound + 0.03

    def test_oblivious_scheme_gives_coin_flip(self, rng):
        # A sampler that ignores the query: success must hover at 1/2.
        def oblivious(query):
            del query
            return frozenset({0, 1})

        result = membership_attack(oblivious, 0, 1, 2000, rng)
        assert abs(result.success_rate - 0.5) < 0.05

    def test_rejects_equal_candidates(self, rng):
        with pytest.raises(ValueError):
            membership_attack(lambda q: frozenset(), 1, 1, 10, rng)

    def test_rejects_zero_trials(self, rng):
        with pytest.raises(ValueError):
            membership_attack(lambda q: frozenset(), 0, 1, 0, rng)
