"""Unit tests for ε burn-rate SLOs (``repro.obs.slo``)."""

from fractions import Fraction

import pytest

from repro.obs import evaluate_slo
from repro.obs.timeline import BudgetTimeline, SpendEvent


def _event(sequence, epsilon, operator="ledger", tenant=None):
    return SpendEvent(
        sequence=sequence, epsilon=Fraction(epsilon), delta=Fraction(0),
        operator=operator, shard=None, epoch=1, tenant=tenant,
    )


def _steady(count, epsilon="1/100"):
    return [_event(i, epsilon) for i in range(count)]


class TestEvaluateSlo:
    def test_sustainable_spend_is_healthy(self):
        # 100 events at 1/100 each against a budget of 1 over 100
        # events: burn rate is exactly 1x everywhere, far under 14x/6x.
        report = evaluate_slo(_steady(100), budget=1, horizon=100)
        assert not report.breached
        assert report.alerts == ()
        total = report.scopes[0]
        assert total["scope"] == "total"
        assert total["peak_fast_burn"] == pytest.approx(1.0)
        assert total["peak_slow_burn"] == pytest.approx(1.0)

    def test_spike_fires_fast_and_slow_windows(self):
        events = _steady(60)
        # A 20x spike sustained across the slow window.
        events += [_event(60 + i, Fraction(1, 5)) for i in range(20)]
        report = evaluate_slo(
            events, budget=1, horizon=100, fast_window=2, slow_window=10,
        )
        assert report.breached
        scopes = [alert.scope for alert in report.alerts]
        assert "total" in scopes
        alert = report.alerts[0]
        assert alert.fast_rate >= 14
        assert alert.slow_rate >= 6

    def test_short_spike_is_filtered_by_the_slow_window(self):
        events = _steady(98)
        events.append(_event(98, Fraction(1, 2)))  # one-event 50x blip
        events.append(_event(99, Fraction(1, 100)))
        report = evaluate_slo(
            events, budget=1, horizon=100, fast_window=1, slow_window=20,
        )
        total = report.scopes[0]
        assert total["peak_fast_burn"] >= 14.0
        assert total["peak_slow_burn"] < 6.0
        assert not report.breached

    def test_exact_threshold_equality_alerts(self):
        # Both windows land exactly on their thresholds: with budget 1
        # over 100 events the target rate is 1/100, so a constant spend
        # of 14/100 is precisely 14x; thresholds fast 14x / slow 14x.
        events = [_event(i, Fraction(14, 100)) for i in range(10)]
        report = evaluate_slo(
            events, budget=1, horizon=100, fast_window=1, slow_window=5,
            fast_burn=14, slow_burn=14,
        )
        assert report.breached  # >= comparisons, not >
        assert report.alerts[0].fast_rate == Fraction(14)
        assert report.alerts[0].slow_rate == Fraction(14)

    def test_scopes_cover_operators_and_tenants(self):
        events = [
            _event(0, "1/10", operator="shard-0", tenant="acme"),
            _event(1, "1/10", operator="shard-1", tenant="acme"),
            _event(2, "1/10", operator="shard-0"),
        ]
        report = evaluate_slo(events, budget=1, horizon=3)
        names = [scope["scope"] for scope in report.scopes]
        assert names == [
            "total", "operator:shard-0", "operator:shard-1", "tenant:acme",
        ]

    def test_breaching_scope_is_attributed(self):
        quiet = [_event(i, "1/1000", operator="shard-0") for i in range(50)]
        noisy = [
            _event(50 + i, "1/2", operator="shard-1", tenant="acme")
            for i in range(10)
        ]
        report = evaluate_slo(
            quiet + noisy, budget=1, horizon=100,
            fast_window=2, slow_window=5,
        )
        scopes = {alert.scope for alert in report.alerts}
        assert "operator:shard-1" in scopes
        assert "tenant:acme" in scopes
        assert "operator:shard-0" not in scopes

    def test_accepts_a_budget_timeline(self):
        timeline = BudgetTimeline()
        for _ in range(20):
            timeline.record(epsilon=Fraction(1, 2), operator="shard-0")
        report = evaluate_slo(timeline, budget=1, horizon=100)
        assert report.breached

    def test_string_budget_and_burns_are_exact(self):
        report = evaluate_slo(
            _steady(10), budget="3/2", horizon=10,
            fast_burn="7/2", slow_burn="3/2",
        )
        assert report.policy.budget == Fraction(3, 2)
        assert report.policy.fast_burn == Fraction(7, 2)
        assert not report.breached

    def test_nonpositive_budget_raises(self):
        with pytest.raises(ValueError):
            evaluate_slo(_steady(5), budget=0)
        with pytest.raises(ValueError):
            evaluate_slo(_steady(5), budget=-1)

    def test_default_windows_derive_from_horizon(self):
        report = evaluate_slo(_steady(10), budget=1, horizon=1000)
        assert report.policy.fast_window == 20   # horizon / 50
        assert report.policy.slow_window == 100  # horizon / 10

    def test_horizon_defaults_to_timeline_length(self):
        report = evaluate_slo(_steady(40), budget=1)
        assert report.policy.horizon == 40

    def test_report_round_trips_to_dict_and_text(self):
        report = evaluate_slo(
            _steady(20) + [_event(20, 1, tenant="acme")],
            budget=1, horizon=100, fast_window=1, slow_window=2,
        )
        data = report.to_dict()
        assert data["breached"] is True
        assert data["policy"]["horizon"] == 100
        assert data["alerts"]
        assert data["alerts"][0]["fast_rate"]["fraction"]
        text = report.to_text()
        assert "SLO breached" in text
        assert "ALERT" in text
        healthy = evaluate_slo(_steady(20), budget=1, horizon=20)
        assert "SLO healthy" in healthy.to_text()

    def test_empty_timeline_is_healthy(self):
        report = evaluate_slo([], budget=1)
        assert not report.breached
        assert report.scopes[0]["events"] == 0
