"""Unit tests for the structural trace diff (``repro.obs.diff``)."""

import copy

import pytest

from repro import SeededRandomSource
from repro.cluster import ClusterIR
from repro.obs import Tracer, canonical_trace, diff_traces
from repro.storage.blocks import integer_database


def _payload():
    return {
        "name": "cluster",
        "version": 1,
        "spans": [
            {
                "id": "1", "name": "round", "parent": None, "error": None,
                "sim_start_ms": 0.0, "sim_end_ms": 5.0, "wall_ms": 1.25,
                "labels": {"batch": 4},
            },
            {
                "id": "1.1", "name": "leg", "parent": "1", "error": None,
                "sim_start_ms": 0.0, "sim_end_ms": 3.0, "wall_ms": 0.75,
                "labels": {"shard": 0, "cost_ms": 3.0},
            },
            {
                "id": "1.2", "name": "leg", "parent": "1", "error": None,
                "sim_start_ms": 0.0, "sim_end_ms": 5.0, "wall_ms": 1.0,
                "labels": {"shard": 1, "cost_ms": 5.0},
            },
        ],
    }


class TestDiffTraces:
    def test_identical_payloads_are_identical(self):
        diff = diff_traces(_payload(), _payload())
        assert diff.identical
        assert diff.differences == ()
        assert diff.spans_a == diff.spans_b == 3

    def test_wall_clock_differences_are_ignored(self):
        other = _payload()
        for span in other["spans"]:
            span["wall_ms"] = span["wall_ms"] * 100 + 7
        diff = diff_traces(_payload(), other)
        assert diff.identical

    def test_label_value_change_is_a_difference(self):
        other = _payload()
        other["spans"][1]["labels"]["shard"] = 3
        diff = diff_traces(_payload(), other)
        assert not diff.identical
        assert any("shard" in line for line in diff.differences)

    def test_missing_span_is_reported_as_baseline_only(self):
        other = _payload()
        other["spans"].pop()
        diff = diff_traces(_payload(), other)
        assert not diff.identical
        assert any("only in baseline" in line for line in diff.differences)
        assert diff.spans_a == 3 and diff.spans_b == 2

    def test_extra_span_is_reported_as_candidate_only(self):
        other = _payload()
        other["spans"].append({
            "id": "1.3", "name": "leg", "parent": "1", "error": None,
            "sim_start_ms": 0.0, "sim_end_ms": 1.0, "labels": {},
        })
        diff = diff_traces(_payload(), other)
        assert any("only in candidate" in line for line in diff.differences)

    def test_name_and_error_mismatches_are_exact(self):
        other = _payload()
        other["spans"][0]["name"] = "batch_round"
        other["spans"][2]["error"] = "TimeoutError"
        diff = diff_traces(_payload(), other)
        assert len(diff.differences) == 2

    def test_tolerance_covers_small_sim_clock_drift(self):
        other = _payload()
        other["spans"][2]["sim_end_ms"] = 5.0 + 5e-7
        assert diff_traces(_payload(), other).identical
        assert not diff_traces(
            _payload(), other, tolerance=1e-9
        ).identical

    def test_tolerance_is_relative_for_large_values(self):
        base = _payload()
        base["spans"][0]["sim_end_ms"] = 1e9
        other = copy.deepcopy(base)
        other["spans"][0]["sim_end_ms"] = 1e9 + 100  # 1e-7 relative
        assert diff_traces(base, other).identical

    def test_numeric_labels_honor_the_tolerance(self):
        other = _payload()
        other["spans"][1]["labels"]["cost_ms"] = 3.0 + 1e-9
        assert diff_traces(_payload(), other).identical

    def test_negative_tolerance_raises(self):
        with pytest.raises(ValueError):
            diff_traces(_payload(), _payload(), tolerance=-1.0)

    def test_trace_name_mismatch_is_reported(self):
        other = _payload()
        other["name"] = "serving"
        diff = diff_traces(_payload(), other)
        assert any("trace name" in line for line in diff.differences)

    def test_to_dict_and_text_shapes(self):
        other = _payload()
        other["spans"][1]["labels"]["shard"] = 3
        diff = diff_traces(_payload(), other)
        data = diff.to_dict()
        assert data["identical"] is False
        assert data["differences"] == list(diff.differences)
        assert "traces differ" in diff.to_text()
        assert "traces structurally identical" in diff_traces(
            _payload(), _payload()
        ).to_text()

    def test_to_text_limit_truncates(self):
        other = _payload()
        for span in other["spans"]:
            span["name"] = span["name"] + "_x"
        text = diff_traces(_payload(), other).to_text(limit=1)
        assert "more" in text


class TestDiffRealRuns:
    """The determinism contract, end to end on real cluster runs."""

    def _trace(self, seed):
        from repro.cluster import cluster

        tracer = Tracer("cluster")
        cluster(
            "dp_ir", shards=2, replicas=1, n=128, requests=32,
            seed=seed, tracer=tracer,
        )
        return canonical_trace(tracer.export())

    def test_same_seed_reruns_diff_clean(self):
        assert diff_traces(self._trace(7), self._trace(7)).identical

    def test_seed_change_produces_differences(self):
        diff = diff_traces(self._trace(7), self._trace(8))
        assert not diff.identical

    def test_structural_change_produces_differences(self):
        tracer = Tracer("cluster")
        rng = SeededRandomSource(7)
        instance = ClusterIR(
            integer_database(128), shard_count=2, replica_count=1,
            rng=rng.spawn("cluster"), tracer=tracer,
        )
        for index in range(8):
            instance.query(index)
        instance.close()
        first = canonical_trace(tracer.export())

        tracer_b = Tracer("cluster")
        rng_b = SeededRandomSource(7)
        instance_b = ClusterIR(
            integer_database(128), shard_count=2, replica_count=1,
            rng=rng_b.spawn("cluster"), tracer=tracer_b,
        )
        for index in range(9):  # one extra round: a structural change
            instance_b.query(index)
        instance_b.close()
        second = canonical_trace(tracer_b.export())

        diff = diff_traces(first, second)
        assert not diff.identical
        assert any("only in candidate" in line for line in diff.differences)
