"""Text/JSON report parity: ``to_dict`` is the single source of truth.

The ``--json`` exports used to omit fields the text tables showed;
these tests pin the fix — ``to_rows``/``to_text`` render *from* the
``to_dict`` mapping, so injecting a sentinel dict must change the text,
and every figure the table shows must exist in the JSON view.
"""

import copy

from repro.cluster.service import cluster
from repro.serving import serve


def _run_serving():
    return serve(
        "batch_dp_ir", clients=3, requests_per_client=4, n=64, seed=11,
    )


def _run_cluster():
    return cluster(
        shards=2, replicas=1, n=64, requests=12, seed=11, pad_size=8,
    )


class TestServingReportParity:
    def test_rows_render_from_the_dict_view(self):
        report = _run_serving()
        data = report.to_dict()
        sentinel = copy.deepcopy(data)
        sentinel["completed"] = 424242
        sentinel["latency_ms"]["p95"] = 99.125
        rows = {row[0]: row[1] for row in report.to_rows(sentinel)}
        assert rows["completed"] == 424242
        assert rows["latency p95 ms"] == "99.12"

    def test_every_text_figure_is_in_the_json_export(self):
        report = _run_serving()
        data = report.to_dict()
        # Rendering the rows from a deep copy of the JSON view must not
        # touch the report object at all — proof nothing in the table
        # bypasses to_dict().
        rows = report.to_rows(copy.deepcopy(data))
        assert rows == report.to_rows()
        # Queue-wait shown in text comes from the exported summary.
        assert "queue_latency_ms" in data
        assert set(data["queue_latency_ms"]) == {
            "p50", "p95", "p99", "p999", "mean", "max",
        }

    def test_to_text_contains_tenant_table(self):
        report = _run_serving()
        text = report.to_text()
        for tenant in report.to_dict()["tenants"]:
            assert tenant["tenant"] in text


class TestClusterReportParity:
    def test_rows_render_from_the_dict_view(self):
        report = _run_cluster()
        sentinel = report.to_dict()
        sentinel["completed"] = 424242
        sentinel["budget"]["epochs"] = 77
        rows = {row[0]: row[1] for row in report.to_rows(sentinel)}
        assert rows["completed"] == 424242
        assert rows["budget epochs"] == 77

    def test_every_text_figure_is_in_the_json_export(self):
        report = _run_cluster()
        data = report.to_dict()
        rows = report.to_rows(copy.deepcopy(data))
        assert rows == report.to_rows()
        # Fields the text table shows must all be exported: epochs used
        # to be text-only, latency must carry the full summary.
        assert data["budget"]["epochs"] >= 1
        assert set(data["latency_ms"]) == {
            "p50", "p95", "p99", "p999", "mean", "max",
        }
        assert len(data["shards_detail"]) == data["shards"]

    def test_shard_table_rendered_from_dict(self):
        report = _run_cluster()
        text = report.to_text()
        for shard in report.to_dict()["shards_detail"]:
            assert f"{shard['epsilon_spent']:.2f}" in text
