"""Tests for repro.analysis.dp_ir_exact (Appendix B closed forms)."""

import itertools
import math

import pytest

from repro.analysis.dp_ir_exact import (
    dpir_exact_delta,
    dpir_expected_bandwidth,
    dpir_membership_probabilities,
    dpir_transcript_probability,
    strawman_exact_delta,
    strawman_expected_bandwidth,
    strawman_transcript_probability,
)
from repro.core.params import dp_ir_exact_epsilon


class TestDpirTranscriptProbability:
    def test_sums_to_one(self):
        n, k, alpha = 6, 3, 0.2
        total = sum(
            dpir_transcript_probability(n, k, alpha, 0, frozenset(subset))
            for subset in itertools.combinations(range(n), k)
        )
        assert total == pytest.approx(1.0)

    def test_wrong_size_subset_impossible(self):
        assert dpir_transcript_probability(6, 3, 0.2, 0, frozenset({1})) == 0.0

    def test_including_query_more_likely(self):
        n, k, alpha = 8, 2, 0.1
        with_query = dpir_transcript_probability(
            n, k, alpha, 0, frozenset({0, 3})
        )
        without_query = dpir_transcript_probability(
            n, k, alpha, 0, frozenset({2, 3})
        )
        assert with_query > without_query

    def test_ratio_matches_exact_epsilon(self):
        # The worst-case transcript ratio equals e^eps from Appendix B.
        n, k, alpha = 10, 3, 0.2
        subset = frozenset({0, 4, 5})
        p_real = dpir_transcript_probability(n, k, alpha, 0, subset)
        p_other = dpir_transcript_probability(n, k, alpha, 1, subset)
        assert math.log(p_real / p_other) == pytest.approx(
            dp_ir_exact_epsilon(n, k, alpha)
        )

    def test_matches_sampled_frequencies(self, rng):
        from repro.core.dp_ir import DPIR
        from repro.storage.blocks import integer_database

        n, k, alpha = 6, 2, 0.3
        scheme = DPIR(integer_database(n), pad_size=k, alpha=alpha,
                      rng=rng.spawn("freq"))
        trials = 6000
        counts: dict[frozenset, int] = {}
        for _ in range(trials):
            subset = scheme.sample_query_set(2)
            counts[subset] = counts.get(subset, 0) + 1
        for subset, count in counts.items():
            exact = dpir_transcript_probability(n, k, alpha, 2, subset)
            assert count / trials == pytest.approx(exact, abs=0.02)

    def test_rejects_out_of_range_query(self):
        with pytest.raises(ValueError):
            dpir_transcript_probability(5, 2, 0.1, 5, frozenset({0, 1}))

    def test_rejects_out_of_range_member(self):
        with pytest.raises(ValueError):
            dpir_transcript_probability(5, 2, 0.1, 0, frozenset({0, 9}))


class TestDpirExactDelta:
    def test_zero_at_exact_epsilon(self):
        n, k, alpha = 100, 4, 0.1
        epsilon = dp_ir_exact_epsilon(n, k, alpha)
        assert dpir_exact_delta(n, k, alpha, epsilon) == pytest.approx(
            0.0, abs=1e-12
        )

    def test_positive_below_exact_epsilon(self):
        n, k, alpha = 100, 4, 0.1
        epsilon = dp_ir_exact_epsilon(n, k, alpha)
        assert dpir_exact_delta(n, k, alpha, epsilon * 0.5) > 0

    def test_monotone_in_epsilon(self):
        n, k, alpha = 64, 3, 0.2
        deltas = [dpir_exact_delta(n, k, alpha, eps) for eps in (0, 1, 2, 4)]
        assert deltas == sorted(deltas, reverse=True)

    def test_full_download_zero_delta(self):
        assert dpir_exact_delta(16, 16, 0.1, 0.0) == 0.0

    def test_delta_bounded_by_one(self):
        assert dpir_exact_delta(100, 1, 0.01, 0.0) <= 1.0


class TestMembershipProbabilities:
    def test_own_vs_other(self):
        own, other = dpir_membership_probabilities(64, 4, 0.1)
        assert own > other
        assert own == pytest.approx(0.9 + 0.1 * 4 / 64)
        assert other == pytest.approx(0.9 * 3 / 63 + 0.1 * 4 / 64)

    def test_full_pad_equalizes(self):
        own, other = dpir_membership_probabilities(16, 16, 0.1)
        assert own == pytest.approx(1.0)
        assert other == pytest.approx(1.0)


class TestStrawman:
    def test_probability_zero_without_query(self):
        assert strawman_transcript_probability(8, 0, frozenset({1, 2})) == 0.0

    def test_probability_formula(self):
        n = 8
        p = strawman_transcript_probability(n, 0, frozenset({0, 3}))
        assert p == pytest.approx((1 / n) * (1 - 1 / n) ** (n - 2))

    def test_sums_to_one(self):
        n = 5
        total = 0.0
        for size in range(1, n + 1):
            for subset in itertools.combinations(range(n), size):
                if 0 in subset:
                    total += strawman_transcript_probability(
                        n, 0, frozenset(subset)
                    )
        assert total == pytest.approx(1.0)

    def test_delta_is_one_minus_one_over_n(self):
        for n in (2, 10, 1000):
            assert strawman_exact_delta(n, 5.0) == pytest.approx(1 - 1 / n)

    def test_delta_epsilon_independent(self):
        assert strawman_exact_delta(64, 0.0) == strawman_exact_delta(64, 100.0)


class TestBandwidthFormulas:
    def test_dpir_bandwidth(self):
        assert dpir_expected_bandwidth(100, 7) == 7.0

    def test_strawman_bandwidth(self):
        assert strawman_expected_bandwidth(100) == pytest.approx(1.99)
        assert strawman_expected_bandwidth(1) == 1.0
