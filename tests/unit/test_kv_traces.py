"""Tests for repro.workloads.kv_traces."""

import pytest

from repro.workloads.kv_traces import (
    KVOperation,
    KVOpKind,
    insert_then_lookup_trace,
    random_keys,
    ycsb_trace,
)


class TestKVOperation:
    def test_builders(self):
        get = KVOperation.get(b"k")
        put = KVOperation.put(b"k", b"v")
        assert get.kind is KVOpKind.GET
        assert put.kind is KVOpKind.PUT
        assert put.value == b"v"

    def test_put_requires_value(self):
        with pytest.raises(ValueError):
            KVOperation(KVOpKind.PUT, b"k")

    def test_get_rejects_value(self):
        with pytest.raises(ValueError):
            KVOperation(KVOpKind.GET, b"k", b"v")


class TestRandomKeys:
    def test_distinct_and_sized(self, rng):
        keys = random_keys(100, rng, length=12)
        assert len(keys) == 100
        assert len(set(keys)) == 100
        assert all(len(key) == 12 for key in keys)

    def test_zero(self, rng):
        assert random_keys(0, rng) == []

    def test_rejects_negative(self, rng):
        with pytest.raises(ValueError):
            random_keys(-1, rng)


class TestInsertThenLookup:
    def test_structure(self, rng):
        trace = insert_then_lookup_trace(20, 50, rng, missing_fraction=0.2)
        puts = [op for op in trace if op.kind is KVOpKind.PUT]
        gets = [op for op in trace if op.kind is KVOpKind.GET]
        assert len(puts) == 20
        assert len(gets) == 50
        # puts come first (the load phase)
        assert all(op.kind is KVOpKind.PUT for op in list(trace)[:20])

    def test_missing_lookups_present(self, rng):
        trace = insert_then_lookup_trace(10, 200, rng, missing_fraction=0.5)
        inserted = {op.key for op in trace if op.kind is KVOpKind.PUT}
        gets = [op for op in trace if op.kind is KVOpKind.GET]
        missing = sum(1 for op in gets if op.key not in inserted)
        assert 50 < missing < 150

    def test_all_missing(self, rng):
        trace = insert_then_lookup_trace(5, 30, rng, missing_fraction=1.0)
        inserted = {op.key for op in trace if op.kind is KVOpKind.PUT}
        gets = [op for op in trace if op.kind is KVOpKind.GET]
        assert all(op.key not in inserted for op in gets)

    def test_rejects_bad_fraction(self, rng):
        with pytest.raises(ValueError):
            insert_then_lookup_trace(5, 5, rng, missing_fraction=1.5)


class TestYcsbTrace:
    def test_profile_c_is_read_only_after_load(self, rng):
        trace = ycsb_trace(10, 100, rng, profile="C")
        after_load = list(trace)[10:]
        assert all(op.kind is KVOpKind.GET for op in after_load)

    def test_profile_a_mixes(self, rng):
        trace = ycsb_trace(10, 1000, rng, profile="A")
        after_load = list(trace)[10:]
        reads = sum(1 for op in after_load if op.kind is KVOpKind.GET)
        assert 350 < reads < 650

    def test_profile_b_mostly_reads(self, rng):
        trace = ycsb_trace(10, 1000, rng, profile="B")
        after_load = list(trace)[10:]
        reads = sum(1 for op in after_load if op.kind is KVOpKind.GET)
        assert reads > 900

    def test_operations_target_loaded_keys(self, rng):
        trace = ycsb_trace(15, 200, rng, profile="B")
        loaded = {op.key for op in list(trace)[:15]}
        assert all(op.key in loaded for op in list(trace)[15:])

    def test_unknown_profile_rejected(self, rng):
        with pytest.raises(ValueError):
            ycsb_trace(10, 10, rng, profile="Z")

    def test_keys_helper(self, rng):
        trace = ycsb_trace(5, 20, rng)
        assert len(trace.keys()) == 25
