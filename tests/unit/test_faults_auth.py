"""Tests for repro.storage.faults and authenticated encryption."""

import pytest

from repro.crypto.encryption import (
    AUTHENTICATED_OVERHEAD,
    IntegrityError,
    decrypt,
    decrypt_authenticated,
    encrypt,
    encrypt_authenticated,
    generate_key,
)
from repro.storage.faults import CorruptingServer, FlakyServer, ServerFault
from repro.storage.server import StorageServer


@pytest.fixture
def key(rng):
    return generate_key(rng.spawn("key"))


class TestAuthenticatedEncryption:
    def test_roundtrip(self, key, rng):
        plaintext = b"integrity matters"
        sealed = encrypt_authenticated(key, plaintext, rng)
        assert decrypt_authenticated(key, sealed) == plaintext

    def test_overhead(self, key, rng):
        sealed = encrypt_authenticated(key, b"x" * 32, rng)
        assert len(sealed) == 32 + AUTHENTICATED_OVERHEAD

    def test_detects_bit_flip_anywhere(self, key, rng):
        sealed = bytearray(encrypt_authenticated(key, b"payload" * 4, rng))
        for position in (0, len(sealed) // 2, len(sealed) - 1):
            tampered = bytearray(sealed)
            tampered[position] ^= 0x01
            with pytest.raises(IntegrityError):
                decrypt_authenticated(key, bytes(tampered))

    def test_detects_truncation(self, key, rng):
        sealed = encrypt_authenticated(key, b"payload", rng)
        with pytest.raises(IntegrityError):
            decrypt_authenticated(key, sealed[:-1])

    def test_rejects_too_short(self, key):
        with pytest.raises(IntegrityError):
            decrypt_authenticated(key, b"short")

    def test_plain_decrypt_does_not_detect(self, key, rng):
        # The contrast that motivates the authenticated mode: plain CTR
        # decryption of a tampered ciphertext silently garbles.
        sealed = bytearray(encrypt(key, b"A" * 16, rng))
        sealed[-1] ^= 0xFF
        garbled = decrypt(key, bytes(sealed))
        assert garbled != b"A" * 16  # wrong data, no exception


class TestCorruptingServer:
    def _wrapped(self, rng, rate):
        inner = StorageServer(8)
        inner.load([bytes([i]) * 16 for i in range(8)])
        return CorruptingServer(inner, rate, rng.spawn("faults")), inner

    def test_zero_rate_is_transparent(self, rng):
        server, inner = self._wrapped(rng, 0.0)
        for i in range(8):
            assert server.read(i) == inner.peek(i)
        assert server.corrupted_reads == 0

    def test_full_rate_corrupts_every_read(self, rng):
        server, inner = self._wrapped(rng, 1.0)
        for i in range(8):
            assert server.read(i) != inner.peek(i)
        assert server.corrupted_reads == 8

    def test_corruption_is_single_bit(self, rng):
        server, inner = self._wrapped(rng, 1.0)
        block = server.read(3)
        original = inner.peek(3)
        differing_bits = sum(
            bin(a ^ b).count("1") for a, b in zip(block, original)
        )
        assert differing_bits == 1

    def test_delegates_other_attributes(self, rng):
        server, inner = self._wrapped(rng, 0.5)
        assert server.capacity == inner.capacity

    def test_rejects_bad_rate(self, rng):
        inner = StorageServer(1)
        with pytest.raises(ValueError):
            CorruptingServer(inner, 1.5, rng)

    def test_authenticated_scheme_detects_corruption(self, rng):
        key = generate_key(rng.spawn("k"))
        inner = StorageServer(4)
        inner.load([
            encrypt_authenticated(key, bytes([i]) * 16, rng.spawn(f"e{i}"))
            for i in range(4)
        ])
        server = CorruptingServer(inner, 1.0, rng.spawn("f"))
        with pytest.raises(IntegrityError):
            decrypt_authenticated(key, server.read(0))

    def test_plain_scheme_misses_corruption(self, rng):
        key = generate_key(rng.spawn("k"))
        inner = StorageServer(1)
        inner.load([encrypt(key, b"Z" * 16, rng.spawn("e"))])
        server = CorruptingServer(inner, 1.0, rng.spawn("f"))
        garbled = decrypt(key, server.read(0))
        assert garbled != b"Z" * 16  # silently wrong — no detection


class TestFlakyServer:
    def test_zero_rate_transparent(self, rng):
        inner = StorageServer(4)
        inner.load([b"a", b"b", b"c", b"d"])
        server = FlakyServer(inner, 0.0, rng.spawn("f"))
        assert server.read(1) == b"b"
        server.write(1, b"x")
        assert server.failures == 0

    def test_full_rate_always_fails(self, rng):
        inner = StorageServer(4)
        inner.load([b"a", b"b", b"c", b"d"])
        server = FlakyServer(inner, 1.0, rng.spawn("f"))
        with pytest.raises(ServerFault):
            server.read(0)
        with pytest.raises(ServerFault):
            server.write(0, b"x")
        assert server.failures == 2

    def test_partial_rate_counts(self, rng):
        inner = StorageServer(4)
        inner.load([b"a"] * 4)
        server = FlakyServer(inner, 0.5, rng.spawn("f"))
        outcomes = 0
        for _ in range(200):
            try:
                server.read(0)
                outcomes += 1
            except ServerFault:
                pass
        assert 50 < outcomes < 150
        assert server.failures == 200 - outcomes

    def test_failed_write_leaves_data_intact(self, rng):
        inner = StorageServer(1)
        inner.load([b"original"])
        server = FlakyServer(inner, 1.0, rng.spawn("f"))
        with pytest.raises(ServerFault):
            server.write(0, b"clobber!")
        assert inner.peek(0) == b"original"

    def test_rejects_bad_rate(self, rng):
        with pytest.raises(ValueError):
            FlakyServer(StorageServer(1), -0.1, rng)
