"""Tests for repro.baselines.recursive_oram."""

import pytest

from repro.baselines.recursive_oram import RecursivePathORAM
from repro.storage.blocks import encode_int, integer_database
from repro.storage.errors import RetrievalError


def _oram(rng, n=256, chi=4, limit=8):
    return RecursivePathORAM(
        integer_database(n), positions_per_block=chi, client_map_limit=limit,
        rng=rng.spawn("recursive"),
    )


class TestConstruction:
    def test_rejects_empty(self, rng):
        with pytest.raises(ValueError):
            RecursivePathORAM([], rng=rng)

    def test_rejects_bad_chi(self, rng, small_db):
        with pytest.raises(ValueError):
            RecursivePathORAM(small_db, positions_per_block=1, rng=rng)

    def test_rejects_bad_limit(self, rng, small_db):
        with pytest.raises(ValueError):
            RecursivePathORAM(small_db, client_map_limit=0, rng=rng)

    def test_level_count_grows_with_n(self, rng):
        shallow = _oram(rng, n=64, chi=4, limit=8)
        deep = _oram(rng, n=1024, chi=4, limit=8)
        assert deep.levels > shallow.levels

    def test_client_map_fits_limit(self, rng):
        oram = _oram(rng, n=512, chi=4, limit=8)
        assert oram.client_position_entries <= 8

    def test_small_db_single_level(self, rng):
        oram = RecursivePathORAM(integer_database(16),
                                 client_map_limit=64, rng=rng)
        assert oram.levels == 1
        assert oram.roundtrips_per_access == 1

    def test_chi_reduces_levels(self, rng):
        narrow = _oram(rng, n=1024, chi=2, limit=8)
        wide = _oram(rng, n=1024, chi=16, limit=8)
        assert wide.levels < narrow.levels


class TestCorrectness:
    def test_initial_reads(self, rng):
        oram = _oram(rng, n=128)
        db = integer_database(128)
        for index in range(0, 128, 7):
            assert oram.read(index) == db[index]

    def test_write_then_read(self, rng):
        oram = _oram(rng, n=64)
        oram.write(9, encode_int(999))
        assert oram.read(9) == encode_int(999)

    def test_random_workload(self, rng):
        oram = _oram(rng, n=128)
        reference = {i: encode_int(i) for i in range(128)}
        source = rng.spawn("ops")
        for step in range(300):
            index = source.randbelow(128)
            if source.random() < 0.4:
                value = encode_int(50_000 + step)
                oram.write(index, value)
                reference[index] = value
            else:
                assert oram.read(index) == reference[index]

    def test_repeated_same_index(self, rng):
        # Stresses map-block churn: the same packed map block is hit
        # every access.
        oram = _oram(rng, n=64)
        for step in range(50):
            oram.write(5, encode_int(step))
            assert oram.read(5) == encode_int(step)

    def test_out_of_range(self, rng):
        oram = _oram(rng, n=32)
        with pytest.raises(RetrievalError):
            oram.read(32)
        with pytest.raises(RetrievalError):
            oram.write(-1, b"x")


class TestAccounting:
    def test_blocks_per_access_sums_levels(self, rng):
        oram = _oram(rng, n=256)
        per_level = [level.blocks_per_access() for level in oram._levels]
        assert oram.blocks_per_access() == sum(per_level)

    def test_server_operations_measured(self, rng):
        oram = _oram(rng, n=128)
        before = oram.server_operations()
        oram.read(0)
        moved = oram.server_operations() - before
        assert moved == oram.blocks_per_access()

    def test_roundtrips_equal_levels(self, rng):
        oram = _oram(rng, n=512, chi=4, limit=8)
        assert oram.roundtrips_per_access == oram.levels >= 4

    def test_harness_integration(self, rng):
        from repro.simulation.harness import run_ram_trace
        from repro.workloads.generators import read_write_trace

        n = 128
        database = integer_database(n)
        oram = _oram(rng, n=n)
        trace = read_write_trace(n, 60, rng.spawn("t"), write_fraction=0.3)
        metrics = run_ram_trace(oram, trace, initial=database)
        assert metrics.mismatches == 0
        assert metrics.blocks_per_operation == oram.blocks_per_access()
        assert metrics.client_peak_blocks == oram.client_peak_blocks

    def test_query_counter(self, rng):
        oram = _oram(rng, n=64)
        oram.read(0)
        oram.write(1, encode_int(1))
        assert oram.query_count == 2
