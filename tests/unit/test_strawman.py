"""Tests for repro.core.strawman (the insecure Section 4 scheme)."""

import pytest

from repro.core.strawman import StrawmanIR
from repro.storage.blocks import integer_database
from repro.storage.errors import RetrievalError


@pytest.fixture
def scheme(rng):
    return StrawmanIR(integer_database(64), rng=rng.spawn("straw"))


class TestStrawman:
    def test_always_correct(self, scheme):
        db = integer_database(64)
        for index in (0, 13, 63):
            for _ in range(20):
                assert scheme.query(index) == db[index]

    def test_real_block_always_in_set(self, scheme):
        for _ in range(200):
            assert 11 in scheme.sample_query_set(11)

    def test_noise_rate_one_over_n(self, scheme):
        trials = 2000
        total_extras = sum(
            len(scheme.sample_query_set(0)) - 1 for _ in range(trials)
        )
        # E[extras] = (n-1)/n ~ 0.984
        assert 0.85 < total_extras / trials < 1.15

    def test_leaks_membership(self, scheme):
        # The defining failure: q' not in T almost always when querying q.
        trials = 500
        leaked = sum(
            1 for _ in range(trials) if 1 not in scheme.sample_query_set(0)
        )
        assert leaked / trials > 0.9

    def test_expected_bandwidth_constant(self, scheme):
        before = scheme.server.reads
        queries = 300
        for _ in range(queries):
            scheme.query(5)
        per_query = (scheme.server.reads - before) / queries
        assert per_query < 3.0  # ~2 blocks in expectation

    def test_out_of_range(self, scheme):
        with pytest.raises(RetrievalError):
            scheme.query(64)

    def test_rejects_empty_database(self):
        with pytest.raises(ValueError):
            StrawmanIR([])

    def test_query_counter(self, scheme):
        scheme.query(0)
        scheme.query(1)
        assert scheme.query_count == 2
