"""Audit boundary semantics: spend exactly at the cap is NOT a crossing.

The ledgers and the timeline do exact :class:`fractions.Fraction`
arithmetic precisely so this boundary is crisp: a deployment that
spends its budget to the last drop is compliant; one more charge —
however small — is not.  These tests pin that down at the timeline
level and end to end through ``python -m repro audit --cap``.
"""

import json
from fractions import Fraction

import pytest

from repro.__main__ import main
from repro.obs import BudgetTimeline


class TestTimelineCapBoundary:
    def test_spend_exactly_equal_to_cap_does_not_cross(self):
        cap = Fraction(7, 3)
        timeline = BudgetTimeline(cap=cap)
        for _ in range(7):
            timeline.record(epsilon=Fraction(1, 3), operator="shard-0")
        assert timeline.per_operator()["shard-0"] == cap
        assert timeline.first_crossing is None

    def test_one_event_past_the_cap_crosses(self):
        cap = Fraction(7, 3)
        timeline = BudgetTimeline(cap=cap)
        for _ in range(7):
            timeline.record(epsilon=Fraction(1, 3), operator="shard-0")
        crossing = timeline.record(
            epsilon=Fraction(1, 10**12), operator="shard-0"
        )
        assert timeline.first_crossing is crossing
        assert crossing.sequence == 7

    def test_cap_is_per_operator_not_total(self):
        timeline = BudgetTimeline(cap=Fraction(1))
        timeline.record(epsilon=Fraction(1), operator="shard-0")
        timeline.record(epsilon=Fraction(1), operator="shard-1")
        # Each operator sits exactly at the cap; the colluding total
        # (2) is over it, but no single operator crossed.
        assert timeline.first_crossing is None

    def test_float_cap_image_would_get_the_boundary_wrong(self):
        # 0.1 * 10 != 1.0 in floats; ten exact 1/10 charges against an
        # exact cap of 1 must land precisely on the boundary.
        timeline = BudgetTimeline(cap=Fraction(1))
        for _ in range(10):
            timeline.record(epsilon=Fraction(1, 10), operator="shard-0")
        assert timeline.first_crossing is None


AUDIT_ARGS = [
    "audit", "--shards", "2", "--requests", "16", "--n", "128",
    "--seed", "7",
]


@pytest.fixture(scope="module")
def audit_spend():
    """Exact per-operator spend of the pinned audit config."""
    # Run once uncapped to learn the exact totals; module-scoped so the
    # three CLI boundary tests pay for one extra run, not three.
    import contextlib
    import io

    stdout = io.StringIO()
    with contextlib.redirect_stdout(stdout):
        status = main(AUDIT_ARGS + ["--json"])
    assert status == 0
    payload = json.loads(stdout.getvalue())
    return {
        operator: Fraction(entry["fraction"])
        for operator, entry in payload["per_operator"].items()
    }


class TestAuditCliCapBoundary:
    def test_cap_exactly_at_peak_spend_exits_zero(self, audit_spend, capsys):
        peak = max(audit_spend.values())
        cap = f"{peak.numerator}/{peak.denominator}"
        assert main(AUDIT_ARGS + ["--cap", cap]) == 0
        captured = capsys.readouterr()
        assert "never crossed" in captured.out
        assert "crossed" not in captured.err

    def test_cap_one_sliver_below_peak_exits_one(self, audit_spend, capsys):
        peak = max(audit_spend.values())
        below = peak - Fraction(1, 10**12)
        cap = f"{below.numerator}/{below.denominator}"
        assert main(AUDIT_ARGS + ["--cap", cap]) == 1
        captured = capsys.readouterr()
        assert "budget cap crossed" in captured.err

    def test_generous_cap_exits_zero(self, audit_spend, capsys):
        peak = max(audit_spend.values())
        cap = str(peak.numerator // peak.denominator + 1000)
        assert main(AUDIT_ARGS + ["--cap", cap]) == 0
        capsys.readouterr()
