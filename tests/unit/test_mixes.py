"""Tests for repro.workloads.mixes."""

import pytest

from repro.workloads.generators import sequential_trace, uniform_trace
from repro.workloads.mixes import (
    burst_trace,
    concat_traces,
    interleave_traces,
    working_set_shift_trace,
)


class TestConcat:
    def test_phases_in_order(self, rng):
        first = sequential_trace(8, 4)
        second = sequential_trace(8, 4, start=4)
        combined = concat_traces([first, second])
        assert combined.indices() == first.indices() + second.indices()
        assert combined.universe == 8

    def test_name_combines(self, rng):
        combined = concat_traces(
            [sequential_trace(4, 2), sequential_trace(4, 2)], name="phased"
        )
        assert combined.name == "phased"

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            concat_traces([])

    def test_rejects_universe_mismatch(self):
        with pytest.raises(ValueError):
            concat_traces([sequential_trace(4, 2), sequential_trace(8, 2)])


class TestInterleave:
    def test_preserves_per_trace_order(self, rng):
        first = sequential_trace(16, 6)          # 0,1,2,3,4,5
        second = sequential_trace(16, 6, start=10)  # 10..15
        merged = interleave_traces([first, second], rng)
        low = [op.index for op in merged if op.index < 10]
        high = [op.index for op in merged if op.index >= 10]
        assert low == first.indices()
        assert high == second.indices()
        assert len(merged) == 12

    def test_actually_interleaves(self, rng):
        first = sequential_trace(16, 20)
        second = sequential_trace(16, 20, start=8)
        merged = interleave_traces([first, second], rng)
        # Not simply concatenated: some high index precedes a low index.
        indices = merged.indices()
        assert indices != first.indices() + second.indices()

    def test_single_trace_identity(self, rng):
        trace = sequential_trace(8, 5)
        merged = interleave_traces([trace], rng)
        assert merged.indices() == trace.indices()

    def test_rejects_empty(self, rng):
        with pytest.raises(ValueError):
            interleave_traces([], rng)

    def test_rejects_universe_mismatch(self, rng):
        with pytest.raises(ValueError):
            interleave_traces(
                [sequential_trace(4, 2), sequential_trace(8, 2)], rng
            )

    def test_many_tenants_each_keep_order(self, rng):
        # The serving layer's multi-tenant regime: disjoint index bands
        # per tenant, every band's internal order intact after merging.
        tenants = [sequential_trace(64, 8, start=16 * t) for t in range(4)]
        merged = interleave_traces(tenants, rng)
        assert len(merged) == 32
        for which, tenant in enumerate(tenants):
            band = [op.index for op in merged
                    if 16 * which <= op.index < 16 * (which + 1)]
            assert band == tenant.indices()

    def test_unequal_lengths_all_operations_survive(self, rng):
        short = sequential_trace(32, 2)
        long = sequential_trace(32, 10, start=16)
        merged = interleave_traces([short, long], rng)
        assert sorted(merged.indices()) == sorted(
            short.indices() + long.indices()
        )

    def test_seeded_determinism(self):
        from repro.crypto.rng import SeededRandomSource

        traces = [sequential_trace(32, 6), sequential_trace(32, 6, start=8)]
        first = interleave_traces(traces, SeededRandomSource(17))
        second = interleave_traces(traces, SeededRandomSource(17))
        assert first.indices() == second.indices()


class TestBurst:
    def test_length(self, rng):
        trace = burst_trace(64, bursts=5, burst_length=20, rng=rng)
        assert len(trace) == 100

    def test_bursts_concentrate(self, rng):
        trace = burst_trace(1024, bursts=1, burst_length=100, rng=rng)
        counts: dict[int, int] = {}
        for op in trace:
            counts[op.index] = counts.get(op.index, 0) + 1
        assert max(counts.values()) > 60  # ~80% on the hot record

    def test_different_bursts_different_records(self, rng):
        trace = burst_trace(1 << 20, bursts=4, burst_length=50, rng=rng)
        hot_records = set()
        for start in range(0, 200, 50):
            window = [op.index for op in list(trace)[start : start + 50]]
            hot_records.add(max(set(window), key=window.count))
        assert len(hot_records) >= 3

    def test_zero_bursts(self, rng):
        assert len(burst_trace(8, 0, 10, rng)) == 0

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            burst_trace(0, 1, 1, rng)
        with pytest.raises(ValueError):
            burst_trace(8, -1, 1, rng)


class TestWorkingSetShift:
    def test_length(self, rng):
        trace = working_set_shift_trace(256, phases=3, phase_length=40,
                                        working_set=16, rng=rng)
        assert len(trace) == 120

    def test_phase_locality(self, rng):
        universe = 1 << 16
        trace = working_set_shift_trace(universe, phases=1, phase_length=200,
                                        working_set=32, rng=rng)
        # All queries land in one circular window of size 32: the largest
        # circular gap between touched indices must span nearly everything.
        touched = sorted(set(trace.indices()))
        gaps = [
            (touched[(i + 1) % len(touched)] - touched[i]) % universe
            for i in range(len(touched))
        ]
        assert max(gaps) >= universe - 32

    def test_phases_move(self, rng):
        trace = working_set_shift_trace(1 << 16, phases=4, phase_length=50,
                                        working_set=8, rng=rng)
        starts = []
        for phase in range(4):
            window = trace.indices()[phase * 50 : (phase + 1) * 50]
            starts.append(min(window))
        assert len(set(starts)) >= 3

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            working_set_shift_trace(0, 1, 1, 1, rng)
        with pytest.raises(ValueError):
            working_set_shift_trace(8, 1, 1, 9, rng)
        with pytest.raises(ValueError):
            working_set_shift_trace(8, -1, 1, 4, rng)


class TestMixesThroughSchemes:
    def test_dpram_on_composite_workload(self, rng):
        from repro.core.dp_ram import DPRAM
        from repro.simulation.harness import run_ram_trace
        from repro.storage.blocks import integer_database

        n = 128
        database = integer_database(n)
        composite = concat_traces([
            burst_trace(n, 2, 30, rng.spawn("b")),
            working_set_shift_trace(n, 2, 30, 16, rng.spawn("w")),
            uniform_trace(n, 30, rng.spawn("u")),
        ])
        scheme = DPRAM(database, rng=rng.spawn("ram"))
        metrics = run_ram_trace(scheme, composite, initial=database)
        assert metrics.mismatches == 0
        assert metrics.blocks_per_operation == 3.0
