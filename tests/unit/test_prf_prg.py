"""Tests for repro.crypto.prf and repro.crypto.prg."""

import pytest

from repro.crypto.prf import PRF
from repro.crypto.prg import CounterPRG


class TestPRF:
    def test_deterministic(self):
        prf = PRF(b"key material")
        assert prf.evaluate(b"message") == prf.evaluate(b"message")

    def test_distinct_messages_distinct_outputs(self):
        prf = PRF(b"key material")
        assert prf.evaluate(b"a") != prf.evaluate(b"b")

    def test_distinct_keys_distinct_outputs(self):
        assert PRF(b"k1").evaluate(b"m") != PRF(b"k2").evaluate(b"m")

    def test_output_length(self):
        assert len(PRF(b"k").evaluate(b"m")) == 32

    def test_rejects_empty_key(self):
        with pytest.raises(ValueError):
            PRF(b"")

    def test_rejects_non_bytes_key(self):
        with pytest.raises(TypeError):
            PRF("string key")

    def test_integer_in_range(self):
        prf = PRF(b"k")
        for i in range(100):
            assert 0 <= prf.integer(str(i).encode(), 17) < 17

    def test_integer_rejects_nonpositive_modulus(self):
        with pytest.raises(ValueError):
            PRF(b"k").integer(b"m", 0)

    def test_integer_covers_range(self):
        prf = PRF(b"k")
        seen = {prf.integer(str(i).encode(), 5) for i in range(200)}
        assert seen == {0, 1, 2, 3, 4}

    def test_choices_count_and_range(self):
        prf = PRF(b"k")
        choices = prf.choices(b"key", 100, 3)
        assert len(choices) == 3
        assert all(0 <= c < 100 for c in choices)

    def test_choices_deterministic(self):
        prf = PRF(b"k")
        assert prf.choices(b"key", 100, 2) == prf.choices(b"key", 100, 2)

    def test_choices_are_domain_separated(self):
        prf = PRF(b"k")
        # choices(i) should not just repeat the same value d times.
        many = [prf.choices(str(i).encode(), 10**6, 2) for i in range(50)]
        assert any(a != b for a, b in many)

    def test_choices_rejects_negative_count(self):
        with pytest.raises(ValueError):
            PRF(b"k").choices(b"m", 10, -1)

    def test_subkey_differs_from_parent(self):
        prf = PRF(b"k")
        child = prf.subkey("label")
        assert child.evaluate(b"m") != prf.evaluate(b"m")

    def test_subkeys_by_label_independent(self):
        prf = PRF(b"k")
        assert prf.subkey("a").evaluate(b"m") != prf.subkey("b").evaluate(b"m")

    def test_subkey_deterministic(self):
        assert PRF(b"k").subkey("x").key == PRF(b"k").subkey("x").key


class TestCounterPRG:
    def test_deterministic(self):
        assert CounterPRG(b"seed").read(64) == CounterPRG(b"seed").read(64)

    def test_streaming_matches_one_shot(self):
        stream = CounterPRG(b"seed")
        chunks = stream.read(10) + stream.read(20) + stream.read(34)
        assert chunks == CounterPRG.expand(b"seed", 64)

    def test_distinct_seeds_diverge(self):
        assert CounterPRG.expand(b"a", 32) != CounterPRG.expand(b"b", 32)

    def test_requested_length(self):
        for length in (0, 1, 31, 32, 33, 100):
            assert len(CounterPRG.expand(b"s", length)) == length

    def test_rejects_empty_seed(self):
        with pytest.raises(ValueError):
            CounterPRG(b"")

    def test_rejects_negative_length(self):
        with pytest.raises(ValueError):
            CounterPRG(b"s").read(-1)

    def test_rejects_non_bytes_seed(self):
        with pytest.raises(TypeError):
            CounterPRG(12345)

    def test_output_looks_balanced(self):
        data = CounterPRG.expand(b"balance", 4096)
        ones = sum(bin(byte).count("1") for byte in data)
        # 4096 bytes = 32768 bits; expect ~16384 ones.
        assert 15500 < ones < 17300


class TestBatchedChoices:
    def test_choices_match_per_evaluation_loop(self):
        # The batched evaluation against the shared keyed state must be
        # bit-identical to deriving each choice with its own integer().
        prf = PRF(b"batch equivalence key")
        for message in (b"", b"u", b"a much longer user key" * 3):
            expected = [
                prf.integer(i.to_bytes(4, "big") + b"|" + message, 977)
                for i in range(5)
            ]
            assert prf.choices(message, 977, 5) == expected

    def test_choices_many_matches_per_message_calls(self):
        # One keyed-state pass over a whole round's keys must derive
        # exactly the draws of per-message choices() calls, in order.
        prf = PRF(b"round batch key")
        messages = [b"", b"alpha", b"beta", b"alpha", b"k" * 40]
        assert prf.choices_many(messages, 977, 2) == [
            prf.choices(message, 977, 2) for message in messages
        ]

    def test_choices_many_validates_arguments(self):
        prf = PRF(b"k")
        with pytest.raises(TypeError):
            prf.choices_many([b"ok", "text"], 7, 2)
        with pytest.raises(ValueError):
            prf.choices_many([b"ok"], 0, 2)
        with pytest.raises(ValueError):
            prf.choices_many([b"ok"], 7, -1)
        assert prf.choices_many([], 7, 2) == []

    def test_evaluate_matches_fresh_hmac(self):
        import hashlib
        import hmac as hmac_mod

        prf = PRF(b"some key")
        assert prf.evaluate(b"msg") == hmac_mod.new(
            b"some key", b"msg", hashlib.sha256
        ).digest()

    def test_evaluate_rejects_non_bytes_message(self):
        with pytest.raises(TypeError):
            PRF(b"k").evaluate("text")

    def test_integer_rejects_non_bytes_message(self):
        with pytest.raises(TypeError):
            PRF(b"k").integer(123, 10)

    def test_choices_reject_non_bytes_message(self):
        with pytest.raises(TypeError):
            PRF(b"k").choices(None, 10, 2)

    def test_choices_reject_nonpositive_modulus(self):
        with pytest.raises(ValueError):
            PRF(b"k").choices(b"m", 0, 2)

    def test_choices_accept_bytearray_and_memoryview(self):
        prf = PRF(b"k")
        expected = prf.choices(b"mm", 100, 2)
        assert prf.choices(bytearray(b"mm"), 100, 2) == expected
        assert prf.choices(memoryview(b"mm"), 100, 2) == expected

    def test_zero_choices(self):
        assert PRF(b"k").choices(b"m", 10, 0) == []
