"""Tests for repro.baselines.oram_kvs."""

import pytest

from repro.baselines.oram_kvs import ORAMKeyValueStore, default_bucket_capacity
from repro.storage.errors import CapacityError


@pytest.fixture
def store(rng):
    return ORAMKeyValueStore(64, key_size=8, value_size=8,
                             rng=rng.spawn("okvs"))


class TestDefaultBucketCapacity:
    def test_grows_with_buckets(self):
        assert default_bucket_capacity(2**20) > default_bucket_capacity(2**8)

    def test_positive_for_small(self):
        for m in (1, 2, 3, 10):
            assert default_bucket_capacity(m) >= 3

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            default_bucket_capacity(0)


class TestORAMKVS:
    def test_get_missing(self, store):
        assert store.get(b"nope") is None

    def test_put_get(self, store):
        store.put(b"key", b"val")
        assert store.get(b"key").rstrip(b"\x00") == b"val"

    def test_update(self, store):
        store.put(b"k", b"v1")
        store.put(b"k", b"v2")
        assert store.get(b"k").rstrip(b"\x00") == b"v2"
        assert store.size == 1

    def test_many_keys(self, rng):
        store = ORAMKeyValueStore(128, key_size=8, value_size=8,
                                  rng=rng.spawn("many"))
        for i in range(100):
            store.put(f"k{i}".encode(), f"v{i}".encode())
        for i in range(100):
            assert store.get(f"k{i}".encode()).rstrip(b"\x00") == f"v{i}".encode()
        assert store.overflow_count == 0

    def test_delete(self, store):
        store.put(b"k", b"v")
        assert store.delete(b"k") is True
        assert store.get(b"k") is None
        assert store.delete(b"k") is False

    def test_bucket_overflow_raises(self, rng):
        store = ORAMKeyValueStore(8, key_size=8, value_size=8,
                                  bucket_capacity=1, rng=rng.spawn("tiny"))
        with pytest.raises(CapacityError):
            for i in range(9):
                store.put(f"k{i}".encode(), b"v")
        assert store.overflow_count == 1

    def test_cost_is_oram_access(self, store):
        before = store.server.operations
        store.get(b"anything")
        assert store.server.operations - before == store.blocks_per_operation()

    def test_put_costs_two_accesses(self, store):
        before = store.server.operations
        store.put(b"k", b"v")
        assert store.server.operations - before == 2 * store.blocks_per_operation()

    def test_operation_counter(self, store):
        store.put(b"a", b"1")
        store.get(b"a")
        assert store.operation_count == 2

    def test_bucket_block_size(self, rng):
        store = ORAMKeyValueStore(16, key_size=4, value_size=4,
                                  bucket_capacity=3, rng=rng.spawn("sz"))
        # Each entry stores key (4) + length prefix (2) + padded value (4).
        assert store.bucket_block_size == 2 + 3 * (4 + 2 + 4)
