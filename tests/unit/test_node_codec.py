"""Tests for repro.hashing.node_codec."""

import pytest

from repro.hashing.node_codec import NodeCodec, NodeEntry
from repro.storage.errors import BlockSizeError, CapacityError


@pytest.fixture
def codec():
    return NodeCodec(capacity=3, key_size=4, value_size=6)


class TestPackUnpack:
    def test_roundtrip_empty(self, codec):
        assert codec.unpack(codec.pack([])) == []

    def test_roundtrip_entries(self, codec):
        entries = [
            NodeEntry(b"k001", b"value1"),
            NodeEntry(b"k002", b"value2"),
        ]
        assert codec.unpack(codec.pack(entries)) == entries

    def test_roundtrip_full(self, codec):
        entries = [NodeEntry(f"k{i:03d}".encode(), b"v" * 6) for i in range(3)]
        assert codec.unpack(codec.pack(entries)) == entries

    def test_block_size_fixed(self, codec):
        assert len(codec.pack([])) == codec.block_size
        assert len(codec.pack([NodeEntry(b"abcd", b"123456")])) == codec.block_size

    def test_block_size_formula(self, codec):
        assert codec.block_size == 2 + 3 * (4 + 6)

    def test_empty_helper(self, codec):
        assert codec.empty() == codec.pack([])

    def test_overflow_rejected(self, codec):
        entries = [NodeEntry(b"aaaa", b"bbbbbb")] * 4
        with pytest.raises(CapacityError):
            codec.pack(entries)

    def test_bad_key_size_rejected(self, codec):
        with pytest.raises(BlockSizeError):
            codec.pack([NodeEntry(b"toolongkey", b"bbbbbb")])

    def test_bad_value_size_rejected(self, codec):
        with pytest.raises(BlockSizeError):
            codec.pack([NodeEntry(b"abcd", b"short")])

    def test_unpack_wrong_size_rejected(self, codec):
        with pytest.raises(BlockSizeError):
            codec.unpack(b"\x00" * (codec.block_size + 1))

    def test_unpack_corrupt_count_rejected(self, codec):
        block = bytearray(codec.empty())
        block[0:2] = (99).to_bytes(2, "big")
        with pytest.raises(CapacityError):
            codec.unpack(bytes(block))


class TestNormalization:
    def test_key_padding(self, codec):
        assert codec.normalize_key(b"ab") == b"ab\x00\x00"

    def test_key_exact(self, codec):
        assert codec.normalize_key(b"abcd") == b"abcd"

    def test_key_too_long(self, codec):
        with pytest.raises(BlockSizeError):
            codec.normalize_key(b"abcde")

    def test_value_padding(self, codec):
        assert codec.normalize_value(b"xy") == b"xy" + b"\x00" * 4

    def test_value_too_long(self, codec):
        with pytest.raises(BlockSizeError):
            codec.normalize_value(b"x" * 7)


class TestValidation:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            NodeCodec(capacity=0, key_size=4, value_size=4)

    def test_rejects_bad_key_size(self):
        with pytest.raises(ValueError):
            NodeCodec(capacity=1, key_size=0, value_size=4)

    def test_zero_value_size_allowed(self):
        codec = NodeCodec(capacity=2, key_size=4, value_size=0)
        entries = [NodeEntry(b"abcd", b"")]
        assert codec.unpack(codec.pack(entries)) == entries
