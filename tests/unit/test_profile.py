"""Unit tests for deterministic profiling (``repro.obs.profile``)."""

from repro.obs import profile_to_text, trace_profile
from repro.obs.tracer import Tracer, canonical_trace


def _payload():
    # One root round (10ms) with two legs: shard 0 at 4ms, shard 1 at
    # 6ms (the straggler).  Root self-cost is 10 - (4 + 6) = 0.
    return {
        "name": "t",
        "spans": [
            {
                "id": "1", "name": "round", "parent": None, "error": None,
                "sim_start_ms": 0.0, "sim_end_ms": 10.0, "labels": {},
            },
            {
                "id": "1.1", "name": "leg", "parent": "1", "error": None,
                "sim_start_ms": 0.0, "sim_end_ms": 4.0,
                "labels": {"shard": 0},
            },
            {
                "id": "1.2", "name": "leg", "parent": "1", "error": None,
                "sim_start_ms": 0.0, "sim_end_ms": 6.0,
                "labels": {"shard": 1},
            },
        ],
    }


class TestTraceProfile:
    def test_totals_and_self_costs(self):
        profile = trace_profile(_payload())
        assert profile["spans"] == 3
        assert profile["roots"] == 1
        assert profile["total_cost_ms"] == 10.0
        by_name = {entry["name"]: entry for entry in profile["by_name"]}
        assert by_name["round"]["total_ms"] == 10.0
        assert by_name["round"]["self_ms"] == 0.0
        assert by_name["leg"]["count"] == 2
        assert by_name["leg"]["total_ms"] == 10.0
        assert by_name["leg"]["self_ms"] == 10.0
        assert by_name["leg"]["max_ms"] == 6.0

    def test_critical_path_descends_into_the_straggler(self):
        profile = trace_profile(_payload())
        path = profile["critical_path"]
        assert [node["id"] for node in path] == ["1", "1.2"]
        # Root self is 0, straggler leg self is 6: the path is 6ms.
        assert profile["critical_path_ms"] == 6.0
        by_name = {entry["name"]: entry for entry in profile["by_name"]}
        assert by_name["leg"]["critical_ms"] == 6.0
        assert by_name["leg"]["critical_share"] == 1.0
        assert by_name["round"]["critical_share"] == 0.0

    def test_by_operator_uses_shard_labels(self):
        profile = trace_profile(_payload())
        operators = {
            entry["operator"]: entry for entry in profile["by_operator"]
        }
        assert set(operators) == {"shard=0", "shard=1"}
        assert operators["shard=1"]["total_ms"] == 6.0

    def test_wall_clock_preferred_over_sim_interval(self):
        payload = _payload()
        payload["spans"][1]["wall_ms"] = 40.0
        profile = trace_profile(payload)
        by_name = {entry["name"]: entry for entry in profile["by_name"]}
        assert by_name["leg"]["total_ms"] == 46.0

    def test_accepts_a_live_tracer_and_canonical_payloads(self):
        tracer = Tracer("t")
        with tracer.span("outer"):
            with tracer.span("inner", shard=2):
                pass
        live = trace_profile(tracer)
        cold = trace_profile(canonical_trace(tracer.export()))
        assert live["spans"] == cold["spans"] == 2
        assert [e["name"] for e in cold["by_name"]] == sorted(
            e["name"] for e in cold["by_name"]
        )  # zero-cost entries fall back to name ordering

    def test_empty_trace_profiles_cleanly(self):
        profile = trace_profile({"name": "t", "spans": []})
        assert profile["spans"] == 0
        assert profile["critical_path_ms"] == 0.0
        assert profile["by_name"] == []

    def test_text_rendering_mentions_phases_and_operators(self):
        text = profile_to_text(trace_profile(_payload()))
        assert "trace profile: 3 spans" in text
        assert "round" in text and "leg" in text
        assert "shard=1" in text
