"""Tests for repro.analysis.dp_ram_exact (chain-factorized likelihoods)."""

import itertools
import math

import pytest

from repro.analysis.dp_ram_exact import (
    dp_ram_analytic_epsilon,
    download_factor,
    empirical_epsilon,
    overwrite_factor,
    per_factor_bounds,
    sample_transcript_pairs,
    transcript_log_likelihood,
    transcript_log_ratio,
)


def _enumerate_pairs(n, length):
    """All possible (d, o) transcripts for a given length."""
    slots = list(itertools.product(range(n), repeat=2))
    return itertools.product(slots, repeat=length)


class TestTranscriptLikelihood:
    def test_distribution_sums_to_one(self):
        n, p = 3, 0.4
        queries = [0, 1, 0]
        total = sum(
            math.exp(transcript_log_likelihood(queries, list(pairs), n, p))
            for pairs in _enumerate_pairs(n, len(queries))
            if transcript_log_likelihood(queries, list(pairs), n, p)
            > float("-inf")
        )
        assert total == pytest.approx(1.0)

    def test_single_query_marginals(self):
        # Pr[(d, o) = (q, q)] = ((1-p) + p/n) * ((1-p) + p/n)
        n, p, q = 4, 0.3, 2
        expected = ((1 - p) + p / n) ** 2
        log_prob = transcript_log_likelihood([q], [(q, q)], n, p)
        assert math.exp(log_prob) == pytest.approx(expected)

    def test_single_query_off_slot(self):
        # d != q requires the stash branch: p/n; o != q likewise.
        n, p, q = 4, 0.3, 2
        log_prob = transcript_log_likelihood([q], [(0, 1)], n, p)
        assert math.exp(log_prob) == pytest.approx((p / n) ** 2)

    def test_every_transcript_possible(self):
        # Lemma 3.6: any pair sequence has positive probability when 0<p<1.
        n, p = 3, 0.25
        queries = [0, 2]
        for pairs in _enumerate_pairs(n, 2):
            assert transcript_log_likelihood(queries, list(pairs), n, p) > \
                float("-inf")

    def test_chain_coupling(self):
        # Querying the same block twice couples d_2 to o_1's latent coin:
        # P[d2 != q | o1 = q] should be much smaller than unconditionally.
        n, p, q = 4, 0.3, 1
        # transcript A: o1 = q (likely not stashed), d2 != q (needs stash)
        log_a = transcript_log_likelihood([q, q], [(q, q), (0, q)], n, p)
        # transcript B: o1 != q (stashed for sure), d2 != q (consistent)
        log_b = transcript_log_likelihood([q, q], [(q, 0), (2, q)], n, p)
        # A needs the rare combination not-stashed-then-stashed... which is
        # impossible within one chain: o1=q can also happen via stash+1/n.
        joint_a = math.exp(log_a)
        expected_a = (
            ((1 - p) + p / n)          # d1 = q
            * (p / n * (p / n) + (1 - p) * ((1 - p) + p / n))
        )
        # decompose: o1 = q as stashed (p*1/n -> then d2 != q w.p. 1/n... )
        del expected_a  # exact decomposition checked via sum-to-one instead
        assert joint_a > 0
        assert math.exp(log_b) > 0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            transcript_log_likelihood([0], [(0, 0), (1, 1)], 4, 0.3)

    def test_out_of_range_query_rejected(self):
        with pytest.raises(ValueError):
            transcript_log_likelihood([5], [(0, 0)], 4, 0.3)

    def test_matches_sampled_frequencies(self, rng):
        n, p = 3, 0.5
        queries = [0, 1]
        trials = 8000
        counts: dict[tuple, int] = {}
        source = rng.spawn("freq")
        for _ in range(trials):
            pairs = sample_transcript_pairs(queries, n, p, source)
            counts[pairs] = counts.get(pairs, 0) + 1
        checked = 0
        for pairs, count in counts.items():
            if count < 200:
                continue
            exact = math.exp(
                transcript_log_likelihood(queries, list(pairs), n, p)
            )
            assert count / trials == pytest.approx(exact, rel=0.25)
            checked += 1
        assert checked >= 3

    def test_matches_real_dpram_distribution(self, rng):
        # The fast sampler and the real DPRAM must agree in distribution:
        # compare the frequency of the all-self transcript.
        from repro.core.dp_ram import DPRAM
        from repro.storage.blocks import integer_database

        n, p = 4, 0.4
        queries = [1, 1]
        trials = 1500
        self_pairs = tuple((q, q) for q in queries)
        fast = 0
        source = rng.spawn("fast")
        for _ in range(trials):
            if sample_transcript_pairs(queries, n, p, source) == self_pairs:
                fast += 1
        real = 0
        for trial in range(trials):
            ram = DPRAM(integer_database(n), stash_probability=p,
                        rng=rng.spawn(f"real-{trial}"))
            for q in queries:
                ram.read(q)
            if tuple(ram.transcript_pairs) == self_pairs:
                real += 1
        assert fast / trials == pytest.approx(real / trials, abs=0.05)


class TestLogRatio:
    def test_zero_for_identical_sequences(self):
        pairs = [(0, 0), (1, 1)]
        assert transcript_log_ratio([0, 1], [0, 1], pairs, 4, 0.3) == 0.0

    def test_antisymmetric(self):
        queries_a, queries_b = [0, 1, 0], [0, 2, 0]
        pairs = [(0, 0), (1, 2), (0, 0)]
        forward = transcript_log_ratio(queries_a, queries_b, pairs, 4, 0.3)
        backward = transcript_log_ratio(queries_b, queries_a, pairs, 4, 0.3)
        assert forward == pytest.approx(-backward)

    def test_bounded_by_analytic_epsilon(self, rng):
        n, p = 6, 0.3
        queries_a = [0, 1, 2, 0]
        queries_b = [0, 3, 2, 0]
        budget = dp_ram_analytic_epsilon(n, p)
        source = rng.spawn("ratio")
        for _ in range(500):
            pairs = sample_transcript_pairs(queries_a, n, p, source)
            ratio = transcript_log_ratio(queries_a, queries_b, pairs, n, p)
            assert abs(ratio) <= budget

    def test_empirical_epsilon_positive(self, rng):
        worst = empirical_epsilon([0, 1], [0, 2], 4, 0.3, rng.spawn("emp"),
                                  trials=300)
        assert 0 < worst <= dp_ram_analytic_epsilon(4, 0.3)


class TestFactors:
    def test_per_factor_bounds(self):
        download_cap, overwrite_cap = per_factor_bounds(8, 0.25)
        assert download_cap == pytest.approx(8 * 8 / 0.25)
        assert overwrite_cap == pytest.approx(8 / 0.25)

    def test_download_factor_values(self):
        n, p = 8, 0.25
        assert download_factor(3, 3, 0.0, n, p) == pytest.approx(1.0)
        assert download_factor(3, 5, 0.0, n, p) == 0.0
        assert download_factor(3, 5, 1.0, n, p) == pytest.approx(1 / n)
        assert download_factor(3, 3, p, n, p) == pytest.approx(
            (1 - p) + p / n
        )

    def test_overwrite_factor_values(self):
        n, p = 8, 0.25
        assert overwrite_factor(3, 3, n, p) == pytest.approx((1 - p) + p / n)
        assert overwrite_factor(3, 5, n, p) == pytest.approx(p / n)

    def test_overwrite_ratio_bounded_by_lemma(self):
        # Lemma 6.5: any ratio of overwrite factors is at most n/p.
        n, p = 8, 0.25
        values = [overwrite_factor(3, o, n, p) for o in range(n)]
        assert max(values) / min(values) <= n / p

    def test_analytic_epsilon_is_o_log_n(self):
        for n in (2**8, 2**12, 2**16):
            p = math.log(n) ** 1.5 / n
            assert dp_ram_analytic_epsilon(n, p) <= 16 * math.log(n)


class TestSampler:
    def test_pairs_shape(self, rng):
        pairs = sample_transcript_pairs([0, 1, 2], 4, 0.5, rng)
        assert len(pairs) == 3
        assert all(0 <= d < 4 and 0 <= o < 4 for d, o in pairs)

    def test_p_zero_limit_forces_self(self, rng):
        pairs = sample_transcript_pairs([2, 3], 4, 1e-15, rng)
        assert pairs == ((2, 2), (3, 3))

    def test_rejects_bad_p(self, rng):
        with pytest.raises(ValueError):
            sample_transcript_pairs([0], 4, 0.0, rng)
