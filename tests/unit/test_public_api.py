"""Public API stability: everything exported must exist and be documented."""

import inspect

import pytest

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ exports missing {name}"

    def test_all_sorted(self):
        assert repro.__all__ == sorted(repro.__all__)

    def test_no_duplicates(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_classes_and_functions_documented(self):
        for name in repro.__all__:
            member = getattr(repro, name)
            if inspect.isclass(member) or inspect.isfunction(member):
                assert member.__doc__, f"{name} lacks a docstring"

    def test_version(self):
        assert repro.__version__

    def test_core_scheme_surface(self):
        # The canonical entry points of the reproduction must be here.
        for name in ("DPIR", "DPRAM", "DPKVS", "StrawmanIR", "PathORAM",
                     "LinearScanPIR", "MultiServerDPIR", "ShardedDPIR"):
            assert name in repro.__all__


class TestSubpackageExports:
    @pytest.mark.parametrize("module_name", [
        "repro.core", "repro.analysis", "repro.baselines", "repro.crypto",
        "repro.cluster", "repro.hashing", "repro.simulation",
        "repro.storage", "repro.workloads",
    ])
    def test_subpackage_all_resolves(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name} missing {name}"

    def test_datasheet_covers_every_exported_scheme(self, rng):
        """Every public single-object scheme has datasheet support."""
        from repro import (
            BatchDPIR, DPIR, DPKVS, DPRAM, LinearScanPIR, MultiServerDPIR,
            PathORAM, ReadOnlyDPRAM, ShardedDPIR, StrawmanIR, datasheet_for,
        )
        from repro.storage.blocks import integer_database

        db = integer_database(16)
        schemes = [
            DPIR(db, pad_size=2, alpha=0.1, rng=rng.spawn("a")),
            BatchDPIR(db, pad_size=2, alpha=0.1, rng=rng.spawn("b")),
            StrawmanIR(db, rng=rng.spawn("c")),
            DPRAM(db, rng=rng.spawn("d")),
            ReadOnlyDPRAM(db, rng=rng.spawn("e")),
            DPKVS(16, rng=rng.spawn("f")),
            LinearScanPIR(db),
            PathORAM(db, rng=rng.spawn("g")),
            MultiServerDPIR(db, server_count=2, pad_size=2, rng=rng.spawn("h")),
            ShardedDPIR(db, shard_count=2, pad_size=2, rng=rng.spawn("i")),
        ]
        for scheme in schemes:
            sheet = datasheet_for(scheme)
            assert sheet.n == 16
            assert sheet.to_text()
