"""Tests for repro.baselines.path_oram."""

import math

import pytest

from repro.baselines.path_oram import PathORAM
from repro.storage.blocks import encode_int, integer_database
from repro.storage.errors import RetrievalError


def _oram(rng, n=32, z=4):
    return PathORAM(integer_database(n), bucket_size=z, rng=rng.spawn("oram"))


class TestConstruction:
    def test_rejects_empty(self, rng):
        with pytest.raises(ValueError):
            PathORAM([], rng=rng)

    def test_rejects_bad_bucket_size(self, rng, small_db):
        with pytest.raises(ValueError):
            PathORAM(small_db, bucket_size=0, rng=rng)

    def test_rejects_uneven_blocks(self, rng):
        with pytest.raises(ValueError):
            PathORAM([b"aa", b"bbb"], rng=rng)

    def test_height_is_log_n(self, rng):
        for n, expected in ((2, 1), (32, 5), (33, 6), (1024, 10)):
            oram = _oram(rng, n=n)
            assert oram.height == expected


class TestCorrectness:
    def test_initial_reads(self, rng):
        oram = _oram(rng, n=32)
        db = integer_database(32)
        for index in range(32):
            assert oram.read(index) == db[index]

    def test_write_then_read(self, rng):
        oram = _oram(rng, n=32)
        oram.write(9, encode_int(777))
        assert oram.read(9) == encode_int(777)

    def test_random_workload(self, rng):
        oram = _oram(rng, n=64)
        reference = {i: encode_int(i) for i in range(64)}
        source = rng.spawn("ops")
        for step in range(400):
            index = source.randbelow(64)
            if source.random() < 0.4:
                value = encode_int(100_000 + step)
                oram.write(index, value)
                reference[index] = value
            else:
                assert oram.read(index) == reference[index]

    def test_wrong_value_size_rejected(self, rng):
        oram = _oram(rng)
        with pytest.raises(ValueError):
            oram.write(0, b"short")

    def test_out_of_range(self, rng):
        oram = _oram(rng, n=8)
        with pytest.raises(RetrievalError):
            oram.read(8)


class TestBandwidth:
    def test_blocks_per_access_formula(self, rng):
        oram = _oram(rng, n=64, z=4)
        assert oram.blocks_per_access() == 2 * 4 * (oram.height + 1)

    def test_measured_matches_formula(self, rng):
        oram = _oram(rng, n=64)
        before = oram.server.operations
        oram.read(0)
        assert oram.server.operations - before == oram.blocks_per_access()

    def test_cost_grows_with_log_n(self, rng):
        small = _oram(rng, n=64)
        large = _oram(rng, n=4096)
        assert large.blocks_per_access() > small.blocks_per_access()
        assert large.blocks_per_access() == pytest.approx(
            2 * 4 * (math.log2(4096) + 1)
        )


class TestObliviousnessShape:
    def test_position_remap_changes_paths(self, rng):
        # Repeatedly accessing one index touches many distinct paths.
        oram = _oram(rng, n=64)
        from repro.storage.transcript import Transcript

        transcript = Transcript()
        oram.attach_transcript(transcript)
        for _ in range(20)  :
            oram.read(7)
        slots_per_query = [
            tuple(e.index for e in transcript.for_query(q))
            for q in range(oram.query_count - 20, oram.query_count)
        ]
        assert len(set(slots_per_query)) > 5

    def test_stash_stays_small(self, rng):
        oram = _oram(rng, n=256)
        source = rng.spawn("load")
        for _ in range(500):
            oram.read(source.randbelow(256))
        # Classic Path ORAM result: stash is O(1)-ish w.h.p. for Z=4.
        assert oram.stash_peak < 40

    def test_query_counter(self, rng):
        oram = _oram(rng, n=16)
        oram.read(0)
        oram.write(1, encode_int(5))
        assert oram.query_count == 2
