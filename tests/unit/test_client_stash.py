"""Tests for repro.storage.client.ClientStash."""

import pytest

from repro.storage.client import ClientStash
from repro.storage.errors import CapacityError


class TestClientStash:
    def test_put_get(self):
        stash = ClientStash()
        stash.put("a", 1)
        assert stash["a"] == 1
        assert stash.get("a") == 1

    def test_get_default(self):
        assert ClientStash().get("missing", 7) == 7

    def test_contains_and_len(self):
        stash = ClientStash()
        stash.put(1, "x")
        assert 1 in stash
        assert 2 not in stash
        assert len(stash) == 1

    def test_pop(self):
        stash = ClientStash()
        stash.put("k", "v")
        assert stash.pop("k") == "v"
        assert "k" not in stash

    def test_pop_missing_raises(self):
        with pytest.raises(KeyError):
            ClientStash().pop("nope")

    def test_discard_is_silent(self):
        stash = ClientStash()
        stash.discard("absent")
        stash.put("k", 1)
        stash.discard("k")
        assert "k" not in stash

    def test_peak_tracking(self):
        stash = ClientStash()
        for i in range(5):
            stash.put(i, i)
        for i in range(5):
            stash.pop(i)
        stash.put("one", 1)
        assert stash.peak == 5
        assert len(stash) == 1

    def test_overwrite_does_not_grow_peak(self):
        stash = ClientStash()
        stash.put("k", 1)
        stash.put("k", 2)
        assert stash.peak == 1
        assert stash["k"] == 2

    def test_capacity_enforced(self):
        stash = ClientStash(capacity=2)
        stash.put(1, "a")
        stash.put(2, "b")
        with pytest.raises(CapacityError):
            stash.put(3, "c")

    def test_capacity_allows_overwrite_at_limit(self):
        stash = ClientStash(capacity=1)
        stash.put(1, "a")
        stash.put(1, "b")
        assert stash[1] == "b"

    def test_negative_capacity_rejected(self):
        with pytest.raises(CapacityError):
            ClientStash(capacity=-1)

    def test_items_and_mapping(self):
        stash = ClientStash()
        stash.put("a", 1)
        stash.put("b", 2)
        assert dict(stash.items()) == {"a": 1, "b": 2}
        snapshot = stash.as_mapping()
        stash.put("c", 3)
        assert "c" not in snapshot

    def test_iteration(self):
        stash = ClientStash()
        stash.put("x", 1)
        stash.put("y", 2)
        assert set(stash) == {"x", "y"}
