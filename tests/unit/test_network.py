"""Tests for repro.storage.network."""

import pytest

from repro.storage.network import LAN, MOBILE, WAN, NetworkModel


class TestNetworkModel:
    def test_transfer_time(self):
        link = NetworkModel(rtt_ms=10, bandwidth_mbps=8)
        # 1000 bytes = 8000 bits at 8 Mbps = 1 ms
        assert link.transfer_ms(1000) == pytest.approx(1.0)

    def test_response_time_combines_both(self):
        link = NetworkModel(rtt_ms=10, bandwidth_mbps=8)
        assert link.response_time_ms(2, 1, 1000) == pytest.approx(21.0)

    def test_zero_blocks(self):
        link = NetworkModel(rtt_ms=5, bandwidth_mbps=100)
        assert link.response_time_ms(1, 0, 4096) == pytest.approx(5.0)

    def test_latency_dominates_on_wan_for_small_transfers(self):
        # DP-RAM's 3 blocks: transfer is negligible, RTTs dominate.
        small = WAN.response_time_ms(2, 3, 4096)
        assert small == pytest.approx(2 * WAN.rtt_ms, rel=0.05)

    def test_bandwidth_dominates_for_pir(self):
        n = 2**20
        pir = WAN.response_time_ms(1, n, 4096)
        assert pir > 100 * WAN.rtt_ms

    def test_presets_ordered(self):
        # For the same work, LAN < WAN < mobile.
        times = [link.response_time_ms(2, 10, 4096)
                 for link in (LAN, WAN, MOBILE)]
        assert times == sorted(times)

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkModel(rtt_ms=-1, bandwidth_mbps=1)
        with pytest.raises(ValueError):
            NetworkModel(rtt_ms=1, bandwidth_mbps=0)
        link = NetworkModel(rtt_ms=1, bandwidth_mbps=1)
        with pytest.raises(ValueError):
            link.transfer_ms(-1)
        with pytest.raises(ValueError):
            link.response_time_ms(-1, 1, 1)
        with pytest.raises(ValueError):
            link.response_time_ms(1, -1, 1)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            LAN.rtt_ms = 100
