"""Tests for the exact worst-case DP-RAM ratio search."""

import math

import pytest

from repro.analysis.dp_ram_exact import (
    dp_ram_analytic_epsilon,
    empirical_epsilon,
    sample_transcript_pairs,
    transcript_log_ratio,
    worst_case_log_ratio_exact,
)
from repro.crypto.rng import SeededRandomSource


class TestWorstCaseExact:
    def test_zero_for_identical_sequences(self):
        assert worst_case_log_ratio_exact([0, 1], [0, 1], 4, 0.3) == 0.0

    def test_positive_for_adjacent(self):
        assert worst_case_log_ratio_exact([0], [1], 4, 0.3) > 0

    def test_within_analytic_budget(self):
        for p in (0.1, 0.3, 0.7):
            worst = worst_case_log_ratio_exact([0, 1, 2], [0, 3, 2], 6, p)
            assert worst <= dp_ram_analytic_epsilon(6, p)

    def test_dominates_sampled_ratios(self):
        # Every sampled transcript's exact ratio is below the exact sup.
        n, p = 5, 0.4
        queries_a, queries_b = [0, 1, 0], [0, 2, 0]
        worst = worst_case_log_ratio_exact(queries_a, queries_b, n, p)
        rng = SeededRandomSource(7)
        for _ in range(400):
            pairs = sample_transcript_pairs(queries_a, n, p, rng)
            ratio = abs(transcript_log_ratio(queries_a, queries_b, pairs, n, p))
            assert ratio <= worst + 1e-9

    def test_matches_single_query_hand_computation(self):
        # For sequences [a] vs [b] the worst transcript is (d=a, o=a):
        #   P_A = ((1-p)+p/n)^2,  P_B = (p/n)^2.
        n, p = 4, 0.25
        worst = worst_case_log_ratio_exact([0], [1], n, p)
        expected = 2 * math.log(((1 - p) + p / n) / (p / n))
        assert worst == pytest.approx(expected)

    def test_sampled_estimate_converges_from_below(self):
        n, p = 4, 0.5
        queries_a, queries_b = [0], [1]
        exact = worst_case_log_ratio_exact(queries_a, queries_b, n, p)
        sampled = empirical_epsilon(queries_a, queries_b, n, p,
                                    SeededRandomSource(11), trials=1500)
        assert sampled <= exact + 1e-9
        assert sampled >= 0.5 * exact  # sampling finds a decent fraction

    def test_epsilon_grows_as_p_shrinks(self):
        # Smaller stash probability -> worse privacy (ratios ~ n/p).
        values = [
            worst_case_log_ratio_exact([0], [1], 4, p)
            for p in (0.8, 0.4, 0.1)
        ]
        assert values == sorted(values)

    def test_revisiting_block_covered(self):
        # nx(Q,k) exists: sequence re-queries the differing block.
        n, p = 5, 0.3
        worst_single = worst_case_log_ratio_exact([0, 4], [1, 4], n, p)
        worst_revisit = worst_case_log_ratio_exact([0, 0], [1, 0], n, p)
        assert worst_revisit > 0
        assert worst_single > 0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            worst_case_log_ratio_exact([0], [0, 1], 4, 0.3)

    def test_small_n_rejected(self):
        with pytest.raises(ValueError):
            worst_case_log_ratio_exact([0], [1], 2, 0.3)

    def test_too_many_affected_positions_rejected(self):
        with pytest.raises(ValueError):
            worst_case_log_ratio_exact(
                [0] * 8, [1] + [0] * 7, 4, 0.3
            )
