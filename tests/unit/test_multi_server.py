"""Tests for repro.core.multi_server (Appendix C)."""

import math

import pytest

from repro.core.multi_server import MultiServerDPIR
from repro.storage.blocks import integer_database
from repro.storage.errors import RetrievalError


def _scheme(rng, n=64, servers=4, pad_size=8, alpha=0.1):
    return MultiServerDPIR(
        integer_database(n), server_count=servers, pad_size=pad_size,
        alpha=alpha, rng=rng.spawn("ms"),
    )


class TestConstruction:
    def test_rejects_empty_database(self, rng):
        with pytest.raises(ValueError):
            MultiServerDPIR([], server_count=2, pad_size=1, rng=rng)

    def test_rejects_zero_servers(self, rng, small_db):
        with pytest.raises(ValueError):
            MultiServerDPIR(small_db, server_count=0, pad_size=1, rng=rng)

    def test_requires_one_of_epsilon_pad(self, rng, small_db):
        with pytest.raises(ValueError):
            MultiServerDPIR(small_db, server_count=2, rng=rng)
        with pytest.raises(ValueError):
            MultiServerDPIR(small_db, server_count=2, epsilon=1.0,
                            pad_size=2, rng=rng)

    def test_epsilon_resolution_matches_single_server(self, rng, small_db):
        scheme = MultiServerDPIR(small_db, server_count=2,
                                 epsilon=math.log(len(small_db)),
                                 alpha=0.05, rng=rng)
        assert scheme.pad_size >= 1
        assert scheme.epsilon > 0


class TestQuery:
    def test_successful_queries_correct(self, rng):
        scheme = _scheme(rng, alpha=0.05)
        db = integer_database(64)
        successes = 0
        for _ in range(100):
            answer = scheme.query(9)
            if answer is not None:
                successes += 1
                assert answer == db[9]
        assert successes > 80

    def test_error_rate(self, rng):
        scheme = _scheme(rng, alpha=0.4)
        trials = 1000
        errors = sum(1 for _ in range(trials) if scheme.query(0) is None)
        assert 0.33 < errors / trials < 0.47
        assert scheme.error_count == errors
        assert scheme.query_count == trials

    def test_total_bandwidth_is_pad_size(self, rng):
        scheme = _scheme(rng, pad_size=8)
        before = scheme.pool.total_operations()
        scheme.query(3)
        assert scheme.pool.total_operations() - before == 8

    def test_work_spreads_over_servers(self, rng):
        scheme = _scheme(rng, servers=4, pad_size=8)
        for _ in range(200):
            scheme.query(rng.randbelow(64))
        loads = [server.operations for server in scheme.pool]
        assert all(load > 0 for load in loads)
        assert max(loads) < 2.5 * min(loads)  # roughly balanced

    def test_out_of_range(self, rng):
        scheme = _scheme(rng)
        with pytest.raises(RetrievalError):
            scheme.query(64)


class TestCorruptedView:
    def test_view_only_contains_corrupted_servers(self, rng):
        scheme = _scheme(rng, servers=4)
        view = scheme.sample_corrupted_view(5, corrupted={1, 3})
        assert all(server in {1, 3} for server, _ in view)

    def test_full_corruption_sees_whole_plan(self, rng):
        scheme = _scheme(rng, servers=4, pad_size=8)
        view = scheme.sample_corrupted_view(5, corrupted={0, 1, 2, 3})
        assert len(view) == 8

    def test_view_size_scales_with_t(self, rng):
        scheme = _scheme(rng, servers=4, pad_size=8, alpha=0.05)
        sizes = {}
        for corrupted_count in (1, 2, 4):
            corrupted = set(range(corrupted_count))
            total = sum(
                len(scheme.sample_corrupted_view(0, corrupted))
                for _ in range(300)
            )
            sizes[corrupted_count] = total / 300
        assert sizes[1] < sizes[2] < sizes[4]
        assert sizes[4] == pytest.approx(8, abs=0.01)
        assert sizes[1] == pytest.approx(2, abs=0.6)

    def test_real_index_visibility_rate(self, rng):
        # Real fetch visible to one corrupted server of four ~ 1/4 of the
        # time (on the non-error branch).
        scheme = _scheme(rng, servers=4, pad_size=4, alpha=0.05)
        trials = 1500
        query = 17
        visible = sum(
            1
            for _ in range(trials)
            if any(slot == query
                   for _, slot in scheme.sample_corrupted_view(query, {0}))
        )
        # Pr ~= (1-a)*t + pad collisions ~= 0.95*0.25 + small
        assert 0.18 < visible / trials < 0.33

    def test_sampling_does_not_touch_servers(self, rng):
        scheme = _scheme(rng)
        before = scheme.pool.total_operations()
        scheme.sample_corrupted_view(0, {0})
        assert scheme.pool.total_operations() == before
