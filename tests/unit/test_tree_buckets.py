"""Tests for repro.hashing.tree_buckets."""

import pytest

from repro.hashing.tree_buckets import (
    SUPER_ROOT,
    TreeBucketLayout,
    TreeOccupancySimulator,
    TreeShape,
)
from repro.storage.errors import MappingOverflowError


@pytest.fixture
def layout():
    # 2 trees of 4 leaves each: 8 buckets, 7 nodes per tree, 14 nodes.
    return TreeBucketLayout(
        TreeShape(leaves_per_tree=4, tree_count=2, depth=2, node_capacity=2)
    )


class TestLayoutGeometry:
    def test_counts(self, layout):
        assert layout.bucket_count == 8
        assert layout.node_count == 14

    def test_path_starts_at_leaf_ends_at_root(self, layout):
        path = layout.path_nodes(0)
        assert len(path) == 3  # depth 2 -> 3 nodes
        assert layout.node_height(path[0]) == 0
        assert layout.node_height(path[-1]) == 2

    def test_paths_within_one_tree_share_root(self, layout):
        roots = {layout.path_nodes(leaf)[-1] for leaf in range(4)}
        assert len(roots) == 1

    def test_paths_across_trees_disjoint(self, layout):
        tree0 = set(layout.path_nodes(0))
        tree1 = set(layout.path_nodes(4))
        assert tree0.isdisjoint(tree1)

    def test_sibling_leaves_share_parent(self, layout):
        path0 = layout.path_nodes(0)
        path1 = layout.path_nodes(1)
        assert path0[1] == path1[1]  # height-1 ancestor shared
        assert path0[0] != path1[0]

    def test_heights_partition_nodes(self, layout):
        total = sum(layout.nodes_at_height(h) for h in range(3))
        assert total == layout.node_count

    def test_all_buckets_table(self, layout):
        buckets = layout.all_buckets()
        assert len(buckets) == 8
        assert buckets[3] == tuple(layout.path_nodes(3))

    def test_leaf_out_of_range(self, layout):
        with pytest.raises(ValueError):
            layout.path_nodes(8)

    def test_node_out_of_range(self, layout):
        with pytest.raises(ValueError):
            layout.node_height(14)

    def test_for_capacity_convenience(self):
        layout = TreeBucketLayout.for_capacity(1000)
        assert layout.bucket_count >= 1000


class TestStoringAlgorithm:
    def test_prefers_leaf_level(self, layout):
        simulator = TreeOccupancySimulator(layout)
        node = simulator.insert(0, 5)
        assert layout.node_height(node) == 0

    def test_less_loaded_leaf_wins(self, layout):
        simulator = TreeOccupancySimulator(layout)
        first = simulator.insert(0, 5)
        second = simulator.insert(0, 5)
        assert {layout.node_height(first), layout.node_height(second)} == {0}
        assert first != second  # capacity 2, but the lighter leaf is chosen

    def test_climbs_when_leaves_full(self, layout):
        simulator = TreeOccupancySimulator(layout)
        # Fill both leaf nodes for choices (0, 1): 2 slots each.
        for _ in range(4):
            node = simulator.insert(0, 1)
            assert layout.node_height(node) == 0
        node = simulator.insert(0, 1)
        assert layout.node_height(node) == 1  # shared parent of leaves 0,1

    def test_same_choice_twice_is_one_path(self, layout):
        simulator = TreeOccupancySimulator(layout)
        for _ in range(2):
            assert layout.node_height(simulator.insert(2, 2)) == 0
        assert layout.node_height(simulator.insert(2, 2)) == 1

    def test_super_root_spill(self):
        shape = TreeShape(leaves_per_tree=2, tree_count=1, depth=1,
                          node_capacity=1)
        simulator = TreeOccupancySimulator(TreeBucketLayout(shape))
        # 3 nodes of capacity 1: the 4th key must spill.
        placements = [simulator.insert(0, 1) for _ in range(4)]
        assert placements[-1] == SUPER_ROOT
        assert simulator.super_root_load == 1

    def test_super_root_capacity_enforced(self):
        shape = TreeShape(leaves_per_tree=2, tree_count=1, depth=1,
                          node_capacity=1)
        simulator = TreeOccupancySimulator(
            TreeBucketLayout(shape), super_root_capacity=1
        )
        for _ in range(4):
            simulator.insert(0, 1)
        with pytest.raises(MappingOverflowError):
            simulator.insert(0, 1)

    def test_insertion_counter(self, layout):
        simulator = TreeOccupancySimulator(layout)
        for _ in range(5):
            simulator.insert(0, 4)
        assert simulator.insertions == 5
        assert simulator.total_slots_used() + simulator.super_root_load == 5


class TestOccupancyAccounting:
    def test_level_occupancy_counts_full_nodes(self, layout):
        simulator = TreeOccupancySimulator(layout)
        simulator.insert(0, 0)
        assert simulator.level_occupancy() == [0, 0, 0]  # capacity 2, not full
        simulator.insert(0, 0)
        assert simulator.level_occupancy()[0] == 1

    def test_filled_nodes_at_height(self, layout):
        simulator = TreeOccupancySimulator(layout)
        for _ in range(2):
            simulator.insert(3, 3)
        assert simulator.filled_nodes_at_height(0) == 1
        assert simulator.filled_nodes_at_height(1) == 0

    def test_random_insertions_bounded_super_root(self, rng):
        layout = TreeBucketLayout.for_capacity(2048, node_capacity=4)
        simulator = TreeOccupancySimulator(layout)
        for _ in range(2048):
            simulator.insert_random(rng)
        # Theorem 7.2: super root holds omega(log n) keys only negligibly;
        # at this scale it is essentially always tiny.
        assert simulator.super_root_load <= 30

    def test_node_load_accessor(self, layout):
        simulator = TreeOccupancySimulator(layout)
        node = simulator.insert(1, 1)
        assert simulator.node_load(node) == 1
