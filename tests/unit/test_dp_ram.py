"""Tests for repro.core.dp_ram (Algorithms 2-3)."""

import math

import pytest

from repro.core.dp_ram import DPRAM, ReadOnlyDPRAM
from repro.storage.blocks import encode_int, integer_database
from repro.storage.errors import RetrievalError
from repro.storage.transcript import Transcript


def _ram(rng, n=32, p=None, phi=None):
    return DPRAM(
        integer_database(n), stash_probability=p, phi=phi, rng=rng.spawn("ram")
    )


class TestConstruction:
    def test_rejects_empty_database(self, rng):
        with pytest.raises(ValueError):
            DPRAM([], rng=rng)

    def test_rejects_both_p_and_phi(self, rng, small_db):
        with pytest.raises(ValueError):
            DPRAM(small_db, stash_probability=0.1, phi=8, rng=rng)

    def test_default_params_resolve(self, rng, small_db):
        ram = DPRAM(small_db, rng=rng)
        assert 0 < ram.stash_probability <= 1

    def test_server_stores_ciphertexts(self, rng, small_db):
        ram = DPRAM(small_db, rng=rng)
        stored = ram.server.peek(0)
        assert stored != small_db[0]  # encrypted, not plaintext
        assert len(stored) > len(small_db[0])  # nonce overhead

    def test_initial_stash_rate(self, rng):
        # p = 0.5 over 400 records: stash should start near 200.
        ram = _ram(rng, n=400, p=0.5)
        assert 150 < ram.stash_size < 250


class TestCorrectness:
    def test_read_returns_initial_values(self, rng):
        ram = _ram(rng, n=32, p=0.3)
        db = integer_database(32)
        for index in range(32):
            assert ram.read(index) == db[index]

    def test_write_then_read(self, rng):
        ram = _ram(rng, n=32, p=0.3)
        ram.write(5, encode_int(999))
        assert ram.read(5) == encode_int(999)

    def test_repeated_read_write_cycles(self, rng):
        ram = _ram(rng, n=16, p=0.4)
        reference = {i: encode_int(i) for i in range(16)}
        source = rng.spawn("ops")
        for step in range(300):
            index = source.randbelow(16)
            if source.random() < 0.5:
                value = encode_int(10_000 + step)
                ram.write(index, value)
                reference[index] = value
            else:
                assert ram.read(index) == reference[index]

    def test_correct_under_p_one(self, rng):
        # Everything always stashed: server traffic is pure cover.
        ram = _ram(rng, n=8, p=1.0)
        ram.write(3, encode_int(77))
        assert ram.read(3) == encode_int(77)

    def test_correct_under_tiny_p(self, rng):
        ram = _ram(rng, n=8, p=1e-9)
        ram.write(2, encode_int(55))
        assert ram.read(2) == encode_int(55)

    def test_out_of_range(self, rng):
        ram = _ram(rng, n=8)
        with pytest.raises(RetrievalError):
            ram.read(8)
        with pytest.raises(RetrievalError):
            ram.write(-1, b"x")


class TestBandwidth:
    def test_exactly_three_transfers_per_query(self, rng):
        ram = _ram(rng, n=64, p=0.2)
        reads_before = ram.server.reads
        writes_before = ram.server.writes
        queries = 100
        source = rng.spawn("mix")
        for _ in range(queries):
            index = source.randbelow(64)
            if source.random() < 0.5:
                ram.write(index, encode_int(1))
            else:
                ram.read(index)
        assert ram.server.reads - reads_before == 2 * queries
        assert ram.server.writes - writes_before == queries

    def test_bandwidth_independent_of_n(self, rng):
        for n in (16, 256):
            ram = _ram(rng, n=n)
            before = ram.server.operations
            ram.read(0)
            assert ram.server.operations - before == 3


class TestTranscript:
    def test_pairs_recorded_per_query(self, rng):
        ram = _ram(rng, n=16, p=0.3)
        ram.read(3)
        ram.write(4, encode_int(1))
        pairs = ram.transcript_pairs
        assert len(pairs) == 2
        assert all(len(pair) == 2 for pair in pairs)

    def test_unstashed_read_touches_own_slot(self, rng):
        # With p ~ 0 nothing is stashed, so d_j = o_j = q_j always.
        ram = _ram(rng, n=16, p=1e-12)
        ram.read(7)
        assert ram.transcript_pairs[-1] == (7, 7)

    def test_stashed_read_downloads_random(self, rng):
        # With p = 1 everything is stashed; downloads are uniform.
        ram = _ram(rng, n=64, p=1.0)
        downloads = set()
        for _ in range(200):
            ram.read(0)
            downloads.add(ram.transcript_pairs[-1][0])
        assert len(downloads) > 30  # spread over many slots, not pinned to 0

    def test_event_transcript_matches_pairs(self, rng):
        ram = _ram(rng, n=16, p=0.3)
        transcript = Transcript()
        ram.attach_transcript(transcript)
        ram.read(1)
        ram.read(2)
        assert transcript.dp_ram_pairs() == ram.transcript_pairs[-2:]

    def test_reads_and_writes_look_identical(self, rng):
        # Same query index: the (d, o) marginal supports are identical for
        # read and write (encryption hides the payload difference).
        ram_r = _ram(rng, n=8, p=0.5)
        ram_w = DPRAM(
            integer_database(8), stash_probability=0.5, rng=rng.spawn("ram")
        )  # same spawn label -> same randomness as ram_r
        ram_r.read(3)
        ram_w.write(3, encode_int(42))
        assert ram_r.transcript_pairs == ram_w.transcript_pairs


class TestStash:
    def test_stash_concentration(self, rng):
        # Lemma D.1: stash stays near p*n.
        n, p = 2000, 0.02
        ram = _ram(rng, n=n, p=p)
        source = rng.spawn("load")
        for _ in range(500):
            ram.read(source.randbelow(n))
        expected = p * n  # 40
        assert ram.stash_peak < math.e * expected + 10

    def test_stash_peak_monotone(self, rng):
        ram = _ram(rng, n=64, p=0.5)
        peak_before = ram.stash_peak
        for _ in range(50):
            ram.read(rng.randbelow(64))
        assert ram.stash_peak >= peak_before

    def test_params_epsilon_bound_positive(self, rng):
        ram = _ram(rng, n=64)
        assert ram.params.epsilon_bound > 0


class TestReadOnlyDPRAM:
    def test_plaintext_server(self, rng, small_db):
        ram = ReadOnlyDPRAM(small_db, rng=rng)
        assert ram.server.peek(0) == small_db[0]

    def test_reads_correct(self, rng, small_db):
        ram = ReadOnlyDPRAM(small_db, stash_probability=0.4, rng=rng)
        for index in range(len(small_db)):
            assert ram.read(index) == small_db[index]

    def test_repeated_reads_correct(self, rng, small_db):
        ram = ReadOnlyDPRAM(small_db, stash_probability=0.6, rng=rng)
        for _ in range(200):
            index = rng.randbelow(len(small_db))
            assert ram.read(index) == small_db[index]

    def test_no_uploads_ever(self, rng, small_db):
        ram = ReadOnlyDPRAM(small_db, rng=rng)
        for _ in range(50):
            ram.read(rng.randbelow(len(small_db)))
        assert ram.server.writes == 0

    def test_two_downloads_per_query(self, rng, small_db):
        ram = ReadOnlyDPRAM(small_db, rng=rng)
        before = ram.server.reads
        ram.read(0)
        assert ram.server.reads - before == 2

    def test_pairs_distribution_shape(self, rng):
        ram = ReadOnlyDPRAM(
            integer_database(16), stash_probability=1e-12, rng=rng
        )
        ram.read(5)
        assert ram.transcript_pairs[-1] == (5, 5)

    def test_rejects_both_parameters(self, rng, small_db):
        with pytest.raises(ValueError):
            ReadOnlyDPRAM(small_db, stash_probability=0.1, phi=8, rng=rng)

    def test_out_of_range(self, rng, small_db):
        ram = ReadOnlyDPRAM(small_db, rng=rng)
        with pytest.raises(RetrievalError):
            ram.read(len(small_db))
