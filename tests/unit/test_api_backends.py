"""Tests for repro.storage.backends and its threading through servers."""

import pytest

from repro.storage.backends import (
    InMemoryBackend,
    NetworkBackend,
    NetworkBackendFactory,
)
from repro.storage.errors import StorageError
from repro.storage.network import LAN, WAN
from repro.storage.server import ServerPool, StorageServer


class TestInMemoryBackend:
    def test_round_trip(self):
        backend = InMemoryBackend(4)
        assert backend.capacity == 4
        assert backend.read_slot(2) is None
        backend.write_slot(2, b"abc")
        assert backend.read_slot(2) == b"abc"

    def test_load_replaces_everything(self):
        backend = InMemoryBackend(3)
        backend.load([b"a", b"b", b"c"])
        assert [backend.read_slot(i) for i in range(3)] == [b"a", b"b", b"c"]

    def test_load_size_checked(self):
        with pytest.raises(StorageError):
            InMemoryBackend(3).load([b"a"])

    def test_negative_capacity_rejected(self):
        with pytest.raises(StorageError):
            InMemoryBackend(-1)


class TestNetworkBackend:
    def test_charges_rtt_and_transfer(self):
        backend = NetworkBackend(4, WAN)
        backend.write_slot(0, b"x" * 1000)
        expected = WAN.rtt_ms + WAN.transfer_ms(1000)
        assert backend.simulated_ms == pytest.approx(expected)
        backend.read_slot(0)
        assert backend.roundtrips == 2
        assert backend.simulated_ms == pytest.approx(2 * expected)

    def test_load_is_free(self):
        backend = NetworkBackend(2, WAN)
        backend.load([b"a", b"b"])
        assert backend.simulated_ms == 0.0
        assert backend.read_slot(0) == b"a"

    def test_peek_is_free(self):
        backend = NetworkBackend(2, WAN)
        backend.load([b"a", b"b"])
        assert backend.peek_slot(1) == b"b"
        assert backend.simulated_ms == 0.0
        assert backend.roundtrips == 0

    def test_server_peek_charges_nothing(self):
        server = StorageServer(2, backend=NetworkBackend(2, WAN))
        server.load([b"a", b"b"])
        assert server.peek(0) == b"a"
        assert server.backend.simulated_ms == 0.0

    def test_wraps_existing_backend(self):
        inner = InMemoryBackend(2)
        inner.write_slot(1, b"z")
        backend = NetworkBackend(inner, LAN)
        assert backend.capacity == 2
        assert backend.read_slot(1) == b"z"
        assert backend.model is LAN

    def test_mixed_sequence_accumulates_exactly(self):
        # The serving layer derives dispatch service times from these
        # accumulators, so the sum must match the per-access formula.
        backend = NetworkBackend(4, WAN)
        backend.load([b"a" * 100, b"b" * 200, b"c" * 300, b"d" * 400])
        backend.read_slot(0)                 # 100 bytes down
        backend.write_slot(1, b"x" * 500)    # 500 bytes up
        backend.read_slot(2)                 # 300 bytes down
        moved = (100, 500, 300)
        expected = sum(WAN.rtt_ms + WAN.transfer_ms(b) for b in moved)
        assert backend.roundtrips == 3
        assert backend.simulated_ms == pytest.approx(expected)

    def test_unwritten_slot_read_charges_rtt_only(self):
        backend = NetworkBackend(2, WAN)
        assert backend.read_slot(0) is None
        assert backend.simulated_ms == pytest.approx(WAN.rtt_ms)

    def test_accumulation_is_monotone(self):
        backend = NetworkBackend(2, LAN)
        backend.load([b"a", b"b"])
        seen = []
        for _ in range(5):
            backend.read_slot(0)
            seen.append(backend.simulated_ms)
        assert seen == sorted(seen)
        assert seen[-1] == pytest.approx(5 * seen[0])


class TestNetworkBackendFactory:
    def test_aggregates_across_backends(self):
        factory = NetworkBackendFactory(WAN)
        first, second = factory(2), factory(3)
        first.write_slot(0, b"a")
        second.write_slot(0, b"b")
        assert factory.backends == (first, second)
        assert factory.roundtrips == 2
        assert factory.simulated_ms == pytest.approx(
            first.simulated_ms + second.simulated_ms
        )


class TestServerBackendThreading:
    def test_server_defaults_to_memory(self):
        server = StorageServer(4)
        assert isinstance(server.backend, InMemoryBackend)

    def test_server_uses_injected_backend(self):
        backend = NetworkBackend(4, WAN)
        server = StorageServer(4, backend=backend)
        server.load([b"a"] * 4)
        server.read(0)
        server.write(1, b"bb")
        assert server.backend is backend
        assert backend.roundtrips == 2
        assert server.reads == 1 and server.writes == 1

    def test_capacity_mismatch_rejected(self):
        with pytest.raises(StorageError):
            StorageServer(4, backend=InMemoryBackend(3))

    def test_pool_builds_one_backend_per_server(self):
        factory = NetworkBackendFactory(LAN)
        pool = ServerPool(3, 8, backend_factory=factory)
        assert len(factory.backends) == 3
        pool.load_replicas([b"x"] * 8)
        pool[0].read(0)
        pool[2].read(1)
        assert factory.roundtrips == 2


class TestBatchedSlotRounds:
    def test_read_slots_charges_one_roundtrip(self):
        backend = NetworkBackend(4, WAN)
        backend.load([b"a" * 100, b"b" * 200, b"c" * 300, b"d" * 400])
        backend.read_slots([0, 2, 3])
        assert backend.roundtrips == 1
        expected = WAN.rtt_ms + WAN.transfer_ms(100 + 300 + 400)
        assert backend.simulated_ms == pytest.approx(expected)

    def test_write_slots_charges_one_roundtrip(self):
        backend = NetworkBackend(4, WAN)
        backend.write_slots([(0, b"x" * 50), (1, b"y" * 150)])
        assert backend.roundtrips == 1
        expected = WAN.rtt_ms + WAN.transfer_ms(200)
        assert backend.simulated_ms == pytest.approx(expected)
        assert backend.read_slot(1) == b"y" * 150

    def test_empty_batches_charge_nothing(self):
        backend = NetworkBackend(2, WAN)
        assert backend.read_slots([]) == []
        backend.write_slots([])
        assert backend.roundtrips == 0
        assert backend.simulated_ms == 0.0

    def test_batched_round_is_cheaper_than_per_slot(self):
        batched = NetworkBackend(8, WAN)
        per_slot = NetworkBackend(8, WAN)
        blocks = [bytes([i]) * 64 for i in range(8)]
        batched.load(blocks)
        per_slot.load(blocks)
        batched.read_slots(list(range(8)))
        for slot in range(8):
            per_slot.read_slot(slot)
        assert batched.simulated_ms < per_slot.simulated_ms
        assert per_slot.roundtrips == 8
        assert batched.roundtrips == 1

    def test_in_memory_read_slots_in_order(self):
        backend = InMemoryBackend(3)
        backend.load([b"a", b"b", b"c"])
        assert backend.read_slots([2, 0]) == [b"c", b"a"]

    def test_backends_are_slotted(self):
        # Hot-path objects carry no per-instance __dict__.
        backend = InMemoryBackend(1)
        with pytest.raises(AttributeError):
            backend.extra = 1
        network = NetworkBackend(1, WAN)
        with pytest.raises(AttributeError):
            network.extra = 1
