"""Tests for repro.storage.backends and its threading through servers."""

import pytest

from repro.storage.backends import (
    InMemoryBackend,
    NetworkBackend,
    NetworkBackendFactory,
    SlabBackend,
)
from repro.storage.errors import StorageError
from repro.storage.network import LAN, WAN
from repro.storage.server import ServerPool, StorageServer


class TestInMemoryBackend:
    def test_round_trip(self):
        backend = InMemoryBackend(4)
        assert backend.capacity == 4
        assert backend.read_slot(2) is None
        backend.write_slot(2, b"abc")
        assert backend.read_slot(2) == b"abc"

    def test_load_replaces_everything(self):
        backend = InMemoryBackend(3)
        backend.load([b"a", b"b", b"c"])
        assert [backend.read_slot(i) for i in range(3)] == [b"a", b"b", b"c"]

    def test_load_size_checked(self):
        with pytest.raises(StorageError):
            InMemoryBackend(3).load([b"a"])

    def test_negative_capacity_rejected(self):
        with pytest.raises(StorageError):
            InMemoryBackend(-1)


class TestNetworkBackend:
    def test_charges_rtt_and_transfer(self):
        backend = NetworkBackend(4, WAN)
        backend.write_slot(0, b"x" * 1000)
        expected = WAN.rtt_ms + WAN.transfer_ms(1000)
        assert backend.simulated_ms == pytest.approx(expected)
        backend.read_slot(0)
        assert backend.roundtrips == 2
        assert backend.simulated_ms == pytest.approx(2 * expected)

    def test_load_is_free(self):
        backend = NetworkBackend(2, WAN)
        backend.load([b"a", b"b"])
        assert backend.simulated_ms == 0.0
        assert backend.read_slot(0) == b"a"

    def test_peek_is_free(self):
        backend = NetworkBackend(2, WAN)
        backend.load([b"a", b"b"])
        assert backend.peek_slot(1) == b"b"
        assert backend.simulated_ms == 0.0
        assert backend.roundtrips == 0

    def test_server_peek_charges_nothing(self):
        server = StorageServer(2, backend=NetworkBackend(2, WAN))
        server.load([b"a", b"b"])
        assert server.peek(0) == b"a"
        assert server.backend.simulated_ms == 0.0

    def test_wraps_existing_backend(self):
        inner = InMemoryBackend(2)
        inner.write_slot(1, b"z")
        backend = NetworkBackend(inner, LAN)
        assert backend.capacity == 2
        assert backend.read_slot(1) == b"z"
        assert backend.model is LAN

    def test_mixed_sequence_accumulates_exactly(self):
        # The serving layer derives dispatch service times from these
        # accumulators, so the sum must match the per-access formula.
        backend = NetworkBackend(4, WAN)
        backend.load([b"a" * 100, b"b" * 200, b"c" * 300, b"d" * 400])
        backend.read_slot(0)                 # 100 bytes down
        backend.write_slot(1, b"x" * 500)    # 500 bytes up
        backend.read_slot(2)                 # 300 bytes down
        moved = (100, 500, 300)
        expected = sum(WAN.rtt_ms + WAN.transfer_ms(b) for b in moved)
        assert backend.roundtrips == 3
        assert backend.simulated_ms == pytest.approx(expected)

    def test_unwritten_slot_read_charges_rtt_only(self):
        backend = NetworkBackend(2, WAN)
        assert backend.read_slot(0) is None
        assert backend.simulated_ms == pytest.approx(WAN.rtt_ms)

    def test_accumulation_is_monotone(self):
        backend = NetworkBackend(2, LAN)
        backend.load([b"a", b"b"])
        seen = []
        for _ in range(5):
            backend.read_slot(0)
            seen.append(backend.simulated_ms)
        assert seen == sorted(seen)
        assert seen[-1] == pytest.approx(5 * seen[0])


class TestNetworkBackendFactory:
    def test_aggregates_across_backends(self):
        factory = NetworkBackendFactory(WAN)
        first, second = factory(2), factory(3)
        first.write_slot(0, b"a")
        second.write_slot(0, b"b")
        assert factory.backends == (first, second)
        assert factory.roundtrips == 2
        assert factory.simulated_ms == pytest.approx(
            first.simulated_ms + second.simulated_ms
        )


class TestServerBackendThreading:
    def test_server_defaults_to_memory(self):
        server = StorageServer(4)
        assert isinstance(server.backend, InMemoryBackend)

    def test_server_uses_injected_backend(self):
        backend = NetworkBackend(4, WAN)
        server = StorageServer(4, backend=backend)
        server.load([b"a"] * 4)
        server.read(0)
        server.write(1, b"bb")
        assert server.backend is backend
        assert backend.roundtrips == 2
        assert server.reads == 1 and server.writes == 1

    def test_capacity_mismatch_rejected(self):
        with pytest.raises(StorageError):
            StorageServer(4, backend=InMemoryBackend(3))

    def test_pool_builds_one_backend_per_server(self):
        factory = NetworkBackendFactory(LAN)
        pool = ServerPool(3, 8, backend_factory=factory)
        assert len(factory.backends) == 3
        pool.load_replicas([b"x"] * 8)
        pool[0].read(0)
        pool[2].read(1)
        assert factory.roundtrips == 2


class TestBatchedSlotRounds:
    def test_read_slots_charges_one_roundtrip(self):
        backend = NetworkBackend(4, WAN)
        backend.load([b"a" * 100, b"b" * 200, b"c" * 300, b"d" * 400])
        backend.read_slots([0, 2, 3])
        assert backend.roundtrips == 1
        expected = WAN.rtt_ms + WAN.transfer_ms(100 + 300 + 400)
        assert backend.simulated_ms == pytest.approx(expected)

    def test_write_slots_charges_one_roundtrip(self):
        backend = NetworkBackend(4, WAN)
        backend.write_slots([(0, b"x" * 50), (1, b"y" * 150)])
        assert backend.roundtrips == 1
        expected = WAN.rtt_ms + WAN.transfer_ms(200)
        assert backend.simulated_ms == pytest.approx(expected)
        assert backend.read_slot(1) == b"y" * 150

    def test_empty_batches_charge_nothing(self):
        backend = NetworkBackend(2, WAN)
        assert backend.read_slots([]) == []
        backend.write_slots([])
        assert backend.roundtrips == 0
        assert backend.simulated_ms == 0.0

    def test_batched_round_is_cheaper_than_per_slot(self):
        batched = NetworkBackend(8, WAN)
        per_slot = NetworkBackend(8, WAN)
        blocks = [bytes([i]) * 64 for i in range(8)]
        batched.load(blocks)
        per_slot.load(blocks)
        batched.read_slots(list(range(8)))
        for slot in range(8):
            per_slot.read_slot(slot)
        assert batched.simulated_ms < per_slot.simulated_ms
        assert per_slot.roundtrips == 8
        assert batched.roundtrips == 1

    def test_in_memory_read_slots_in_order(self):
        backend = InMemoryBackend(3)
        backend.load([b"a", b"b", b"c"])
        assert backend.read_slots([2, 0]) == [b"c", b"a"]

    def test_backends_are_slotted(self):
        # Hot-path objects carry no per-instance __dict__.
        backend = InMemoryBackend(1)
        with pytest.raises(AttributeError):
            backend.extra = 1
        network = NetworkBackend(1, WAN)
        with pytest.raises(AttributeError):
            network.extra = 1
        slab = SlabBackend(1)
        with pytest.raises(AttributeError):
            slab.extra = 1


class TestBatchPricingGuardEdges:
    """The ``if indices:`` / ``if items:`` guards of the batched rounds.

    Batched pricing must stay exactly "one roundtrip + combined
    transfer" on every edge — never-written (``None``) blocks, empty
    blocks, and truly empty batches — so read and write rounds can
    never drift apart in cost.
    """

    def test_read_slots_of_unwritten_slots_charges_one_bare_roundtrip(self):
        backend = NetworkBackend(4, WAN)
        assert backend.read_slots([0, 1, 2]) == [None, None, None]
        assert backend.roundtrips == 1
        # None blocks move zero bytes: the round costs the RTT alone.
        assert backend.simulated_ms == pytest.approx(WAN.rtt_ms)

    def test_read_slots_mixed_none_counts_present_bytes_only(self):
        backend = NetworkBackend(4, WAN)
        backend.write_slot(1, b"x" * 300)
        backend.write_slot(3, b"y" * 500)
        before = backend.simulated_ms
        blocks = backend.read_slots([0, 1, 2, 3])
        assert blocks == [None, b"x" * 300, None, b"y" * 500]
        expected = WAN.rtt_ms + WAN.transfer_ms(800)
        assert backend.simulated_ms - before == pytest.approx(expected)

    def test_write_slots_of_empty_blocks_charges_one_bare_roundtrip(self):
        backend = NetworkBackend(4, WAN)
        backend.write_slots([(0, b""), (1, b"")])
        assert backend.roundtrips == 1
        assert backend.simulated_ms == pytest.approx(WAN.rtt_ms)
        assert backend.read_slot(0) == b""  # stored, not dropped

    def test_write_slots_mixed_sizes_charges_combined_transfer(self):
        backend = NetworkBackend(4, WAN)
        backend.write_slots([(0, b""), (1, b"x" * 700), (2, b"y" * 300)])
        assert backend.roundtrips == 1
        expected = WAN.rtt_ms + WAN.transfer_ms(1000)
        assert backend.simulated_ms == pytest.approx(expected)

    def test_read_write_round_pricing_is_symmetric(self):
        # Equal payloads in either direction must price identically.
        reader = NetworkBackend(4, WAN)
        writer = NetworkBackend(4, WAN)
        blocks = [b"a" * 100, b"b" * 200, b"c" * 300, b"d" * 400]
        reader.load(blocks)
        reader.read_slots([0, 1, 2, 3])
        writer.write_slots(list(enumerate(blocks)))
        assert reader.roundtrips == writer.roundtrips == 1
        assert reader.simulated_ms == pytest.approx(writer.simulated_ms)

    def test_single_slot_and_batch_of_one_price_identically(self):
        single = NetworkBackend(2, WAN)
        batched = NetworkBackend(2, WAN)
        single.write_slot(0, b"z" * 256)
        batched.write_slots([(0, b"z" * 256)])
        assert single.simulated_ms == pytest.approx(batched.simulated_ms)
        assert single.roundtrips == batched.roundtrips == 1
        single.read_slot(0)
        batched.read_slots([0])
        assert single.simulated_ms == pytest.approx(batched.simulated_ms)

    def test_empty_batches_dispatch_to_inner_without_charging(self):
        inner = InMemoryBackend(2)
        backend = NetworkBackend(inner, WAN)
        assert backend.read_slots([]) == []
        backend.write_slots([])
        assert backend.roundtrips == 0
        assert backend.simulated_ms == 0.0


class TestSlabBackend:
    def test_round_trip(self):
        backend = SlabBackend(4)
        assert backend.capacity == 4
        assert backend.read_slot(2) is None
        backend.write_slot(2, b"abcdefgh")
        assert backend.read_slot(2) == b"abcdefgh"
        assert backend.block_size == 8

    def test_unwritten_slots_stay_none(self):
        # The presence bitmap distinguishes "never written" from zeros.
        backend = SlabBackend(3)
        backend.write_slot(1, b"\x00" * 16)
        assert backend.read_slot(0) is None
        assert backend.read_slot(1) == b"\x00" * 16
        assert backend.read_slots([0, 1, 2]) == [None, b"\x00" * 16, None]

    def test_load_replaces_everything(self):
        backend = SlabBackend(3)
        backend.write_slot(0, b"old-data")
        backend.load([b"aa", b"bb", b"cc"])
        assert [backend.read_slot(i) for i in range(3)] == [b"aa", b"bb", b"cc"]
        assert backend.block_size == 8  # fixed by the pre-load write

    def test_load_size_checked(self):
        with pytest.raises(StorageError):
            SlabBackend(3).load([b"a"])

    def test_negative_capacity_rejected(self):
        with pytest.raises(StorageError):
            SlabBackend(-1)

    def test_preallocated_block_size(self):
        backend = SlabBackend(2, block_size=32)
        assert backend.block_size == 32
        backend.write_slot(0, b"q" * 32)
        assert backend.read_slot(0) == b"q" * 32

    def test_variable_size_blocks_spill_and_return(self):
        backend = SlabBackend(2)
        backend.write_slot(0, b"x" * 8)      # fixes the slab size
        backend.write_slot(1, b"toolongforslab")
        assert backend.spilled_slots == 1
        assert backend.read_slot(1) == b"toolongforslab"
        backend.write_slot(1, b"y" * 8)      # back onto the slab
        assert backend.spilled_slots == 0
        assert backend.read_slot(1) == b"y" * 8

    def test_mixed_size_load_falls_back_per_slot(self):
        backend = SlabBackend(3)
        backend.load([b"aa", b"bbbb", b"cc"])
        assert [backend.read_slot(i) for i in range(3)] == [
            b"aa", b"bbbb", b"cc",
        ]
        assert backend.spilled_slots == 1

    def test_read_slots_in_order(self):
        backend = SlabBackend(3)
        backend.load([b"aa", b"bb", b"cc"])
        assert backend.read_slots([2, 0, 2]) == [b"cc", b"aa", b"cc"]

    def test_write_slots_batch(self):
        backend = SlabBackend(4)
        backend.write_slots([(0, b"a" * 4), (3, b"d" * 4)])
        assert backend.read_slots([0, 1, 2, 3]) == [
            b"a" * 4, None, None, b"d" * 4,
        ]

    def test_returns_bytes_not_views(self):
        # Callers hold onto returned blocks; later writes must not
        # mutate them through a shared buffer.
        backend = SlabBackend(2)
        backend.load([b"aa", b"bb"])
        block = backend.read_slot(0)
        backend.write_slot(0, b"zz")
        assert block == b"aa"
        assert isinstance(block, bytes)

    def test_is_a_backend_factory(self):
        server = StorageServer(4, backend=SlabBackend(4))
        server.load([b"x" * 8] * 4)
        assert server.read(1) == b"x" * 8
