"""Tests for the executor abstraction and its accounting contract."""

import threading
import time

import pytest

from repro.parallel import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    SimulatedParallelExecutor,
    resolve_executor,
)
from repro.storage.faults import ServerFault
from repro.storage.network import LAN, NetworkModel
from repro.storage.server import ServerPool


class TestFanOutContract:
    @pytest.mark.parametrize("executor", [
        SerialExecutor(), ParallelExecutor(), SimulatedParallelExecutor(),
    ])
    def test_results_preserve_submission_order(self, executor):
        tasks = [lambda value=value: value * 2 for value in range(16)]
        results = executor.fan_out(tasks)
        assert [result.value for result in results] == [
            value * 2 for value in range(16)
        ]
        assert [result.index for result in results] == list(range(16))
        assert all(result.ok for result in results)
        executor.close()

    @pytest.mark.parametrize("executor", [
        SerialExecutor(), ParallelExecutor(), SimulatedParallelExecutor(),
    ])
    def test_faulted_task_does_not_poison_siblings(self, executor):
        def boom():
            raise ServerFault("injected")

        results = executor.fan_out([lambda: "a", boom, lambda: "c"])
        assert results[0].value == "a"
        assert results[2].value == "c"
        assert isinstance(results[1].error, ServerFault)
        assert not results[1].ok
        with pytest.raises(ServerFault):
            results[1].unwrap()
        executor.close()

    def test_per_task_timing_recorded(self):
        executor = SerialExecutor()
        results = executor.fan_out([lambda: time.sleep(0.002)])
        assert results[0].elapsed_ms > 0.0

    def test_empty_stage(self):
        assert SerialExecutor().fan_out([]) == []
        assert ParallelExecutor().fan_out([]) == []

    def test_parallel_executor_actually_uses_threads(self):
        executor = ParallelExecutor(max_workers=4)
        seen = set()

        def record():
            seen.add(threading.get_ident())
            time.sleep(0.005)

        executor.fan_out([record for _ in range(4)])
        executor.close()
        assert len(seen) > 1

    def test_ordered_stage_runs_in_submission_order_under_threads(self):
        executor = ParallelExecutor(max_workers=4)
        order = []
        executor.fan_out(
            [lambda slot=slot: order.append(slot) for slot in range(8)],
            ordered=True,
        )
        executor.close()
        assert order == list(range(8))


class TestOnResultCallback:
    @pytest.mark.parametrize("executor", [
        SerialExecutor(), ParallelExecutor(), SimulatedParallelExecutor(),
    ])
    def test_invoked_per_leg_in_submission_order(self, executor):
        seen = []
        results = executor.fan_out(
            [lambda value=value: value * 3 for value in range(8)],
            on_result=seen.append,
        )
        assert seen == results
        assert [result.index for result in seen] == list(range(8))
        assert [result.value for result in seen] == [
            value * 3 for value in range(8)
        ]
        executor.close()

    def test_callback_runs_on_the_callers_thread(self):
        executor = ParallelExecutor(max_workers=4)
        caller = threading.get_ident()
        callback_threads = set()
        executor.fan_out(
            [lambda: time.sleep(0.002) for _ in range(4)],
            on_result=lambda result: callback_threads.add(
                threading.get_ident()
            ),
        )
        executor.close()
        assert callback_threads == {caller}

    def test_callback_sees_faulted_legs(self):
        def boom():
            raise ServerFault("injected")

        seen = []
        SerialExecutor().fan_out(
            [lambda: "a", boom, lambda: "c"], on_result=seen.append
        )
        assert [result.ok for result in seen] == [True, False, True]
        assert isinstance(seen[1].error, ServerFault)


class TestStageCost:
    def test_serial_is_the_sum(self):
        assert SerialExecutor().stage_cost([3.0, 5.0, 2.0]) == 10.0

    def test_concurrent_is_the_max(self):
        assert SimulatedParallelExecutor().stage_cost([3.0, 5.0, 2.0]) == 5.0
        assert ParallelExecutor().stage_cost([3.0, 5.0, 2.0]) == 5.0

    def test_dispatch_overhead_added_once(self):
        executor = SimulatedParallelExecutor(dispatch_overhead_ms=0.5)
        assert executor.stage_cost([3.0, 5.0]) == 5.5

    def test_single_leg_costs_the_leg(self):
        # One leg has nothing to overlap — no overhead, no discount.
        assert SimulatedParallelExecutor(
            dispatch_overhead_ms=0.5
        ).stage_cost([4.0]) == 4.0

    def test_empty_stage_is_free(self):
        assert ParallelExecutor().stage_cost([]) == 0.0

    def test_negative_leg_rejected(self):
        with pytest.raises(ValueError):
            SerialExecutor().stage_cost([-1.0])


class TestResolveExecutor:
    def test_names(self):
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        assert isinstance(resolve_executor("parallel"), ParallelExecutor)
        assert isinstance(
            resolve_executor("simulated"), SimulatedParallelExecutor
        )

    def test_none_is_serial(self):
        assert isinstance(resolve_executor(None), SerialExecutor)

    def test_instance_passes_through(self):
        executor = ParallelExecutor()
        assert resolve_executor(executor) is executor

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValueError, match="serial"):
            resolve_executor("warp")

    def test_subclass_counts_as_executor(self):
        class Custom(Executor):
            def fan_out(self, tasks, *, ordered=False):
                return SerialExecutor().fan_out(tasks)

        custom = Custom()
        assert resolve_executor(custom) is custom


class TestNetworkStageAccounting:
    def test_serial_stage_is_the_sum(self):
        assert LAN.serial_stage_ms([1.0, 2.0, 3.0]) == 6.0

    def test_overlapped_stage_is_the_max_plus_overhead(self):
        assert LAN.overlapped_stage_ms([1.0, 4.0, 3.0]) == 4.0
        assert LAN.overlapped_stage_ms(
            [1.0, 4.0], dispatch_overhead_ms=0.25
        ) == 4.25

    def test_empty_stage_is_free(self):
        assert LAN.overlapped_stage_ms([]) == 0.0
        assert LAN.serial_stage_ms([]) == 0.0

    def test_single_leg_pays_no_dispatch_overhead(self):
        # Matches Executor.stage_cost: one leg has nothing to coordinate.
        assert LAN.overlapped_stage_ms(
            [4.0], dispatch_overhead_ms=0.5
        ) == 4.0

    def test_invalid_legs_rejected(self):
        with pytest.raises(ValueError):
            LAN.overlapped_stage_ms([-1.0])
        with pytest.raises(ValueError):
            LAN.overlapped_stage_ms([1.0], dispatch_overhead_ms=-0.5)

    def test_works_on_any_model(self):
        model = NetworkModel(rtt_ms=10.0, bandwidth_mbps=100.0)
        assert model.overlapped_stage_ms([7.0, 2.0]) == 7.0


class _StubKVSReplica:
    """Minimal KVS replica double for fan-out error-path tests."""

    def __init__(self, error: Exception | None = None):
        self._error = error
        self.puts = 0

    def put(self, key, value):
        if self._error is not None:
            raise self._error
        self.puts += 1

    def server_operations(self):
        return self.puts


class TestKVWriteFanOutErrorHandling:
    def test_sibling_server_fault_marks_dead_before_other_error_raises(self):
        from repro.cluster.group import KVShardGroup

        group = KVShardGroup(0, [
            _StubKVSReplica(ValueError("capacity")),
            _StubKVSReplica(ServerFault("mid-write crash")),
            _StubKVSReplica(),
        ])
        with pytest.raises(ValueError, match="capacity"):
            group.put(b"k", b"v")
        # The faulted sibling went fail-stop dead even though another
        # replica's non-fault error is what propagated.
        assert group.live_replicas == 2
        assert group.fault_counters()["dead_replicas"] == 1
        # And the healthy replica's write landed before the raise.
        assert group.replicas[2].puts == 1


class TestServerPoolRequestAll:
    def test_serial_default_hits_every_server_in_order(self):
        pool = ServerPool(3, capacity=4, block_size=8)
        pool.load_replicas([bytes(8)] * 4)
        results = pool.request_all(lambda server: server.read(0))
        assert [result.value for result in results] == [bytes(8)] * 3
        assert all(server.reads == 1 for server in pool)

    def test_parallel_path_races_independent_servers(self):
        pool = ServerPool(4, capacity=4, block_size=8)
        pool.load_replicas([bytes(8)] * 4)
        executor = ParallelExecutor(max_workers=4)
        results = pool.request_all(
            lambda server: [server.read(slot) for slot in range(4)],
            executor=executor,
        )
        executor.close()
        assert all(result.ok for result in results)
        assert all(server.reads == 4 for server in pool)

    def test_per_server_fault_does_not_poison_siblings(self):
        pool = ServerPool(3, capacity=2, block_size=8)
        pool.load_replicas([bytes(8)] * 2)

        def read_or_die(server):
            if server.server_id == 1:
                raise ServerFault("server 1 is down")
            return server.read(0)

        results = pool.request_all(read_or_die, executor="parallel")
        assert results[0].ok and results[2].ok
        assert isinstance(results[1].error, ServerFault)
