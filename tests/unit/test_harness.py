"""Tests for repro.simulation.harness."""

import pytest

from repro.baselines.plaintext import PlaintextKVS, PlaintextRAM
from repro.core.dp_ir import DPIR
from repro.simulation.harness import run_ir_trace, run_kv_trace, run_ram_trace
from repro.storage.blocks import encode_int, integer_database
from repro.workloads.generators import read_write_trace, uniform_trace
from repro.workloads.kv_traces import KVTrace, KVOperation
from repro.workloads.trace import Operation, Trace, reads_from_indices


class TestRunIrTrace:
    def test_counts_and_correctness(self, rng, small_db):
        scheme = DPIR(small_db, pad_size=4, alpha=0.2, rng=rng.spawn("ir"))
        trace = uniform_trace(len(small_db), 50, rng.spawn("t"))
        metrics = run_ir_trace(scheme, trace, expected=small_db)
        assert metrics.operations == 50
        assert metrics.blocks_downloaded == 200  # 4 per query
        assert metrics.blocks_uploaded == 0
        assert metrics.mismatches == 0
        assert 0 < metrics.errors < 30

    def test_rejects_write_operations(self, rng, small_db):
        scheme = DPIR(small_db, pad_size=2, alpha=0.1, rng=rng)
        trace = Trace([Operation.write(0, b"v")], universe=len(small_db))
        with pytest.raises(ValueError):
            run_ir_trace(scheme, trace)

    def test_detects_wrong_expectations(self, rng, small_db):
        scheme = DPIR(small_db, pad_size=2, alpha=0.01, rng=rng.spawn("ir"))
        wrong = list(reversed(small_db))
        trace = reads_from_indices([0] * 20, len(small_db))
        metrics = run_ir_trace(scheme, trace, expected=wrong)
        assert metrics.mismatches > 0


class TestRunRamTrace:
    def test_plaintext_roundtrip(self, rng, small_db):
        ram = PlaintextRAM(small_db)
        trace = read_write_trace(len(small_db), 100, rng.spawn("t"))
        metrics = run_ram_trace(ram, trace, initial=small_db)
        assert metrics.operations == 100
        assert metrics.mismatches == 0
        assert metrics.blocks_per_operation == 1.0

    def test_reference_model_catches_corruption(self, rng, small_db):
        class BrokenRAM(PlaintextRAM):
            def read(self, index):
                del index
                return b"garbage"

        ram = BrokenRAM(small_db)
        trace = reads_from_indices([0, 1], len(small_db))
        metrics = run_ram_trace(ram, trace, initial=small_db)
        assert metrics.mismatches == 2

    def test_without_initial_reference_only_tracks_writes(self, rng, small_db):
        ram = PlaintextRAM(small_db)
        trace = Trace(
            [
                Operation.read(0),  # unknown to the reference, not checked
                Operation.write(1, encode_int(42)),
                Operation.read(1),
            ],
            universe=len(small_db),
        )
        metrics = run_ram_trace(ram, trace)
        assert metrics.mismatches == 0


class TestRunKvTrace:
    def test_plaintext_roundtrip(self, rng):
        store = PlaintextKVS(64)
        trace = KVTrace(
            [
                KVOperation.put(b"a", b"1"),
                KVOperation.get(b"a"),
                KVOperation.get(b"missing"),
            ]
        )
        metrics = run_kv_trace(store, trace)
        assert metrics.operations == 3
        assert metrics.mismatches == 0

    def test_detects_lost_write(self):
        class ForgetfulKVS(PlaintextKVS):
            def put(self, key, value):
                del key, value  # drops everything

        store = ForgetfulKVS(64)
        trace = KVTrace([KVOperation.put(b"a", b"1"), KVOperation.get(b"a")])
        metrics = run_kv_trace(store, trace)
        assert metrics.mismatches == 1

    def test_detects_phantom_value(self):
        class PhantomKVS(PlaintextKVS):
            def get(self, key):
                del key
                return b"phantom"

        store = PhantomKVS(64)
        trace = KVTrace([KVOperation.get(b"never-inserted")])
        metrics = run_kv_trace(store, trace)
        assert metrics.mismatches == 1

    def test_check_disabled(self):
        class PhantomKVS(PlaintextKVS):
            def get(self, key):
                del key
                return b"phantom"

        store = PhantomKVS(64)
        trace = KVTrace([KVOperation.get(b"x")])
        metrics = run_kv_trace(store, trace, check=False)
        assert metrics.mismatches == 0


class TestSchemeShapes:
    def test_unknown_scheme_rejected(self):
        class NoServer:
            pass

        with pytest.raises(TypeError):
            run_ir_trace(NoServer(), reads_from_indices([0], 1))

    def test_empty_server_group_counts_zero(self):
        """Regression: the old duck-typed probe evaluated

            getattr(scheme, "pool", None) or getattr(scheme, "servers", None)

        so a scheme whose server group was *empty* (falsy) was silently
        skipped and misreported as shapeless.  The protocol's ``servers()``
        makes an empty group a legitimate zero-operation answer.
        """
        from repro.api.protocols import PrivateIR

        class UnprovisionedIR(PrivateIR):
            """An IR scheme whose servers are not yet provisioned."""

            @property
            def n(self):
                return 4

            @property
            def block_size(self):
                return 8

            def servers(self):
                return ()

            def query(self, index):
                return b"\x00" * 8  # answered from a warm client cache

        scheme = UnprovisionedIR()
        assert scheme.server_counters() == (0, 0)
        metrics = run_ir_trace(scheme, reads_from_indices([0, 1], 4))
        assert metrics.operations == 2
        assert metrics.blocks_downloaded == 0
        assert metrics.blocks_uploaded == 0
