"""Tests for repro.workloads.trace."""

import pytest

from repro.workloads.trace import OpKind, Operation, Trace, reads_from_indices


class TestOperation:
    def test_read_builder(self):
        op = Operation.read(5)
        assert op.kind is OpKind.READ
        assert op.index == 5
        assert op.value is None

    def test_write_builder(self):
        op = Operation.write(3, b"v")
        assert op.kind is OpKind.WRITE
        assert op.value == b"v"

    def test_write_requires_value(self):
        with pytest.raises(ValueError):
            Operation(OpKind.WRITE, 0)

    def test_read_rejects_value(self):
        with pytest.raises(ValueError):
            Operation(OpKind.READ, 0, b"v")

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            Operation.read(-1)

    def test_frozen(self):
        op = Operation.read(1)
        with pytest.raises(AttributeError):
            op.index = 2


class TestTrace:
    def test_indices(self):
        trace = reads_from_indices([3, 1, 4], universe=10)
        assert trace.indices() == [3, 1, 4]
        assert len(trace) == 3

    def test_universe_validation(self):
        with pytest.raises(ValueError):
            reads_from_indices([10], universe=10)

    def test_read_fraction(self):
        trace = Trace(
            [Operation.read(0), Operation.write(1, b"v")], universe=4
        )
        assert trace.read_fraction() == 0.5

    def test_read_fraction_empty(self):
        assert Trace([], universe=4).read_fraction() == 1.0

    def test_replace_builds_adjacent(self):
        base = reads_from_indices([0, 1, 2], universe=5)
        neighbour = base.replace(1, Operation.read(4))
        assert base.hamming_distance(neighbour) == 1
        assert neighbour.indices() == [0, 4, 2]
        assert base.indices() == [0, 1, 2]  # original untouched

    def test_replace_out_of_range(self):
        base = reads_from_indices([0], universe=2)
        with pytest.raises(IndexError):
            base.replace(5, Operation.read(1))

    def test_hamming_distance_requires_equal_length(self):
        with pytest.raises(ValueError):
            reads_from_indices([0], 2).hamming_distance(
                reads_from_indices([0, 1], 2)
            )

    def test_hamming_distance_counts_op_kind(self):
        a = Trace([Operation.read(0)], universe=2)
        b = Trace([Operation.write(0, b"v")], universe=2)
        assert a.hamming_distance(b) == 1

    def test_getitem_and_iter(self):
        trace = reads_from_indices([7, 8], universe=10)
        assert trace[0].index == 7
        assert [op.index for op in trace] == [7, 8]
