"""Tests for repro.hashing.two_choice."""

import math

import pytest

from repro.crypto.prf import PRF
from repro.hashing.two_choice import DChoiceTable


class TestConstruction:
    def test_rejects_bad_bins(self):
        with pytest.raises(ValueError):
            DChoiceTable(0)

    def test_rejects_bad_choices(self):
        with pytest.raises(ValueError):
            DChoiceTable(10, choices=0)


class TestKeyedInsertion:
    def test_requires_prf(self):
        table = DChoiceTable(10)
        with pytest.raises(ValueError):
            table.insert(b"key")

    def test_candidates_deterministic(self):
        table = DChoiceTable(100, prf=PRF(b"k"))
        assert table.candidates_for(b"key") == table.candidates_for(b"key")

    def test_insert_uses_lighter_bin(self):
        table = DChoiceTable(4, prf=PRF(b"k"))
        chosen = table.insert(b"key")
        candidates = table.candidates_for(b"key")
        assert chosen in candidates
        # Fill the chosen bin; the next same-key insert goes elsewhere
        # (or the same bin if both candidates coincide).
        for _ in range(3):
            table.insert(b"key")
        loads = table.loads()
        assert sum(loads) == 4

    def test_balls_counter(self):
        table = DChoiceTable(10, prf=PRF(b"k"))
        for i in range(7):
            table.insert(str(i).encode())
        assert table.balls == 7
        assert sum(table.loads()) == 7


class TestRandomInsertion:
    def test_loads_sum_to_balls(self, rng):
        table = DChoiceTable(64, choices=2)
        for _ in range(200):
            table.insert_random(rng)
        assert sum(table.loads()) == 200
        assert table.balls == 200

    def test_two_choices_beat_one(self, rng):
        n = 4096
        one = DChoiceTable(n, choices=1)
        two = DChoiceTable(n, choices=2)
        source_one = rng.spawn("one")
        source_two = rng.spawn("two")
        for _ in range(n):
            one.insert_random(source_one)
            two.insert_random(source_two)
        assert two.max_load() < one.max_load()

    def test_two_choice_max_load_near_loglog(self, rng):
        n = 4096
        table = DChoiceTable(n, choices=2)
        source = rng.spawn("ll")
        for _ in range(n):
            table.insert_random(source)
        # Theorem A.1: O(log log n); allow a generous constant.
        assert table.max_load() <= math.ceil(math.log2(math.log2(n))) + 2

    def test_three_choices_no_worse(self, rng):
        n = 2048
        two = DChoiceTable(n, choices=2)
        three = DChoiceTable(n, choices=3)
        for label, table in (("2", two), ("3", three)):
            source = rng.spawn(label)
            for _ in range(n):
                table.insert_random(source)
        assert three.max_load() <= two.max_load() + 1

    def test_load_histogram_consistent(self, rng):
        table = DChoiceTable(16, choices=2)
        for _ in range(50):
            table.insert_random(rng)
        histogram = table.load_histogram()
        assert sum(histogram.values()) == 16
        assert sum(load * count for load, count in histogram.items()) == 50

    def test_load_accessor(self, rng):
        table = DChoiceTable(8, choices=1)
        table.insert_random(rng)
        assert sum(table.load(i) for i in range(8)) == 1
