"""Tests for repro.core.bucket_ram (Appendix E)."""

import pytest

from repro.core.bucket_ram import BucketDPRAM
from repro.storage.errors import RetrievalError, StorageError


def _blocks(count, size=8):
    return [bytes([i]) * size for i in range(count)]


def _disjoint_ram(rng, p=0.3):
    """Four disjoint buckets of two nodes each."""
    buckets = [(0, 1), (2, 3), (4, 5), (6, 7)]
    return BucketDPRAM(_blocks(8), buckets, stash_probability=p,
                       rng=rng.spawn("bram"))


def _overlapping_ram(rng, p=0.3):
    """Three buckets sharing node 6 (a common ancestor)."""
    buckets = [(0, 1, 6), (2, 3, 6), (4, 5, 6)]
    return BucketDPRAM(_blocks(7), buckets, stash_probability=p,
                       rng=rng.spawn("bram-overlap"))


class TestConstruction:
    def test_rejects_empty_blocks(self, rng):
        with pytest.raises(ValueError):
            BucketDPRAM([], [(0,)], 0.5, rng=rng)

    def test_rejects_empty_buckets(self, rng):
        with pytest.raises(ValueError):
            BucketDPRAM(_blocks(2), [], 0.5, rng=rng)

    def test_rejects_empty_bucket_tuple(self, rng):
        with pytest.raises(ValueError):
            BucketDPRAM(_blocks(2), [()], 0.5, rng=rng)

    def test_rejects_out_of_range_node(self, rng):
        with pytest.raises(StorageError):
            BucketDPRAM(_blocks(2), [(0, 5)], 0.5, rng=rng)

    def test_rejects_bad_probability(self, rng):
        with pytest.raises(ValueError):
            BucketDPRAM(_blocks(2), [(0,)], 0.0, rng=rng)

    def test_server_holds_ciphertexts(self, rng):
        ram = _disjoint_ram(rng)
        assert ram.server.peek(0) != _blocks(8)[0]


class TestQueryLifecycle:
    def test_download_returns_contents(self, rng):
        ram = _disjoint_ram(rng)
        snapshot = ram.query(1)
        assert snapshot == {2: _blocks(8)[2], 3: _blocks(8)[3]}

    def test_update_persists(self, rng):
        ram = _disjoint_ram(rng)
        ram.query(0, new_contents={0: b"UPDATED!"})
        assert ram.query(0)[0] == b"UPDATED!"

    def test_partial_update_keeps_other_nodes(self, rng):
        ram = _disjoint_ram(rng)
        ram.query(0, new_contents={0: b"UPDATED!"})
        assert ram.query(0)[1] == _blocks(8)[1]

    def test_repeated_updates_under_stash_churn(self, rng):
        ram = BucketDPRAM(_blocks(4), [(0, 1), (2, 3)],
                          stash_probability=0.7, rng=rng.spawn("churn"))
        expected = {0: _blocks(4)[0], 1: _blocks(4)[1]}
        for step in range(100):
            payload = bytes([step % 256]) * 8
            ram.query(0, new_contents={0: payload})
            expected[0] = payload
            assert ram.query(0) == expected

    def test_finish_twice_rejected(self, rng):
        ram = _disjoint_ram(rng)
        pending = ram.begin_query(0)
        ram.finish_query(pending)
        with pytest.raises(RetrievalError):
            ram.finish_query(pending)

    def test_update_to_foreign_node_rejected(self, rng):
        ram = _disjoint_ram(rng)
        pending = ram.begin_query(0)
        with pytest.raises(StorageError):
            ram.finish_query(pending, {5: b"not-in-bucket"})

    def test_bucket_out_of_range(self, rng):
        ram = _disjoint_ram(rng)
        with pytest.raises(RetrievalError):
            ram.begin_query(9)

    def test_double_begin_same_bucket_rejected(self, rng):
        ram = _disjoint_ram(rng)
        pending = ram.begin_query(0)
        with pytest.raises(RetrievalError):
            ram.begin_query(0)
        ram.finish_query(pending)
        ram.begin_query(0)  # allowed again once finished


class TestOverlapConsistency:
    def test_shared_node_update_visible_to_sibling(self, rng):
        ram = _overlapping_ram(rng)
        ram.query(0, new_contents={6: b"SHAREDv1"})
        assert ram.query(1)[6] == b"SHAREDv1"
        assert ram.query(2)[6] == b"SHAREDv1"

    def test_shared_node_survives_stash_churn(self, rng):
        ram = BucketDPRAM(
            _blocks(5), [(0, 4), (1, 4), (2, 4), (3, 4)],
            stash_probability=0.8, rng=rng.spawn("hot"),
        )
        current = _blocks(5)[4]
        source = rng.spawn("driver")
        for step in range(150):
            bucket = source.randbelow(4)
            if step % 3 == 0:
                current = bytes([step % 251]) * 8
                ram.query(bucket, new_contents={4: current})
            else:
                assert ram.query(bucket)[4] == current

    def test_private_nodes_stay_independent(self, rng):
        ram = _overlapping_ram(rng)
        ram.query(0, new_contents={0: b"bucket0!"})
        assert ram.query(1)[2] == _blocks(7)[2]
        assert ram.query(0)[0] == b"bucket0!"


class TestInterleavedPhases:
    def test_two_pending_queries(self, rng):
        ram = _disjoint_ram(rng)
        first = ram.begin_query(0)
        second = ram.begin_query(1)
        assert first.contents[0] == _blocks(8)[0]
        assert second.contents[2] == _blocks(8)[2]
        ram.finish_query(first, {0: b"newA0000"})
        ram.finish_query(second, {2: b"newB0000"})
        assert ram.query(0)[0] == b"newA0000"
        assert ram.query(1)[2] == b"newB0000"

    def test_interleaved_with_shared_node(self, rng):
        ram = _overlapping_ram(rng)
        first = ram.begin_query(0)
        second = ram.begin_query(1)
        # The KVS writes the same authoritative value through both handles.
        ram.finish_query(first, {6: b"JOINT-v2"})
        ram.finish_query(second, {6: b"JOINT-v2"})
        assert ram.query(2)[6] == b"JOINT-v2"


class TestTranscriptShape:
    def test_pairs_per_query(self, rng):
        ram = _disjoint_ram(rng)
        ram.query(0)
        ram.query(3)
        assert len(ram.transcript_pairs) == 2

    def test_unstashed_query_targets_itself(self, rng):
        ram = BucketDPRAM(_blocks(4), [(0, 1), (2, 3)],
                          stash_probability=1e-12, rng=rng.spawn("cold"))
        ram.query(1)
        assert ram.transcript_pairs[-1] == (1, 1)

    def test_bandwidth_per_query(self, rng):
        # Each query: download one bucket, download + upload one bucket.
        ram = _disjoint_ram(rng)
        reads_before = ram.server.reads
        writes_before = ram.server.writes
        ram.query(2)
        assert ram.server.reads - reads_before == 4  # 2 nodes x 2 downloads
        assert ram.server.writes - writes_before == 2  # 2 nodes uploaded

    def test_query_count(self, rng):
        ram = _disjoint_ram(rng)
        ram.query(0)
        ram.query(0)
        assert ram.query_count == 2


class TestClientAccounting:
    def test_peak_tracks_overlay(self, rng):
        ram = BucketDPRAM(_blocks(4), [(0, 1), (2, 3)],
                          stash_probability=1.0, rng=rng.spawn("full"))
        # p = 1: both buckets permanently stashed -> overlay holds all nodes.
        assert ram.client_blocks == 4
        ram.query(0)
        assert ram.client_peak_blocks >= 4

    def test_cold_client_holds_nothing(self, rng):
        ram = BucketDPRAM(_blocks(4), [(0, 1), (2, 3)],
                          stash_probability=1e-12, rng=rng.spawn("cold2"))
        ram.query(0)
        ram.query(1)
        assert ram.client_blocks == 0

    def test_stashed_bucket_count(self, rng):
        ram = BucketDPRAM(_blocks(4), [(0, 1), (2, 3)],
                          stash_probability=1.0, rng=rng.spawn("full2"))
        assert ram.stashed_buckets == 2
