"""Tests for repro.analysis.sweeps."""

import math

import pytest

from repro.analysis.sweeps import (
    dp_kvs_capacity_plan,
    dp_ram_stash_tradeoff,
    ir_privacy_frontier,
    oram_crossover_bandwidth,
    ram_privacy_frontier,
)


class TestIrFrontier:
    def test_achieved_above_floor_everywhere(self):
        points = ir_privacy_frontier(4096, bandwidths=(1, 4, 16, 64, 256))
        for point in points:
            assert point.epsilon_achieved >= point.epsilon_floor - 1e-9

    def test_construction_hugs_floor_within_constant(self):
        # Theorem 5.1 optimality: achieved - floor = ln((1-a)/a·...) ~ O(1)
        # in the bandwidth; the gap must not grow with K.
        alpha = 0.05
        points = ir_privacy_frontier(65536, bandwidths=(2, 8, 32, 128),
                                     alpha=alpha)
        gaps = [p.epsilon_achieved - p.epsilon_floor for p in points]
        assert max(gaps) - min(gaps) < 1.0

    def test_monotone_decreasing_in_bandwidth(self):
        points = ir_privacy_frontier(4096, bandwidths=(1, 8, 64, 512))
        floors = [p.epsilon_floor for p in points]
        achieved = [p.epsilon_achieved for p in points]
        assert floors == sorted(floors, reverse=True)
        assert achieved == sorted(achieved, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            ir_privacy_frontier(0, bandwidths=(1,))
        with pytest.raises(ValueError):
            ir_privacy_frontier(16, bandwidths=(17,))


class TestRamFrontier:
    def test_floor_decreases_with_bandwidth(self):
        points = ram_privacy_frontier(4096, bandwidths=(1, 2, 4, 8),
                                      client_blocks=4)
        floors = [p.epsilon_floor for p in points]
        assert floors == sorted(floors, reverse=True)

    def test_constant_bandwidth_needs_log_n(self):
        point = ram_privacy_frontier(2**20, bandwidths=(3,),
                                     client_blocks=4)[0]
        assert point.epsilon_floor >= math.log(2**20) - 3 * math.log(4) - 1e-9

    def test_no_achieved_column(self):
        point = ram_privacy_frontier(64, bandwidths=(2,), client_blocks=4)[0]
        assert point.epsilon_achieved is None


class TestStashTradeoff:
    def test_epsilon_bound_improves_with_phi(self):
        points = dp_ram_stash_tradeoff(4096, phis=(8, 32, 128, 512))
        bounds = [p.epsilon_bound for p in points]
        assert bounds == sorted(bounds, reverse=True)

    def test_overflow_probability_improves_with_phi(self):
        points = dp_ram_stash_tradeoff(4096, phis=(8, 64, 512))
        overflow = [p.overflow_probability for p in points]
        assert overflow == sorted(overflow, reverse=True)
        assert overflow[-1] < 1e-30

    def test_probability_clamped(self):
        point = dp_ram_stash_tradeoff(16, phis=(64,))[0]
        assert point.stash_probability == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            dp_ram_stash_tradeoff(0, phis=(8,))
        with pytest.raises(ValueError):
            dp_ram_stash_tradeoff(16, phis=(0,))


class TestKvsPlan:
    def test_storage_linear_overhead_loglog(self):
        points = dp_kvs_capacity_plan((2**10, 2**14, 2**18))
        for point in points:
            assert point.server_nodes_per_key < 3
        costs = [p.blocks_per_operation for p in points]
        # Quadrupling n twice adds at most a couple of path nodes.
        assert costs[-1] - costs[0] <= 2 * 6

    def test_path_length_grows_slowly(self):
        points = dp_kvs_capacity_plan((2**8, 2**16, 2**24))
        lengths = [p.path_length for p in points]
        assert lengths == sorted(lengths)
        assert lengths[-1] <= lengths[0] + 2


class TestCrossover:
    def test_matches_theorem_3_7_at_eps_zero(self):
        n, c = 4096, 4
        assert oram_crossover_bandwidth(n, c) == pytest.approx(
            math.log(n) / math.log(c)
        )

    def test_grows_with_n(self):
        assert oram_crossover_bandwidth(2**20) > oram_crossover_bandwidth(2**10)
