"""Tests for the redesigned config/scheduler API surface.

Covers the frozen :class:`ServingConfig` / :class:`ClusterConfig`
dataclasses, the scheduler registry, and the deprecation shim that
keeps the legacy eight-kwarg ``serve()`` / ``cluster()`` signatures
working (with exactly one warning) while the config path is canonical.
"""

import argparse
import warnings

import pytest

import repro
from repro.cluster.config import CLUSTER_CONFIG_FIELDS, ClusterConfig
from repro.cluster.service import cluster
from repro.serving import (
    ContinuousBatchScheduler,
    FIFOScheduler,
    ServingConfig,
    WindowedBatchScheduler,
    available_schedulers,
    build_scheduler,
    resolve_scheduler_name,
    scheduler_listings,
    scheduler_spec,
    serve,
)
from repro.serving.config import SERVING_CONFIG_FIELDS
from repro.serving.requests import Request
from repro.workloads.trace import Operation


class TestServingConfig:
    def test_defaults_are_the_documented_ones(self):
        config = ServingConfig()
        assert config.clients == 8
        assert config.scheduler == "window"
        assert config.max_in_flight == 4
        assert config.tenant_credits is None
        assert config.build_kwargs == {}

    def test_frozen(self):
        config = ServingConfig()
        with pytest.raises(AttributeError):
            config.clients = 4

    def test_replace_returns_a_modified_copy(self):
        config = ServingConfig(seed=7)
        tightened = config.replace(tenant_credits=2)
        assert tightened.tenant_credits == 2
        assert tightened.seed == 7
        assert config.tenant_credits is None

    @pytest.mark.parametrize("bad", [
        {"clients": 0}, {"requests_per_client": 0},
    ])
    def test_validates_counts_at_construction(self, bad):
        with pytest.raises(ValueError):
            ServingConfig(**bad)

    def test_from_cli_args_maps_flag_spellings(self):
        args = argparse.Namespace(
            clients=3, requests=9, scheduler="continuous", window_ms=1.5,
            max_batch=8, max_in_flight=2, tenant_credits=4, queue_cap=None,
            load="open", rate=250.0, think_ms=5.0, workload="uniform",
            n=64, seed=11, network="lan", value_size=32, executor=None,
            monitor=False,
        )
        config = ServingConfig.from_cli_args(args)
        assert config.requests_per_client == 9
        assert config.batch_window_ms == 1.5
        assert config.rate_rps == 250.0
        assert config.tenant_credits == 4

    def test_field_set_excludes_build_kwargs(self):
        assert "build_kwargs" not in SERVING_CONFIG_FIELDS
        assert "tenant_credits" in SERVING_CONFIG_FIELDS


class TestClusterConfig:
    def test_frozen_with_validated_counts(self):
        config = ClusterConfig()
        with pytest.raises(AttributeError):
            config.shards = 2
        with pytest.raises(ValueError):
            ClusterConfig(requests=0)
        with pytest.raises(ValueError):
            ClusterConfig(batch=0)

    def test_field_set_excludes_base_kwargs(self):
        assert "base_kwargs" not in CLUSTER_CONFIG_FIELDS
        assert "shards" in CLUSTER_CONFIG_FIELDS


class TestServeDeprecationShim:
    def test_legacy_kwargs_warn_once_and_name_the_kwargs(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            serve("dp_ir", clients=2, requests_per_client=3, n=64, seed=1)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        message = str(deprecations[0].message)
        assert "clients" in message and "seed" in message
        assert "ServingConfig" in message

    def test_legacy_kwargs_and_config_agree_bit_for_bit(self):
        config = ServingConfig(
            clients=2, requests_per_client=3, n=64, seed=1
        )
        via_config = serve("dp_ir", config)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            via_kwargs = serve(
                "dp_ir", clients=2, requests_per_client=3, n=64, seed=1
            )
        assert via_config.to_dict() == via_kwargs.to_dict()

    def test_config_plus_kwargs_is_an_error(self):
        with pytest.raises(ValueError, match="not both"):
            serve("dp_ir", ServingConfig(), clients=2)

    def test_legacy_batch_alias_maps_to_window(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            report = serve(
                "dp_ir", clients=2, requests_per_client=3, n=64,
                seed=1, scheduler="batch",
            )
        assert report.scheduler == "window"

    def test_unknown_kwarg_lands_in_build_kwargs_and_fails_loudly(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(TypeError):
                serve(
                    "dp_ir", clients=2, requests_per_client=3, n=64,
                    seed=1, bogus_knob=1,
                )


class TestClusterDeprecationShim:
    def test_legacy_kwargs_warn_once(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            cluster("dp_ir", shards=2, n=64, requests=4, seed=1)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "ClusterConfig" in str(deprecations[0].message)

    def test_legacy_kwargs_and_config_agree_bit_for_bit(self):
        config = ClusterConfig(shards=2, n=64, requests=4, seed=1)
        via_config = cluster("dp_ir", config)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            via_kwargs = cluster("dp_ir", shards=2, n=64, requests=4, seed=1)
        assert via_config.to_dict() == via_kwargs.to_dict()

    def test_config_plus_kwargs_is_an_error(self):
        with pytest.raises(ValueError, match="not both"):
            cluster("dp_ir", ClusterConfig(), shards=2)


class TestSchedulerRegistry:
    def test_canonical_names_registered(self):
        assert set(available_schedulers()) >= {
            "fifo", "window", "continuous",
        }

    def test_batch_is_an_alias_of_window(self):
        assert resolve_scheduler_name("batch") == "window"
        assert scheduler_spec("batch").factory is WindowedBatchScheduler

    def test_unknown_name_lists_the_registered_ones(self):
        with pytest.raises(ValueError, match="fifo"):
            scheduler_spec("nope")
        with pytest.raises(ValueError, match="continuous"):
            build_scheduler("nope", ServingConfig())

    def test_listings_carry_summaries(self):
        listings = {spec.name: spec for spec in scheduler_listings()}
        assert "continuous" in listings
        assert listings["continuous"].summary

    def test_public_schedulers_helper(self):
        names = [spec.name for spec in repro.schedulers()]
        assert "fifo" in names and "continuous" in names

    def test_build_from_config_respects_fields(self):
        config = ServingConfig(
            scheduler="continuous", max_batch=8, max_in_flight=2,
            tenant_credits=3, queue_cap=10,
        )
        scheduler = build_scheduler(config.scheduler, config)
        assert isinstance(scheduler, ContinuousBatchScheduler)
        assert scheduler.pipeline_depth == 2
        assert scheduler.max_batch == 8

    def test_instance_passes_through(self):
        instance = FIFOScheduler()
        assert build_scheduler(instance, ServingConfig()) is instance


def _request(sequence: int, tenant: str = "t0") -> Request:
    return Request(
        tenant=tenant, operation=Operation.read(0), arrival_ms=0.0,
        sequence=sequence, session_index=0, op_index=sequence,
    )


class TestContinuousAdmission:
    def test_tenant_credits_cap_outstanding_requests(self):
        scheduler = ContinuousBatchScheduler(tenant_credits=2)
        first, second, third = (_request(i) for i in range(3))
        assert scheduler.try_admit(first, 0.0)
        scheduler.enqueue(first, 0.0)
        assert scheduler.try_admit(second, 0.0)
        scheduler.enqueue(second, 0.0)
        assert not scheduler.try_admit(third, 0.0)
        # Credits are held until the dispatch group completes, not
        # merely until dispatch.
        batch = scheduler.next_batch(0.0)
        assert not scheduler.try_admit(third, 0.0)
        scheduler.notify_complete(batch, 1.0)
        assert scheduler.try_admit(third, 1.0)

    def test_queue_cap_sheds_regardless_of_tenant(self):
        scheduler = ContinuousBatchScheduler(queue_cap=1)
        first = _request(0, tenant="a")
        assert scheduler.try_admit(first, 0.0)
        scheduler.enqueue(first, 0.0)
        assert not scheduler.try_admit(_request(1, tenant="b"), 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ContinuousBatchScheduler(max_batch=0)
        with pytest.raises(ValueError):
            ContinuousBatchScheduler(max_in_flight=0)
        with pytest.raises(ValueError):
            ContinuousBatchScheduler(tenant_credits=0)
        with pytest.raises(ValueError):
            ContinuousBatchScheduler(queue_cap=0)
