"""Tests for repro.baselines.plaintext and repro.baselines.linear_pir."""

import pytest

from repro.baselines.linear_pir import LinearScanPIR
from repro.baselines.plaintext import PlaintextKVS, PlaintextRAM
from repro.storage.errors import BlockSizeError, RetrievalError


class TestPlaintextRAM:
    def test_read_write(self, small_db):
        ram = PlaintextRAM(small_db)
        assert ram.read(3) == small_db[3]
        ram.write(3, b"updated")
        assert ram.read(3) == b"updated"

    def test_one_block_per_query(self, small_db):
        ram = PlaintextRAM(small_db)
        ram.read(0)
        ram.write(1, b"x")
        assert ram.server.operations == 2

    def test_out_of_range(self, small_db):
        ram = PlaintextRAM(small_db)
        with pytest.raises(RetrievalError):
            ram.read(len(small_db))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PlaintextRAM([])

    def test_query_counter(self, small_db):
        ram = PlaintextRAM(small_db)
        ram.read(0)
        ram.read(1)
        assert ram.query_count == 2


class TestPlaintextKVS:
    def test_put_get_delete(self):
        store = PlaintextKVS(16)
        store.put(b"k", b"v")
        assert store.get(b"k").rstrip(b"\x00") == b"v"
        assert store.delete(b"k") is True
        assert store.get(b"k") is None
        assert store.delete(b"k") is False

    def test_one_block_per_operation(self):
        store = PlaintextKVS(16)
        store.put(b"k", b"v")
        store.get(b"k")
        assert store.server.operations == 2

    def test_missing_get_touches_nothing(self):
        store = PlaintextKVS(16)
        store.get(b"missing")
        assert store.server.operations == 0

    def test_capacity(self):
        store = PlaintextKVS(2)
        store.put(b"a", b"1")
        store.put(b"b", b"2")
        with pytest.raises(RetrievalError):
            store.put(b"c", b"3")

    def test_slot_reuse_after_delete(self):
        store = PlaintextKVS(1)
        store.put(b"a", b"1")
        store.delete(b"a")
        store.put(b"b", b"2")
        assert store.get(b"b").rstrip(b"\x00") == b"2"

    def test_oversize_value_rejected(self):
        store = PlaintextKVS(4, value_size=4)
        with pytest.raises(BlockSizeError):
            store.put(b"k", b"12345")

    def test_size_tracking(self):
        store = PlaintextKVS(8)
        store.put(b"a", b"1")
        store.put(b"a", b"2")
        store.put(b"b", b"3")
        assert store.size == 2


class TestLinearScanPIR:
    def test_always_correct(self, small_db):
        scheme = LinearScanPIR(small_db)
        for index in range(len(small_db)):
            assert scheme.query(index) == small_db[index]

    def test_touches_every_block(self, small_db):
        scheme = LinearScanPIR(small_db)
        scheme.query(5)
        assert scheme.server.reads == len(small_db)

    def test_identical_cost_for_every_query(self, small_db):
        scheme = LinearScanPIR(small_db)
        costs = []
        for index in (0, 7, 31):
            before = scheme.server.reads
            scheme.query(index)
            costs.append(scheme.server.reads - before)
        assert len(set(costs)) == 1  # perfectly oblivious

    def test_epsilon_zero(self, small_db):
        assert LinearScanPIR(small_db).epsilon == 0.0

    def test_out_of_range(self, small_db):
        scheme = LinearScanPIR(small_db)
        with pytest.raises(RetrievalError):
            scheme.query(-1)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            LinearScanPIR([])
