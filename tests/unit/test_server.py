"""Tests for repro.storage.server."""

import pytest

from repro.storage.errors import BlockSizeError, StorageError
from repro.storage.server import ServerPool, StorageServer
from repro.storage.transcript import AccessKind, Transcript


class TestStorageServer:
    def test_load_then_read(self, tiny_db):
        server = StorageServer(len(tiny_db))
        server.load(tiny_db)
        assert server.read(3) == tiny_db[3]

    def test_write_then_read(self, tiny_db):
        server = StorageServer(len(tiny_db))
        server.load(tiny_db)
        server.write(2, b"fresh")
        assert server.read(2) == b"fresh"

    def test_counters(self, tiny_db):
        server = StorageServer(len(tiny_db))
        server.load(tiny_db)
        server.read(0)
        server.read(1)
        server.write(0, b"w")
        assert server.reads == 2
        assert server.writes == 1
        assert server.operations == 3

    def test_load_does_not_count(self, tiny_db):
        server = StorageServer(len(tiny_db))
        server.load(tiny_db)
        assert server.operations == 0

    def test_reset_counters_keeps_data(self, tiny_db):
        server = StorageServer(len(tiny_db))
        server.load(tiny_db)
        server.read(0)
        server.reset_counters()
        assert server.operations == 0
        assert server.read(0) == tiny_db[0]

    def test_read_out_of_range(self, tiny_db):
        server = StorageServer(len(tiny_db))
        server.load(tiny_db)
        with pytest.raises(StorageError):
            server.read(len(tiny_db))
        with pytest.raises(StorageError):
            server.read(-1)

    def test_read_unwritten_slot(self):
        server = StorageServer(4)
        with pytest.raises(StorageError):
            server.read(0)

    def test_load_wrong_count(self, tiny_db):
        server = StorageServer(4)
        with pytest.raises(StorageError):
            server.load(tiny_db)

    def test_block_size_validation(self):
        server = StorageServer(2, block_size=4)
        server.write(0, b"abcd")
        with pytest.raises(BlockSizeError):
            server.write(1, b"toolong")

    def test_negative_capacity(self):
        with pytest.raises(StorageError):
            StorageServer(-1)

    def test_transcript_recording(self, tiny_db):
        server = StorageServer(len(tiny_db))
        server.load(tiny_db)
        transcript = Transcript()
        server.attach_transcript(transcript)
        server.begin_query(0)
        server.read(5)
        server.write(5, b"x")
        assert len(transcript) == 2
        first, second = transcript.events
        assert first.kind is AccessKind.DOWNLOAD and first.index == 5
        assert second.kind is AccessKind.UPLOAD and second.index == 5
        assert first.query == 0

    def test_detach_transcript(self, tiny_db):
        server = StorageServer(len(tiny_db))
        server.load(tiny_db)
        transcript = Transcript()
        server.attach_transcript(transcript)
        returned = server.detach_transcript()
        assert returned is transcript
        server.read(0)
        assert len(transcript) == 0

    def test_peek_does_not_count(self, tiny_db):
        server = StorageServer(len(tiny_db))
        server.load(tiny_db)
        assert server.peek(1) == tiny_db[1]
        assert server.operations == 0

    def test_write_stores_copy(self):
        server = StorageServer(1)
        payload = bytearray(b"mutable")
        server.write(0, payload)
        payload[0] = 0
        assert server.read(0) == b"mutable"


class TestServerPool:
    def test_replicas_hold_same_data(self, tiny_db):
        pool = ServerPool(3, len(tiny_db))
        pool.load_replicas(tiny_db)
        for server in pool:
            assert server.read(2) == tiny_db[2]

    def test_total_operations(self, tiny_db):
        pool = ServerPool(2, len(tiny_db))
        pool.load_replicas(tiny_db)
        pool[0].read(0)
        pool[1].read(0)
        pool[1].read(1)
        assert pool.total_operations() == 3

    def test_server_ids(self, tiny_db):
        pool = ServerPool(3, len(tiny_db))
        assert [server.server_id for server in pool] == [0, 1, 2]

    def test_rejects_zero_servers(self):
        with pytest.raises(StorageError):
            ServerPool(0, 4)

    def test_corrupted_view_filters(self, tiny_db):
        pool = ServerPool(2, len(tiny_db))
        pool.load_replicas(tiny_db)
        combined = Transcript()
        pool.attach_transcript(combined)
        pool.begin_query(0)
        pool[0].read(1)
        pool[1].read(2)
        view = ServerPool.corrupted_view(combined, {1})
        assert [event.index for event in view] == [2]
        assert all(event.server == 1 for event in view)

    def test_len(self, tiny_db):
        assert len(ServerPool(5, len(tiny_db))) == 5


class TestReadManyWireProtocol:
    def test_read_many_returns_blocks_in_order(self, tiny_db):
        server = StorageServer(len(tiny_db))
        server.load(tiny_db)
        assert server.read_many([3, 0, 5]) == [
            tiny_db[3], tiny_db[0], tiny_db[5]
        ]
        assert server.reads == 3

    def test_read_many_accepts_ranges(self, tiny_db):
        server = StorageServer(len(tiny_db))
        server.load(tiny_db)
        assert server.read_many(range(len(tiny_db))) == list(tiny_db)

    def test_read_many_records_one_event_per_slot(self, tiny_db):
        server = StorageServer(len(tiny_db))
        server.load(tiny_db)
        transcript = Transcript()
        server.attach_transcript(transcript)
        server.begin_query(4)
        server.read_many([1, 2, 1])
        assert [e.index for e in transcript] == [1, 2, 1]
        assert all(e.kind is AccessKind.DOWNLOAD for e in transcript)
        assert all(e.query == 4 for e in transcript)

    def test_read_many_validates_before_counting(self, tiny_db):
        server = StorageServer(len(tiny_db))
        server.load(tiny_db)
        with pytest.raises(StorageError):
            server.read_many([0, len(tiny_db)])
        with pytest.raises(StorageError):
            server.read_many([0, -1])
        assert server.reads == 0

    def test_write_many_then_read_many(self, tiny_db):
        server = StorageServer(len(tiny_db))
        server.load(tiny_db)
        server.write_many([(0, b"aa"), (3, b"bb")])
        assert server.writes == 2
        assert server.read_many([0, 3]) == [b"aa", b"bb"]

    def test_write_many_checks_block_size(self):
        server = StorageServer(4, block_size=2)
        with pytest.raises(BlockSizeError):
            server.write_many([(0, b"ok"), (1, b"toolong")])
        # Validation precedes dispatch: nothing was written or counted.
        assert server.writes == 0
        assert server.peek(0) is None

    def test_empty_batches_are_noops(self, tiny_db):
        server = StorageServer(len(tiny_db))
        server.load(tiny_db)
        assert server.read_many([]) == []
        server.write_many([])
        assert server.operations == 0
