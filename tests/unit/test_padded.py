"""Tests for repro.hashing.padded."""

import pytest

from repro.crypto.prf import PRF
from repro.hashing.padded import PaddedTwoChoiceStore
from repro.storage.errors import CapacityError


@pytest.fixture
def store():
    return PaddedTwoChoiceStore(256, PRF(b"padded-test"))


class TestPaddedStore:
    def test_put_get(self, store):
        store.put(b"key", b"value")
        assert store.get(b"key") == b"value"

    def test_get_missing(self, store):
        assert store.get(b"nope") is None

    def test_update(self, store):
        store.put(b"k", b"v1")
        store.put(b"k", b"v2")
        assert store.get(b"k") == b"v2"
        assert store.size == 1

    def test_many_keys(self, store):
        for i in range(256):
            store.put(f"key{i}".encode(), f"val{i}".encode())
        assert store.size == 256
        for i in range(256):
            assert store.get(f"key{i}".encode()) == f"val{i}".encode()

    def test_max_load_within_capacity(self, store):
        for i in range(256):
            store.put(f"key{i}".encode(), b"v")
        assert store.max_load() <= store.bin_capacity

    def test_server_slots_is_padded_total(self, store):
        assert store.server_slots == store.bins * store.bin_capacity

    def test_storage_blowup_vs_n(self):
        # The point of the ablation: slots/n grows like log log n.
        small = PaddedTwoChoiceStore(2**8, PRF(b"a"))
        large = PaddedTwoChoiceStore(2**20, PRF(b"b"))
        assert large.server_slots / 2**20 >= small.server_slots / 2**8

    def test_overflow_raises(self):
        store = PaddedTwoChoiceStore(4, PRF(b"tiny"), bin_capacity=1)
        with pytest.raises(CapacityError):
            for i in range(5):
                store.put(f"k{i}".encode(), b"v")

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            PaddedTwoChoiceStore(0, PRF(b"k"))
        with pytest.raises(ValueError):
            PaddedTwoChoiceStore(4, PRF(b"k"), bin_capacity=0)

    def test_candidates_deterministic(self, store):
        assert store.candidates_for(b"k") == store.candidates_for(b"k")
