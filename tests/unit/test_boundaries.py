"""Boundary conditions across the library: the smallest legal inputs."""

import math

import pytest

from repro.core.dp_ir import DPIR
from repro.core.dp_kvs import DPKVS
from repro.core.dp_ram import DPRAM
from repro.core.strawman import StrawmanIR
from repro.storage.blocks import integer_database


class TestSingleRecordDatabases:
    def test_dpir_n_one(self, rng):
        # With one record the pad is the whole database; privacy is moot
        # but the mechanics must not break.
        scheme = DPIR([b"only"], pad_size=1, alpha=0.5, rng=rng)
        answers = {scheme.query(0) for _ in range(40)}
        assert answers <= {b"only", None}
        assert b"only" in answers

    def test_dpram_n_one(self, rng):
        ram = DPRAM([b"x" * 8], stash_probability=0.5, rng=rng)
        for _ in range(20):
            assert ram.read(0) == b"x" * 8
        ram.write(0, b"y" * 8)
        assert ram.read(0) == b"y" * 8

    def test_strawman_n_one(self, rng):
        scheme = StrawmanIR([b"solo"], rng=rng)
        assert scheme.query(0) == b"solo"

    def test_dpkvs_capacity_one(self, rng):
        store = DPKVS(1, key_size=4, value_size=4, rng=rng)
        store.put(b"k", b"v")
        assert store.get(b"k").rstrip(b"\x00") == b"v"

    def test_linear_pir_n_one(self):
        from repro.baselines.linear_pir import LinearScanPIR

        scheme = LinearScanPIR([b"a"])
        assert scheme.query(0) == b"a"


class TestTwoRecordDatabases:
    def test_dpir_exact_epsilon_n_two(self):
        from repro.core.params import dp_ir_exact_epsilon

        # K=1 on n=2: eps = ln((1-a)*2/a + 1).
        alpha = 0.25
        assert dp_ir_exact_epsilon(2, 1, alpha) == pytest.approx(
            math.log((1 - alpha) * 2 / alpha + 1)
        )

    def test_path_oram_n_two(self, rng):
        from repro.baselines.path_oram import PathORAM
        from repro.storage.blocks import encode_int

        oram = PathORAM(integer_database(2), rng=rng)
        oram.write(0, encode_int(10))
        oram.write(1, encode_int(20))
        assert oram.read(0) == encode_int(10)
        assert oram.read(1) == encode_int(20)

    def test_adjacent_pair_minimum_universe(self, rng):
        from repro.workloads.generators import adjacent_index_pair

        base, neighbour, position = adjacent_index_pair(2, 1, rng)
        assert base.hamming_distance(neighbour) == 1


class TestDegenerateParameters:
    def test_dpkvs_zero_value_size(self, rng):
        # A membership-only store (set semantics) is legal.
        store = DPKVS(16, key_size=4, value_size=0, rng=rng)
        store.put(b"k", b"")
        assert store.get(b"k") == b""
        assert store.get(b"j") is None

    def test_network_zero_rtt(self):
        from repro.storage.network import NetworkModel

        link = NetworkModel(rtt_ms=0.0, bandwidth_mbps=1.0)
        assert link.response_time_ms(10, 0, 1) == 0.0

    def test_chernoff_at_mean(self):
        from repro.analysis.tails import chernoff_tail

        assert chernoff_tail(5.0, 5.0) == pytest.approx(1.0)

    def test_empty_transcript_projections(self):
        from repro.storage.transcript import Transcript

        transcript = Transcript()
        assert transcript.dp_ram_pairs() == []
        assert transcript.downloads() == []
        assert transcript.query_count() == 0

    def test_batch_of_one_equals_single(self, rng):
        from repro.core.batch_ir import BatchDPIR

        scheme = BatchDPIR(integer_database(8), pad_size=3, alpha=0.1,
                           rng=rng)
        before = scheme.server.reads
        scheme.query_batch([2])
        assert scheme.server.reads - before == 3

    def test_tree_shape_minimum(self):
        from repro.hashing.tree_buckets import TreeShape

        shape = TreeShape.for_capacity(1)
        assert shape.leaf_count >= 1
        assert shape.depth >= 1

    def test_stash_zero_capacity(self):
        from repro.storage.client import ClientStash
        from repro.storage.errors import CapacityError

        stash = ClientStash(capacity=0)
        with pytest.raises(CapacityError):
            stash.put("k", 1)
