"""Unit tests for the batched fault model (one coin per round)."""

import pytest

from repro.crypto.rng import SeededRandomSource
from repro.storage.blocks import integer_database
from repro.storage.faults import (
    CorruptingServer,
    FlakyServer,
    ServerFault,
)
from repro.storage.server import StorageServer


def _server(n=32):
    server = StorageServer(n)
    for index, block in enumerate(integer_database(n)):
        server.write(index, block)
    return server


class TestCoinModeValidation:
    @pytest.mark.parametrize("cls", [FlakyServer, CorruptingServer])
    def test_unknown_mode_rejected(self, cls):
        with pytest.raises(ValueError, match="coin mode"):
            cls(_server(), 0.1, SeededRandomSource(1), coin_mode="per_rpc")


class TestFlakyPerRound:
    def test_one_coin_per_round_not_per_slot(self):
        # rate=1.0: per-round mode fails every round exactly once,
        # so failed_rounds counts rounds, not slots.
        flaky = FlakyServer(_server(), 1.0, SeededRandomSource(2),
                            coin_mode="per_round")
        for _ in range(5):
            with pytest.raises(ServerFault):
                flaky.read_many([0, 1, 2, 3])
        assert flaky.failed_rounds == 5

    def test_clean_round_rides_the_inner_fast_path(self):
        flaky = FlakyServer(_server(), 0.0, SeededRandomSource(3),
                            coin_mode="per_round")
        blocks = flaky.read_many([0, 1, 2])
        assert len(blocks) == 3
        assert flaky.failed_rounds == 0

    def test_counters_distinguish_the_two_modes(self):
        per_slot = FlakyServer(_server(), 0.0, SeededRandomSource(4))
        per_round = FlakyServer(_server(), 0.0, SeededRandomSource(4),
                                coin_mode="per_round")
        assert "failed_rounds" not in per_slot.fault_counters()
        assert "failed_rounds" in per_round.fault_counters()
        assert "failed_operations" in per_slot.fault_counters()


class TestCorruptingPerRound:
    def test_corrupts_exactly_one_slot_per_bad_round(self):
        server = _server()
        clean = server.read_many(list(range(8)))
        corrupting = CorruptingServer(server, 1.0, SeededRandomSource(5),
                                      coin_mode="per_round")
        blocks = corrupting.read_many(list(range(8)))
        differing = sum(1 for a, b in zip(clean, blocks) if a != b)
        assert differing == 1
        assert corrupting.corrupted_rounds == 1
        assert corrupting.corrupted_reads == 1

    def test_clean_round_is_untouched(self):
        server = _server()
        corrupting = CorruptingServer(server, 0.0, SeededRandomSource(6),
                                      coin_mode="per_round")
        assert corrupting.read_many([0, 1]) == server.read_many([0, 1])
        assert corrupting.corrupted_rounds == 0

    def test_counters_distinguish_the_two_modes(self):
        per_slot = CorruptingServer(_server(), 0.0, SeededRandomSource(7))
        per_round = CorruptingServer(_server(), 0.0, SeededRandomSource(7),
                                     coin_mode="per_round")
        assert "corrupted_rounds" not in per_slot.fault_counters()
        assert "corrupted_rounds" in per_round.fault_counters()


class TestPerSlotDefaultUnchanged:
    def test_default_mode_is_per_slot(self):
        flaky = FlakyServer(_server(), 0.5, SeededRandomSource(8))
        assert flaky.coin_mode == "per_slot"
        corrupting = CorruptingServer(_server(), 0.5, SeededRandomSource(8))
        assert corrupting.coin_mode == "per_slot"
