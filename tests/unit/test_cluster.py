"""Unit tests for the cluster deployment layer: router, ledger, groups."""

from fractions import Fraction

import pytest

from repro.cluster.group import GroupExhaustedError, ShardGroup
from repro.cluster.ledger import ClusterLedger
from repro.cluster.report import jain_index
from repro.cluster.router import (
    HashRouter,
    RangeRouter,
    make_router,
)
from repro.cluster.scheme import ClusterIR, ClusterKVS
from repro.core.dp_ir import DPIR
from repro.storage.blocks import integer_database


class TestRangeRouter:
    def test_even_split(self):
        router = RangeRouter(10, 3)
        assert router.boundaries == (0, 4, 7, 10)
        assert [router.shard_of(i) for i in range(10)] == \
            [0, 0, 0, 0, 1, 1, 1, 2, 2, 2]

    def test_assignment_partitions_everything(self):
        router = RangeRouter(17, 4)
        owned = router.assignment()
        flattened = [index for shard in owned for index in shard]
        assert sorted(flattened) == list(range(17))

    def test_explicit_boundaries_validated(self):
        RangeRouter(8, 2, boundaries=[0, 3, 8])
        with pytest.raises(ValueError):
            RangeRouter(8, 2, boundaries=[0, 8])       # wrong count
        with pytest.raises(ValueError):
            RangeRouter(8, 2, boundaries=[1, 4, 8])    # must start at 0
        with pytest.raises(ValueError):
            RangeRouter(8, 2, boundaries=[0, 0, 8])    # empty shard

    def test_out_of_range_rejected(self):
        router = RangeRouter(8, 2)
        with pytest.raises(ValueError):
            router.shard_of(8)
        with pytest.raises(ValueError):
            router.shard_of(-1)

    def test_rebalanced_splits_the_hot_shard(self):
        # Shard 0 absorbed almost all load: the new cut gives it fewer
        # indices so per-shard load evens out.
        router = RangeRouter(100, 2)
        rebalanced = router.rebalanced([900.0, 100.0])
        assert rebalanced.boundaries[1] < router.boundaries[1]
        assert rebalanced.n == 100
        assert rebalanced.shard_count == 2

    def test_rebalanced_zero_load_falls_back_to_even(self):
        router = RangeRouter(12, 3, boundaries=[0, 1, 2, 12])
        assert router.rebalanced([0, 0, 0]).boundaries == (0, 4, 8, 12)

    def test_rebalanced_keeps_every_shard_nonempty(self):
        router = RangeRouter(8, 4)
        rebalanced = router.rebalanced([1000.0, 0.0, 0.0, 0.0])
        sizes = [
            hi - lo
            for lo, hi in zip(rebalanced.boundaries, rebalanced.boundaries[1:])
        ]
        assert all(size >= 1 for size in sizes)
        assert sum(sizes) == 8


class TestHashRouter:
    def test_deterministic_and_in_range(self):
        router = HashRouter(64, 4)
        shards = [router.shard_of(i) for i in range(64)]
        assert shards == [router.shard_of(i) for i in range(64)]
        assert set(shards) <= set(range(4))
        # SHA-256 spread: no shard owns everything.
        assert len(set(shards)) > 1

    def test_key_routing_matches_across_router_instances(self):
        a = HashRouter(64, 4)
        b = HashRouter(64, 4)
        for key in (b"alpha", b"beta", b"x" * 40):
            assert a.shard_of_key(key) == b.shard_of_key(key)

    def test_make_router(self):
        assert isinstance(make_router("range", 8, 2), RangeRouter)
        assert isinstance(make_router("hash", 8, 2), HashRouter)
        router = RangeRouter(8, 2)
        assert make_router(router, 8, 2) is router
        with pytest.raises(ValueError):
            make_router("rendezvous", 8, 2)


class TestJainIndex:
    def test_even_load_is_one(self):
        assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_hot_shard_is_one_over_d(self):
        assert jain_index([12.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_empty_and_zero_are_trivially_even(self):
        assert jain_index([]) == 1.0
        assert jain_index([0.0, 0.0]) == 1.0

    def test_negative_load_rejected(self):
        with pytest.raises(ValueError):
            jain_index([1.0, -1.0])


class TestClusterLedger:
    def test_per_shard_and_composed_budgets(self):
        ledger = ClusterLedger(3)
        for _ in range(4):
            ledger.charge(0, 2.0)
        ledger.charge(1, 1.0)
        report = ledger.report()
        assert report.queries == 5
        assert report.per_query_epsilon == 2.0
        assert report.worst_shard_epsilon == pytest.approx(8.0)
        assert report.colluding_epsilon == pytest.approx(9.0)
        assert report.per_shard[2].queries == 0

    def test_cap_is_per_shard(self):
        from repro.analysis.ledger import BudgetExceededError

        ledger = ClusterLedger(2, epsilon_cap=3.0)
        ledger.charge(0, 2.0)
        ledger.charge(1, 2.0)   # a different operator's budget
        with pytest.raises(BudgetExceededError):
            ledger.charge(0, 2.0)

    def test_empty_report(self):
        report = ClusterLedger(2).report()
        assert report.queries == 0
        assert report.worst_shard_epsilon == 0.0
        assert report.colluding_epsilon == 0.0
        assert report.epochs == 1

    def test_totals_are_exact_rationals(self):
        # 0.1 is not exactly representable; ten float adds drift, ten
        # Fraction adds do not.  The colluding total must be the exact
        # sum of what was charged, bit-for-bit.
        ledger = ClusterLedger(1)
        for _ in range(10):
            ledger.charge(0, 0.1)
        report = ledger.report()
        assert report.colluding_epsilon == float(10 * Fraction(0.1))
        assert report.per_shard[0].basic_epsilon_exact == 10 * Fraction(0.1)


class TestClusterLedgerEpochs:
    """Reshard epochs compose: spend is carried, never laundered."""

    def test_carry_preserves_spend(self):
        old = ClusterLedger(2)
        old.charge(0, 2.0)
        old.charge(0, 2.0)
        old.charge(1, 1.0)
        new = ClusterLedger(4, carried_from=old)
        report = new.report()
        assert report.epochs == 2
        assert report.queries == 3
        assert report.worst_shard_epsilon == pytest.approx(4.0)
        assert report.colluding_epsilon == pytest.approx(5.0)
        # Current-epoch per-shard ledgers start fresh...
        assert all(shard.queries == 0 for shard in report.per_shard)
        # ...but new charges compose on top of the carried spend.
        new.charge(1, 0.5)
        report = new.report()
        assert report.queries == 4
        assert report.worst_shard_epsilon == pytest.approx(4.0)
        assert report.colluding_epsilon == pytest.approx(5.5)

    def test_shrinking_keeps_departed_operator_history(self):
        old = ClusterLedger(3)
        old.charge(2, 7.0)     # the operator about to be dropped
        new = ClusterLedger(2, carried_from=old)
        report = new.report()
        # Operator 2 no longer hosts a shard but already saw 7.0 worth
        # of transcript; the lifetime figures must still say so.
        assert report.worst_shard_epsilon == pytest.approx(7.0)
        assert report.colluding_epsilon == pytest.approx(7.0)

    def test_cap_is_enforced_over_lifetime(self):
        from repro.analysis.ledger import BudgetExceededError

        old = ClusterLedger(2, epsilon_cap=3.0)
        old.charge(0, 2.0)
        new = ClusterLedger(2, epsilon_cap=3.0, carried_from=old)
        new.charge(0, 1.0)     # 2.0 carried + 1.0 = exactly at the cap
        with pytest.raises(BudgetExceededError):
            new.charge(0, 0.5)
        new.charge(1, 3.0)     # operator 1 spent nothing last epoch

    def test_chained_epochs_accumulate(self):
        ledger = ClusterLedger(2)
        ledger.charge(0, 1.0)
        for _ in range(3):
            ledger = ClusterLedger(2, carried_from=ledger)
            ledger.charge(0, 1.0)
        report = ledger.report()
        assert report.epochs == 4
        assert report.queries == 4
        assert report.worst_shard_epsilon == pytest.approx(4.0)

    def test_reshard_carries_cluster_ir_budget(self, rng):
        # Regression: reshard() used to build a fresh ClusterLedger,
        # silently forgetting the drained epoch's spend.
        blocks = integer_database(16)
        ir = ClusterIR(blocks, shard_count=2, replica_count=1,
                       pad_size=4, alpha=0.05, rng=rng.spawn("epoch"))
        for index in range(6):
            ir.query(index)
        before = ir.ledger.report()
        assert before.colluding_epsilon > 0.0
        ir.reshard(4)
        after = ir.ledger.report()
        assert after.epochs == 2
        assert after.queries == before.queries
        assert after.colluding_epsilon >= before.colluding_epsilon
        assert after.worst_shard_epsilon > 0.0
        ir.query(0)
        assert ir.ledger.report().colluding_epsilon > after.colluding_epsilon

    def test_reshard_carries_cluster_kvs_budget(self, rng):
        # DPKVS exposes no per-query ε (groups charge ε=0), so the
        # carried quantity to check here is the charged-query count.
        kvs = ClusterKVS(n=16, value_size=8, shard_count=2,
                         replica_count=1, rng=rng.spawn("kv-epoch"))
        kvs.put(b"k1", b"v1")
        kvs.put(b"k2", b"v2")
        kvs.get(b"k1")
        before = kvs.ledger.report()
        assert before.queries > 0
        kvs.reshard(4)
        after = kvs.ledger.report()
        assert after.epochs == 2
        assert after.queries == before.queries
        assert kvs.get(b"k2") == b"v2"
        assert kvs.ledger.report().queries > after.queries


def _group(rng, replicas=2, key=None, blocks=None, max_attempts=8):
    blocks = blocks if blocks is not None else integer_database(16)
    instances = [
        DPIR(blocks, pad_size=2, alpha=0.01, rng=rng.spawn(f"replica{i}"))
        for i in range(replicas)
    ]
    return ShardGroup(0, instances, key=key, max_attempts=max_attempts)


class TestShardGroupFailover:
    def test_fault_free_group_answers(self, rng):
        group = _group(rng)
        blocks = integer_database(16)
        for i in range(16):
            answer = group.query(i)
            assert answer is None or answer == blocks[i]
        assert group.failovers == 0
        assert group.fault_counters() == {}

    def test_dead_replica_fails_over(self, rng):
        from repro.storage.faults import FlakyServer, wrap_scheme_servers

        group = _group(rng)
        wrap_scheme_servers(
            group.replicas[0],
            lambda s: FlakyServer(s, 1.0, rng.spawn("faults")),
        )
        blocks = integer_database(16)
        for i in range(16):
            answer = group.query(i)
            assert answer is None or answer == blocks[i]
        # Every rotation that started on the dead replica had to move.
        assert group.failovers > 0
        assert group.fault_counters()["failovers"] == group.failovers

    def test_all_replicas_dead_raises(self, rng):
        from repro.storage.faults import FlakyServer, wrap_scheme_servers

        group = _group(rng, max_attempts=4)
        for replica in group.replicas:
            wrap_scheme_servers(
                replica, lambda s: FlakyServer(s, 1.0, rng.spawn("faults"))
            )
        with pytest.raises(GroupExhaustedError):
            group.query(3)

    def test_corruption_detected_with_authenticated_storage(self, rng):
        from repro.crypto.encryption import (
            encrypt_authenticated,
            generate_key,
        )
        from repro.storage.faults import CorruptingServer, wrap_scheme_servers

        key = generate_key(rng.spawn("key"))
        blocks = integer_database(16)
        enc_rng = rng.spawn("enc")
        stored = [encrypt_authenticated(key, b, enc_rng) for b in blocks]
        group = _group(rng, key=key, blocks=stored)
        wrap_scheme_servers(
            group.replicas[0],
            lambda s: CorruptingServer(s, 1.0, rng.spawn("faults")),
        )
        for i in range(16):
            answer = group.query(i)
            assert answer is None or answer == blocks[i]
        assert group.detected_corruptions > 0

    def test_alpha_error_is_not_retried(self, rng):
        # alpha = 1.0 means every query errs by the scheme's own coin;
        # the group must pass the error through, not fail over.
        blocks = integer_database(8)
        instances = [
            DPIR(blocks, pad_size=2, alpha=0.999999,
                 rng=rng.spawn(f"r{i}"))
            for i in range(2)
        ]
        group = ShardGroup(0, instances)
        assert group.query(3) is None
        assert group.failovers == 0


class TestFaultCounterSurface:
    def test_wrappers_report_uniformly(self, rng):
        from repro.storage.faults import (
            CorruptingServer,
            FlakyServer,
            ServerFault,
        )
        from repro.storage.server import StorageServer

        server = StorageServer(4)
        server.load(integer_database(4))
        flaky = FlakyServer(server, 1.0, rng.spawn("f"))
        with pytest.raises(ServerFault):
            flaky.read(0)
        assert flaky.fault_counters() == {"failed_operations": 1}

        corrupting = CorruptingServer(flaky, 0.0, rng.spawn("c"))
        # Nested wrappers merge inner counters.
        assert corrupting.fault_counters() == {
            "failed_operations": 1,
            "corrupted_reads": 0,
        }

    def test_scheme_fault_counters_aggregates(self, rng):
        from repro.storage.faults import (
            FlakyServer,
            scheme_fault_counters,
            wrap_scheme_servers,
        )

        scheme = DPIR(integer_database(8), pad_size=2, alpha=0.01,
                      rng=rng.spawn("s"))
        assert scheme_fault_counters(scheme) == {}
        wrap_scheme_servers(
            scheme, lambda s: FlakyServer(s, 0.0, rng.spawn("f"))
        )
        assert scheme_fault_counters(scheme) == {"failed_operations": 0}

    def test_wrap_scheme_servers_reaches_nested_kvs(self, rng):
        from repro.core.dp_kvs import DPKVS
        from repro.storage.faults import FlakyServer, wrap_scheme_servers

        kvs = DPKVS(16, rng=rng.spawn("kvs"))
        wrapped = wrap_scheme_servers(
            kvs, lambda s: FlakyServer(s, 0.0, rng.spawn("f"))
        )
        assert wrapped
        assert all(isinstance(w, FlakyServer) for w in wrapped)
        # The scheme's own server surface now reports the wrappers.
        assert any(isinstance(s, FlakyServer) for s in kvs.servers())

    def test_wrap_scheme_servers_requires_servers(self):
        from repro.storage.faults import wrap_scheme_servers

        class Empty:
            pass

        with pytest.raises(ValueError):
            wrap_scheme_servers(Empty(), lambda s: s)


class TestClusterSchemeBasics:
    def test_per_shard_epsilon_matches_single_server(self, rng):
        # n and K both divide by D, so the exact per-shard budget equals
        # the single-server budget (the module's invariance argument).
        from repro.analysis.dp_ir_exact import dpir_epsilon

        blocks = integer_database(64)
        single = dpir_epsilon(64, 8, 0.05)
        for shards in (1, 2, 4):
            ir = ClusterIR(
                blocks, shard_count=shards, replica_count=1,
                pad_size=8, alpha=0.05, rng=rng.spawn(f"c{shards}"),
            )
            assert ir.epsilon == pytest.approx(single)

    def test_per_server_storage_drops_with_shards(self, rng):
        blocks = integer_database(64)
        ir = ClusterIR(blocks, shard_count=4, replica_count=2,
                       pad_size=8, rng=rng.spawn("c"))
        assert ir.per_server_storage_blocks() == 16      # n/D
        assert ir.total_storage_blocks() == 128          # R*n

    def test_ledger_charges_every_query(self, rng):
        blocks = integer_database(32)
        ir = ClusterIR(blocks, shard_count=2, replica_count=1,
                       pad_size=4, rng=rng.spawn("c"))
        for i in range(10):
            ir.query(i % 32)
        report = ir.ledger.report()
        assert report.queries == 10
        assert report.per_query_epsilon == pytest.approx(ir.epsilon)

    def test_failover_retries_are_charged(self, rng):
        # A dead replica forces retries; every retry redraws a pad set
        # visible to the shard operator, so the ledger charges more
        # draws than there were logical queries.
        blocks = integer_database(32)
        ir = ClusterIR(blocks, shard_count=2, replica_count=2,
                       pad_size=4, alpha=0.01, failure_rate=(1.0, 0.0),
                       rng=rng.spawn("c"))
        for i in range(12):
            ir.query(i)
        report = ir.ledger.report()
        assert ir.query_count == 12
        assert report.queries > 12
        assert report.worst_shard_epsilon > 6 * ir.epsilon

    def test_rejects_wrong_base_kind(self, rng):
        with pytest.raises(ValueError, match="IR base"):
            ClusterIR(integer_database(8), base="dp_kvs",
                      rng=rng.spawn("c"))
        with pytest.raises(ValueError, match="KVS base"):
            ClusterKVS(16, base="dp_ir", rng=rng.spawn("c"))

    def test_kvs_routes_and_tracks_directory(self, rng):
        kvs = ClusterKVS(32, shard_count=2, replica_count=2,
                         value_size=8, rng=rng.spawn("kvs"))
        kvs.put(b"a", b"1")
        kvs.put(b"b", b"22")
        assert kvs.size == 2
        assert kvs.get(b"a") == b"1"
        assert kvs.delete(b"a") is True
        assert kvs.size == 1
        assert kvs.get(b"a") is None

    def test_kvs_writes_replicate(self, rng):
        kvs = ClusterKVS(32, shard_count=1, replica_count=3,
                         value_size=8, rng=rng.spawn("kvs"))
        kvs.put(b"k", b"v")
        for replica in kvs.groups[0].replicas:
            assert replica.get(b"k") == b"v"


class TestSchemesListing:
    def test_listing_contains_names_and_aliases(self):
        import repro

        listings = {entry.name: entry for entry in repro.schemes()}
        assert "cluster_dp_ir" in listings
        assert "cluster_dpir" in listings["cluster_dp_ir"].aliases
        assert "dpir" in listings["dp_ir"].aliases
        assert listings["dp_ram"].aliases == ("dpram",)
        for entry in listings.values():
            assert entry.kind in ("ir", "ram", "kvs")
            assert entry.summary

    def test_kind_filter(self):
        from repro.api import schemes

        kinds = {entry.kind for entry in schemes("kvs")}
        assert kinds == {"kvs"}
        names = {entry.name for entry in schemes("kvs")}
        assert "cluster_dp_kvs" in names
        assert "dp_ir" not in names
