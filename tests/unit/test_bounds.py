"""Tests for repro.analysis.bounds."""

import math

import pytest

from repro.analysis.bounds import (
    dp_ir_error_lower_bound,
    dp_ir_errorless_lower_bound,
    dp_ram_lower_bound,
    min_epsilon_for_ir_bandwidth,
    min_epsilon_for_ram_bandwidth,
    multi_server_ir_lower_bound,
)


class TestErrorlessIRBound:
    def test_formula(self):
        assert dp_ir_errorless_lower_bound(100) == 100
        assert dp_ir_errorless_lower_bound(100, delta=0.25) == 75

    def test_independent_of_epsilon(self):
        # The theorem's point: the bound has no epsilon parameter at all.
        assert dp_ir_errorless_lower_bound(50) == 50

    def test_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            dp_ir_errorless_lower_bound(10, delta=1.5)


class TestErrorIRBound:
    def test_formula(self):
        n, eps, alpha = 1000, 2.0, 0.1
        expected = (n - 1) * (1 - alpha) / math.exp(eps)
        assert dp_ir_error_lower_bound(n, eps, alpha) == pytest.approx(expected)

    def test_decreases_with_epsilon(self):
        values = [dp_ir_error_lower_bound(1000, eps, 0.1) for eps in (0, 2, 4, 8)]
        assert values == sorted(values, reverse=True)

    def test_delta_reduces_bound(self):
        assert dp_ir_error_lower_bound(1000, 1, 0.1, delta=0.3) < \
            dp_ir_error_lower_bound(1000, 1, 0.1)

    def test_never_negative(self):
        assert dp_ir_error_lower_bound(10, 0, 0.9, delta=0.5) == 0.0

    def test_log_n_epsilon_gives_constant(self):
        # The headline: at eps = ln(n), the floor is ~(1-alpha) blocks.
        for n in (2**10, 2**16, 2**20):
            floor = dp_ir_error_lower_bound(n, math.log(n), 0.05)
            assert floor < 1.0

    def test_rejects_zero_alpha(self):
        with pytest.raises(ValueError):
            dp_ir_error_lower_bound(10, 1, 0.0)


class TestRAMBound:
    def test_formula(self):
        n, eps, c = 1024, 0.0, 2
        assert dp_ram_lower_bound(n, eps, c) == pytest.approx(math.log2(1024))

    def test_client_storage_helps(self):
        assert dp_ram_lower_bound(1024, 0, 64) < dp_ram_lower_bound(1024, 0, 2)

    def test_error_helps(self):
        assert dp_ram_lower_bound(1024, 0, 2, alpha=0.5) < \
            dp_ram_lower_bound(1024, 0, 2)

    def test_vanishes_at_log_n_epsilon(self):
        assert dp_ram_lower_bound(1024, math.log(1024), 4) == 0.0

    def test_clamps_to_zero(self):
        assert dp_ram_lower_bound(16, 100.0, 4) == 0.0

    def test_rejects_tiny_client(self):
        with pytest.raises(ValueError):
            dp_ram_lower_bound(16, 0, 1)


class TestMultiServerBound:
    def test_formula(self):
        n, eps, alpha, t = 1000, 1.0, 0.1, 0.5
        expected = ((1 - alpha) * t) * n / math.exp(eps)
        assert multi_server_ir_lower_bound(n, eps, alpha, t) == pytest.approx(
            expected
        )

    def test_t_one_matches_single_server(self):
        single = dp_ir_error_lower_bound(1001, 2.0, 0.1)
        multi = multi_server_ir_lower_bound(1000, 2.0, 0.1, 1.0)
        assert multi == pytest.approx(single, rel=0.01)

    def test_scales_with_t(self):
        values = [
            multi_server_ir_lower_bound(1000, 1, 0.1, t)
            for t in (0.25, 0.5, 0.75, 1.0)
        ]
        assert values == sorted(values)

    def test_rejects_bad_t(self):
        with pytest.raises(ValueError):
            multi_server_ir_lower_bound(10, 1, 0.1, 0.0)
        with pytest.raises(ValueError):
            multi_server_ir_lower_bound(10, 1, 0.1, 1.5)


class TestInversions:
    def test_ir_inversion_is_omega_log_n(self):
        # Constant bandwidth forces eps >= ln(n) - O(1): the paper's answer.
        for n in (2**10, 2**14, 2**18):
            eps = min_epsilon_for_ir_bandwidth(n, bandwidth=4, alpha=0.05)
            assert eps >= math.log(n) - 3

    def test_ir_inversion_consistent_with_bound(self):
        n, alpha, bandwidth = 4096, 0.05, 8.0
        eps = min_epsilon_for_ir_bandwidth(n, bandwidth, alpha)
        assert dp_ir_error_lower_bound(n, eps, alpha) == pytest.approx(
            bandwidth, rel=0.01
        )

    def test_ir_inversion_zero_when_bandwidth_huge(self):
        assert min_epsilon_for_ir_bandwidth(100, 10_000, 0.05) == 0.0

    def test_ram_inversion_is_omega_log_n(self):
        for n in (2**10, 2**14, 2**18):
            eps = min_epsilon_for_ram_bandwidth(n, bandwidth=3, client_blocks=4)
            assert eps >= math.log(n) - 3 * math.log(4) - 0.01

    def test_ram_inversion_zero_for_oram_bandwidth(self):
        # With Theta(log n) bandwidth, obliviousness (eps=0) is possible.
        n = 1024
        eps = min_epsilon_for_ram_bandwidth(
            n, bandwidth=2 * math.log2(n), client_blocks=4
        )
        assert eps == 0.0

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            min_epsilon_for_ir_bandwidth(10, 0, 0.05)
        with pytest.raises(ValueError):
            min_epsilon_for_ram_bandwidth(10, 0, 4)
