"""Tests for repro.crypto.rng."""

import pytest

from repro.crypto.rng import (
    RandomSource,
    SeededRandomSource,
    SystemRandomSource,
    default_rng,
)


class TestSeededRandomSource:
    def test_same_seed_same_stream(self):
        a = SeededRandomSource(7)
        b = SeededRandomSource(7)
        assert [a.randbelow(100) for _ in range(20)] == [
            b.randbelow(100) for _ in range(20)
        ]

    def test_different_seeds_diverge(self):
        a = SeededRandomSource(7)
        b = SeededRandomSource(8)
        assert [a.randbelow(10**9) for _ in range(5)] != [
            b.randbelow(10**9) for _ in range(5)
        ]

    def test_random_in_unit_interval(self):
        source = SeededRandomSource(1)
        for _ in range(100):
            value = source.random()
            assert 0.0 <= value < 1.0

    def test_randbelow_range(self):
        source = SeededRandomSource(2)
        values = {source.randbelow(5) for _ in range(200)}
        assert values == {0, 1, 2, 3, 4}

    def test_randbelow_rejects_nonpositive(self):
        source = SeededRandomSource(3)
        with pytest.raises(ValueError):
            source.randbelow(0)
        with pytest.raises(ValueError):
            source.randbelow(-1)

    def test_bytes_length_and_determinism(self):
        a = SeededRandomSource(4)
        b = SeededRandomSource(4)
        assert a.bytes(16) == b.bytes(16)
        assert len(a.bytes(33)) == 33

    def test_bytes_rejects_negative(self):
        with pytest.raises(ValueError):
            SeededRandomSource(5).bytes(-1)

    def test_spawn_is_deterministic(self):
        a = SeededRandomSource(6).spawn("child")
        b = SeededRandomSource(6).spawn("child")
        assert a.randbelow(10**9) == b.randbelow(10**9)

    def test_spawn_labels_independent(self):
        parent = SeededRandomSource(6)
        a = parent.spawn("one")
        b = parent.spawn("two")
        assert [a.randbelow(10**6) for _ in range(4)] != [
            b.randbelow(10**6) for _ in range(4)
        ]

    def test_spawn_does_not_disturb_parent(self):
        parent_a = SeededRandomSource(9)
        parent_b = SeededRandomSource(9)
        parent_a.spawn("child")
        assert parent_a.randbelow(10**9) == parent_b.randbelow(10**9)

    def test_randint_inclusive(self):
        source = SeededRandomSource(10)
        values = {source.randint(3, 5) for _ in range(100)}
        assert values == {3, 4, 5}

    def test_randint_rejects_empty_range(self):
        with pytest.raises(ValueError):
            SeededRandomSource(11).randint(5, 4)

    def test_choice(self):
        source = SeededRandomSource(12)
        items = ["a", "b", "c"]
        assert {source.choice(items) for _ in range(60)} == set(items)

    def test_choice_empty_raises(self):
        with pytest.raises(ValueError):
            SeededRandomSource(13).choice([])

    def test_sample_distinct(self):
        source = SeededRandomSource(14)
        picked = source.sample(range(10), 6)
        assert len(picked) == 6
        assert len(set(picked)) == 6
        assert all(0 <= value < 10 for value in picked)

    def test_sample_full_population(self):
        source = SeededRandomSource(15)
        assert sorted(source.sample(range(5), 5)) == [0, 1, 2, 3, 4]

    def test_sample_rejects_oversize(self):
        with pytest.raises(ValueError):
            SeededRandomSource(16).sample(range(3), 4)

    def test_sample_indices_matches_constraints(self):
        source = SeededRandomSource(17)
        picked = source.sample_indices(1000, 10)
        assert len(picked) == 10
        assert len(set(picked)) == 10
        assert all(0 <= value < 1000 for value in picked)

    def test_sample_indices_dense(self):
        source = SeededRandomSource(18)
        picked = source.sample_indices(10, 9)
        assert len(set(picked)) == 9

    def test_shuffled_preserves_elements(self):
        source = SeededRandomSource(19)
        items = list(range(20))
        shuffled = source.shuffled(items)
        assert sorted(shuffled) == items
        assert items == list(range(20))  # input untouched

    def test_uniformity_coarse(self):
        source = SeededRandomSource(20)
        counts = [0] * 4
        for _ in range(4000):
            counts[source.randbelow(4)] += 1
        for count in counts:
            assert 800 < count < 1200


class TestSystemRandomSource:
    def test_basic_interface(self):
        source = SystemRandomSource()
        assert 0.0 <= source.random() < 1.0
        assert 0 <= source.randbelow(10) < 10
        assert len(source.bytes(8)) == 8
        assert isinstance(source.spawn("x"), SystemRandomSource)

    def test_is_random_source(self):
        assert isinstance(SystemRandomSource(), RandomSource)


class TestDefaultRng:
    def test_seed_gives_seeded(self):
        assert isinstance(default_rng(1), SeededRandomSource)

    def test_none_gives_system(self):
        assert isinstance(default_rng(None), SystemRandomSource)


class TestSampleDistinct:
    def test_size_distinct_range(self):
        source = SeededRandomSource(21)
        picked = source.sample_distinct(50, 12)
        assert len(picked) == 12
        assert len(set(picked)) == 12
        assert all(0 <= value < 50 for value in picked)

    def test_deterministic_per_seed(self):
        assert SeededRandomSource(22).sample_distinct(100, 10) == \
            SeededRandomSource(22).sample_distinct(100, 10)

    def test_full_universe(self):
        assert sorted(SeededRandomSource(23).sample_distinct(7, 7)) == \
            list(range(7))

    def test_zero_count(self):
        assert SeededRandomSource(24).sample_distinct(5, 0) == []

    def test_rejects_invalid_counts(self):
        source = SeededRandomSource(25)
        with pytest.raises(ValueError):
            source.sample_distinct(4, 5)
        with pytest.raises(ValueError):
            source.sample_distinct(4, -1)

    def test_system_source_also_samples(self):
        picked = SystemRandomSource().sample_distinct(30, 8)
        assert len(set(picked)) == 8
        assert all(0 <= value < 30 for value in picked)

    def test_sample_indices_delegates(self):
        a = SeededRandomSource(26).sample_indices(40, 6)
        b = SeededRandomSource(26).sample_distinct(40, 6)
        assert a == b
