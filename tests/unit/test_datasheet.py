"""Tests for repro.analysis.datasheet."""

import math

import pytest

from repro.analysis.datasheet import PrivacyDatasheet, datasheet_for
from repro.baselines.linear_pir import LinearScanPIR
from repro.baselines.path_oram import PathORAM
from repro.core.batch_ir import BatchDPIR
from repro.core.dp_ir import DPIR
from repro.core.dp_kvs import DPKVS
from repro.core.dp_ram import DPRAM, ReadOnlyDPRAM
from repro.core.multi_server import MultiServerDPIR
from repro.core.strawman import StrawmanIR
from repro.storage.blocks import integer_database


N = 64


@pytest.fixture
def db():
    return integer_database(N)


class TestDatasheetBuilders:
    def test_dpir(self, rng, db):
        scheme = DPIR(db, pad_size=4, alpha=0.1, rng=rng)
        sheet = datasheet_for(scheme)
        assert sheet.scheme == "DPIR"
        assert sheet.epsilon == pytest.approx(scheme.epsilon)
        assert sheet.epsilon_kind == "exact"
        assert sheet.blocks_per_query == 4.0
        assert sheet.client_blocks is None
        assert sheet.error_probability == 0.1

    def test_batch_dpir(self, rng, db):
        sheet = datasheet_for(BatchDPIR(db, pad_size=4, alpha=0.1, rng=rng))
        assert sheet.scheme == "BatchDPIR"
        assert sheet.epsilon_kind == "exact"

    def test_strawman_shows_broken_delta(self, rng, db):
        sheet = datasheet_for(StrawmanIR(db, rng=rng))
        assert sheet.delta == pytest.approx(1 - 1 / N)
        assert sheet.epsilon == math.inf

    def test_dpram(self, rng, db):
        scheme = DPRAM(db, rng=rng)
        sheet = datasheet_for(scheme)
        assert sheet.blocks_per_query == 3.0
        assert sheet.roundtrips == 2
        assert sheet.epsilon_kind == "upper bound"
        assert sheet.client_blocks == pytest.approx(
            scheme.params.expected_stash
        )

    def test_read_only_dpram(self, rng, db):
        sheet = datasheet_for(ReadOnlyDPRAM(db, rng=rng))
        assert sheet.blocks_per_query == 2.0
        assert sheet.error_probability == 0.0

    def test_dpkvs(self, rng):
        scheme = DPKVS(N, rng=rng)
        sheet = datasheet_for(scheme)
        assert sheet.blocks_per_query == scheme.blocks_per_operation()
        assert sheet.server_blocks == scheme.server_node_count
        assert sheet.epsilon_kind == "upper bound"

    def test_linear_pir_is_perfect(self, db):
        sheet = datasheet_for(LinearScanPIR(db))
        assert sheet.epsilon == 0.0
        assert sheet.epsilon_kind == "perfect"
        assert sheet.blocks_per_query == N

    def test_path_oram_is_perfect(self, rng, db):
        scheme = PathORAM(db, rng=rng)
        sheet = datasheet_for(scheme)
        assert sheet.epsilon_kind == "perfect"
        assert sheet.blocks_per_query == scheme.blocks_per_access()

    def test_multi_server(self, rng, db):
        sheet = datasheet_for(
            MultiServerDPIR(db, server_count=3, pad_size=6, rng=rng)
        )
        assert sheet.blocks_per_query == 6.0

    def test_unknown_scheme_rejected(self):
        with pytest.raises(TypeError):
            datasheet_for(object())


class TestRendering:
    def test_to_text_contains_fields(self, rng, db):
        sheet = datasheet_for(DPRAM(db, rng=rng))
        text = sheet.to_text()
        assert "Datasheet: DPRAM" in text
        assert "blocks per query" in text
        assert "upper bound" in text

    def test_stateless_rendering(self, db):
        text = datasheet_for(LinearScanPIR(db)).to_text()
        assert "stateless" in text
        assert "0 (oblivious)" in text

    def test_frozen(self, db):
        sheet = datasheet_for(LinearScanPIR(db))
        with pytest.raises(AttributeError):
            sheet.n = 5

    def test_ordering_across_schemes(self, rng, db):
        # Datasheets support the paper's overhead ordering at a glance.
        dpram = datasheet_for(DPRAM(db, rng=rng.spawn("a")))
        oram = datasheet_for(PathORAM(db, rng=rng.spawn("b")))
        pir = datasheet_for(LinearScanPIR(db))
        assert dpram.blocks_per_query < oram.blocks_per_query < \
            pir.blocks_per_query
        assert pir.epsilon <= oram.epsilon <= dpram.epsilon


class TestDatasheetDataclass:
    def test_direct_construction(self):
        sheet = PrivacyDatasheet(
            scheme="X", n=10, epsilon=1.0, epsilon_kind="exact", delta=0.0,
            error_probability=0.0, blocks_per_query=1.0, roundtrips=1,
            client_blocks=None, server_blocks=10,
        )
        assert "Datasheet: X" in sheet.to_text()
