"""Unit tests for the online leakage monitors (``repro.obs.monitor``)."""

import math

import pytest

from repro import DPIR, SeededRandomSource
from repro.analysis.attacks import (
    distinguishing_guess,
    hoeffding_slack,
    max_success_probability,
)
from repro.cluster import ClusterIR
from repro.obs.monitor import (
    MembershipMonitor,
    Observation,
    RoutingMonitor,
    default_monitors,
    watch_scheme,
)
from repro.storage.blocks import integer_database
from repro.storage.transcript import Transcript


def observation(touched, shards=frozenset({0})):
    return Observation(touched=frozenset(touched), shards=frozenset(shards))


class TestHoeffdingSlack:
    def test_zero_trials_is_infinite(self):
        assert hoeffding_slack(0) == math.inf

    def test_decreases_with_trials(self):
        slacks = [hoeffding_slack(t) for t in (16, 64, 256, 1024)]
        assert slacks == sorted(slacks, reverse=True)

    def test_matches_closed_form(self):
        assert hoeffding_slack(128, 1e-4) == pytest.approx(
            math.sqrt(math.log(1e4) / 256)
        )

    def test_rejects_degenerate_failure_probability(self):
        with pytest.raises(ValueError):
            hoeffding_slack(10, 0.0)
        with pytest.raises(ValueError):
            hoeffding_slack(10, 1.0)


class TestDistinguishingGuess:
    def test_separating_observations_are_deterministic(self):
        rng = SeededRandomSource(0)
        assert distinguishing_guess(True, False, rng) is True
        assert distinguishing_guess(False, True, rng) is False

    def test_ambiguous_observation_is_a_coin(self):
        rng = SeededRandomSource(1)
        guesses = [distinguishing_guess(True, True, rng) for _ in range(400)]
        heads = sum(guesses)
        assert 120 < heads < 280  # a fair coin, not a constant


class TestMembershipMonitor:
    def test_wins_when_only_truth_is_visible(self):
        monitor = MembershipMonitor(
            universe=64, epsilon=1.0, rng=SeededRandomSource(2),
            min_trials=1,
        )
        for _ in range(300):
            monitor.observe([5], observation({5}))
        report = monitor.report()
        assert report.trials == 300
        assert report.empirical_success == 1.0
        assert report.tripped
        assert report.tripped_at is not None

    def test_full_pad_keeps_adversary_at_a_coin(self):
        monitor = MembershipMonitor(
            universe=64, epsilon=None, rng=SeededRandomSource(3),
        )
        everything = observation(range(64))
        for index in range(300):
            monitor.observe([index % 64], everything)
        success = monitor.report().empirical_success
        assert abs(success - 0.5) < 0.1

    def test_report_only_without_epsilon_claim_never_trips(self):
        monitor = MembershipMonitor(
            universe=64, epsilon=None, rng=SeededRandomSource(4),
            min_trials=1,
        )
        for _ in range(200):
            monitor.observe([5], observation({5}))
        report = monitor.report()
        assert report.bound == 1.0
        assert report.epsilon is None
        assert not report.tripped

    def test_min_trials_gates_the_trip(self):
        monitor = MembershipMonitor(
            universe=64, epsilon=1.0, rng=SeededRandomSource(5),
            min_trials=50,
        )
        for _ in range(49):
            monitor.observe([5], observation({5}))
        assert not monitor.tripped
        for _ in range(300):
            monitor.observe([5], observation({5}))
        assert monitor.tripped
        assert monitor.report().tripped_at >= 50

    def test_byte_keys_degenerate_to_a_coin(self):
        monitor = MembershipMonitor(
            universe=64, epsilon=None, rng=SeededRandomSource(6),
        )
        for _ in range(200):
            monitor.observe([b"key"], observation({1, 2, 3}))
        assert abs(monitor.report().empirical_success - 0.5) < 0.12

    def test_locate_maps_candidates_to_shard_pairs(self):
        monitor = MembershipMonitor(
            universe=64,
            locate=lambda index: (index % 4, index // 4),
            epsilon=1.0,
            rng=SeededRandomSource(7),
            min_trials=1,
        )
        for index in range(100):
            index %= 64
            touched = {(index % 4, index // 4)}
            monitor.observe([index], observation(touched))
        assert monitor.report().empirical_success == 1.0

    def test_bound_is_the_paper_ceiling(self):
        monitor = MembershipMonitor(
            universe=64, epsilon=2.0, delta=0.01,
            rng=SeededRandomSource(8),
        )
        assert monitor.bound == pytest.approx(
            max_success_probability(2.0, 0.01)
        )

    def test_empirical_success_is_half_at_zero_trials(self):
        monitor = MembershipMonitor(universe=8, rng=SeededRandomSource(9))
        report = monitor.report()
        assert report.trials == 0
        assert report.empirical_success == 0.5
        assert report.advantage == 0.0

    def test_report_round_trips_to_dict_and_text(self):
        monitor = MembershipMonitor(
            universe=16, epsilon=1.5, rng=SeededRandomSource(10),
        )
        monitor.observe([3], observation({3}))
        report = monitor.report()
        data = report.to_dict()
        assert data["attack"] == "membership"
        assert data["trials"] == report.trials
        assert data["bound"] == report.bound
        assert "membership" in report.to_text()

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            MembershipMonitor(universe=-1)
        with pytest.raises(ValueError):
            MembershipMonitor(universe=8, min_trials=0)


class TestRoutingMonitor:
    def test_deterministic_routing_is_a_strong_attack(self):
        shards = 4
        monitor = RoutingMonitor(
            universe=64, shard_of=lambda index: index % shards,
            rng=SeededRandomSource(11), min_trials=1,
        )
        for index in range(400):
            index %= 64
            monitor.observe([index], observation({index}, {index % shards}))
        # Wins unless the decoy lands on the same shard (prob 1/D, then
        # a coin): expected success 1 - 1/(2D) = 0.875 at D=4.
        success = monitor.report().empirical_success
        assert 0.8 < success <= 1.0
        # Report-only by default: no ε claim, ceiling 1.0, never trips.
        assert monitor.report().bound == 1.0
        assert not monitor.tripped

    def test_broadcast_routing_hides_the_shard(self):
        shards = 4
        monitor = RoutingMonitor(
            universe=64, shard_of=lambda index: index % shards,
            rng=SeededRandomSource(12),
        )
        all_shards = frozenset(range(shards))
        for index in range(400):
            index %= 64
            monitor.observe([index], observation({index}, all_shards))
        assert abs(monitor.report().empirical_success - 0.5) < 0.1

    def test_skips_rounds_without_integer_operands(self):
        monitor = RoutingMonitor(
            universe=64, shard_of=lambda index: 0,
            rng=SeededRandomSource(13),
        )
        monitor.observe([b"key"], observation({1}, {0}))
        assert monitor.trials == 0


class TestSchemeWatch:
    def _dpir(self, seed=21):
        rng = SeededRandomSource(seed)
        return DPIR(
            integer_database(64), epsilon=math.log(64), alpha=0.05,
            rng=rng.spawn("scheme"),
        )

    def test_feeds_monitors_and_answers_are_unchanged(self):
        scheme = self._dpir()
        expected = integer_database(64)
        monitors = default_monitors(scheme, rng=SeededRandomSource(1))
        watch = watch_scheme(scheme, monitors)
        for index in range(32):
            answer = scheme.query(index)
            if answer is not None:
                assert answer == expected[index]
        assert monitors[0].trials == 32
        watch.unwatch()

    def test_unwatch_restores_the_pristine_scheme(self):
        scheme = self._dpir()
        monitors = default_monitors(scheme, rng=SeededRandomSource(2))
        watch = watch_scheme(scheme, monitors)
        assert "query" in vars(scheme)
        watch.unwatch()
        assert "query" not in vars(scheme)
        trials = monitors[0].trials
        scheme.query(0)
        assert monitors[0].trials == trials
        watch.unwatch()  # idempotent

    def test_query_many_counts_one_round_not_n(self):
        scheme = self._dpir()
        monitors = default_monitors(scheme, rng=SeededRandomSource(3))
        watch = watch_scheme(scheme, monitors)
        scheme.query_many([0, 5, 9])
        # The protocol-default query_many loops query(); the
        # re-entrancy guard keeps the nested calls from double-counting.
        assert monitors[0].trials == 1
        watch.unwatch()

    def test_preexisting_transcript_is_saved_and_restored(self):
        scheme = self._dpir()
        mine = Transcript()
        scheme.attach_transcript(mine)
        monitors = default_monitors(scheme, rng=SeededRandomSource(4))
        watch = watch_scheme(scheme, monitors)
        scheme.query(3)
        watch.unwatch()
        # The monitor captured the round on its own transcript; the
        # user's transcript is back in place afterwards.
        assert scheme.detach_transcript() is mine
        assert monitors[0].trials == 1

    def test_default_monitors_read_the_epsilon_claim(self):
        scheme = self._dpir()
        monitors = default_monitors(scheme, rng=SeededRandomSource(5))
        assert len(monitors) == 1
        assert monitors[0].epsilon == pytest.approx(scheme.epsilon)

    def test_cluster_gets_membership_and_routing(self):
        rng = SeededRandomSource(31)
        instance = ClusterIR(
            integer_database(128), shard_count=4, replica_count=1,
            rng=rng.spawn("cluster"),
        )
        monitors = default_monitors(instance, rng=rng.spawn("monitor"))
        names = [monitor.name for monitor in monitors]
        assert names == ["membership", "routing"]
        watch = watch_scheme(instance, monitors)
        for index in range(16):
            instance.query(index * 7 % 128)
        assert monitors[0].trials == 16
        assert monitors[1].trials == 16
        watch.unwatch()
        instance.close()


class TestUnderPaddedSchemeTrips:
    def test_under_padded_scheme_trips_the_monitor(self):
        class UnderPaddedDPIR(DPIR):
            def _draw_set(self, index):
                return [index], True

        rng = SeededRandomSource(41)
        cheat = UnderPaddedDPIR(
            integer_database(64), epsilon=1.0, alpha=0.05,
            rng=rng.spawn("scheme"),
        )
        monitors = default_monitors(cheat, rng=rng.spawn("monitor"))
        watch = watch_scheme(cheat, monitors)
        for index in range(128):
            cheat.query(index % 64)
        report = monitors[0].report()
        assert report.empirical_success > report.bound + report.slack
        assert report.tripped
        assert watch.tripped
        watch.unwatch()

    def test_honest_scheme_with_same_claim_does_not_trip(self):
        rng = SeededRandomSource(42)
        honest = DPIR(
            integer_database(64), epsilon=1.0, alpha=0.05,
            rng=rng.spawn("scheme"),
        )
        monitors = default_monitors(honest, rng=rng.spawn("monitor"))
        watch = watch_scheme(honest, monitors)
        for index in range(128):
            honest.query(index % 64)
        report = monitors[0].report()
        assert report.empirical_success <= report.bound + report.slack
        assert not report.tripped
        watch.unwatch()
