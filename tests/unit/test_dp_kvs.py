"""Tests for repro.core.dp_kvs (Section 7)."""

import pytest

from repro.core.dp_kvs import DPKVS
from repro.storage.errors import BlockSizeError, CapacityError


@pytest.fixture
def store(rng):
    return DPKVS(64, key_size=8, value_size=8, rng=rng.spawn("kvs"))


class TestBasicOperations:
    def test_get_missing_returns_none(self, store):
        assert store.get(b"absent") is None

    def test_put_then_get(self, store):
        store.put(b"alpha", b"one")
        value = store.get(b"alpha")
        assert value is not None
        assert value.rstrip(b"\x00") == b"one"

    def test_update_existing(self, store):
        store.put(b"k", b"v1")
        store.put(b"k", b"v2")
        assert store.get(b"k").rstrip(b"\x00") == b"v2"
        assert store.size == 1

    def test_many_keys(self, rng):
        store = DPKVS(128, key_size=8, value_size=8, rng=rng.spawn("many"))
        items = {f"k{i}".encode(): f"v{i}".encode() for i in range(100)}
        for key, value in items.items():
            store.put(key, value)
        assert store.size == 100
        for key, value in items.items():
            assert store.get(key).rstrip(b"\x00") == value

    def test_delete(self, store):
        store.put(b"gone", b"x")
        assert store.delete(b"gone") is True
        assert store.get(b"gone") is None
        assert store.size == 0

    def test_delete_missing(self, store):
        assert store.delete(b"never") is False

    def test_delete_then_reinsert(self, store):
        store.put(b"k", b"v1")
        store.delete(b"k")
        store.put(b"k", b"v2")
        assert store.get(b"k").rstrip(b"\x00") == b"v2"

    def test_delete_from_super_root(self, rng):
        # Tiny node capacity forces super-root spills.
        store = DPKVS(16, key_size=8, value_size=8, node_capacity=1,
                      leaves_per_tree=2, rng=rng.spawn("spill"))
        for i in range(16):
            store.put(f"k{i}".encode(), b"v")
        if store.super_root_size > 0:
            # delete something that lives in the super root
            for i in range(16):
                key = f"k{i}".encode()
                before = store.super_root_size
                if store.delete(key) and store.super_root_size < before:
                    assert store.get(key) is None
                    return
        pytest.skip("no super-root resident key materialized")

    def test_capacity_enforced(self, rng):
        store = DPKVS(4, key_size=8, value_size=8, rng=rng.spawn("cap"))
        for i in range(4):
            store.put(f"k{i}".encode(), b"v")
        with pytest.raises(CapacityError):
            store.put(b"extra", b"v")

    def test_update_allowed_at_capacity(self, rng):
        store = DPKVS(2, key_size=8, value_size=8, rng=rng.spawn("cap2"))
        store.put(b"a", b"1")
        store.put(b"b", b"2")
        store.put(b"a", b"3")  # update, not insert
        assert store.get(b"a").rstrip(b"\x00") == b"3"


class TestKeyValueNormalization:
    def test_short_keys_padded(self, store):
        store.put(b"k", b"v")
        assert store.get(b"k\x00\x00") is not None  # same normalized key

    def test_oversize_key_rejected(self, store):
        with pytest.raises(BlockSizeError):
            store.put(b"x" * 9, b"v")

    def test_oversize_value_rejected(self, store):
        with pytest.raises(BlockSizeError):
            store.put(b"k", b"v" * 9)

    def test_value_returned_exact(self, store):
        # The PrivateKVS contract: get returns precisely the bytes put,
        # with the fixed-size storage padding stripped by the scheme.
        store.put(b"k", b"v")
        assert store.get(b"k") == b"v"

    def test_value_with_trailing_zeros_preserved(self, store):
        store.put(b"k", b"v\x00\x00")
        assert store.get(b"k") == b"v\x00\x00"


class TestBandwidthShape:
    def test_get_and_put_same_cost(self, store):
        store.put(b"seed", b"x")
        before = store.server.operations
        store.get(b"seed")
        get_cost = store.server.operations - before
        before = store.server.operations
        store.put(b"seed", b"y")
        put_cost = store.server.operations - before
        assert get_cost == put_cost  # reads and writes indistinguishable

    def test_cost_matches_params(self, store):
        expected = store.blocks_per_operation()
        before = store.server.operations
        store.get(b"anything")
        assert store.server.operations - before == expected

    def test_blocks_per_operation_formula(self, store):
        shape = store.params.shape
        assert store.blocks_per_operation() == 6 * shape.path_length

    def test_missing_get_same_cost_as_hit(self, store):
        store.put(b"hit", b"v")
        before = store.server.operations
        store.get(b"hit")
        hit_cost = store.server.operations - before
        before = store.server.operations
        store.get(b"miss")
        miss_cost = store.server.operations - before
        assert hit_cost == miss_cost

    def test_operation_counter(self, store):
        store.put(b"a", b"1")
        store.get(b"a")
        store.delete(b"a")
        assert store.operation_count == 3

    def test_transcript_pairs_two_per_operation(self, store):
        store.get(b"q")
        assert len(store.transcript_pairs) == 2


class TestServerStorage:
    def test_server_nodes_linear(self, rng):
        for n in (64, 256, 1024):
            store = DPKVS(n, rng=rng.spawn(f"lin{n}"))
            assert store.server_node_count <= 3 * n

    def test_node_block_size(self, rng):
        # Each entry stores key (4) + length prefix (2) + padded value (4).
        store = DPKVS(64, key_size=4, value_size=4, node_capacity=3,
                      rng=rng.spawn("sz"))
        assert store.node_block_size == 2 + 3 * (4 + 2 + 4)


class TestSuperRoot:
    def test_spills_counted(self, rng):
        store = DPKVS(32, key_size=8, value_size=8, node_capacity=1,
                      leaves_per_tree=2, rng=rng.spawn("sr"))
        for i in range(32):
            store.put(f"key{i}".encode(), b"v")
        # With node capacity 1 and tiny trees some keys must spill.
        assert store.super_root_peak >= 0
        for i in range(32):
            assert store.get(f"key{i}".encode()) is not None

    def test_enforcement_raises(self, rng):
        from repro.storage.errors import MappingOverflowError

        store = DPKVS(64, key_size=8, value_size=8, node_capacity=1,
                      leaves_per_tree=2, phi=1,
                      enforce_super_root_capacity=True, rng=rng.spawn("sre"))
        with pytest.raises(MappingOverflowError):
            for i in range(64):
                store.put(f"key{i}".encode(), b"v")

    def test_client_peak_includes_super_root(self, store):
        store.put(b"k", b"v")
        assert store.client_peak_blocks >= store.super_root_peak


class TestStashChurnCorrectness:
    def test_heavy_stash_probability(self, rng):
        # Force the bucket DP-RAM to stash aggressively: phi = bucket count.
        store = DPKVS(32, key_size=8, value_size=8, phi=4096,
                      rng=rng.spawn("heavy"))
        reference = {}
        source = rng.spawn("heavy-ops")
        for step in range(150):
            key = f"k{source.randbelow(20)}".encode()
            if source.random() < 0.5 and reference:
                lookup = source.choice(sorted(reference))
                value = store.get(lookup)
                assert value is not None
                assert value.rstrip(b"\x00") == reference[lookup]
            else:
                value = f"v{step}".encode()
                store.put(key, value)
                reference[key] = value


class TestChoiceCacheDeterminism:
    """The PRF bucket-choice cache must never change a single draw.

    Choices are a pure function of the key, so serving them from the
    memo (or pre-warming it for a whole ``get_many`` round) has to leave
    answers, transcripts and the rng stream bit-identical to evaluating
    the PRF fresh on every operation.
    """

    @staticmethod
    def _drive(store, clear_cache):
        answers = []
        for step in range(60):
            key = f"k{step % 17}".encode()
            if clear_cache:
                store._choice_cache.clear()
            if step % 3 == 0:
                store.put(key, f"v{step}".encode())
            elif step % 3 == 1:
                answers.append(store.get(key))
            else:
                answers.append(store.delete(key))
        return answers

    def test_cached_and_uncached_runs_are_bit_identical(self, rng):
        seed = rng.spawn("choice-cache").bytes(8)
        cached = DPKVS(64, key_size=8, value_size=8, rng=_seeded(seed))
        uncached = DPKVS(64, key_size=8, value_size=8, rng=_seeded(seed))
        a = self._drive(cached, clear_cache=False)
        b = self._drive(uncached, clear_cache=True)
        assert a == b
        assert cached.transcript_pairs == uncached.transcript_pairs
        assert cached._rng.bytes(8) == uncached._rng.bytes(8)

    def test_get_many_prewarm_matches_sequential_gets(self, rng):
        seed = rng.spawn("prewarm").bytes(8)
        batched = DPKVS(64, key_size=8, value_size=8, rng=_seeded(seed))
        sequential = DPKVS(64, key_size=8, value_size=8, rng=_seeded(seed))
        for store in (batched, sequential):
            for i in range(10):
                store.put(f"k{i}".encode(), f"v{i}".encode())
        keys = [f"k{i}".encode() for i in (3, 9, 3, 12, 0)]
        assert batched.get_many(keys) == [
            sequential.get(key) for key in keys
        ]
        assert batched.transcript_pairs == sequential.transcript_pairs

    def test_cache_stays_bounded(self, rng):
        store = DPKVS(
            2048, key_size=8, value_size=8, rng=rng.spawn("bound")
        )
        store._CHOICE_CACHE_LIMIT = 16
        for i in range(64):
            store.get(f"miss{i}".encode())
        assert len(store._choice_cache) <= 16


def _seeded(seed):
    from repro.crypto.rng import SeededRandomSource

    return SeededRandomSource(seed)
