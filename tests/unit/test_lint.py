"""Unit tests for repro.lint: rules, pragmas, baselines, engine, CLI.

Every rule gets at least one fixture that must flag and one that must
not; the repo-is-clean integration check lives in
``tests/integration/test_lint_gate.py``.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    Baseline,
    Finding,
    ModuleContext,
    all_rules,
    get_rule,
    iter_python_files,
    lint_paths,
    lint_sources,
    select_rules,
)
from repro.lint.engine import SYNTAX_RULE

CORE = "src/repro/core/fixture.py"
CLUSTER = "src/repro/cluster/fixture.py"
ANALYSIS_LEDGER = "src/repro/analysis/ledger.py"
OUTSIDE = "src/repro/metrics/fixture.py"
RNG_MODULE = "src/repro/crypto/rng.py"


def run(source, path=CORE, rules=None):
    """Lint one dedented fixture snippet under a virtual path."""
    result = lint_sources([(path, textwrap.dedent(source))], rules)
    return result


def rules_hit(source, path=CORE, rules=None):
    return {finding.rule for finding in run(source, path, rules).findings}


class TestRegistry:
    def test_all_eight_rules_registered(self):
        names = {rule.name for rule in all_rules()}
        assert names == {
            "rng-discipline",
            "backend-bypass",
            "deprecated-serving-kwargs",
            "nondeterministic-iteration",
            "secret-dependent-branch",
            "float-budget",
            "fan-out-mutation",
            "trace-hygiene",
        }

    def test_get_rule_and_unknown(self):
        assert get_rule("rng-discipline").name == "rng-discipline"
        with pytest.raises(KeyError):
            get_rule("no-such-rule")

    def test_select_rules_default_is_all(self):
        assert len(select_rules(None)) == len(all_rules())
        only = select_rules(["float-budget"])
        assert [rule.name for rule in only] == ["float-budget"]


class TestRngDiscipline:
    def test_flags_import_random(self):
        assert "rng-discipline" in rules_hit("import random\n")

    def test_flags_from_random_import(self):
        assert "rng-discipline" in rules_hit("from random import shuffle\n")

    def test_flags_secrets_and_numpy_random(self):
        assert "rng-discipline" in rules_hit("import secrets\n")
        assert "rng-discipline" in rules_hit("from numpy import random\n")

    def test_flags_os_urandom_use(self):
        source = """
            import os

            def fresh_key():
                return os.urandom(16)
        """
        assert "rng-discipline" in rules_hit(source)

    def test_allows_inside_crypto_rng(self):
        source = "import random\nimport os\nkey = os.urandom(16)\n"
        assert rules_hit(source, path=RNG_MODULE) == set()

    def test_allows_seeded_random_source(self):
        source = """
            def sample(rng, n):
                return rng.sample_distinct(n, 4)
        """
        assert rules_hit(source) == set()

    def test_plain_os_import_is_fine(self):
        assert rules_hit("import os\npath = os.getcwd()\n") == set()


class TestBackendBypass:
    def test_flags_read_slots_outside_storage(self):
        source = """
            def peek(backend):
                return backend.read_slots([0, 1])
        """
        assert "backend-bypass" in rules_hit(source)

    def test_flags_write_slots(self):
        source = """
            def poke(backend, blocks):
                backend.write_slots([0], blocks)
        """
        assert "backend-bypass" in rules_hit(source)

    def test_allows_inside_repro_storage(self):
        source = """
            def read(self, slot):
                return self._backend.read_slots([slot])[0]
        """
        path = "src/repro/storage/server.py"
        assert rules_hit(source, path=path) == set()

    def test_allows_server_level_calls(self):
        source = """
            def query(self, server):
                return server.read_many([1, 2, 3])
        """
        assert rules_hit(source) == set()


class TestNondeterministicIteration:
    def test_flags_for_over_set_literal(self):
        source = """
            def dispatch(self):
                for shard in {2, 0, 1}:
                    self.visit(shard)
        """
        assert "nondeterministic-iteration" in rules_hit(source)

    def test_flags_iteration_over_set_local(self):
        source = """
            def drain(self, keys):
                pending = set(keys)
                return [self.pull(key) for key in pending]
        """
        assert "nondeterministic-iteration" in rules_hit(source)

    def test_flags_list_of_set_attribute(self):
        source = """
            class Directory:
                def __init__(self):
                    self._keys = set()

                def snapshot(self):
                    return list(self._keys)
        """
        assert "nondeterministic-iteration" in rules_hit(source)

    def test_sorted_iteration_is_clean(self):
        source = """
            def drain(self, keys):
                pending = set(keys)
                return [self.pull(key) for key in sorted(pending)]
        """
        assert rules_hit(source) == set()

    def test_reassignment_to_non_set_clears_inference(self):
        source = """
            def drain(self, keys):
                pending = set(keys)
                pending = sorted(pending)
                return [self.pull(key) for key in pending]
        """
        assert rules_hit(source) == set()

    def test_out_of_scope_package_not_flagged(self):
        source = """
            def tally(events):
                return [hash(event) for event in set(events)]
        """
        assert rules_hit(source, path=OUTSIDE) == set()


class TestSecretDependentBranch:
    def test_flags_branch_skipping_storage(self):
        source = """
            class Scheme:
                def query(self, index):
                    if index == 0:
                        return self._cache
                    return self._server.read(index)
        """
        assert "secret-dependent-branch" in rules_hit(source)

    def test_flags_secret_loop_bound(self):
        source = """
            class Scheme:
                def read(self, address):
                    out = []
                    for i in range(address):
                        out.append(self._server.read(i))
                    return out
        """
        assert "secret-dependent-branch" in rules_hit(source)

    def test_flags_secret_while_bound(self):
        source = """
            class Scheme:
                def get(self, key):
                    while key > 0:
                        key -= 1
                    return None
        """
        assert "secret-dependent-branch" in rules_hit(source)

    def test_raise_only_validation_is_legal(self):
        source = """
            class Scheme:
                def query(self, index):
                    if index < 0 or index >= self.n:
                        raise IndexError(index)
                    return self._server.read_many(self._pad(index))
        """
        assert rules_hit(source) == set()

    def test_client_side_selection_is_legal(self):
        source = """
            class Scheme:
                def query(self, index):
                    blocks = self._server.read_many(self._pad(index))
                    answer = None
                    for position, block in enumerate(blocks):
                        if position == index:
                            answer = block
                    return answer
        """
        assert rules_hit(source) == set()

    def test_batch_cardinality_check_is_legal(self):
        source = """
            class Scheme:
                def get_many(self, keys):
                    if not keys:
                        return []
                    return self._server.read_many(self._pads(keys))
        """
        assert rules_hit(source) == set()

    def test_cold_function_not_scoped(self):
        source = """
            class Scheme:
                def rebuild(self, index):
                    if index == 0:
                        return self._server.read(0)
                    return None
        """
        assert rules_hit(source) == set()


class TestFloatBudget:
    def test_flags_float_accumulator_seed(self):
        source = """
            class Ledger:
                def __init__(self):
                    self._total = 0.0
        """
        assert "float-budget" in rules_hit(source, path=ANALYSIS_LEDGER)

    def test_flags_float_slack_literal(self):
        source = """
            def can_afford(spend, cap):
                return spend <= cap + 1e-12
        """
        assert "float-budget" in rules_hit(source, path=ANALYSIS_LEDGER)

    def test_parameter_defaults_are_exempt(self):
        source = """
            def __init__(self, delta_slack: float = 1e-9) -> None:
                self._delta_slack = delta_slack
        """
        assert rules_hit(source, path=ANALYSIS_LEDGER) == set()

    def test_fraction_arithmetic_is_clean(self):
        source = """
            from fractions import Fraction

            def charge(total, epsilon):
                return total + Fraction(epsilon)
        """
        assert rules_hit(source, path=ANALYSIS_LEDGER) == set()

    def test_rule_is_scoped_to_budget_modules(self):
        assert rules_hit("x = 0.0\n", path=OUTSIDE) == set()
        assert rules_hit("x = 0.0\n", path=CORE) == set()


class TestFanOutMutation:
    def test_flags_append_to_closed_over_list(self):
        source = """
            def drain(self, shards):
                results = []
                self._executor.fan_out([
                    lambda shard=shard: results.append(shard.pull())
                    for shard in shards
                ])
                return results
        """
        assert "fan-out-mutation" in rules_hit(source)

    def test_flags_nonlocal_counter(self):
        source = """
            def count(self, shards):
                done = 0

                def task():
                    nonlocal done
                    done += 1

                self._executor.fan_out([task for _ in shards])
                return done
        """
        assert "fan-out-mutation" in rules_hit(source)

    def test_flags_self_attribute_store(self):
        source = """
            def drain(self):
                def task():
                    self._count += 1

                self._executor.fan_out([task])
        """
        assert "fan-out-mutation" in rules_hit(source)

    def test_default_bound_state_is_owned(self):
        source = """
            def drain(self, groups):
                return self._executor.fan_out([
                    (lambda group=group: group.get_many(group.keys))
                    for group in groups
                ])
        """
        assert rules_hit(source) == set()

    def test_locals_inside_nested_def_are_fine(self):
        source = """
            def drain(self, shards):
                def task(shard):
                    out = []
                    out.append(shard.pull())
                    return out

                return self._executor.fan_out(
                    [lambda shard=shard: task(shard) for shard in shards]
                )
        """
        assert rules_hit(source) == set()

    def test_closures_without_fan_out_not_scoped(self):
        source = """
            def collect(self, shards):
                results = []
                tasks = [lambda shard=shard: results.append(shard) for shard in shards]
                for task in tasks:
                    task()
                return results
        """
        assert rules_hit(source) == set()


class TestTraceHygiene:
    def test_flags_secret_index_span_label(self):
        source = """
            def query(self, index):
                with self._tracer.span("cluster.query", index=index):
                    pass
        """
        assert "trace-hygiene" in rules_hit(source)

    def test_flags_key_in_annotate_and_metric_labels(self):
        for call in (
            'span.annotate(key=key)',
            'self._counter.inc(key=str(key))',
            'self._histogram.observe(1.0, first=keys[0])',
            'self._gauge.set(1.0, pad=pad_set[0])',
        ):
            source = f"""
                def touch(self, span, key, keys, pad_set):
                    {call}
            """
            assert "trace-hygiene" in rules_hit(source), call

    def test_flags_secret_attribute_tail(self):
        source = """
            def emit(self, request):
                with self._tracer.span("serve.round", what=request.index):
                    pass
        """
        assert "trace-hygiene" in rules_hit(source)

    def test_len_of_secret_collection_is_public(self):
        source = """
            def emit(self, indices, pads):
                with self._tracer.span(
                    "storage.read_many", batch=len(indices)
                ) as span:
                    span.annotate(pads=len(pads))
        """
        assert rules_hit(source) == set()

    def test_public_labels_pass(self):
        source = """
            def emit(self, shard, server_id, elapsed_ms):
                with self._tracer.span(
                    "cluster.shard_leg", shard=shard, server=server_id
                ) as span:
                    span.annotate(service_ms=elapsed_ms)
        """
        assert rules_hit(source) == set()

    def test_scoped_to_the_repro_tree(self):
        source = """
            def emit(self, tracer, index):
                with tracer.span("demo", index=index):
                    pass
        """
        assert rules_hit(source, path="examples/fixture.py") == set()
        assert "trace-hygiene" in rules_hit(source)


class TestPragmas:
    def test_same_line_pragma_suppresses(self):
        source = (
            "import random  # repro: allow(rng-discipline) -- fixture\n"
        )
        result = run(source)
        assert result.findings == []
        assert [f.rule for f in result.suppressed] == ["rng-discipline"]

    def test_pragma_only_line_covers_next_line(self):
        source = """
            # repro: allow(rng-discipline) -- fixture
            import random
        """
        result = run(source)
        assert result.findings == []
        assert len(result.suppressed) == 1

    def test_block_pragma_on_def_header(self):
        source = """
            def legacy(backend):  # repro: allow(backend-bypass) -- audited
                first = backend.read_slots([0])
                second = backend.read_slots([1])
                return first + second
        """
        result = run(source)
        assert result.findings == []
        assert len(result.suppressed) == 2

    def test_pragma_names_must_match_rule(self):
        source = (
            "import random  # repro: allow(backend-bypass) -- wrong rule\n"
        )
        result = run(source)
        assert [f.rule for f in result.findings] == ["rng-discipline"]
        assert result.suppressed == []

    def test_allow_star_suppresses_everything(self):
        source = "import random  # repro: allow(*) -- generated\n"
        result = run(source)
        assert result.findings == []

    def test_multiple_rules_in_one_pragma(self):
        source = """
            def query(self, index):  # repro: allow(secret-dependent-branch, rng-discipline)
                import random
                if index > 1:
                    return self._server.read(index)
                return None
        """
        result = run(source)
        assert result.findings == []
        assert len(result.suppressed) == 2


class TestEngine:
    def test_syntax_error_becomes_finding(self):
        result = lint_sources([(CORE, "def broken(:\n")])
        assert [f.rule for f in result.findings] == [SYNTAX_RULE]

    def test_findings_sorted_and_deduped(self):
        source = textwrap.dedent(
            """
            import random
            import secrets
            """
        )
        result = lint_sources([(CORE, source)])
        lines = [f.line for f in result.findings]
        assert lines == sorted(lines)
        assert len(result.findings) == len(set(result.findings))

    def test_rule_selection_limits_findings(self):
        source = textwrap.dedent(
            """
            import random

            def peek(backend):
                return backend.read_slots([0])
            """
        )
        result = lint_sources([(CORE, source)], ["backend-bypass"])
        assert {f.rule for f in result.findings} == {"backend-bypass"}

    def test_iter_python_files_skips_caches(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "a.py").write_text("x = 1\n")
        found = list(iter_python_files([tmp_path]))
        assert [p.name for p in found] == ["a.py"]
        assert "__pycache__" not in {p.parent.name for p in found}

    def test_lint_paths_display_root(self, tmp_path):
        target = tmp_path / "src" / "repro" / "core" / "bad.py"
        target.parent.mkdir(parents=True)
        target.write_text("import random\n")
        result = lint_paths([tmp_path], display_root=tmp_path)
        assert [f.path for f in result.findings] == [
            "src/repro/core/bad.py"
        ]

    def test_finding_payload(self):
        result = run("import random\n")
        finding = result.findings[0]
        assert finding.rule == "rng-discipline"
        assert finding.line == 1
        assert finding.hint
        assert finding.location().startswith(CORE + ":1")
        payload = finding.to_dict()
        assert payload["rule"] == "rng-discipline"
        assert payload["path"] == CORE


class TestBaseline:
    def _finding(self, message="import of 'random' ...", path=CORE):
        return Finding(
            path=path, line=3, col=0, rule="rng-discipline",
            message=message, hint="",
        )

    def test_roundtrip(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        findings = [self._finding(), self._finding(), self._finding("other")]
        Baseline.from_findings(findings).save(baseline_path)
        loaded = Baseline.load(baseline_path)
        assert len(loaded) == 3
        diff = loaded.diff(findings)
        assert diff.new == []
        assert len(diff.matched) == 3
        assert diff.stale == []

    def test_missing_file_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "nope.json")
        assert len(baseline) == 0

    def test_malformed_file_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValueError):
            Baseline.load(path)
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError):
            Baseline.load(path)

    def test_line_moves_do_not_unbaseline(self):
        baseline = Baseline.from_findings([self._finding()])
        moved = Finding(
            path=CORE, line=57, col=4, rule="rng-discipline",
            message="import of 'random' ...", hint="",
        )
        diff = baseline.diff([moved])
        assert diff.new == []
        assert diff.matched == [moved]

    def test_second_occurrence_is_new(self):
        baseline = Baseline.from_findings([self._finding()])
        diff = baseline.diff([self._finding(), self._finding()])
        assert len(diff.matched) == 1
        assert len(diff.new) == 1

    def test_stale_entries_reported(self):
        baseline = Baseline.from_findings([self._finding("gone")])
        diff = baseline.diff([])
        assert diff.stale == [("rng-discipline", CORE, "gone")]


class TestCli:
    def _main(self, argv, capsys):
        from repro.__main__ import main

        code = main(argv)
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    @pytest.fixture()
    def fixture_tree(self, tmp_path, monkeypatch):
        clean = tmp_path / "src" / "repro" / "core" / "ok.py"
        clean.parent.mkdir(parents=True)
        clean.write_text("def fine(server):\n    return server.read(0)\n")
        dirty = tmp_path / "src" / "repro" / "core" / "bad.py"
        dirty.write_text("import random\n")
        monkeypatch.chdir(tmp_path)
        return tmp_path

    def test_clean_path_exits_zero(self, fixture_tree, capsys):
        code, out, _ = self._main(
            ["lint", "--no-baseline", "src/repro/core/ok.py"], capsys
        )
        assert code == 0
        assert "0 findings" in out or "no new findings" in out

    def test_violation_exits_one(self, fixture_tree, capsys):
        code, out, _ = self._main(
            ["lint", "--no-baseline", "src/repro/core/bad.py"], capsys
        )
        assert code == 1
        assert "rng-discipline" in out

    def test_json_output(self, fixture_tree, capsys):
        code, out, _ = self._main(
            ["lint", "--no-baseline", "--json", "src/repro/core/bad.py"],
            capsys,
        )
        assert code == 1
        payload = json.loads(out)
        assert payload["findings"]
        assert payload["findings"][0]["rule"] == "rng-discipline"

    def test_rule_filter(self, fixture_tree, capsys):
        code, _, _ = self._main(
            ["lint", "--no-baseline", "--rule", "backend-bypass",
             "src/repro/core/bad.py"],
            capsys,
        )
        assert code == 0

    def test_unknown_rule_is_usage_error(self, fixture_tree, capsys):
        code, _, err = self._main(
            ["lint", "--rule", "no-such-rule", "src/repro/core/ok.py"],
            capsys,
        )
        assert code == 2
        assert "no-such-rule" in err

    def test_missing_path_is_usage_error(self, fixture_tree, capsys):
        code, _, err = self._main(["lint", "does/not/exist"], capsys)
        assert code == 2
        assert "no such path" in err

    def test_write_baseline_then_gate_passes(self, fixture_tree, capsys):
        code, _, _ = self._main(
            ["lint", "--write-baseline", "--baseline", "base.json",
             "src/repro/core/bad.py"],
            capsys,
        )
        assert code == 0
        assert Path("base.json").exists()
        code, out, _ = self._main(
            ["lint", "--baseline", "base.json", "src/repro/core/bad.py"],
            capsys,
        )
        assert code == 0
        assert "baselined" in out

    def test_list_rules(self, fixture_tree, capsys):
        code, out, _ = self._main(["lint", "--list-rules"], capsys)
        assert code == 0
        for name in ("rng-discipline", "backend-bypass", "float-budget"):
            assert name in out
