"""Properties of the continuous-batching scheduler end to end.

Three claims pinned here:

* **Degeneration**: at pipeline depth 1 with admission caps disabled,
  continuous batching is the *same algorithm* as the windowed scheduler
  with a zero window — the full report must be bit-identical, not
  merely statistically close.
* **Backpressure**: under an open-loop Poisson flood far past the
  service rate, tightening per-tenant credits monotonically improves
  (never worsens) p99 and bounds queue depth, with every refused
  request accounted for in the shed counters.
* **Determinism**: floods with caps replay bit-for-bit per seed, and
  the simulated and threaded executors agree on the full report even
  when admission decisions depend on simulated time.
"""

import pytest

from repro.serving import ServingConfig, serve

FLOOD = dict(
    clients=8,
    requests_per_client=32,
    load="open",
    rate_rps=2000.0,
    n=128,
    network="lan",
)


def _modulo_scheduler(report) -> dict:
    payload = report.to_dict()
    assert payload.pop("scheduler") in ("window", "continuous")
    return payload


class TestDegeneratesToWindowedScheduler:
    @pytest.mark.parametrize("scheme", ["dp_ir", "batch_dp_ir"])
    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_depth_one_no_caps_is_bit_identical_to_zero_window(
        self, scheme, seed
    ):
        common = dict(
            clients=4, requests_per_client=8, load="open",
            rate_rps=400.0, n=128, seed=seed,
        )
        windowed = serve(scheme, ServingConfig(
            scheduler="window", batch_window_ms=0.0, **common
        ))
        continuous = serve(scheme, ServingConfig(
            scheduler="continuous", max_in_flight=1, **common
        ))
        assert _modulo_scheduler(continuous) == _modulo_scheduler(windowed)


class TestFloodBackpressure:
    @pytest.fixture(scope="class")
    def reports(self):
        credit_ladder = (None, 8, 4, 2)
        return {
            credits: serve("batch_dp_ir", ServingConfig(
                scheduler="continuous", tenant_credits=credits,
                seed=3, **FLOOD
            ))
            for credits in credit_ladder
        }

    def test_tightening_credits_never_worsens_p99(self, reports):
        ladder = [reports[c] for c in (None, 8, 4, 2)]
        p99s = [report.latency.p99_ms for report in ladder]
        # Non-increasing down the ladder, modulo percentile
        # quantization (different caps complete different request
        # subsets, so adjacent rungs can differ by one sample).
        assert all(
            tighter <= looser * 1.01
            for looser, tighter in zip(p99s, p99s[1:])
        )
        # Every capped rung beats the uncapped flood outright.
        assert all(capped < p99s[0] for capped in p99s[1:])

    def test_caps_bound_queue_depth(self, reports):
        uncapped = reports[None]
        tightest = reports[2]
        assert tightest.max_queue_depth < uncapped.max_queue_depth
        # With credits c per tenant, at most clients*c requests can be
        # queued or in flight at once.
        assert tightest.max_queue_depth <= FLOOD["clients"] * 2

    def test_shed_accounting_is_exact(self, reports):
        for credits, report in reports.items():
            assert report.completed + report.shed == report.requests
            if credits is None:
                assert report.shed == 0
            else:
                assert report.shed > 0
            fairness = report.fairness
            assert fairness["shed_total"] == report.shed
            assert sum(
                tenant["shed"] for tenant in fairness["tenants"]
            ) == report.shed

    def test_uncapped_flood_still_serves_everything(self, reports):
        uncapped = reports[None]
        assert uncapped.completed == uncapped.requests
        assert uncapped.max_in_flight > 1

    def test_flood_replays_bit_for_bit(self, reports):
        again = serve("batch_dp_ir", ServingConfig(
            scheduler="continuous", tenant_credits=2, seed=3, **FLOOD
        ))
        assert again.to_dict() == reports[2].to_dict()


class TestExecutorStability:
    def test_simulated_and_parallel_agree_under_caps(self):
        # Cluster schemes fan out across shards through the executor;
        # both concurrent executors price a stage as max + overhead, so
        # even admission decisions (which depend on simulated time)
        # must coincide — the full report is the witness.
        reports = {}
        for executor in ("simulated", "parallel"):
            reports[executor] = serve("cluster_batch_dp_ir", ServingConfig(
                scheduler="continuous", tenant_credits=4, seed=9,
                executor=executor,
                build_kwargs={"shard_count": 2},
                **FLOOD,
            ))
        assert (
            reports["simulated"].to_dict() == reports["parallel"].to_dict()
        )
