"""Tests for repro.workloads.replay."""

import pytest

from repro.workloads.generators import read_write_trace, uniform_trace
from repro.workloads.kv_traces import ycsb_trace
from repro.workloads.replay import (
    load_kv_trace,
    load_trace,
    save_kv_trace,
    save_trace,
)


class TestRamTraceRoundtrip:
    def test_read_only(self, rng, tmp_path):
        trace = uniform_trace(32, 50, rng)
        path = tmp_path / "trace.jsonl"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.universe == trace.universe
        assert loaded.name == trace.name
        assert loaded.operations == trace.operations

    def test_read_write(self, rng, tmp_path):
        trace = read_write_trace(16, 40, rng, write_fraction=0.5)
        path = tmp_path / "trace.jsonl"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.operations == trace.operations

    def test_empty_trace(self, tmp_path):
        from repro.workloads.trace import Trace

        path = tmp_path / "empty.jsonl"
        save_trace(Trace([], universe=8, name="empty"), path)
        loaded = load_trace(path)
        assert len(loaded) == 0
        assert loaded.universe == 8

    def test_rejects_kv_file(self, rng, tmp_path):
        path = tmp_path / "kv.jsonl"
        save_kv_trace(ycsb_trace(4, 4, rng), path)
        with pytest.raises(ValueError):
            load_trace(path)

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "nothing.jsonl"
        path.write_text("")
        with pytest.raises(ValueError):
            load_trace(path)

    def test_rejects_missing_meta(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"op": "read", "index": 0}\n')
        with pytest.raises(ValueError):
            load_trace(path)


class TestKvTraceRoundtrip:
    def test_roundtrip(self, rng, tmp_path):
        trace = ycsb_trace(8, 30, rng, profile="A")
        path = tmp_path / "kv.jsonl"
        save_kv_trace(trace, path)
        loaded = load_kv_trace(path)
        assert loaded.name == trace.name
        assert loaded.operations == trace.operations

    def test_binary_safe(self, rng, tmp_path):
        from repro.workloads.kv_traces import KVOperation, KVTrace

        trace = KVTrace([
            KVOperation.put(bytes(range(16)), b"\x00\xff\n\""),
            KVOperation.get(bytes(range(16))),
        ])
        path = tmp_path / "binary.jsonl"
        save_kv_trace(trace, path)
        assert load_kv_trace(path).operations == trace.operations

    def test_rejects_ram_file(self, rng, tmp_path):
        path = tmp_path / "ram.jsonl"
        save_trace(uniform_trace(8, 4, rng), path)
        with pytest.raises(ValueError):
            load_kv_trace(path)


class TestReplayThroughHarness:
    def test_saved_trace_reproduces_metrics(self, rng, tmp_path):
        from repro.baselines.plaintext import PlaintextRAM
        from repro.simulation.harness import run_ram_trace
        from repro.storage.blocks import integer_database

        database = integer_database(16)
        trace = read_write_trace(16, 60, rng, write_fraction=0.4)
        path = tmp_path / "replayed.jsonl"
        save_trace(trace, path)
        first = run_ram_trace(PlaintextRAM(database), trace, initial=database)
        second = run_ram_trace(PlaintextRAM(database), load_trace(path),
                               initial=database)
        assert first.blocks_total == second.blocks_total
        assert first.mismatches == second.mismatches == 0
