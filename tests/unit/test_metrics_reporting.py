"""Tests for repro.simulation.metrics and repro.simulation.reporting."""

import pytest

from repro.simulation.metrics import LatencySummary, RunMetrics, percentile
from repro.simulation.reporting import (
    ExperimentTable,
    format_table,
    latency_rows,
)


class TestPercentile:
    def test_endpoints_are_min_and_max(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 5.0

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)

    def test_linear_between_ranks(self):
        # Rank 0.95 * 9 = 8.55 between 90 and 100.
        values = [float(v) for v in range(10, 101, 10)]
        assert percentile(values, 0.95) == pytest.approx(95.5)

    def test_single_value(self):
        assert percentile([7.0], 0.99) == 7.0

    def test_input_order_irrelevant(self):
        values = [9.0, 2.0, 7.0, 4.0]
        assert percentile(values, 0.5) == percentile(sorted(values), 0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestLatencySummary:
    def test_from_values(self):
        summary = LatencySummary.from_values([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean_ms == pytest.approx(2.5)
        assert summary.p50_ms == pytest.approx(2.5)
        assert summary.max_ms == 4.0
        assert (summary.p50_ms <= summary.p95_ms <= summary.p99_ms
                <= summary.p999_ms <= summary.max_ms)

    def test_empty_sample(self):
        summary = LatencySummary.from_values([])
        assert summary.count == 0
        assert summary.p99_ms == 0.0
        assert summary.p999_ms == 0.0

    def test_backward_compatible_construction(self):
        # Call sites predating p99.9 build summaries without it.
        summary = LatencySummary(count=1, mean_ms=1.0, p50_ms=1.0,
                                 p95_ms=1.0, p99_ms=1.0, max_ms=1.0)
        assert summary.p999_ms == 0.0

    def test_latency_rows_render(self):
        summary = LatencySummary.from_values([1.0, 2.0, 3.0])
        rows = latency_rows(summary)
        labels = [row[0] for row in rows]
        assert labels == ["latency p50 ms", "latency p95 ms",
                          "latency p99 ms", "latency p99.9 ms",
                          "latency mean ms", "latency max ms"]
        text = format_table(["metric", "value"], rows)
        assert "p99.9" in text


class TestPercentileMap:
    def test_default_fractions_include_p999(self):
        from repro.simulation.metrics import percentile_map

        values = [float(i) for i in range(1, 1001)]
        tails = percentile_map(values)
        assert set(tails) == {"p50", "p95", "p99", "p99.9"}
        assert tails["p50"] == pytest.approx(500.5)
        assert tails["p99.9"] == pytest.approx(999.001)

    def test_configurable_fraction_list(self):
        from repro.simulation.metrics import percentile_map

        tails = percentile_map([1.0, 2.0, 3.0, 4.0], (0.0, 0.25, 1.0))
        assert tails == {"p0": 1.0, "p25": pytest.approx(1.75), "p100": 4.0}

    def test_empty_sample_maps_to_zero(self):
        from repro.simulation.metrics import percentile_map

        assert percentile_map([], (0.5, 0.999)) == {"p50": 0.0, "p99.9": 0.0}

    def test_bad_fraction_rejected(self):
        from repro.simulation.metrics import percentile_map

        with pytest.raises(ValueError):
            percentile_map([1.0], (1.5,))


class TestRunMetrics:
    def test_totals(self):
        metrics = RunMetrics(scheme="s", trace="t", operations=10,
                             blocks_downloaded=20, blocks_uploaded=10)
        assert metrics.blocks_total == 30
        assert metrics.blocks_per_operation == 3.0

    def test_zero_operations(self):
        metrics = RunMetrics(scheme="s", trace="t")
        assert metrics.blocks_per_operation == 0.0
        assert metrics.error_rate == 0.0

    def test_error_rate(self):
        metrics = RunMetrics(scheme="s", trace="t", operations=100, errors=7)
        assert metrics.error_rate == pytest.approx(0.07)

    def test_overhead(self):
        metrics = RunMetrics(scheme="s", trace="t", operations=10,
                             blocks_downloaded=30)
        assert metrics.overhead_versus(1.0) == 3.0
        with pytest.raises(ValueError):
            metrics.overhead_versus(0.0)

    def test_latency_summary_absent_without_samples(self):
        assert RunMetrics(scheme="s", trace="t").latency_summary is None

    def test_latency_summary_from_recorded_stream(self):
        metrics = RunMetrics(scheme="s", trace="t",
                             latencies_ms=[10.0, 20.0, 30.0])
        summary = metrics.latency_summary
        assert summary is not None
        assert summary.count == 3
        assert summary.p50_ms == 20.0

    def test_latency_lists_are_independent(self):
        # A mutable default must not be shared between instances.
        first = RunMetrics(scheme="a", trace="t")
        first.latencies_ms.append(1.0)
        assert RunMetrics(scheme="b", trace="t").latencies_ms == []


class TestFormatTable:
    def test_alignment_and_headers(self):
        text = format_table(["name", "value"], [["a", 1], ["longer", 2.5]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "longer" in lines[3]
        assert len(set(len(line.rstrip()) for line in lines[1:2])) == 1

    def test_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_rendering(self):
        text = format_table(["v"], [[0.123456], [12345.6], [1e-9], [0.0]])
        assert "0.123" in text
        assert "1.23e+04" in text or "12345.6" in text or "1.23e+4" in text
        assert "1e-09" in text
        assert "0" in text

    def test_bool_rendering(self):
        text = format_table(["ok"], [[True], [False]])
        assert "yes" in text
        assert "no" in text


class TestExperimentTable:
    def test_add_row_validates_width(self):
        table = ExperimentTable("E0", "claim", headers=["a", "b"])
        table.add_row(1, 2)
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_to_text_includes_claim_and_notes(self):
        table = ExperimentTable("E0", "my claim", headers=["a"])
        table.add_row(1)
        table.add_note("a note")
        text = table.to_text()
        assert "E0: my claim" in text
        assert "note: a note" in text

    def test_to_markdown_shape(self):
        table = ExperimentTable("E0", "claim", headers=["a", "b"])
        table.add_row(1, True)
        markdown = table.to_markdown()
        assert markdown.startswith("### E0 — claim")
        assert "| a | b |" in markdown
        assert "| 1 | yes |" in markdown
