"""Tests for repro.simulation.metrics and repro.simulation.reporting."""

import pytest

from repro.simulation.metrics import RunMetrics
from repro.simulation.reporting import ExperimentTable, format_table


class TestRunMetrics:
    def test_totals(self):
        metrics = RunMetrics(scheme="s", trace="t", operations=10,
                             blocks_downloaded=20, blocks_uploaded=10)
        assert metrics.blocks_total == 30
        assert metrics.blocks_per_operation == 3.0

    def test_zero_operations(self):
        metrics = RunMetrics(scheme="s", trace="t")
        assert metrics.blocks_per_operation == 0.0
        assert metrics.error_rate == 0.0

    def test_error_rate(self):
        metrics = RunMetrics(scheme="s", trace="t", operations=100, errors=7)
        assert metrics.error_rate == pytest.approx(0.07)

    def test_overhead(self):
        metrics = RunMetrics(scheme="s", trace="t", operations=10,
                             blocks_downloaded=30)
        assert metrics.overhead_versus(1.0) == 3.0
        with pytest.raises(ValueError):
            metrics.overhead_versus(0.0)


class TestFormatTable:
    def test_alignment_and_headers(self):
        text = format_table(["name", "value"], [["a", 1], ["longer", 2.5]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "longer" in lines[3]
        assert len(set(len(line.rstrip()) for line in lines[1:2])) == 1

    def test_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_rendering(self):
        text = format_table(["v"], [[0.123456], [12345.6], [1e-9], [0.0]])
        assert "0.123" in text
        assert "1.23e+04" in text or "12345.6" in text or "1.23e+4" in text
        assert "1e-09" in text
        assert "0" in text

    def test_bool_rendering(self):
        text = format_table(["ok"], [[True], [False]])
        assert "yes" in text
        assert "no" in text


class TestExperimentTable:
    def test_add_row_validates_width(self):
        table = ExperimentTable("E0", "claim", headers=["a", "b"])
        table.add_row(1, 2)
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_to_text_includes_claim_and_notes(self):
        table = ExperimentTable("E0", "my claim", headers=["a"])
        table.add_row(1)
        table.add_note("a note")
        text = table.to_text()
        assert "E0: my claim" in text
        assert "note: a note" in text

    def test_to_markdown_shape(self):
        table = ExperimentTable("E0", "claim", headers=["a", "b"])
        table.add_row(1, True)
        markdown = table.to_markdown()
        assert markdown.startswith("### E0 — claim")
        assert "| a | b |" in markdown
        assert "| 1 | yes |" in markdown
