"""Unit tests for the deterministic span tracer."""

import json
import threading

import pytest

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    TracingExecutor,
    canonical_trace,
)
from repro.obs.tracer import _NULL_SPAN
from repro.parallel import SerialExecutor


class TestSpanIds:
    def test_roots_count_up_from_zero(self):
        tracer = Tracer("t")
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [s.span_id for s in tracer.spans()] == ["0", "1"]

    def test_children_nest_under_the_active_span(self):
        tracer = Tracer("t")
        with tracer.span("round"):
            with tracer.span("leg"):
                with tracer.span("batch"):
                    pass
            with tracer.span("leg"):
                pass
        ids = [s.span_id for s in tracer.spans()]
        assert ids == ["0", "0.0", "0.0.0", "0.1"]
        parents = {s.span_id: s.parent_id for s in tracer.spans()}
        assert parents == {"0": None, "0.0": "0", "0.0.0": "0.0",
                           "0.1": "0"}

    def test_ids_never_come_from_clocks(self):
        tracer = Tracer("t")
        with tracer.span("a"):
            pass
        tracer2 = Tracer("t")
        with tracer2.span("a"):
            pass
        assert (
            [s.span_id for s in tracer.spans()]
            == [s.span_id for s in tracer2.spans()]
        )

    def test_start_span_with_explicit_parent(self):
        tracer = Tracer("t")
        parent = tracer.start_span("round")
        legs = [tracer.start_span("leg", parent=parent, shard=i)
                for i in range(3)]
        assert [leg.span_id for leg in legs] == ["0.0", "0.1", "0.2"]
        assert all(leg.parent_id == "0" for leg in legs)

    def test_activate_adopts_a_precreated_span(self):
        tracer = Tracer("t")
        leg = tracer.start_span("leg")
        with tracer.activate(leg):
            with tracer.span("inner"):
                pass
        inner = [s for s in tracer.spans() if s.name == "inner"]
        assert inner[0].parent_id == leg.span_id


class TestLabels:
    def test_scalar_labels_accepted(self):
        tracer = Tracer("t")
        with tracer.span("a", shard=3, mode="fast", ok=True,
                         ms=1.5, note=None) as span:
            span.annotate(batch=7)
        labels = tracer.spans()[0].labels
        assert labels == {"shard": 3, "mode": "fast", "ok": True,
                          "ms": 1.5, "note": None, "batch": 7}

    def test_non_scalar_label_rejected(self):
        tracer = Tracer("t")
        with pytest.raises(TypeError, match="scalar"):
            tracer.start_span("a", contents=[1, 2, 3])

    def test_annotate_rejects_non_scalars_too(self):
        tracer = Tracer("t")
        span = tracer.start_span("a")
        with pytest.raises(TypeError):
            span.annotate(payload={"x": 1})


class TestErrorsAndTiming:
    def test_exception_is_recorded_and_propagates(self):
        tracer = Tracer("t")
        with pytest.raises(ValueError):
            with tracer.span("a"):
                raise ValueError("boom")
        span = tracer.spans()[0]
        assert span.error == "ValueError"
        assert span.wall_ms is not None and span.wall_ms >= 0.0

    def test_set_sim_records_the_deterministic_clock(self):
        tracer = Tracer("t")
        with tracer.span("a") as span:
            span.set_sim(10.0, 12.5)
        exported = tracer.export()["spans"][0]
        assert exported["sim_start_ms"] == 10.0
        assert exported["sim_end_ms"] == 12.5


class TestExport:
    def test_export_shape_and_sorted_labels(self):
        tracer = Tracer("run")
        with tracer.span("a", z=1, b=2):
            pass
        payload = tracer.export()
        assert payload["version"] == 1
        assert payload["name"] == "run"
        assert list(payload["spans"][0]["labels"]) == ["b", "z"]

    def test_spans_sorted_by_parsed_path_not_lexically(self):
        # "0.10" must sort after "0.9", which string order gets wrong.
        tracer = Tracer("t")
        parent = tracer.start_span("round")
        for i in range(11):
            tracer.start_span("leg", parent=parent, leg=i)
        ids = [s["id"] for s in tracer.export()["spans"]]
        assert ids == ["0"] + [f"0.{i}" for i in range(11)]

    def test_export_is_json_serializable(self):
        tracer = Tracer("t")
        with tracer.span("a", shard=0):
            pass
        json.dumps(tracer.export())

    def test_canonical_trace_strips_only_wall_clock(self):
        tracer = Tracer("t")
        with tracer.span("a") as span:
            span.set_sim(0.0, 1.0)
        canon = canonical_trace(tracer.export())
        assert "wall_ms" not in canon["spans"][0]
        assert canon["spans"][0]["sim_end_ms"] == 1.0
        # The original payload is not mutated.
        assert "wall_ms" in tracer.export()["spans"][0]


class TestThreading:
    def test_worker_threads_build_deterministic_subtrees(self):
        tracer = Tracer("t")
        legs = [tracer.start_span("leg", shard=i) for i in range(4)]

        def work(leg):
            with tracer.activate(leg):
                with tracer.span("batch", size=2):
                    pass

        threads = [threading.Thread(target=work, args=(leg,))
                   for leg in legs]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        batches = sorted(
            s.span_id for s in tracer.spans() if s.name == "batch"
        )
        assert batches == ["0.0", "1.0", "2.0", "3.0"]


class TestTracingExecutorOnResult:
    def test_callback_sees_stamped_leg_spans(self):
        tracer = Tracer("t")
        observed = []

        def capture(result):
            # The wrapper stamps the leg's span before forwarding, so
            # in-flight hooks always observe finished timing.
            span = tracer.spans()[result.index]
            observed.append((result.index, span.wall_ms))

        executor = TracingExecutor(SerialExecutor(), tracer)
        results = executor.fan_out(
            [lambda value=value: value for value in range(3)],
            on_result=capture,
        )
        assert [index for index, _ in observed] == [0, 1, 2]
        assert all(wall is not None for _, wall in observed)
        assert [result.value for result in results] == [0, 1, 2]

    def test_disabled_tracer_still_forwards_callback(self):
        seen = []
        executor = TracingExecutor(SerialExecutor(), NullTracer())
        executor.fan_out([lambda: "x"], on_result=seen.append)
        assert [result.value for result in seen] == ["x"]


class TestNullTracer:
    def test_disabled_span_is_shared_noop(self):
        tracer = NullTracer()
        assert not tracer.enabled
        context = tracer.span("a", shard=1)
        assert tracer.span("b") is context  # one shared singleton
        with context as span:
            span.annotate(anything=1)
            span.set_sim(0.0, 1.0)
        assert len(tracer) == 0
        assert tracer.export()["spans"] == []

    def test_null_singleton_collects_nothing(self):
        with NULL_TRACER.span("a") as span:
            assert span is _NULL_SPAN
        assert len(NULL_TRACER) == 0

    def test_disabled_start_span_returns_null_span(self):
        assert NULL_TRACER.start_span("a") is _NULL_SPAN
