"""Tests for repro.workloads.generators."""

import pytest

from repro.crypto.rng import SeededRandomSource
from repro.workloads.generators import (
    adjacent_index_pair,
    adjacent_ram_pair,
    hotspot_trace,
    poisson_arrival_times,
    poisson_interarrivals,
    read_write_trace,
    sequential_trace,
    uniform_trace,
    zipf_trace,
)
from repro.workloads.trace import OpKind


class TestUniformTrace:
    def test_length_and_range(self, rng):
        trace = uniform_trace(50, 200, rng)
        assert len(trace) == 200
        assert all(0 <= op.index < 50 for op in trace)
        assert trace.read_fraction() == 1.0

    def test_coarse_uniformity(self, rng):
        trace = uniform_trace(4, 4000, rng)
        counts = [0] * 4
        for op in trace:
            counts[op.index] += 1
        assert min(counts) > 700

    def test_rejects_bad_args(self, rng):
        with pytest.raises(ValueError):
            uniform_trace(0, 5, rng)
        with pytest.raises(ValueError):
            uniform_trace(5, -1, rng)


class TestSequentialTrace:
    def test_wraps_around(self):
        trace = sequential_trace(3, 7, start=1)
        assert trace.indices() == [1, 2, 0, 1, 2, 0, 1]


class TestZipfTrace:
    def test_skews_to_low_ranks(self, rng):
        trace = zipf_trace(100, 3000, rng, skew=1.2)
        head = sum(1 for op in trace if op.index < 10)
        assert head > len(trace) * 0.4

    def test_zero_skew_is_uniformish(self, rng):
        trace = zipf_trace(10, 5000, rng, skew=0.0)
        counts = [0] * 10
        for op in trace:
            counts[op.index] += 1
        assert min(counts) > 300

    def test_rejects_negative_skew(self, rng):
        with pytest.raises(ValueError):
            zipf_trace(10, 5, rng, skew=-0.5)


class TestHotspotTrace:
    def test_hot_keys_dominate(self, rng):
        trace = hotspot_trace(100, 3000, rng, hot_fraction=0.1, hot_weight=0.9)
        hot = sum(1 for op in trace if op.index < 10)
        assert hot > len(trace) * 0.8

    def test_full_hot_fraction(self, rng):
        trace = hotspot_trace(10, 100, rng, hot_fraction=1.0)
        assert all(0 <= op.index < 10 for op in trace)

    def test_rejects_bad_fraction(self, rng):
        with pytest.raises(ValueError):
            hotspot_trace(10, 5, rng, hot_fraction=0.0)
        with pytest.raises(ValueError):
            hotspot_trace(10, 5, rng, hot_weight=1.5)


class TestReadWriteTrace:
    def test_write_fraction_roughly_respected(self, rng):
        trace = read_write_trace(20, 2000, rng, write_fraction=0.3)
        writes = sum(1 for op in trace if op.kind is OpKind.WRITE)
        assert 450 < writes < 750

    def test_all_writes_have_values(self, rng):
        trace = read_write_trace(20, 100, rng, write_fraction=1.0)
        assert all(op.value is not None for op in trace)

    def test_write_values_distinct(self, rng):
        trace = read_write_trace(20, 100, rng, write_fraction=1.0)
        values = [op.value for op in trace]
        assert len(set(values)) == len(values)

    def test_rejects_bad_fraction(self, rng):
        with pytest.raises(ValueError):
            read_write_trace(10, 5, rng, write_fraction=-0.1)


class TestAdjacentPairs:
    def test_index_pair_is_adjacent(self, rng):
        base, neighbour, position = adjacent_index_pair(20, 15, rng)
        assert base.hamming_distance(neighbour) == 1
        assert base[position].index != neighbour[position].index

    def test_index_pair_explicit_position(self, rng):
        base, neighbour, position = adjacent_index_pair(20, 15, rng, position=3)
        assert position == 3
        assert base[3] != neighbour[3]

    def test_index_pair_needs_universe_two(self, rng):
        with pytest.raises(ValueError):
            adjacent_index_pair(1, 5, rng)

    def test_index_pair_needs_length_one(self, rng):
        with pytest.raises(ValueError):
            adjacent_index_pair(5, 0, rng)

    def test_ram_pair_is_adjacent(self, rng):
        base, neighbour, position = adjacent_ram_pair(20, 15, rng)
        assert base.hamming_distance(neighbour) == 1
        assert base[position].index != neighbour[position].index

    def test_ram_pair_flips_op_kind(self, rng):
        base, neighbour, position = adjacent_ram_pair(20, 15, rng)
        assert base[position].kind is not neighbour[position].kind


class TestPoissonInterarrivals:
    def test_count_and_positivity(self, rng):
        gaps = poisson_interarrivals(500, 4.0, rng)
        assert len(gaps) == 500
        assert all(gap > 0 for gap in gaps)

    def test_mean_matches_parameter(self, rng):
        gaps = poisson_interarrivals(5000, 8.0, rng)
        assert sum(gaps) / len(gaps) == pytest.approx(8.0, rel=0.1)

    def test_memoryless_spread(self, rng):
        # An exponential at mean m has ~37% of mass above m and a tail
        # well past 2m — a degenerate constant stream would fail both.
        gaps = poisson_interarrivals(2000, 10.0, rng)
        above = sum(1 for gap in gaps if gap > 10.0) / len(gaps)
        assert 0.30 < above < 0.45
        assert max(gaps) > 20.0

    def test_seeded_determinism(self):
        first = poisson_interarrivals(50, 3.0, SeededRandomSource(99))
        second = poisson_interarrivals(50, 3.0, SeededRandomSource(99))
        assert first == second

    def test_arrival_times_cumulative_and_increasing(self, rng):
        times = poisson_arrival_times(100, 2.0, rng, start_ms=7.0)
        assert len(times) == 100
        assert all(later > earlier for earlier, later in zip(times, times[1:]))
        assert times[0] > 7.0

    def test_empty_stream(self, rng):
        assert poisson_interarrivals(0, 1.0, rng) == []
        assert poisson_arrival_times(0, 1.0, rng) == []

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            poisson_interarrivals(-1, 1.0, rng)
        with pytest.raises(ValueError):
            poisson_interarrivals(5, 0.0, rng)
