"""Tests for repro.workloads.generators."""

import pytest

from repro.workloads.generators import (
    adjacent_index_pair,
    adjacent_ram_pair,
    hotspot_trace,
    read_write_trace,
    sequential_trace,
    uniform_trace,
    zipf_trace,
)
from repro.workloads.trace import OpKind


class TestUniformTrace:
    def test_length_and_range(self, rng):
        trace = uniform_trace(50, 200, rng)
        assert len(trace) == 200
        assert all(0 <= op.index < 50 for op in trace)
        assert trace.read_fraction() == 1.0

    def test_coarse_uniformity(self, rng):
        trace = uniform_trace(4, 4000, rng)
        counts = [0] * 4
        for op in trace:
            counts[op.index] += 1
        assert min(counts) > 700

    def test_rejects_bad_args(self, rng):
        with pytest.raises(ValueError):
            uniform_trace(0, 5, rng)
        with pytest.raises(ValueError):
            uniform_trace(5, -1, rng)


class TestSequentialTrace:
    def test_wraps_around(self):
        trace = sequential_trace(3, 7, start=1)
        assert trace.indices() == [1, 2, 0, 1, 2, 0, 1]


class TestZipfTrace:
    def test_skews_to_low_ranks(self, rng):
        trace = zipf_trace(100, 3000, rng, skew=1.2)
        head = sum(1 for op in trace if op.index < 10)
        assert head > len(trace) * 0.4

    def test_zero_skew_is_uniformish(self, rng):
        trace = zipf_trace(10, 5000, rng, skew=0.0)
        counts = [0] * 10
        for op in trace:
            counts[op.index] += 1
        assert min(counts) > 300

    def test_rejects_negative_skew(self, rng):
        with pytest.raises(ValueError):
            zipf_trace(10, 5, rng, skew=-0.5)


class TestHotspotTrace:
    def test_hot_keys_dominate(self, rng):
        trace = hotspot_trace(100, 3000, rng, hot_fraction=0.1, hot_weight=0.9)
        hot = sum(1 for op in trace if op.index < 10)
        assert hot > len(trace) * 0.8

    def test_full_hot_fraction(self, rng):
        trace = hotspot_trace(10, 100, rng, hot_fraction=1.0)
        assert all(0 <= op.index < 10 for op in trace)

    def test_rejects_bad_fraction(self, rng):
        with pytest.raises(ValueError):
            hotspot_trace(10, 5, rng, hot_fraction=0.0)
        with pytest.raises(ValueError):
            hotspot_trace(10, 5, rng, hot_weight=1.5)


class TestReadWriteTrace:
    def test_write_fraction_roughly_respected(self, rng):
        trace = read_write_trace(20, 2000, rng, write_fraction=0.3)
        writes = sum(1 for op in trace if op.kind is OpKind.WRITE)
        assert 450 < writes < 750

    def test_all_writes_have_values(self, rng):
        trace = read_write_trace(20, 100, rng, write_fraction=1.0)
        assert all(op.value is not None for op in trace)

    def test_write_values_distinct(self, rng):
        trace = read_write_trace(20, 100, rng, write_fraction=1.0)
        values = [op.value for op in trace]
        assert len(set(values)) == len(values)

    def test_rejects_bad_fraction(self, rng):
        with pytest.raises(ValueError):
            read_write_trace(10, 5, rng, write_fraction=-0.1)


class TestAdjacentPairs:
    def test_index_pair_is_adjacent(self, rng):
        base, neighbour, position = adjacent_index_pair(20, 15, rng)
        assert base.hamming_distance(neighbour) == 1
        assert base[position].index != neighbour[position].index

    def test_index_pair_explicit_position(self, rng):
        base, neighbour, position = adjacent_index_pair(20, 15, rng, position=3)
        assert position == 3
        assert base[3] != neighbour[3]

    def test_index_pair_needs_universe_two(self, rng):
        with pytest.raises(ValueError):
            adjacent_index_pair(1, 5, rng)

    def test_index_pair_needs_length_one(self, rng):
        with pytest.raises(ValueError):
            adjacent_index_pair(5, 0, rng)

    def test_ram_pair_is_adjacent(self, rng):
        base, neighbour, position = adjacent_ram_pair(20, 15, rng)
        assert base.hamming_distance(neighbour) == 1
        assert base[position].index != neighbour[position].index

    def test_ram_pair_flips_op_kind(self, rng):
        base, neighbour, position = adjacent_ram_pair(20, 15, rng)
        assert base[position].kind is not neighbour[position].kind
