"""The configurable straggler threshold in ``trace_summary`` (S4)."""

import pytest

from repro import serve
from repro.api import build
from repro.obs import (
    DEFAULT_STRAGGLER_THRESHOLD,
    Tracer,
    summary_to_text,
    trace_summary,
)


def _payload():
    # One round with legs at 1/1/1/5 ms: mean 2ms, straggler ratio 2.5.
    spans = [{
        "id": "1", "name": "round", "parent": None, "error": None,
        "wall_ms": 5.0, "labels": {},
    }]
    for i, wall in enumerate((1.0, 1.0, 1.0, 5.0)):
        spans.append({
            "id": f"1.{i + 1}", "name": "leg", "parent": "1",
            "error": None, "wall_ms": wall, "labels": {"shard": i},
        })
    return {"name": "t", "spans": spans}


class TestStragglerThreshold:
    def test_default_threshold_flags_the_skewed_round(self):
        summary = trace_summary(_payload())
        assert summary["straggler_threshold"] == DEFAULT_STRAGGLER_THRESHOLD
        assert summary["flagged_rounds"] == 1
        round_entry = summary["rounds"][0]
        assert round_entry["straggler_ratio"] == pytest.approx(2.5)
        assert round_entry["straggler_flagged"]

    def test_raising_the_threshold_unflags_it(self):
        summary = trace_summary(_payload(), straggler_threshold=3.0)
        assert summary["flagged_rounds"] == 0
        assert not summary["rounds"][0]["straggler_flagged"]

    def test_threshold_comparison_is_inclusive(self):
        summary = trace_summary(_payload(), straggler_threshold=2.5)
        assert summary["rounds"][0]["straggler_flagged"]

    def test_uniform_legs_are_never_flagged(self):
        payload = _payload()
        for span in payload["spans"][1:]:
            span["wall_ms"] = 2.0
        # Even at the permissive minimum: some leg is always the max,
        # but ratio 1.0 is only "flagged" if the threshold is 1.0.
        assert trace_summary(payload)["flagged_rounds"] == 0
        assert trace_summary(
            payload, straggler_threshold=1.0
        )["flagged_rounds"] == 1

    def test_single_leg_rounds_are_never_flagged(self):
        payload = _payload()
        payload["spans"] = payload["spans"][:2]
        summary = trace_summary(payload, straggler_threshold=1.0)
        assert summary["flagged_rounds"] == 0

    def test_threshold_below_one_raises(self):
        with pytest.raises(ValueError):
            trace_summary(_payload(), straggler_threshold=0.5)

    def test_text_rendering_still_works_with_custom_threshold(self):
        text = summary_to_text(
            trace_summary(_payload(), straggler_threshold=2.0)
        )
        assert "fan-out rounds" in text

    def test_serving_rounds_carry_the_flag(self):
        tracer = Tracer("serving")
        scheme = build("dp_ir", n=128, seed=11)
        serve(
            scheme, clients=4, requests_per_client=8, scheduler="batch",
            seed=11, tracer=tracer,
        )
        summary = trace_summary(tracer.export(), straggler_threshold=1.0)
        assert summary["rounds"], "serving must produce fan-out rounds"
        for entry in summary["rounds"]:
            assert "straggler_ratio" in entry
            assert "straggler_flagged" in entry
        # At ratio >= 1.0 every multi-leg round flags: the knob reaches
        # the serving path, not just synthetic payloads.
        multi = [e for e in summary["rounds"] if e["legs"] > 1]
        if multi:
            assert summary["flagged_rounds"] >= sum(
                1 for e in multi if e["straggler_flagged"]
            )
