"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestBoundsCommand:
    def test_prints_answer(self, capsys):
        assert main(["bounds", "--n", "1024", "--bandwidth", "3"]) == 0
        output = capsys.readouterr().out
        assert "Thm 3.4" in output
        assert "Theta(log n)" in output

    def test_custom_parameters_flow_through(self, capsys):
        main(["bounds", "--n", "4096", "--bandwidth", "8",
              "--alpha", "0.1", "--client", "16"])
        output = capsys.readouterr().out
        assert "n = 4096" in output
        assert "8.0 blocks/query" in output


class TestDemoCommand:
    def test_runs(self, capsys):
        assert main(["demo"]) == 0
        output = capsys.readouterr().out
        assert "DP-RAM" in output
        assert "DP-IR" in output
        assert "DP-KVS" in output


class TestRunCommand:
    def test_ram_smoke(self, capsys):
        assert main(["run", "--scheme", "dp_ram", "--workload", "uniform",
                     "--ops", "50", "--n", "64", "--seed", "7"]) == 0
        output = capsys.readouterr().out
        assert "dp_ram" in output
        assert "blocks / operation" in output
        assert "mismatches" in output

    def test_ir_with_network_backend(self, capsys):
        assert main(["run", "--scheme", "dp_ir", "--workload", "zipf",
                     "--ops", "20", "--n", "64", "--seed", "7",
                     "--backend", "network", "--network", "lan"]) == 0
        output = capsys.readouterr().out
        assert "simulated network ms" in output
        # Network-backed single-client runs report latency tails too.
        assert "latency p50 ms" in output
        assert "latency p99 ms" in output

    def test_memory_backend_has_no_latency_tails(self, capsys):
        assert main(["run", "--scheme", "dp_ram", "--workload", "uniform",
                     "--ops", "20", "--n", "64", "--seed", "7"]) == 0
        assert "latency p50" not in capsys.readouterr().out

    def test_kvs_workload(self, capsys):
        assert main(["run", "--scheme", "dp_kvs", "--workload", "ycsb-c",
                     "--ops", "40", "--n", "64", "--seed", "7"]) == 0
        output = capsys.readouterr().out
        assert "ycsb-C" in output

    def test_kvs_accepts_index_workload_alias(self, capsys):
        assert main(["run", "--scheme", "plaintext_kvs",
                     "--workload", "uniform", "--ops", "30", "--n", "64",
                     "--seed", "7"]) == 0
        output = capsys.readouterr().out
        assert "insert-lookup" in output

    def test_ir_rejects_write_workload(self, capsys):
        assert main(["run", "--scheme", "dp_ir", "--workload", "readwrite",
                     "--ops", "10", "--seed", "7"]) == 1

    def test_non_kvs_rejects_kv_workload(self, capsys):
        assert main(["run", "--scheme", "dp_ram", "--workload", "ycsb-a",
                     "--ops", "10", "--seed", "7"]) == 1

    def test_list_schemes(self, capsys):
        assert main(["run", "--list"]) == 0
        output = capsys.readouterr().out
        assert "dp_ram" in output
        assert "kvs" in output

    def test_unknown_scheme_reports_catalogue(self, capsys):
        assert main(["run", "--scheme", "warp_drive"]) == 2
        err = capsys.readouterr().err
        assert "registered schemes" in err
        assert "dp_ram" in err

    def test_unknown_workload_reported_cleanly(self, capsys):
        assert main(["run", "--scheme", "dp_ir", "--workload", "nonsense",
                     "--ops", "5", "--seed", "1"]) == 2
        assert "unknown index workload" in capsys.readouterr().err

    def test_read_only_scheme_rejects_readwrite(self, capsys):
        assert main(["run", "--scheme", "read_only_dp_ram",
                     "--workload", "readwrite", "--ops", "5",
                     "--seed", "1"]) == 1
        assert "read-only" in capsys.readouterr().err


class TestServeCommand:
    def test_smoke(self, capsys):
        assert main(["serve", "--scheme", "dp_ram", "--clients", "3",
                     "--requests", "4", "--n", "64", "--seed", "7"]) == 0
        output = capsys.readouterr().out
        assert "throughput req/s" in output
        assert "latency p95 ms" in output
        assert "tenant-0" in output

    def test_hyphenated_scheme_alias(self, capsys):
        assert main(["serve", "--scheme", "batch-dpir", "--clients", "2",
                     "--requests", "3", "--n", "64", "--seed", "7"]) == 0
        assert "batch_dp_ir" in capsys.readouterr().out

    def test_json_output(self, capsys):
        import json

        assert main(["serve", "--scheme", "dp_ram", "--clients", "2",
                     "--requests", "3", "--n", "64", "--seed", "7",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clients"] == 2
        assert payload["completed"] == 6

    def test_unknown_scheme_reports_catalogue(self, capsys):
        assert main(["serve", "--scheme", "warp_drive"]) == 2
        assert "registered schemes" in capsys.readouterr().err

    def test_ir_rejects_write_workload(self, capsys):
        assert main(["serve", "--scheme", "dp_ir", "--workload",
                     "readwrite", "--clients", "2", "--requests", "3",
                     "--seed", "1"]) == 2
        assert "read-only" in capsys.readouterr().err

    def test_parallel_executor_on_cluster_scheme(self, capsys):
        assert main(["serve", "--scheme", "cluster-dpir", "--clients", "2",
                     "--requests", "4", "--n", "128", "--seed", "7",
                     "--executor", "parallel"]) == 0
        output = capsys.readouterr().out
        assert "wall-clock ms" in output
        assert "overlap speedup" in output

    def test_executor_rejected_for_fanout_free_scheme(self, capsys):
        assert main(["serve", "--scheme", "dp_ir", "--clients", "2",
                     "--requests", "4", "--n", "64", "--seed", "7",
                     "--executor", "parallel"]) == 2
        assert "no fan-out" in capsys.readouterr().err


class TestClusterCommand:
    def test_smoke(self, capsys):
        assert main(["cluster", "--shards", "2", "--replicas", "1",
                     "--n", "64", "--requests", "16", "--seed", "7"]) == 0
        output = capsys.readouterr().out
        assert "shard groups" in output
        assert "per-query epsilon" in output

    def test_unknown_scheme_exits_nonzero_with_catalogue(self, capsys):
        assert main(["cluster", "--scheme", "warp_drive"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "registered schemes" in err

    def test_ram_scheme_rejected_cleanly(self, capsys):
        assert main(["cluster", "--scheme", "dp_ram", "--n", "64",
                     "--requests", "8", "--seed", "1"]) == 2
        assert "IR or KVS" in capsys.readouterr().err

    def test_list_shows_cluster_capable_bases(self, capsys):
        assert main(["cluster", "--list"]) == 0
        output = capsys.readouterr().out
        assert "dp_ir" in output
        assert "dp_ram" not in output.split()

    def test_parallel_executor_json_reports_overlap(self, capsys):
        import json

        assert main(["cluster", "--shards", "4", "--replicas", "1",
                     "--n", "128", "--requests", "32", "--seed", "7",
                     "--pad-size", "16", "--executor", "parallel",
                     "--batch", "8", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["executor"] == "parallel"
        assert payload["batch"] == 8
        assert payload["wall_clock_ms"] < payload["serial_ms"]
        assert payload["overlap_speedup"] > 1.0
        assert payload["mismatches"] == 0

    def test_serial_and_parallel_runs_agree_on_everything_but_time(
        self, capsys
    ):
        import json

        payloads = {}
        for executor in ("serial", "parallel"):
            assert main(["cluster", "--shards", "4", "--replicas", "1",
                         "--n", "128", "--requests", "32", "--seed", "7",
                         "--pad-size", "16", "--executor", executor,
                         "--batch", "8", "--json"]) == 0
            payloads[executor] = json.loads(capsys.readouterr().out)
        serial, parallel = payloads["serial"], payloads["parallel"]
        assert serial["ops_per_request"] == parallel["ops_per_request"]
        assert serial["budget"] == parallel["budget"]
        assert serial["serial_ms"] == pytest.approx(parallel["serial_ms"])
        assert parallel["wall_clock_ms"] < serial["wall_clock_ms"]


class TestExperimentsCommand:
    def test_only_filter(self, capsys):
        assert main(["experiments", "--only", "E1"]) == 0
        output = capsys.readouterr().out
        assert "E1:" in output
        assert "E8:" not in output

    def test_only_filter_suffixed_id(self, capsys):
        assert main(["experiments", "--only", "E11B"]) == 0
        output = capsys.readouterr().out
        assert "E11b" in output

    def test_markdown_mode(self, capsys):
        assert main(["experiments", "--only", "E5", "--markdown"]) == 0
        output = capsys.readouterr().out
        assert output.startswith("### E5")

    def test_unknown_id_fails(self, capsys):
        assert main(["experiments", "--only", "E99"]) == 1

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
