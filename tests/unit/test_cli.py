"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestBoundsCommand:
    def test_prints_answer(self, capsys):
        assert main(["bounds", "--n", "1024", "--bandwidth", "3"]) == 0
        output = capsys.readouterr().out
        assert "Thm 3.4" in output
        assert "Theta(log n)" in output

    def test_custom_parameters_flow_through(self, capsys):
        main(["bounds", "--n", "4096", "--bandwidth", "8",
              "--alpha", "0.1", "--client", "16"])
        output = capsys.readouterr().out
        assert "n = 4096" in output
        assert "8.0 blocks/query" in output


class TestDemoCommand:
    def test_runs(self, capsys):
        assert main(["demo"]) == 0
        output = capsys.readouterr().out
        assert "DP-RAM" in output
        assert "DP-IR" in output
        assert "DP-KVS" in output


class TestExperimentsCommand:
    def test_only_filter(self, capsys):
        assert main(["experiments", "--only", "E1"]) == 0
        output = capsys.readouterr().out
        assert "E1:" in output
        assert "E8:" not in output

    def test_only_filter_suffixed_id(self, capsys):
        assert main(["experiments", "--only", "E11B"]) == 0
        output = capsys.readouterr().out
        assert "E11b" in output

    def test_markdown_mode(self, capsys):
        assert main(["experiments", "--only", "E5", "--markdown"]) == 0
        output = capsys.readouterr().out
        assert output.startswith("### E5")

    def test_unknown_id_fails(self, capsys):
        assert main(["experiments", "--only", "E99"]) == 1

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
