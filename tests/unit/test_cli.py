"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestBoundsCommand:
    def test_prints_answer(self, capsys):
        assert main(["bounds", "--n", "1024", "--bandwidth", "3"]) == 0
        output = capsys.readouterr().out
        assert "Thm 3.4" in output
        assert "Theta(log n)" in output

    def test_custom_parameters_flow_through(self, capsys):
        main(["bounds", "--n", "4096", "--bandwidth", "8",
              "--alpha", "0.1", "--client", "16"])
        output = capsys.readouterr().out
        assert "n = 4096" in output
        assert "8.0 blocks/query" in output


class TestDemoCommand:
    def test_runs(self, capsys):
        assert main(["demo"]) == 0
        output = capsys.readouterr().out
        assert "DP-RAM" in output
        assert "DP-IR" in output
        assert "DP-KVS" in output


class TestRunCommand:
    def test_ram_smoke(self, capsys):
        assert main(["run", "--scheme", "dp_ram", "--workload", "uniform",
                     "--ops", "50", "--n", "64", "--seed", "7"]) == 0
        output = capsys.readouterr().out
        assert "dp_ram" in output
        assert "blocks / operation" in output
        assert "mismatches" in output

    def test_ir_with_network_backend(self, capsys):
        assert main(["run", "--scheme", "dp_ir", "--workload", "zipf",
                     "--ops", "20", "--n", "64", "--seed", "7",
                     "--backend", "network", "--network", "lan"]) == 0
        output = capsys.readouterr().out
        assert "simulated network ms" in output
        # Network-backed single-client runs report latency tails too.
        assert "latency p50 ms" in output
        assert "latency p99 ms" in output

    def test_memory_backend_has_no_latency_tails(self, capsys):
        assert main(["run", "--scheme", "dp_ram", "--workload", "uniform",
                     "--ops", "20", "--n", "64", "--seed", "7"]) == 0
        assert "latency p50" not in capsys.readouterr().out

    def test_kvs_workload(self, capsys):
        assert main(["run", "--scheme", "dp_kvs", "--workload", "ycsb-c",
                     "--ops", "40", "--n", "64", "--seed", "7"]) == 0
        output = capsys.readouterr().out
        assert "ycsb-C" in output

    def test_kvs_accepts_index_workload_alias(self, capsys):
        assert main(["run", "--scheme", "plaintext_kvs",
                     "--workload", "uniform", "--ops", "30", "--n", "64",
                     "--seed", "7"]) == 0
        output = capsys.readouterr().out
        assert "insert-lookup" in output

    def test_ir_rejects_write_workload(self, capsys):
        assert main(["run", "--scheme", "dp_ir", "--workload", "readwrite",
                     "--ops", "10", "--seed", "7"]) == 1

    def test_non_kvs_rejects_kv_workload(self, capsys):
        assert main(["run", "--scheme", "dp_ram", "--workload", "ycsb-a",
                     "--ops", "10", "--seed", "7"]) == 1

    def test_list_schemes(self, capsys):
        assert main(["run", "--list"]) == 0
        output = capsys.readouterr().out
        assert "dp_ram" in output
        assert "kvs" in output

    def test_unknown_scheme_reports_catalogue(self, capsys):
        assert main(["run", "--scheme", "warp_drive"]) == 2
        err = capsys.readouterr().err
        assert "registered schemes" in err
        assert "dp_ram" in err

    def test_unknown_workload_reported_cleanly(self, capsys):
        assert main(["run", "--scheme", "dp_ir", "--workload", "nonsense",
                     "--ops", "5", "--seed", "1"]) == 2
        assert "unknown index workload" in capsys.readouterr().err

    def test_read_only_scheme_rejects_readwrite(self, capsys):
        assert main(["run", "--scheme", "read_only_dp_ram",
                     "--workload", "readwrite", "--ops", "5",
                     "--seed", "1"]) == 1
        assert "read-only" in capsys.readouterr().err


class TestServeCommand:
    def test_smoke(self, capsys):
        assert main(["serve", "--scheme", "dp_ram", "--clients", "3",
                     "--requests", "4", "--n", "64", "--seed", "7"]) == 0
        output = capsys.readouterr().out
        assert "throughput req/s" in output
        assert "latency p95 ms" in output
        assert "tenant-0" in output

    def test_hyphenated_scheme_alias(self, capsys):
        assert main(["serve", "--scheme", "batch-dpir", "--clients", "2",
                     "--requests", "3", "--n", "64", "--seed", "7"]) == 0
        assert "batch_dp_ir" in capsys.readouterr().out

    def test_json_output(self, capsys):
        import json

        assert main(["serve", "--scheme", "dp_ram", "--clients", "2",
                     "--requests", "3", "--n", "64", "--seed", "7",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clients"] == 2
        assert payload["completed"] == 6

    def test_unknown_scheme_reports_catalogue(self, capsys):
        assert main(["serve", "--scheme", "warp_drive"]) == 2
        assert "registered schemes" in capsys.readouterr().err

    def test_ir_rejects_write_workload(self, capsys):
        assert main(["serve", "--scheme", "dp_ir", "--workload",
                     "readwrite", "--clients", "2", "--requests", "3",
                     "--seed", "1"]) == 2
        assert "read-only" in capsys.readouterr().err

    def test_parallel_executor_on_cluster_scheme(self, capsys):
        assert main(["serve", "--scheme", "cluster-dpir", "--clients", "2",
                     "--requests", "4", "--n", "128", "--seed", "7",
                     "--executor", "parallel"]) == 0
        output = capsys.readouterr().out
        assert "wall-clock ms" in output
        assert "overlap speedup" in output

    def test_executor_rejected_for_fanout_free_scheme(self, capsys):
        assert main(["serve", "--scheme", "dp_ir", "--clients", "2",
                     "--requests", "4", "--n", "64", "--seed", "7",
                     "--executor", "parallel"]) == 2
        assert "no fan-out" in capsys.readouterr().err


class TestClusterCommand:
    def test_smoke(self, capsys):
        assert main(["cluster", "--shards", "2", "--replicas", "1",
                     "--n", "64", "--requests", "16", "--seed", "7"]) == 0
        output = capsys.readouterr().out
        assert "shard groups" in output
        assert "per-query epsilon" in output

    def test_unknown_scheme_exits_nonzero_with_catalogue(self, capsys):
        assert main(["cluster", "--scheme", "warp_drive"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "registered schemes" in err

    def test_ram_scheme_rejected_cleanly(self, capsys):
        assert main(["cluster", "--scheme", "dp_ram", "--n", "64",
                     "--requests", "8", "--seed", "1"]) == 2
        assert "IR or KVS" in capsys.readouterr().err

    def test_list_shows_cluster_capable_bases(self, capsys):
        assert main(["cluster", "--list"]) == 0
        output = capsys.readouterr().out
        assert "dp_ir" in output
        assert "dp_ram" not in output.split()

    def test_parallel_executor_json_reports_overlap(self, capsys):
        import json

        assert main(["cluster", "--shards", "4", "--replicas", "1",
                     "--n", "128", "--requests", "32", "--seed", "7",
                     "--pad-size", "16", "--executor", "parallel",
                     "--batch", "8", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["executor"] == "parallel"
        assert payload["batch"] == 8
        assert payload["wall_clock_ms"] < payload["serial_ms"]
        assert payload["overlap_speedup"] > 1.0
        assert payload["mismatches"] == 0

    def test_serial_and_parallel_runs_agree_on_everything_but_time(
        self, capsys
    ):
        import json

        payloads = {}
        for executor in ("serial", "parallel"):
            assert main(["cluster", "--shards", "4", "--replicas", "1",
                         "--n", "128", "--requests", "32", "--seed", "7",
                         "--pad-size", "16", "--executor", executor,
                         "--batch", "8", "--json"]) == 0
            payloads[executor] = json.loads(capsys.readouterr().out)
        serial, parallel = payloads["serial"], payloads["parallel"]
        assert serial["ops_per_request"] == parallel["ops_per_request"]
        assert serial["budget"] == parallel["budget"]
        assert serial["serial_ms"] == pytest.approx(parallel["serial_ms"])
        assert parallel["wall_clock_ms"] < serial["wall_clock_ms"]


class TestExperimentsCommand:
    def test_only_filter(self, capsys):
        assert main(["experiments", "--only", "E1"]) == 0
        output = capsys.readouterr().out
        assert "E1:" in output
        assert "E8:" not in output

    def test_only_filter_suffixed_id(self, capsys):
        assert main(["experiments", "--only", "E11B"]) == 0
        output = capsys.readouterr().out
        assert "E11b" in output

    def test_markdown_mode(self, capsys):
        assert main(["experiments", "--only", "E5", "--markdown"]) == 0
        output = capsys.readouterr().out
        assert output.startswith("### E5")

    def test_unknown_id_fails(self, capsys):
        assert main(["experiments", "--only", "E99"]) == 1

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


def _trace_payload():
    return {
        "name": "cluster",
        "spans": [
            {"id": "1", "name": "round", "parent": None, "error": None,
             "sim_start_ms": 0.0, "sim_end_ms": 5.0, "wall_ms": 1.0,
             "labels": {"batch": 2}},
            {"id": "1.1", "name": "leg", "parent": "1", "error": None,
             "sim_start_ms": 0.0, "sim_end_ms": 2.0, "wall_ms": 0.5,
             "labels": {"shard": 0}},
            {"id": "1.2", "name": "leg", "parent": "1", "error": None,
             "sim_start_ms": 0.0, "sim_end_ms": 5.0, "wall_ms": 0.9,
             "labels": {"shard": 1}},
        ],
    }


def _write_trace(path, payload):
    import json

    path.write_text(json.dumps(payload), encoding="utf-8")
    return str(path)


class TestTraceDiffCommand:
    def test_identical_traces_exit_zero(self, tmp_path, capsys):
        a = _write_trace(tmp_path / "a.json", _trace_payload())
        b = _write_trace(tmp_path / "b.json", _trace_payload())
        assert main(["trace-diff", a, b]) == 0
        assert "structurally identical" in capsys.readouterr().out

    def test_structural_change_exits_one(self, tmp_path, capsys):
        payload = _trace_payload()
        payload["spans"][2]["labels"]["shard"] = 9
        a = _write_trace(tmp_path / "a.json", _trace_payload())
        b = _write_trace(tmp_path / "b.json", payload)
        assert main(["trace-diff", a, b]) == 1
        output = capsys.readouterr().out
        assert "traces differ" in output
        assert "shard" in output

    def test_json_mode_emits_the_diff_payload(self, tmp_path, capsys):
        import json

        payload = _trace_payload()
        payload["spans"].pop()
        a = _write_trace(tmp_path / "a.json", _trace_payload())
        b = _write_trace(tmp_path / "b.json", payload)
        assert main(["trace-diff", a, b, "--json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["identical"] is False
        assert data["spans_a"] == 3 and data["spans_b"] == 2

    def test_wall_clock_drift_is_not_a_regression(self, tmp_path, capsys):
        payload = _trace_payload()
        for span in payload["spans"]:
            span["wall_ms"] *= 50
        a = _write_trace(tmp_path / "a.json", _trace_payload())
        b = _write_trace(tmp_path / "b.json", payload)
        assert main(["trace-diff", a, b]) == 0
        capsys.readouterr()

    def test_missing_file_exits_two(self, tmp_path, capsys):
        a = _write_trace(tmp_path / "a.json", _trace_payload())
        assert main(["trace-diff", a, str(tmp_path / "nope.json")]) == 2
        assert "error" in capsys.readouterr().err

    def test_unparseable_file_exits_two(self, tmp_path, capsys):
        a = _write_trace(tmp_path / "a.json", _trace_payload())
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        assert main(["trace-diff", a, str(bad)]) == 2
        assert "error" in capsys.readouterr().err

    def test_negative_tolerance_exits_two(self, tmp_path, capsys):
        a = _write_trace(tmp_path / "a.json", _trace_payload())
        assert main(["trace-diff", a, a, "--tolerance", "-1"]) == 2
        capsys.readouterr()


class TestTraceSummaryCommand:
    def test_summary_renders(self, tmp_path, capsys):
        a = _write_trace(tmp_path / "a.json", _trace_payload())
        assert main(["trace-summary", a]) == 0
        assert "fan-out rounds" in capsys.readouterr().out

    def test_profile_mode(self, tmp_path, capsys):
        a = _write_trace(tmp_path / "a.json", _trace_payload())
        assert main(["trace-summary", a, "--profile"]) == 0
        output = capsys.readouterr().out
        assert "trace profile" in output
        assert "shard=1" in output

    def test_straggler_threshold_flag_changes_flagging(
        self, tmp_path, capsys
    ):
        import json

        a = _write_trace(tmp_path / "a.json", _trace_payload())
        assert main(["trace-summary", a, "--json",
                     "--straggler-threshold", "1.0"]) == 0
        strict = json.loads(capsys.readouterr().out)
        assert main(["trace-summary", a, "--json",
                     "--straggler-threshold", "2.0"]) == 0
        lax = json.loads(capsys.readouterr().out)
        assert strict["straggler_threshold"] == 1.0
        assert strict["flagged_rounds"] >= lax["flagged_rounds"]

    def test_threshold_below_one_exits_two(self, tmp_path, capsys):
        a = _write_trace(tmp_path / "a.json", _trace_payload())
        assert main(["trace-summary", a,
                     "--straggler-threshold", "0.5"]) == 2
        assert "error" in capsys.readouterr().err

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["trace-summary", str(tmp_path / "nope.json")]) == 2
        capsys.readouterr()


class TestAuditSloCommand:
    ARGS = ["audit", "--shards", "2", "--requests", "16", "--n", "128",
            "--seed", "7"]

    def test_slo_requires_a_budget(self, capsys):
        assert main(self.ARGS + ["--slo"]) == 2
        assert "--slo-budget" in capsys.readouterr().err

    def test_healthy_slo_exits_zero(self, capsys):
        assert main(self.ARGS + ["--slo", "--slo-budget", "100000"]) == 0
        assert "SLO healthy" in capsys.readouterr().out

    def test_burn_rate_breach_exits_one(self, capsys):
        assert main(self.ARGS + ["--slo", "--slo-budget", "40",
                                 "--slo-horizon", "100000"]) == 1
        captured = capsys.readouterr()
        assert "SLO breached" in captured.out
        assert "slo burn-rate alert" in captured.err

    def test_slo_budget_defaults_to_cap(self, capsys):
        assert main(self.ARGS + ["--slo", "--cap", "100000"]) == 0
        assert "SLO healthy" in capsys.readouterr().out

    def test_json_mode_carries_the_slo_payload(self, capsys):
        import json

        assert main(self.ARGS + ["--slo", "--slo-budget", "100000",
                                 "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["slo"]["breached"] is False
        assert payload["slo"]["policy"]["budget"]["float"] == 100000.0


class TestMonitorFlag:
    def test_serve_monitor_reports_leakage(self, capsys):
        assert main(["serve", "--scheme", "dp_ir", "--clients", "4",
                     "--requests", "8", "--n", "128", "--seed", "7",
                     "--monitor"]) == 0
        output = capsys.readouterr().out
        assert "leakage: membership" in output

    def test_serve_monitor_json_carries_reports(self, capsys):
        import json

        assert main(["serve", "--scheme", "dp_ir", "--clients", "4",
                     "--requests", "8", "--n", "128", "--seed", "7",
                     "--monitor", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["leakage_tripped"] is False
        attacks = {entry["attack"] for entry in payload["leakage"]}
        assert "membership" in attacks

    def test_cluster_monitor_reports_both_attacks(self, capsys):
        import json

        assert main(["cluster", "--shards", "2", "--replicas", "1",
                     "--n", "256", "--requests", "32", "--seed", "7",
                     "--monitor", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["leakage_tripped"] is False
        attacks = {entry["attack"] for entry in payload["leakage"]}
        assert attacks == {"membership", "routing"}

    def test_unmonitored_reports_have_no_leakage_rows(self, capsys):
        assert main(["serve", "--scheme", "dp_ir", "--clients", "4",
                     "--requests", "8", "--n", "128", "--seed", "7"]) == 0
        assert "leakage" not in capsys.readouterr().out
