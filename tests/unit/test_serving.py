"""Tests for the repro.serving subsystem."""

import pytest

from repro.serving import (
    BatchScheduler,
    ClientSession,
    ClosedLoopLoad,
    FIFOScheduler,
    OpenLoopLoad,
    Request,
    ServingSimulator,
    resolve_scheme_name,
    serve,
)
from repro.storage.network import LAN
from repro.workloads.trace import Operation


def _request(sequence: int, arrival_ms: float = 0.0) -> Request:
    return Request(
        tenant="t", operation=Operation.read(0), arrival_ms=arrival_ms,
        sequence=sequence, session_index=0, op_index=sequence,
    )


class TestOpenLoopLoad:
    def test_emits_every_arrival_up_front(self, rng):
        plan = OpenLoopLoad(rate_rps=100.0).plan(10, rng)
        arrivals = plan.initial_arrivals()
        assert [index for index, _ in arrivals] == list(range(10))
        times = [time for _, time in arrivals]
        assert times == sorted(times)
        assert all(time > 0 for time in times)

    def test_no_response_driven_followups(self, rng):
        plan = OpenLoopLoad(rate_rps=100.0).plan(3, rng)
        assert plan.after_completion(0, 50.0) is None

    def test_rate_sets_mean_spacing(self, rng):
        plan = OpenLoopLoad(rate_rps=200.0).plan(2000, rng)
        last_index, last_time = plan.initial_arrivals()[-1]
        # 2000 arrivals at 200/s ~ 10 seconds.
        assert last_time / (last_index + 1) == pytest.approx(5.0, rel=0.15)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            OpenLoopLoad(rate_rps=0.0)


class TestClosedLoopLoad:
    def test_only_first_arrival_known_up_front(self, rng):
        plan = ClosedLoopLoad(think_ms=5.0).plan(4, rng)
        arrivals = plan.initial_arrivals()
        assert len(arrivals) == 1
        assert arrivals[0][0] == 0

    def test_followups_chain_from_completions(self, rng):
        plan = ClosedLoopLoad(think_ms=5.0).plan(3, rng)
        follow = plan.after_completion(0, 100.0)
        assert follow is not None
        index, at_ms = follow
        assert index == 1
        assert at_ms > 100.0
        assert plan.after_completion(2, 500.0) is None

    def test_rejects_bad_think(self):
        with pytest.raises(ValueError):
            ClosedLoopLoad(think_ms=0.0)


class TestFIFOScheduler:
    def test_singleton_batches_in_arrival_order(self):
        scheduler = FIFOScheduler()
        for sequence in range(3):
            assert scheduler.enqueue(_request(sequence), 0.0) is None
        assert scheduler.pending() == 3
        order = [scheduler.next_batch(0.0)[0].sequence for _ in range(3)]
        assert order == [0, 1, 2]
        assert scheduler.next_batch(0.0) == []


class TestBatchScheduler:
    def test_window_holds_then_releases(self):
        scheduler = BatchScheduler(window_ms=5.0, max_batch=16)
        wake = scheduler.enqueue(_request(0, 0.0), 0.0)
        assert wake == 5.0
        assert scheduler.enqueue(_request(1, 1.0), 1.0) is None
        # Before the window closes nothing dispatches...
        assert scheduler.next_batch(3.0) == []
        # ...at the deadline the whole group goes out together.
        batch = scheduler.next_batch(5.0)
        assert [request.sequence for request in batch] == [0, 1]

    def test_full_batch_dispatches_early(self):
        scheduler = BatchScheduler(window_ms=100.0, max_batch=2)
        scheduler.enqueue(_request(0), 0.0)
        scheduler.enqueue(_request(1), 0.0)
        scheduler.enqueue(_request(2), 0.0)
        assert len(scheduler.next_batch(0.0)) == 2
        # The remainder already waited its window: next idle moment wins.
        assert [r.sequence for r in scheduler.next_batch(0.1)] == [2]

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchScheduler(window_ms=-1.0)
        with pytest.raises(ValueError):
            BatchScheduler(max_batch=0)


class TestServingSimulator:
    def test_deterministic_replay(self):
        first = serve("dp_ram", clients=3, requests_per_client=5, n=64,
                      seed=42, workload="readwrite")
        second = serve("dp_ram", clients=3, requests_per_client=5, n=64,
                       seed=42, workload="readwrite")
        assert first.to_dict() == second.to_dict()

    def test_all_requests_complete_and_are_attributed(self):
        report = serve("dp_ram", clients=4, requests_per_client=6, n=64,
                       seed=9)
        assert report.requests == 24
        assert report.completed == 24
        assert [t.requests for t in report.tenants] == [6, 6, 6, 6]
        assert sum(t.completed for t in report.tenants) == 24
        assert sum(t.server_ops for t in report.tenants) == pytest.approx(
            report.server_operations
        )

    def test_closed_loop_bounds_queue_depth(self):
        report = serve("dp_ram", clients=3, requests_per_client=4, n=64,
                       seed=5, load="closed", think_ms=2.0)
        # One outstanding request per session: the queue can never hold
        # more than the session count.
        assert report.max_queue_depth <= 3

    def test_ir_rejects_write_operations(self, rng):
        import repro

        scheme = repro.build("dp_ir", n=32, seed=1)
        session = ClientSession(
            "t0",
            [Operation.write(1, b"x" * 64)],
            OpenLoopLoad(100.0).plan(1, rng),
        )
        simulator = ServingSimulator(
            scheme, [session], FIFOScheduler(), network=LAN
        )
        with pytest.raises(ValueError):
            simulator.run()

    def test_duplicate_tenants_rejected(self, rng):
        import repro

        scheme = repro.build("dp_ram", n=32, seed=1)
        sessions = [
            ClientSession("same", [Operation.read(0)],
                          OpenLoopLoad(10.0).plan(1, rng.spawn(str(i))))
            for i in range(2)
        ]
        with pytest.raises(ValueError):
            ServingSimulator(scheme, sessions, FIFOScheduler())

    def test_kvs_scheme_serves(self):
        report = serve("plaintext_kvs", clients=2, requests_per_client=6,
                       n=64, seed=3)
        assert report.completed == 12
        assert report.errors == 0
        assert report.server_operations > 0

    def test_latency_percentiles_ordered(self):
        report = serve("dp_ir", clients=4, requests_per_client=8, n=64,
                       seed=2)
        latency = report.latency
        assert latency.p50_ms <= latency.p95_ms <= latency.p99_ms
        assert latency.p99_ms <= latency.max_ms
        assert report.throughput_rps > 0


class TestServeHelper:
    def test_scheme_alias_resolution(self):
        assert resolve_scheme_name("batch-dpir") == "batch_dp_ir"
        assert resolve_scheme_name("DPIR") == "dp_ir"
        assert resolve_scheme_name("dp_ram") == "dp_ram"

    def test_accepts_prebuilt_instance(self):
        import repro

        scheme = repro.build("dp_ram", n=32, seed=4)
        report = serve(scheme, clients=2, requests_per_client=3, seed=4)
        assert report.scheme == "DPRAM"
        assert report.completed == 6

    def test_instance_rejects_builder_kwargs(self):
        import repro

        scheme = repro.build("dp_ram", n=32, seed=4)
        with pytest.raises(ValueError):
            serve(scheme, clients=1, requests_per_client=1, epsilon=3.0)

    def test_unknown_scheduler_and_load(self):
        with pytest.raises(ValueError):
            serve("dp_ram", clients=1, requests_per_client=1, seed=1,
                  scheduler="lifo")
        with pytest.raises(ValueError):
            serve("dp_ram", clients=1, requests_per_client=1, seed=1,
                  load="bursty")

    def test_validates_counts(self):
        with pytest.raises(ValueError):
            serve("dp_ram", clients=0, seed=1)
        with pytest.raises(ValueError):
            serve("dp_ram", clients=1, requests_per_client=0, seed=1)

    def test_ir_readwrite_workload_rejected(self):
        with pytest.raises(ValueError):
            serve("dp_ir", clients=1, requests_per_client=2, seed=1,
                  workload="readwrite")

    def test_read_only_ram_rejects_readwrite_before_running(self):
        with pytest.raises(ValueError, match="read-only"):
            serve("read_only_dp_ram", clients=1, requests_per_client=2,
                  seed=1, n=32, workload="readwrite")

    def test_unknown_kvs_workload_rejected(self):
        with pytest.raises(ValueError, match="zpif"):
            serve("dp_kvs", clients=1, requests_per_client=2, seed=1,
                  n=32, workload="zpif")

    def test_kv_workload_needs_kvs_scheme(self):
        with pytest.raises(ValueError, match="KVS"):
            serve("dp_ram", clients=1, requests_per_client=2, seed=1,
                  n=32, workload="ycsb-a")

    def test_network_backend_build_uses_served_link(self):
        # backend="network" builds link-charging backends; they must be
        # priced by the link serve() reports, not the builder's WAN
        # default (which would make 'lan' runs silently WAN-slow).
        common = dict(clients=2, requests_per_client=3, n=32, seed=1,
                      backend="network")
        lan = serve("dp_ir", network="lan", **common)
        wan = serve("dp_ir", network="wan", **common)
        assert lan.network == "lan"
        # WAN RTT is 80x LAN's, so a mislabelled run is unmistakable.
        assert lan.latency.p50_ms < wan.latency.p50_ms / 10

    def test_fairness_index_in_range(self):
        report = serve("dp_ram", clients=4, requests_per_client=5, n=64,
                       seed=6)
        assert 0.25 <= report.fairness_index <= 1.0
