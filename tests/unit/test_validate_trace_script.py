"""The schema validator CI runs over ``--trace``/``--metrics`` exports."""

import importlib.util
import json
import pathlib

import pytest

from repro import SeededRandomSource
from repro.core.dp_ir import DPIR
from repro.obs import MetricsRegistry, Tracer, collect_scheme_metrics
from repro.storage.blocks import integer_database

REPO = pathlib.Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def script():
    spec = importlib.util.spec_from_file_location(
        "validate_trace", REPO / "scripts" / "validate_trace.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _real_metrics_payload():
    scheme = DPIR(
        integer_database(64), pad_size=8, alpha=0.1,
        rng=SeededRandomSource(7),
    )
    for index in range(8):
        scheme.query(index)
    registry = MetricsRegistry()
    collect_scheme_metrics(scheme, registry)
    registry.histogram("lat_ms").observe(2.5)
    return registry.to_json()


class TestValidateMetrics:
    def test_real_export_is_valid(self, script):
        assert script.validate_metrics(_real_metrics_payload()) == []

    def test_bad_version_flagged(self, script):
        payload = _real_metrics_payload()
        payload["version"] = 2
        assert any(
            "version" in p for p in script.validate_metrics(payload)
        )

    def test_bad_name_type_and_labels_flagged(self, script):
        payload = {
            "version": 1,
            "metrics": [
                {"name": "bad name!", "type": "counter",
                 "labels": {}, "value": 1},
                {"name": "ok_total", "type": "timer",
                 "labels": {}, "value": 1},
                {"name": "ok_total", "type": "counter",
                 "labels": {"shard": 3}, "value": 1},
                {"name": "ok_total", "type": "counter",
                 "labels": {}, "value": "three"},
            ],
        }
        problems = script.validate_metrics(payload)
        assert len(problems) == 4

    def test_histogram_needs_count_and_sum(self, script):
        payload = {
            "version": 1,
            "metrics": [
                {"name": "h", "type": "histogram",
                 "labels": {}, "value": {"count": 2}},
            ],
        }
        problems = script.validate_metrics(payload)
        assert any("sum" in p for p in problems)

    def test_unknown_and_missing_fields_flagged(self, script):
        payload = {
            "version": 1,
            "metrics": [
                {"name": "c", "type": "counter", "labels": {},
                 "value": 1, "extra": True},
                {"name": "c", "type": "counter"},
            ],
        }
        problems = script.validate_metrics(payload)
        assert any("unknown" in p for p in problems)
        assert any("missing" in p for p in problems)


class TestMainEndToEnd:
    def _write_exports(self, tmp_path):
        tracer = Tracer("t")
        with tracer.span("round"):
            with tracer.span("leg", shard=0):
                pass
        trace_path = tmp_path / "trace.json"
        trace_path.write_text(json.dumps(tracer.export()))
        metrics_path = tmp_path / "metrics.json"
        metrics_path.write_text(json.dumps(_real_metrics_payload()))
        return trace_path, metrics_path

    def test_valid_pair_exits_zero(self, script, tmp_path, capsys):
        trace_path, metrics_path = self._write_exports(tmp_path)
        status = script.main([str(trace_path),
                              "--metrics", str(metrics_path)])
        assert status == 0
        output = capsys.readouterr().out
        assert "valid trace" in output
        assert "valid metrics export" in output

    def test_corrupt_metrics_fail_even_with_a_valid_trace(
        self, script, tmp_path, capsys
    ):
        trace_path, metrics_path = self._write_exports(tmp_path)
        payload = json.loads(metrics_path.read_text())
        payload["metrics"][0]["type"] = "timer"
        metrics_path.write_text(json.dumps(payload))
        status = script.main([str(trace_path),
                              "--metrics", str(metrics_path)])
        assert status == 1
        assert "INVALID" in capsys.readouterr().err

    def test_trace_only_invocation_still_works(
        self, script, tmp_path, capsys
    ):
        trace_path, _ = self._write_exports(tmp_path)
        assert script.main([str(trace_path)]) == 0
        capsys.readouterr()
