"""Tests for repro.analysis.tails and repro.analysis.composition."""

import math

import pytest

from repro.analysis.composition import (
    advanced_composition_epsilon,
    basic_composition,
    best_composition_epsilon,
)
from repro.analysis.tails import (
    beta_sequence,
    beta_sequence_closed_form,
    chernoff_e_mu,
    chernoff_tail,
    stash_overflow_bound,
    super_root_level,
)


class TestChernoff:
    def test_vacuous_below_mean(self):
        assert chernoff_tail(10, 5) == 1.0

    def test_formula_above_mean(self):
        mu, t = 10.0, 20.0
        expected = (mu / t) ** t * math.exp(t - mu)
        assert chernoff_tail(mu, t) == pytest.approx(expected)

    def test_decreasing_in_threshold(self):
        values = [chernoff_tail(10, t) for t in (10, 20, 40, 80)]
        assert values == sorted(values, reverse=True)

    def test_e_mu_corollary(self):
        mu = 12.0
        assert chernoff_e_mu(mu) == pytest.approx(math.exp(-mu))
        # The corollary is implied by the general bound.
        assert chernoff_tail(mu, math.e * mu) <= chernoff_e_mu(mu) * 1.001

    def test_zero_mean(self):
        assert chernoff_tail(0, 5) == 0.0

    def test_rejects_negative_mu(self):
        with pytest.raises(ValueError):
            chernoff_tail(-1, 5)


class TestStashBound:
    def test_formula(self):
        expected = math.exp(-40 * 0.5**2 / 2.5)
        assert stash_overflow_bound(40, 0.5) == pytest.approx(expected)

    def test_negligible_for_omega_log_n(self):
        # With c = log^1.5(n) the bound beats any inverse polynomial.
        n = 2**20
        c = math.log2(n) ** 1.5
        assert stash_overflow_bound(c, 1.0) < 1 / n

    def test_rejects_bad_slack(self):
        with pytest.raises(ValueError):
            stash_overflow_bound(10, 0)


class TestBetaSequence:
    def test_base_case(self):
        assert beta_sequence(1000, 0)[0] == pytest.approx(1000 / (math.e * 81))

    def test_recurrence_matches_closed_form(self):
        # Lemma 7.3: the closed form solves the recurrence exactly.
        n = 10**6
        recurrence = beta_sequence(n, 6)
        for level, value in enumerate(recurrence):
            assert value == pytest.approx(
                beta_sequence_closed_form(n, level), rel=1e-9
            )

    def test_doubly_exponential_decay(self):
        n = 10**9
        values = beta_sequence(n, 5)
        # log(beta_i) should drop faster than geometrically.
        drops = [
            math.log(values[i] / values[i + 1])
            for i in range(4)
            if values[i + 1] > 0
        ]
        assert all(later > earlier for earlier, later in zip(drops, drops[1:]))

    def test_decreasing(self):
        values = beta_sequence(10**6, 5)
        assert values == sorted(values, reverse=True)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            beta_sequence(0, 3)
        with pytest.raises(ValueError):
            beta_sequence_closed_form(10, -1)


class TestSuperRootLevel:
    def test_theta_log_log_n(self):
        # i* grows very slowly with n.
        small = super_root_level(2**10, phi=32)
        large = super_root_level(2**30, phi=90)
        assert 0 <= small <= large <= 6

    def test_bigger_phi_smaller_level(self):
        n = 2**20
        assert super_root_level(n, phi=10**5) <= super_root_level(n, phi=10)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            super_root_level(0, 10)
        with pytest.raises(ValueError):
            super_root_level(10, 0)


class TestComposition:
    def test_basic(self):
        assert basic_composition(0.5, 0.01, 4) == (2.0, 0.04)

    def test_advanced_formula(self):
        eps, k, slack = 0.1, 100, 1e-6
        expected = eps * math.sqrt(2 * k * math.log(1 / slack)) + \
            k * eps * (math.exp(eps) - 1)
        assert advanced_composition_epsilon(eps, k, slack) == pytest.approx(
            expected
        )

    def test_advanced_wins_for_small_epsilon(self):
        eps, k = 0.01, 10_000
        basic_eps, _ = basic_composition(eps, 0, k)
        assert advanced_composition_epsilon(eps, k, 1e-9) < basic_eps

    def test_basic_wins_at_log_n_epsilon(self):
        # The paper's regime: per-query eps ~ ln(n) makes advanced useless.
        eps, k = math.log(1024), 4
        basic_eps, _ = basic_composition(eps, 0, k)
        assert best_composition_epsilon(eps, k, 1e-9) == basic_eps

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            basic_composition(-1, 0, 1)
        with pytest.raises(ValueError):
            basic_composition(1, 0, 0)
        with pytest.raises(ValueError):
            advanced_composition_epsilon(1, 1, 0)
