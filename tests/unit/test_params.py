"""Tests for repro.core.params."""

import math

import pytest

from repro.core.params import (
    DPIRParams,
    DPKVSParams,
    DPRAMParams,
    TreeShape,
    default_phi,
    dp_ir_exact_epsilon,
    dp_ir_pad_size,
    dp_ram_epsilon_upper_bound,
)


class TestDefaultPhi:
    def test_superlogarithmic(self):
        # phi(n)/log2(n) should grow
        ratios = [default_phi(n) / math.log2(n) for n in (2**10, 2**16, 2**24)]
        assert ratios == sorted(ratios)

    def test_floor_of_eight(self):
        assert default_phi(2) == 8
        assert default_phi(16) == 8

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            default_phi(0)


class TestDpIrPadSize:
    def test_formula(self):
        n, alpha = 1000, 0.05
        epsilon = math.log(n)
        expected = math.ceil((1 - alpha) * n / (alpha * (math.exp(epsilon) - 1)))
        assert dp_ir_pad_size(n, epsilon, alpha) == expected

    def test_paper_formula_variant(self):
        from repro.core.params import dp_ir_pad_size_paper

        n, alpha = 1000, 0.05
        epsilon = math.log(n)
        expected = math.ceil((1 - alpha) * n / (math.exp(epsilon) - 1))
        assert dp_ir_pad_size_paper(n, epsilon, alpha) == expected
        # The paper's pseudocode formula overshoots the target budget by
        # ~ln(1/alpha); both variants share the O(n/e^eps) asymptotics.
        paper_k = dp_ir_pad_size_paper(n, 4.0, alpha)
        library_k = dp_ir_pad_size(n, 4.0, alpha)
        assert library_k >= paper_k

    def test_epsilon_zero_downloads_everything(self):
        assert dp_ir_pad_size(100, 0.0, 0.1) == 100

    def test_small_epsilon_clamps_to_n(self):
        assert dp_ir_pad_size(100, 1e-9, 0.1) == 100

    def test_huge_epsilon_clamps_to_one(self):
        assert dp_ir_pad_size(100, 100.0, 0.1) == 1

    def test_monotone_decreasing_in_epsilon(self):
        n, alpha = 4096, 0.05
        sizes = [dp_ir_pad_size(n, eps, alpha) for eps in (2, 4, 6, 8, 10)]
        assert sizes == sorted(sizes, reverse=True)

    def test_rejects_negative_epsilon(self):
        with pytest.raises(ValueError):
            dp_ir_pad_size(10, -1.0, 0.1)

    def test_rejects_alpha_bounds(self):
        with pytest.raises(ValueError):
            dp_ir_pad_size(10, 1.0, 0.0)
        with pytest.raises(ValueError):
            dp_ir_pad_size(10, 1.0, 1.0)


class TestDpIrExactEpsilon:
    def test_formula(self):
        n, k, alpha = 1000, 5, 0.05
        expected = math.log((1 - alpha) * n / (alpha * k) + 1)
        assert dp_ir_exact_epsilon(n, k, alpha) == pytest.approx(expected)

    def test_full_download_is_oblivious(self):
        assert dp_ir_exact_epsilon(100, 100, 0.05) == 0.0

    def test_roundtrip_with_pad_size(self):
        # The resolver guarantees the achieved budget never exceeds the
        # target (ceil only grows K, which only shrinks epsilon).
        n, alpha = 2048, 0.05
        for target in (2.0, 4.0, 6.0, math.log(n), 50.0):
            pad = dp_ir_pad_size(n, target, alpha)
            achieved = dp_ir_exact_epsilon(n, pad, alpha)
            assert achieved <= target

    def test_monotone_decreasing_in_k(self):
        values = [dp_ir_exact_epsilon(1000, k, 0.05) for k in (1, 2, 8, 64, 512)]
        assert values == sorted(values, reverse=True)

    def test_rejects_bad_pad(self):
        with pytest.raises(ValueError):
            dp_ir_exact_epsilon(10, 0, 0.05)
        with pytest.raises(ValueError):
            dp_ir_exact_epsilon(10, 11, 0.05)


class TestDPIRParams:
    def test_from_epsilon(self):
        params = DPIRParams.from_epsilon(1024, math.log(1024), 0.05)
        assert params.pad_size >= 1
        assert params.epsilon > 0

    def test_from_pad_size(self):
        params = DPIRParams.from_pad_size(1024, 3, 0.05)
        assert params.pad_size == 3
        assert params.epsilon == pytest.approx(
            dp_ir_exact_epsilon(1024, 3, 0.05)
        )


class TestDPRAMParams:
    def test_from_phi_default(self):
        params = DPRAMParams.from_phi(1024)
        assert params.stash_probability == pytest.approx(
            default_phi(1024) / 1024
        )
        assert params.expected_stash == pytest.approx(default_phi(1024))

    def test_from_phi_explicit(self):
        params = DPRAMParams.from_phi(100, phi=10)
        assert params.stash_probability == pytest.approx(0.1)

    def test_phi_larger_than_n_clamps(self):
        params = DPRAMParams.from_phi(4, phi=100)
        assert params.stash_probability == 1.0

    def test_from_probability(self):
        params = DPRAMParams.from_probability(100, 0.25)
        assert params.expected_stash == pytest.approx(25.0)

    def test_epsilon_bound_formula(self):
        n, p = 512, 0.05
        assert dp_ram_epsilon_upper_bound(n, p) == pytest.approx(
            3 * math.log(n**3 / p**2)
        )

    def test_epsilon_bound_is_o_log_n(self):
        # With p = phi(n)/n the bound divided by ln(n) must stay bounded.
        ratios = []
        for n in (2**10, 2**14, 2**18):
            params = DPRAMParams.from_phi(n)
            ratios.append(params.epsilon_bound / math.log(n))
        assert max(ratios) < 16  # 15 ln n - 6 ln phi(n) => ratio < 15

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            DPRAMParams.from_probability(10, 0.0)
        with pytest.raises(ValueError):
            DPRAMParams.from_probability(10, 1.5)


class TestTreeShape:
    def test_leaves_power_of_two(self):
        for n in (100, 1000, 10000, 100000):
            shape = TreeShape.for_capacity(n)
            leaves = shape.leaves_per_tree
            assert leaves & (leaves - 1) == 0

    def test_leaf_count_covers_n(self):
        for n in (3, 64, 1000, 4097):
            assert TreeShape.for_capacity(n).leaf_count >= n

    def test_leaves_theta_log_n(self):
        for n in (2**10, 2**16):
            shape = TreeShape.for_capacity(n)
            log_n = math.log2(n)
            assert log_n <= shape.leaves_per_tree <= 2 * log_n

    def test_total_nodes_linear_in_n(self):
        for n in (2**10, 2**14, 2**18):
            shape = TreeShape.for_capacity(n)
            assert shape.total_nodes <= 3 * n  # O(n) server storage

    def test_path_length_is_depth_plus_one(self):
        shape = TreeShape.for_capacity(1000)
        assert shape.path_length == shape.depth + 1
        assert shape.leaves_per_tree == 2**shape.depth

    def test_slots(self):
        shape = TreeShape.for_capacity(100, node_capacity=3)
        assert shape.slots == shape.total_nodes * 3

    def test_explicit_leaves(self):
        shape = TreeShape.for_capacity(100, leaves_per_tree=8)
        assert shape.leaves_per_tree == 8
        assert shape.depth == 3

    def test_rejects_non_power_of_two_leaves(self):
        with pytest.raises(ValueError):
            TreeShape.for_capacity(100, leaves_per_tree=6)

    def test_rejects_bad_node_capacity(self):
        with pytest.raises(ValueError):
            TreeShape.for_capacity(100, node_capacity=0)


class TestDPKVSParams:
    def test_for_capacity_defaults(self):
        params = DPKVSParams.for_capacity(1024)
        assert params.choices == 2
        assert params.phi == default_phi(1024)
        assert 0 < params.stash_probability <= 1

    def test_blocks_per_operation(self):
        params = DPKVSParams.for_capacity(1024)
        assert params.blocks_per_operation() == 6 * params.shape.path_length

    def test_stash_probability_from_phi(self):
        params = DPKVSParams.for_capacity(1000, phi=50)
        assert params.stash_probability == pytest.approx(
            50 / params.shape.leaf_count
        )

    def test_rejects_bad_phi(self):
        with pytest.raises(ValueError):
            DPKVSParams.for_capacity(100, phi=0)
