"""Tests for repro.core.sharded_ir."""

import math

import pytest

from repro.core.sharded_ir import ShardedDPIR
from repro.storage.blocks import integer_database
from repro.storage.errors import RetrievalError, StorageError


def _scheme(rng, n=64, shards=4, pad=8, alpha=0.1):
    return ShardedDPIR(integer_database(n), shard_count=shards,
                       pad_size=pad, alpha=alpha, rng=rng.spawn("sharded"))


class TestLayout:
    def test_storage_is_n_not_dn(self, rng):
        scheme = _scheme(rng, n=64, shards=4)
        assert scheme.total_storage_blocks() == 64

    def test_uneven_split(self, rng):
        scheme = _scheme(rng, n=10, shards=3, pad=2)
        sizes = [server.capacity for server in scheme.shards]
        assert sorted(sizes) == [3, 3, 4]
        assert sum(sizes) == 10

    def test_shard_of_covers_all_indices(self, rng):
        scheme = _scheme(rng, n=37, shards=5, pad=2)
        for index in range(37):
            shard = scheme.shard_of(index)
            lo = sum(s.capacity for s in scheme.shards[:shard])
            assert lo <= index < lo + scheme.shards[shard].capacity

    def test_shard_of_out_of_range(self, rng):
        scheme = _scheme(rng, n=16, shards=2, pad=2)
        with pytest.raises(StorageError):
            scheme.shard_of(16)

    def test_rejects_more_shards_than_blocks(self, rng):
        with pytest.raises(ValueError):
            ShardedDPIR(integer_database(4), shard_count=8, pad_size=1,
                        rng=rng)

    def test_parameter_validation(self, rng, small_db):
        with pytest.raises(ValueError):
            ShardedDPIR(small_db, rng=rng)
        with pytest.raises(ValueError):
            ShardedDPIR(small_db, epsilon=1.0, pad_size=2, rng=rng)
        with pytest.raises(ValueError):
            ShardedDPIR([], pad_size=1, rng=rng)


class TestQuerying:
    def test_correct_answers(self, rng):
        scheme = _scheme(rng, alpha=0.01)
        db = integer_database(64)
        for index in (0, 15, 16, 63):
            answers = [scheme.query(index) for _ in range(30)]
            hits = [a for a in answers if a is not None]
            assert hits
            assert all(a == db[index] for a in hits)

    def test_error_rate(self, rng):
        scheme = _scheme(rng, alpha=0.3)
        trials = 800
        errors = sum(1 for _ in range(trials) if scheme.query(5) is None)
        assert 0.24 < errors / trials < 0.36
        assert scheme.error_count == errors

    def test_total_bandwidth_is_pad_size(self, rng):
        scheme = _scheme(rng, pad=8)
        before = sum(s.operations for s in scheme.shards)
        scheme.query(0)
        assert sum(s.operations for s in scheme.shards) - before == 8

    def test_epsilon_matches_single_server(self, rng, small_db):
        sharded = ShardedDPIR(small_db, shard_count=4, pad_size=4,
                              alpha=0.1, rng=rng.spawn("a"))
        from repro.core.dp_ir import DPIR

        single = DPIR(small_db, pad_size=4, alpha=0.1, rng=rng.spawn("b"))
        assert sharded.epsilon == single.epsilon

    def test_epsilon_resolution(self, rng, small_db):
        scheme = ShardedDPIR(small_db, shard_count=2,
                             epsilon=math.log(len(small_db)), alpha=0.05,
                             rng=rng)
        assert scheme.epsilon <= math.log(len(small_db))

    def test_out_of_range(self, rng):
        scheme = _scheme(rng, n=16, shards=2, pad=2)
        with pytest.raises(RetrievalError):
            scheme.query(16)


class TestShardViews:
    def test_view_restricted_to_corrupted_shards(self, rng):
        scheme = _scheme(rng, n=64, shards=4, pad=16)
        view = scheme.sample_shard_view(0, corrupted={1, 2})
        assert all(scheme.shard_of(g) in {1, 2} for g in view)

    def test_full_corruption_sees_pad(self, rng):
        scheme = _scheme(rng, n=64, shards=4, pad=16)
        view = scheme.sample_shard_view(0, corrupted={0, 1, 2, 3})
        assert len(view) == 16

    def test_view_scales_with_corrupted_fraction(self, rng):
        scheme = _scheme(rng, n=64, shards=4, pad=16, alpha=0.05)
        sizes = []
        for count in (1, 2, 4):
            total = sum(
                len(scheme.sample_shard_view(0, set(range(count))))
                for _ in range(200)
            )
            sizes.append(total / 200)
        assert sizes[0] < sizes[1] < sizes[2]

    def test_sampling_touches_no_servers(self, rng):
        scheme = _scheme(rng)
        before = sum(s.operations for s in scheme.shards)
        scheme.sample_shard_view(0, {0})
        assert sum(s.operations for s in scheme.shards) == before


class TestHotShardLoad:
    def test_hot_record_loads_its_shard(self, rng):
        # The trade versus replication: hot traffic shows up on one shard.
        scheme = _scheme(rng, n=64, shards=4, pad=4, alpha=0.05)
        hot = 5  # lives on shard 0
        for _ in range(300):
            scheme.query(hot)
        loads = [server.reads for server in scheme.shards]
        assert loads[0] > max(loads[1:])

    def test_harness_integration(self, rng):
        from repro.simulation.harness import run_ir_trace
        from repro.workloads.generators import uniform_trace

        db = integer_database(64)
        scheme = _scheme(rng, pad=8, alpha=0.1)
        trace = uniform_trace(64, 100, rng.spawn("t"))
        metrics = run_ir_trace(scheme, trace, expected=db)
        assert metrics.mismatches == 0
        assert metrics.blocks_per_operation == 8.0
