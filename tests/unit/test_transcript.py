"""Tests for repro.storage.transcript."""

import pytest

from repro.storage.transcript import AccessEvent, AccessKind, Transcript


def _download(index, query=0, server=0):
    return AccessEvent(AccessKind.DOWNLOAD, index, server=server, query=query)


def _upload(index, query=0, server=0):
    return AccessEvent(AccessKind.UPLOAD, index, server=server, query=query)


class TestTranscript:
    def test_append_and_len(self):
        transcript = Transcript()
        transcript.append(_download(1))
        transcript.append(_upload(2))
        assert len(transcript) == 2

    def test_downloads_uploads_split(self):
        transcript = Transcript()
        transcript.extend([_download(1), _upload(2), _download(3)])
        assert [e.index for e in transcript.downloads()] == [1, 3]
        assert [e.index for e in transcript.uploads()] == [2]

    def test_touched_indices_per_server(self):
        transcript = Transcript()
        transcript.extend([_download(1, server=0), _download(2, server=1)])
        assert transcript.touched_indices(0) == [1]
        assert transcript.touched_indices(1) == [2]

    def test_for_query(self):
        transcript = Transcript()
        transcript.extend([_download(1, query=0), _download(2, query=1)])
        assert [e.index for e in transcript.for_query(1)] == [2]

    def test_query_count(self):
        transcript = Transcript()
        transcript.extend(
            [_download(0, query=0), _download(0, query=2), _download(0, query=-1)]
        )
        assert transcript.query_count() == 2

    def test_signature_hashable_and_order_sensitive(self):
        a = Transcript()
        a.extend([_download(1), _download(2)])
        b = Transcript()
        b.extend([_download(2), _download(1)])
        assert hash(a.signature()) != hash(b.signature()) or a.signature() != b.signature()

    def test_signature_equal_for_equal_views(self):
        a = Transcript()
        b = Transcript()
        for transcript in (a, b):
            transcript.extend([_download(1), _upload(3)])
        assert a.signature() == b.signature()

    def test_dp_ram_pairs_happy_path(self):
        transcript = Transcript()
        transcript.extend(
            [
                _download(4, query=0), _download(7, query=0), _upload(7, query=0),
                _download(1, query=1), _download(1, query=1), _upload(1, query=1),
            ]
        )
        assert transcript.dp_ram_pairs() == [(4, 7), (1, 1)]

    def test_dp_ram_pairs_ignores_setup_events(self):
        transcript = Transcript()
        transcript.append(_download(9, query=-1))
        transcript.extend(
            [_download(0, query=0), _download(2, query=0), _upload(2, query=0)]
        )
        assert transcript.dp_ram_pairs() == [(0, 2)]

    def test_dp_ram_pairs_rejects_wrong_event_count(self):
        transcript = Transcript()
        transcript.extend([_download(0, query=0), _upload(0, query=0)])
        with pytest.raises(ValueError):
            transcript.dp_ram_pairs()

    def test_dp_ram_pairs_rejects_wrong_shape(self):
        transcript = Transcript()
        transcript.extend(
            [_download(0, query=0), _download(1, query=0), _upload(2, query=0)]
        )
        with pytest.raises(ValueError):
            transcript.dp_ram_pairs()

    def test_iteration(self):
        transcript = Transcript()
        events = [_download(5), _upload(6)]
        transcript.extend(events)
        assert list(transcript) == events
