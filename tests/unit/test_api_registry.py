"""Tests for the scheme registry and the repro.build factory."""

import pytest

import repro
from repro.api import (
    PrivateRAM,
    available_schemes,
    build,
    register_scheme,
    scheme_spec,
)
from repro.api.builders import resolve_backend, resolve_network
from repro.api.registry import _REGISTRY
from repro.storage.backends import NetworkBackendFactory
from repro.storage.network import LAN, WAN


class TestCatalogue:
    def test_core_and_baseline_schemes_registered(self):
        names = available_schemes()
        for expected in (
            "dp_ir", "batch_dp_ir", "multi_server_dp_ir", "sharded_dp_ir",
            "strawman_ir", "dp_ram", "read_only_dp_ram", "bucket_dp_ram",
            "dp_kvs", "plaintext_ram", "plaintext_kvs", "linear_pir",
            "path_oram", "recursive_path_oram", "oram_kvs",
        ):
            assert expected in names

    def test_kind_filter(self):
        assert "dp_kvs" in available_schemes("kvs")
        assert "dp_kvs" not in available_schemes("ram")

    def test_specs_have_summaries(self):
        for name in available_schemes():
            spec = scheme_spec(name)
            assert spec.name == name
            assert spec.kind in ("ir", "ram", "kvs")
            assert spec.summary

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(ValueError, match="dp_ram"):
            build("no_such_scheme")

    def test_hyphenated_aliases_resolve_everywhere(self):
        from repro.api.registry import resolve_scheme_name, scheme_spec

        assert resolve_scheme_name("batch-dpir") == "batch_dp_ir"
        assert resolve_scheme_name("DPIR") == "dp_ir"
        assert resolve_scheme_name("dp_ram") == "dp_ram"
        assert scheme_spec("batch-dpir").name == "batch_dp_ir"
        scheme = build("dpram", n=16, seed=1)
        assert scheme.n == 16


class TestBuild:
    def test_top_level_reexport(self):
        scheme = repro.build("dp_ram", n=64, seed=1)
        assert isinstance(scheme, repro.DPRAM)
        assert scheme.n == 64

    def test_seed_and_rng_mutually_exclusive(self):
        from repro.crypto.rng import SeededRandomSource

        with pytest.raises(ValueError):
            build("dp_ram", n=16, seed=1, rng=SeededRandomSource(2))

    def test_explicit_blocks_override_n(self):
        blocks = [b"\x01" * 32] * 8
        scheme = build("dp_ir", blocks=blocks, pad_size=2)
        assert scheme.n == 8
        assert scheme.block_size == 32

    def test_network_backend_wiring(self):
        scheme = build("dp_ram", n=32, seed=3, backend="network",
                       network="lan")
        scheme.read(0)
        backend = scheme.servers()[0].backend
        assert backend.model is LAN
        assert backend.simulated_ms > 0

    def test_network_alone_implies_network_backend(self):
        scheme = build("plaintext_ram", n=8, network=WAN)
        scheme.read(0)
        assert scheme.servers()[0].backend.model is WAN


class TestRegisterScheme:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scheme("dp_ram", kind="ram")(lambda **kw: None)

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            register_scheme("custom_thing", kind="graph")

    def test_custom_registration_round_trip(self):
        @register_scheme("test_only_ram", kind="ram",
                         summary="registered by the test suite")
        def build_test_only(**kwargs):
            return build("plaintext_ram", **kwargs)

        try:
            scheme = build("test_only_ram", n=8)
            assert isinstance(scheme, PrivateRAM)
            assert "test_only_ram" in available_schemes("ram")
        finally:
            _REGISTRY.pop("test_only_ram", None)


class TestResolvers:
    def test_network_names(self):
        assert resolve_network("wan") is WAN
        assert resolve_network(LAN) is LAN
        with pytest.raises(ValueError):
            resolve_network("carrier-pigeon")

    def test_backend_strings(self):
        assert resolve_backend(None) is None
        assert resolve_backend("memory") is None
        assert isinstance(resolve_backend("network"), NetworkBackendFactory)
        with pytest.raises(ValueError):
            resolve_backend("punched-cards")

    def test_explicit_memory_beats_network_argument(self):
        # backend="memory" is an explicit opt-out; a network argument
        # alongside it must not smuggle latency accounting back in.
        assert resolve_backend("memory", "wan") is None

    def test_custom_factory_passes_through(self):
        factory = NetworkBackendFactory(LAN)
        assert resolve_backend(factory) is factory
