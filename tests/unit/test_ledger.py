"""Tests for repro.analysis.ledger."""

import math

import pytest

from repro.analysis.composition import advanced_composition_epsilon
from repro.analysis.ledger import BudgetExceededError, PrivacyLedger


class TestCharging:
    def test_accumulates(self):
        ledger = PrivacyLedger()
        ledger.charge(1.0)
        ledger.charge(2.0, delta=0.01)
        assert ledger.queries == 2
        assert ledger.epsilon_spent == pytest.approx(3.0)
        assert ledger.delta_spent == pytest.approx(0.01)

    def test_cap_enforced(self):
        ledger = PrivacyLedger(epsilon_cap=2.5)
        ledger.charge(1.0)
        ledger.charge(1.0)
        with pytest.raises(BudgetExceededError):
            ledger.charge(1.0)
        assert ledger.queries == 2  # failed charge not recorded

    def test_remaining(self):
        ledger = PrivacyLedger(epsilon_cap=5.0)
        assert ledger.remaining() == 5.0
        ledger.charge(2.0)
        assert ledger.remaining() == pytest.approx(3.0)

    def test_remaining_uncapped(self):
        assert PrivacyLedger().remaining() is None

    def test_can_afford(self):
        ledger = PrivacyLedger(epsilon_cap=1.0)
        assert ledger.can_afford(1.0)
        ledger.charge(0.6)
        assert ledger.can_afford(0.4)
        assert not ledger.can_afford(0.5)

    def test_validation(self):
        ledger = PrivacyLedger()
        with pytest.raises(ValueError):
            ledger.charge(-1.0)
        with pytest.raises(ValueError):
            ledger.charge(1.0, delta=2.0)
        with pytest.raises(ValueError):
            PrivacyLedger(epsilon_cap=-1)
        with pytest.raises(ValueError):
            PrivacyLedger(delta_slack=0)


class TestReports:
    def test_uniform_charges_report_advanced(self):
        ledger = PrivacyLedger(delta_slack=1e-6)
        for _ in range(10):
            ledger.charge(0.1)
        report = ledger.report()
        assert report.queries == 10
        assert report.basic_epsilon == pytest.approx(1.0)
        assert report.advanced_epsilon == pytest.approx(
            advanced_composition_epsilon(0.1, 10, 1e-6)
        )

    def test_mixed_charges_skip_advanced(self):
        ledger = PrivacyLedger()
        ledger.charge(0.1)
        ledger.charge(0.2)
        assert ledger.report().advanced_epsilon is None

    def test_empty_report(self):
        report = PrivacyLedger().report()
        assert report.queries == 0
        assert report.basic_epsilon == 0.0
        assert report.advanced_epsilon is None

    def test_paper_regime_basic_is_binding(self):
        # At eps = ln(n), advanced composition is worse than basic.
        n, k = 1024, 8
        ledger = PrivacyLedger()
        for _ in range(k):
            ledger.charge(math.log(n))
        report = ledger.report()
        assert report.advanced_epsilon > report.basic_epsilon


class TestSchemeIntegration:
    def test_ledger_driven_dpir_session(self, rng):
        from repro.core.dp_ir import DPIR
        from repro.storage.blocks import integer_database

        n = 64
        scheme = DPIR(integer_database(n), epsilon=math.log(n), alpha=0.1,
                      rng=rng.spawn("s"))
        ledger = PrivacyLedger(epsilon_cap=10 * scheme.epsilon)
        served = 0
        while ledger.can_afford(scheme.epsilon):
            scheme.query(served % n)
            ledger.charge(scheme.epsilon)
            served += 1
        assert served == 10
        assert ledger.remaining() == pytest.approx(0.0)
