"""Tests for repro.crypto.encryption."""

import pytest

from repro.crypto.encryption import (
    CIPHERTEXT_OVERHEAD,
    NONCE_SIZE,
    SecretKey,
    decrypt,
    encrypt,
    generate_key,
)
from repro.crypto.rng import SeededRandomSource


@pytest.fixture
def key(rng):
    return generate_key(rng.spawn("key"))


class TestSecretKey:
    def test_requires_32_bytes(self):
        with pytest.raises(ValueError):
            SecretKey(b"short")

    def test_repr_hides_material(self):
        key = SecretKey(b"\x01" * 32)
        assert "\\x01" not in repr(key)
        assert "01" * 16 not in repr(key)

    def test_generate_key_is_valid(self, rng):
        key = generate_key(rng)
        assert len(key.material) == 32


class TestEncryptDecrypt:
    def test_roundtrip(self, key, rng):
        plaintext = b"the quick brown fox"
        assert decrypt(key, encrypt(key, plaintext, rng)) == plaintext

    def test_roundtrip_empty(self, key, rng):
        assert decrypt(key, encrypt(key, b"", rng)) == b""

    def test_roundtrip_large(self, key, rng):
        plaintext = bytes(range(256)) * 40
        assert decrypt(key, encrypt(key, plaintext, rng)) == plaintext

    def test_ciphertext_overhead(self, key, rng):
        plaintext = b"x" * 64
        ciphertext = encrypt(key, plaintext, rng)
        assert len(ciphertext) == len(plaintext) + CIPHERTEXT_OVERHEAD

    def test_fresh_nonce_per_encryption(self, key, rng):
        plaintext = b"same plaintext"
        first = encrypt(key, plaintext, rng)
        second = encrypt(key, plaintext, rng)
        assert first != second  # re-encryption is unlinkable

    def test_ciphertext_differs_from_plaintext(self, key, rng):
        plaintext = b"z" * 48
        assert encrypt(key, plaintext, rng)[NONCE_SIZE:] != plaintext

    def test_wrong_key_garbles(self, rng):
        key_a = generate_key(rng.spawn("a"))
        key_b = generate_key(rng.spawn("b"))
        plaintext = b"secret"
        assert decrypt(key_b, encrypt(key_a, plaintext, rng)) != plaintext

    def test_decrypt_rejects_short_ciphertext(self, key):
        with pytest.raises(ValueError):
            decrypt(key, b"tiny")

    def test_deterministic_under_seeded_rng(self):
        key = SecretKey(b"\x07" * 32)
        first = encrypt(key, b"msg", SeededRandomSource(5))
        second = encrypt(key, b"msg", SeededRandomSource(5))
        assert first == second  # same nonce stream -> reproducible runs

    def test_nonce_is_prefix(self, key):
        rng = SeededRandomSource(6)
        probe = SeededRandomSource(6).bytes(NONCE_SIZE)
        ciphertext = encrypt(key, b"payload", rng)
        assert ciphertext[:NONCE_SIZE] == probe
