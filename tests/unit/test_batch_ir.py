"""Tests for repro.core.batch_ir."""

import math

import pytest

from repro.core.batch_ir import BatchDPIR
from repro.core.dp_ir import DPIR
from repro.storage.blocks import integer_database
from repro.storage.errors import RetrievalError


def _scheme(rng, n=128, pad=8, alpha=0.1):
    return BatchDPIR(integer_database(n), pad_size=pad, alpha=alpha,
                     rng=rng.spawn("batch"))


class TestConstruction:
    def test_parameter_validation(self, rng, small_db):
        with pytest.raises(ValueError):
            BatchDPIR(small_db, rng=rng)
        with pytest.raises(ValueError):
            BatchDPIR(small_db, epsilon=1.0, pad_size=2, rng=rng)
        with pytest.raises(ValueError):
            BatchDPIR([], pad_size=1, rng=rng)

    def test_epsilon_matches_single_query_scheme(self, rng, small_db):
        batch = BatchDPIR(small_db, pad_size=4, alpha=0.1, rng=rng.spawn("a"))
        single = DPIR(small_db, pad_size=4, alpha=0.1, rng=rng.spawn("b"))
        assert batch.epsilon == single.epsilon


class TestBatchQueries:
    def test_answers_align_with_requests(self, rng):
        scheme = _scheme(rng, alpha=0.01)
        db = integer_database(128)
        indices = [3, 77, 12, 3]
        answers = scheme.query_batch(indices)
        assert len(answers) == 4
        for index, answer in zip(indices, answers):
            if answer is not None:
                assert answer == db[index]

    def test_duplicates_answered_independently(self, rng):
        scheme = _scheme(rng, alpha=0.5)
        outcomes = set()
        for _ in range(60):
            first, second = scheme.query_batch([5, 5])
            outcomes.add((first is None, second is None))
        # Independent coins: all four combinations appear.
        assert len(outcomes) == 4

    def test_error_rate_per_query(self, rng):
        scheme = _scheme(rng, alpha=0.3)
        batches = 300
        for _ in range(batches):
            scheme.query_batch([0, 1, 2])
        rate = scheme.error_count / scheme.query_count
        assert 0.25 < rate < 0.35

    def test_union_bandwidth_below_sum(self, rng):
        # The point of batching: coalesced pads cost less than m separate
        # queries at a meaningful pad-to-n ratio.
        scheme = _scheme(rng, n=64, pad=16, alpha=0.1)
        batch_size = 8
        before = scheme.server.reads
        scheme.query_batch(list(range(batch_size)))
        cost = scheme.server.reads - before
        assert cost < batch_size * scheme.pad_size
        assert cost <= scheme.n

    def test_expected_union_size_formula(self, rng):
        scheme = _scheme(rng, n=64, pad=16, alpha=0.1)
        expected = scheme.expected_union_size(8)
        assert expected == pytest.approx(
            64 * (1 - (1 - 1 / 64) ** (8 * 16))
        )
        # Empirically close:
        costs = []
        for _ in range(100):
            before = scheme.server.reads
            scheme.query_batch(list(range(8)))
            costs.append(scheme.server.reads - before)
        mean = sum(costs) / len(costs)
        assert mean == pytest.approx(expected, rel=0.1)

    def test_counters(self, rng):
        scheme = _scheme(rng)
        scheme.query_batch([0, 1])
        scheme.query_batch([2])
        assert scheme.batch_count == 2
        assert scheme.query_count == 3

    def test_empty_batch_rejected(self, rng):
        with pytest.raises(ValueError):
            _scheme(rng).query_batch([])

    def test_out_of_range_rejected(self, rng):
        scheme = _scheme(rng, n=16)
        with pytest.raises(RetrievalError):
            scheme.query_batch([0, 16])

    def test_expected_union_validation(self, rng):
        with pytest.raises(ValueError):
            _scheme(rng).expected_union_size(0)


class TestMembershipRates:
    def test_per_query_membership_matches_single_scheme(self, rng):
        # A batch of size 1 must behave exactly like DPIR.
        n, pad, alpha = 64, 4, 0.25
        scheme = _scheme(rng, n=n, pad=pad, alpha=alpha)
        trials = 2000
        included = 0
        for _ in range(trials):
            before = scheme.server.reads
            answers = scheme.query_batch([9])
            if answers[0] is not None:
                included += 1
            assert scheme.server.reads - before == pad
        assert included / trials == pytest.approx(1 - alpha, abs=0.03)
