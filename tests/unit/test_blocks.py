"""Tests for repro.storage.blocks."""

import pytest

from repro.storage.blocks import (
    DEFAULT_BLOCK_SIZE,
    check_block,
    decode_int,
    encode_int,
    integer_database,
    make_block,
    zero_block,
)
from repro.storage.errors import BlockSizeError


class TestMakeBlock:
    def test_pads_to_size(self):
        block = make_block(b"abc", 16)
        assert len(block) == 16
        assert block.startswith(b"abc")

    def test_exact_size_untouched(self):
        payload = b"x" * 16
        assert make_block(payload, 16) == payload

    def test_rejects_oversize(self):
        with pytest.raises(BlockSizeError):
            make_block(b"x" * 17, 16)

    def test_default_size(self):
        assert len(make_block(b"p")) == DEFAULT_BLOCK_SIZE


class TestZeroBlock:
    def test_all_zero(self):
        assert zero_block(8) == b"\x00" * 8

    def test_rejects_negative(self):
        with pytest.raises(BlockSizeError):
            zero_block(-1)


class TestCheckBlock:
    def test_accepts_exact(self):
        check_block(b"ab", 2)

    def test_rejects_mismatch(self):
        with pytest.raises(BlockSizeError):
            check_block(b"abc", 2)


class TestIntCodec:
    def test_roundtrip(self):
        for value in (0, 1, 255, 256, 2**31, 2**63 - 1):
            assert decode_int(encode_int(value)) == value

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            encode_int(-1)

    def test_block_size(self):
        assert len(encode_int(42, 32)) == 32


class TestIntegerDatabase:
    def test_contents_self_describing(self):
        db = integer_database(10)
        assert len(db) == 10
        for index, block in enumerate(db):
            assert decode_int(block) == index

    def test_blocks_distinct(self):
        db = integer_database(50)
        assert len(set(db)) == 50

    def test_empty(self):
        assert integer_database(0) == []

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            integer_database(-1)
