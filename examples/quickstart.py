"""Quickstart: differentially private storage in five minutes.

Builds each of the paper's three primitives, performs a few operations,
and prints what the adversary pays for / learns.  Run with::

    python examples/quickstart.py
"""

import math

import repro
from repro import SeededRandomSource
from repro.storage.blocks import encode_int

rng = SeededRandomSource(2024)


def dp_ram_demo() -> None:
    print("== DP-RAM (Theorem 6.1): errorless, 3 blocks per query ==")
    n = 1024
    ram = repro.build("dp_ram", n=n, rng=rng.spawn("ram"))
    value = ram.read(7)
    print(f"read(7)  -> record {int.from_bytes(value[:8], 'big')}")
    ram.write(7, encode_int(70_707))
    print(f"write(7) -> done; read back: "
          f"{int.from_bytes(ram.read(7)[:8], 'big')}")
    print(f"server blocks moved per query: "
          f"{ram.server.operations / ram.query_count:.1f}")
    print(f"client stash: {ram.stash_size} records "
          f"(expected ~{ram.params.expected_stash:.0f})")
    print(f"analytic privacy budget: eps <= {ram.params.epsilon_bound:.1f} "
          f"(= {ram.params.epsilon_bound / math.log(n):.1f} * ln n)\n")


def dp_ir_demo() -> None:
    print("== DP-IR (Theorem 5.1): stateless, errs with probability alpha ==")
    n, alpha = 1024, 0.05
    ir = repro.build("dp_ir", n=n, epsilon=math.log(n), alpha=alpha,
                     rng=rng.spawn("ir"))
    print(f"target eps = ln(n) = {math.log(n):.2f}; "
          f"achieved exact eps = {ir.epsilon:.2f}")
    print(f"pad size K = {ir.pad_size} blocks per query "
          f"(vs n = {n} for PIR)")
    answers = [ir.query(3) for _ in range(200)]
    failures = sum(1 for a in answers if a is None)
    print(f"200 queries: {failures} erred "
          f"(alpha = {alpha}; errors are data-independent)\n")


def dp_kvs_demo() -> None:
    print("== DP-KVS (Theorem 7.5): large key universe, O(log log n) cost ==")
    store = repro.build("dp_kvs", n=1024, rng=rng.spawn("kvs"))
    store.put(b"alice", b"ciphertext-a")
    store.put(b"bob", b"ciphertext-b")
    # get returns the exact bytes that were put — no padding to strip.
    print(f"get(alice)   -> {store.get(b'alice')!r}")
    print(f"get(missing) -> {store.get(b'carol')}  (the paper's ⊥)")
    shape = store.params.shape
    print(f"tree layout: {shape.tree_count} trees x "
          f"{shape.leaves_per_tree} leaves, depth {shape.depth}")
    print(f"node blocks per operation: {store.blocks_per_operation()} "
          f"(= 6 x path length {shape.path_length})")
    print(f"server nodes: {store.server_node_count} "
          f"(~{store.server_node_count / 1024:.2f} n)\n")


if __name__ == "__main__":
    dp_ram_demo()
    dp_ir_demo()
    dp_kvs_demo()
    print("Done. See examples/oram_comparison.py for the overhead gap and")
    print("examples/privacy_audit.py for the empirical privacy measurements.")
