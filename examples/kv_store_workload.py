"""Scenario: a private key-value cache under YCSB-style load.

Runs DP-KVS (Section 7) against the ORAM-backed oblivious KVS and the
plaintext store on the three classic YCSB mixes, reporting block overhead,
client memory and correctness.  The point of Theorem 7.5 in one table:
DP-KVS pays Θ(log log n) where the ORAM route pays Θ(log n).

Run with::

    python examples/kv_store_workload.py
"""

import repro
from repro import SeededRandomSource
from repro.simulation.harness import run_kv_trace
from repro.simulation.reporting import format_table
from repro.workloads.kv_traces import ycsb_trace

CAPACITY = 2048
KEYS = 256
OPERATIONS = 300

rng = SeededRandomSource(42)

rows = []
for profile in ("A", "B", "C"):
    trace = ycsb_trace(KEYS, OPERATIONS, rng.spawn(f"trace-{profile}"),
                       profile=profile)
    # Every store comes out of the same registry-driven factory the CLI
    # and conformance tests use (repro.available_schemes("kvs")).
    for name, store in (
        ("plaintext", repro.build("plaintext_kvs", n=CAPACITY)),
        ("DP-KVS", repro.build("dp_kvs", n=CAPACITY,
                               rng=rng.spawn(f"dpkvs-{profile}"))),
        ("ORAM-KVS", repro.build("oram_kvs", n=CAPACITY,
                                 rng=rng.spawn(f"okvs-{profile}"))),
    ):
        metrics = run_kv_trace(store, trace)
        client = metrics.client_peak_blocks
        rows.append([
            f"YCSB-{profile}", name,
            round(metrics.blocks_per_operation, 1),
            client if client is not None else "-",
            metrics.mismatches,
        ])

print(format_table(
    ["workload", "scheme", "blocks/op", "client peak blocks", "mismatches"],
    rows,
    title=f"{OPERATIONS} ops over {KEYS} keys (capacity {CAPACITY})",
))

store = repro.build("dp_kvs", n=CAPACITY, rng=rng.spawn("shape"))
shape = store.params.shape
print()
print(f"DP-KVS geometry at n={CAPACITY}: {shape.tree_count} trees, "
      f"{shape.leaves_per_tree} leaves each, path length "
      f"{shape.path_length} -> {store.blocks_per_operation()} node blocks "
      f"per op; super-root budget phi = {store.params.phi}.")
print("ORAM-KVS moves 2*Z*(log n + 1) bucket blocks per op, each bucket "
      "sized for the one-choice max load Theta(log n / log log n).")
