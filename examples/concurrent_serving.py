"""Concurrent serving: batched dispatch versus per-request FIFO.

The paper's batched constructions only pay off when a front-end actually
groups concurrent requests.  This example serves eight open-loop clients
against ``BatchDPIR`` under both schedulers and shows the batching
window turning pad-set overlap into fewer server operations and lower
tail latency.  Run with::

    python examples/concurrent_serving.py
"""

import repro

CLIENTS = 8
REQUESTS = 12
N = 256
SEED = 2024


def run(scheduler: str):
    config = repro.ServingConfig(
        clients=CLIENTS,
        requests_per_client=REQUESTS,
        scheduler=scheduler,
        rate_rps=150.0,        # deliberately above the FIFO service rate
        n=N,
        seed=SEED,
        network="lan",
    )
    return repro.serve("batch_dp_ir", config)


def main() -> None:
    print(f"== Serving {CLIENTS} concurrent clients, {REQUESTS} requests "
          f"each, over BatchDPIR (n={N}) ==\n")
    fifo = run("fifo")
    batch = run("window")

    print(f"{'':24}{'FIFO':>10}{'batched':>10}")
    for label, attribute in [
        ("ops / request", "ops_per_request"),
        ("throughput req/s", "throughput_rps"),
        ("mean batch size", "mean_batch_size"),
    ]:
        print(f"{label:24}{getattr(fifo, attribute):>10.2f}"
              f"{getattr(batch, attribute):>10.2f}")
    for label, attribute in [("p50", "p50_ms"), ("p95", "p95_ms"),
                             ("p99", "p99_ms")]:
        print(f"latency {label} ms{'':>9}"
              f"{getattr(fifo.latency, attribute):>10.2f}"
              f"{getattr(batch.latency, attribute):>10.2f}")

    saved = 1.0 - batch.ops_per_request / fifo.ops_per_request
    print(f"\nBatching the same requests saved {saved:.0%} of server "
          "operations per request")
    print("(pad-set unions overlap, so grouped queries share downloads)")
    print(f"and kept tenants fair: Jain index {batch.fairness_index:.3f}")
    print("\nFull report:\n")
    print(batch.to_text())
    print("\nDone.")


if __name__ == "__main__":
    main()
