"""Scenario: a deployment review for a privacy-preserving storage tier.

Pulls together the operational tooling around the constructions:

1. **Datasheets** — static privacy/cost summaries per candidate scheme;
2. **Network models** — projected response times on the links you run on;
3. **Privacy ledger** — how many queries a per-user ε budget buys.

Run with::

    python examples/deployment_review.py
"""

import math

from repro import (
    DPIR,
    DPRAM,
    LAN,
    LinearScanPIR,
    MOBILE,
    PathORAM,
    PrivacyLedger,
    SeededRandomSource,
    WAN,
    datasheet_for,
)
from repro.simulation.reporting import format_table
from repro.storage.blocks import integer_database

N = 4096
BLOCK_BYTES = 4096

rng = SeededRandomSource(17)
database = integer_database(N)

candidates = {
    "DP-IR": DPIR(database, epsilon=math.log(N), alpha=0.05,
                  rng=rng.spawn("ir")),
    "DP-RAM": DPRAM(database, rng=rng.spawn("ram")),
    "Path ORAM": PathORAM(database, rng=rng.spawn("oram")),
    "linear PIR": LinearScanPIR(database),
}

# 1. Datasheets -------------------------------------------------------------
for scheme in candidates.values():
    print(datasheet_for(scheme).to_text())
    print()

# 2. Projected response times ----------------------------------------------
rows = []
for name, scheme in candidates.items():
    sheet = datasheet_for(scheme)
    rows.append([
        name,
        round(LAN.response_time_ms(sheet.roundtrips,
                                   sheet.blocks_per_query, BLOCK_BYTES), 2),
        round(WAN.response_time_ms(sheet.roundtrips,
                                   sheet.blocks_per_query, BLOCK_BYTES), 1),
        round(MOBILE.response_time_ms(sheet.roundtrips,
                                      sheet.blocks_per_query, BLOCK_BYTES), 1),
    ])
print(format_table(
    ["scheme", "LAN ms", "WAN ms", "mobile ms"], rows,
    title=f"Projected response time per query ({BLOCK_BYTES}B blocks, n={N})",
))
print()

# 3. Budgeting a user session ------------------------------------------------
dpir = candidates["DP-IR"]
session_cap = 100 * math.log(N)   # policy: at most "100 queries worth"
ledger = PrivacyLedger(epsilon_cap=session_cap)
served = 0
while ledger.can_afford(dpir.epsilon):
    dpir.query(served % N)
    ledger.charge(dpir.epsilon)
    served += 1
report = ledger.report()
print(f"Per-session budget {session_cap:.1f} buys {served} DP-IR queries "
      f"(per-query eps = {dpir.epsilon:.2f}).")
print(f"Ledger: basic eps = {report.basic_epsilon:.1f}, advanced eps = "
      f"{report.advanced_epsilon:.1f} — at eps = Theta(log n), basic "
      f"composition is the binding account.")
