"""Scenario: privately reporting ad impressions (the paper's motivation).

The introduction motivates DP storage with systems such as private
ad-impression reporting [30]: a heavily-trafficked server stores one
record per campaign, clients fetch the record for the ad they just
displayed, and the access pattern must not reveal which campaign a given
client contributes to — but full obliviousness (PIR) would touch all n
records per fetch, which no ad system can afford.

This example serves a Zipf-distributed impression stream through three
alternatives and reports cost and privacy side by side:

* plaintext fetches      — 1 block/query,   every fetch leaked
* DP-IR (Algorithm 1)    — K blocks/query,  eps = ln(n), alpha errors
* linear-scan PIR        — n blocks/query,  perfect obliviousness

Run with::

    python examples/private_advertising.py
"""

import math

from repro import DPIR, LinearScanPIR, PlaintextRAM, SeededRandomSource
from repro.analysis.attacks import max_success_probability, membership_attack
from repro.simulation.harness import run_ir_trace, run_ram_trace
from repro.simulation.reporting import format_table
from repro.storage.blocks import integer_database
from repro.workloads.generators import zipf_trace

CAMPAIGNS = 4096
IMPRESSIONS = 500

rng = SeededRandomSource(7)
catalog = integer_database(CAMPAIGNS)
impressions = zipf_trace(CAMPAIGNS, IMPRESSIONS, rng.spawn("traffic"),
                         skew=1.1, name="ad-impressions")

plain = PlaintextRAM(catalog)
dpir = DPIR(catalog, epsilon=math.log(CAMPAIGNS), alpha=0.05,
            rng=rng.spawn("dpir"))
pir = LinearScanPIR(catalog)

read_only = impressions  # all reads; reuse for the RAM-shaped baseline
plain_metrics = run_ram_trace(plain, read_only, initial=catalog)
dpir_metrics = run_ir_trace(dpir, impressions, expected=catalog)
pir_metrics = run_ir_trace(pir, impressions, expected=catalog)

attack = membership_attack(dpir.sample_query_set, 0, 1, trials=2000,
                           rng=rng.spawn("attack"), epsilon=dpir.epsilon)

rows = [
    ["plaintext", plain_metrics.blocks_per_operation, "none",
     "every fetch visible", 0.0],
    ["DP-IR", dpir_metrics.blocks_per_operation,
     f"eps={dpir.epsilon:.2f}",
     f"attack success {attack.success_rate:.2f} "
     f"(ceiling {max_success_probability(dpir.epsilon):.2f})",
     dpir_metrics.error_rate],
    ["linear PIR", pir_metrics.blocks_per_operation, "eps=0 (oblivious)",
     "nothing visible", 0.0],
]
print(format_table(
    ["scheme", "blocks/fetch", "privacy", "adversary", "error rate"],
    rows,
    title=f"Serving {IMPRESSIONS} impressions over {CAMPAIGNS} campaigns",
))
print()
print(f"DP-IR costs {dpir_metrics.blocks_per_operation:.0f} blocks per fetch "
      f"({pir_metrics.blocks_per_operation / dpir_metrics.blocks_per_operation:.0f}x "
      f"cheaper than PIR) while hiding any individual impression up to "
      f"eps = ln(n).")
print("This is the paper's answer: with O(1) overhead, eps = Theta(log n) "
      "is the best achievable privacy (Theorems 3.4 + 5.1).")
