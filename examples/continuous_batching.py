"""Continuous batching under an open-loop flood, with admission caps.

Eight tenants flood one ``BatchDPIR`` worker far past its service rate.
The lock-step windowed scheduler serves every request — eventually —
by letting the queue (and therefore p99) grow with the backlog.  The
continuous scheduler pipelines dispatch groups across rounds, which
lifts sustained throughput; adding per-tenant admission credits sheds
the excess instead of queueing it, which is what actually bounds the
tail.  Run with::

    python examples/continuous_batching.py
"""

import repro

CLIENTS = 8
REQUESTS = 48
N = 256
RATE_RPS = 2000.0      # per tenant: far past the worker's service rate
CREDITS = 4
SEED = 2026

BASE = repro.ServingConfig(
    clients=CLIENTS,
    requests_per_client=REQUESTS,
    load="open",
    rate_rps=RATE_RPS,
    n=N,
    seed=SEED,
    network="lan",
)

CELLS = [
    ("windowed rounds", BASE.replace(scheduler="window",
                                     batch_window_ms=0.0)),
    ("continuous", BASE.replace(scheduler="continuous")),
    ("continuous + caps", BASE.replace(scheduler="continuous",
                                       tenant_credits=CREDITS)),
]


def main() -> None:
    print(f"== {CLIENTS} tenants flooding one BatchDPIR worker "
          f"(n={N}, {RATE_RPS:.0f} req/s each) ==\n")
    print("registered schedulers:")
    for spec in repro.schedulers():
        print(f"  {spec.name:<12} {spec.summary}")
    print()

    reports = [(label, repro.serve("batch_dp_ir", config))
               for label, config in CELLS]

    header = (f"{'':20}{'req/s':>8}{'p99 ms':>10}{'max queue':>11}"
              f"{'in-flight':>11}{'shed':>6}")
    print(header)
    for label, report in reports:
        print(f"{label:20}{report.throughput_rps:>8.1f}"
              f"{report.latency.p99_ms:>10.2f}"
              f"{report.max_queue_depth:>11}"
              f"{report.max_in_flight:>11}"
              f"{report.shed:>6}")

    windowed, continuous, capped = (report for _, report in reports)
    gain = continuous.throughput_rps / windowed.throughput_rps
    print(f"\npipelining dispatch groups sustains {gain:.1f}x the "
          "windowed throughput")
    print(f"admission caps ({CREDITS} credits/tenant) shed "
          f"{capped.shed}/{capped.requests} requests, bounding the "
          f"queue at {capped.max_queue_depth} "
          f"(was {continuous.max_queue_depth})")
    print("and the shed load is spread fairly across tenants:")
    for tenant in capped.fairness["tenants"]:
        print(f"  {tenant['tenant']:<12} offered {tenant['offered']:>3}  "
              f"shed {tenant['shed']:>3}  "
              f"({tenant['shed_fraction']:.0%})")

    assert continuous.throughput_rps > windowed.throughput_rps
    assert capped.latency.p99_ms < continuous.latency.p99_ms
    print("\nDone.")


if __name__ == "__main__":
    main()
