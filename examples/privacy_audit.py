"""Auditing privacy empirically: the strawman vs Algorithm 1.

Section 4 warns that "simple and tempting" constructions can be completely
insecure while looking private.  This example measures it:

1. exact (ε, δ) from the closed forms of Appendix B,
2. empirical δ̂ from sampled transcript distributions, and
3. a concrete membership attack's success rate,

for both the broken strawman and the real DP-IR at the same bandwidth.

Run with::

    python examples/privacy_audit.py
"""

from repro import DPIR, SeededRandomSource, StrawmanIR
from repro.analysis.attacks import max_success_probability, membership_attack
from repro.analysis.dp_ir_exact import (
    dpir_exact_delta,
    strawman_exact_delta,
)
from repro.analysis.estimators import estimate_delta
from repro.simulation.reporting import format_table
from repro.storage.blocks import integer_database

# Small n keeps the transcript space small enough (C(16,2) = 120 sets)
# that the plug-in delta estimator's one-sided sampling bias stays tiny.
N = 16
TRIALS = 8000

rng = SeededRandomSource(99)
database = integer_database(N)

strawman = StrawmanIR(database, rng=rng.spawn("strawman"))
dpir = DPIR(database, pad_size=2, alpha=0.25, rng=rng.spawn("dpir"))

reference_eps = dpir.epsilon  # audit both at the same epsilon

straw_delta_hat = estimate_delta(
    lambda r: strawman.sample_query_set(0),
    lambda r: strawman.sample_query_set(1),
    epsilon=reference_eps, trials=TRIALS, rng=rng.spawn("audit-s"),
)
dpir_delta_hat = estimate_delta(
    lambda r: dpir.sample_query_set(0),
    lambda r: dpir.sample_query_set(1),
    epsilon=reference_eps, trials=TRIALS, rng=rng.spawn("audit-d"),
)

straw_attack = membership_attack(strawman.sample_query_set, 0, 1, TRIALS,
                                 rng.spawn("atk-s"))
dpir_attack = membership_attack(dpir.sample_query_set, 0, 1, TRIALS,
                                rng.spawn("atk-d"), epsilon=reference_eps)

rows = [
    ["strawman (Sec 4)", "~2",
     round(strawman_exact_delta(N, reference_eps), 3),
     round(straw_delta_hat, 3),
     round(straw_attack.success_rate, 3)],
    ["DP-IR (Alg 1)", dpir.pad_size,
     round(dpir_exact_delta(N, dpir.pad_size, dpir.alpha, reference_eps), 3),
     round(dpir_delta_hat, 3),
     round(dpir_attack.success_rate, 3)],
]
print(format_table(
    ["scheme", "blocks/query", "exact delta", "empirical delta",
     "attack success"],
    rows,
    title=f"Audit at eps = {reference_eps:.2f}, n = {N} "
          f"(attack ceiling {max_success_probability(reference_eps):.3f})",
))
print()
print("Both schemes move ~2 blocks per query, but the strawman's delta is")
print(f"(n-1)/n = {strawman_exact_delta(N, 0):.3f} — no privacy at all —")
print("while Algorithm 1's delta is exactly 0 at its advertised epsilon.")
