"""Cluster deployment: shard groups, replica failover, online reshard.

The ROADMAP north star is serving millions of users; this example walks
the deployment layer that gets the paper's schemes there.  It builds a
4-shard x 2-replica cluster of DP-IR instances, kills one replica per
group, shows every read failing over (correct answers, measured
overhead), then reshards the cluster online from 4 to 8 groups and
proves retrieval is preserved.  Run with::

    python examples/cluster_deployment.py
"""

import repro
from repro.cluster import ClusterIR
from repro.cluster.bench import single_server_epsilon
from repro.storage.blocks import integer_database

N = 512
PAD = 32
SHARDS = 4
REPLICAS = 2
SEED = 2026


def main() -> None:
    print(f"== Deploying DP-IR as {SHARDS} shard groups x {REPLICAS} "
          f"replicas (n={N}, global pad K={PAD}) ==\n")

    blocks = integer_database(N)
    ir = ClusterIR(
        blocks,
        shard_count=SHARDS,
        replica_count=REPLICAS,
        pad_size=PAD,
        alpha=0.02,
        failure_rate=(1.0, 0.0),    # replica 0 of every group is down
        rng=repro.SeededRandomSource(SEED),
    )
    print(f"per-server storage: {ir.per_server_storage_blocks()} blocks "
          f"(= n/D = {N // SHARDS})")
    print(f"per-query epsilon:  {ir.epsilon:.4f} "
          f"(single-server exact budget: "
          f"{single_server_epsilon(N, PAD, 0.02):.4f})\n")

    answered = 0
    for i in range(N):
        answer = ir.query(i)
        if answer is not None:
            assert answer == blocks[i]
            answered += 1
    counters = ir.fault_counters()
    print(f"read every record once with replica 0 dead everywhere:")
    print(f"  answered correctly : {answered}/{N} "
          f"(rest were alpha-error events)")
    print(f"  failover reads     : {counters['failovers']}")
    print(f"  shard loads        : {ir.shard_loads()} "
          f"(Jain {ir.load_balance_index():.3f})")
    report = ir.ledger.report()
    print(f"  budget so far      : worst shard eps "
          f"{report.worst_shard_epsilon:.1f} over {report.queries} queries "
          f"(colluding bound {report.colluding_epsilon:.1f})\n")

    print(f"resharding online: {SHARDS} -> {2 * SHARDS} groups ...")
    migration = ir.reshard(2 * SHARDS)
    print(f"  moved {migration.moved_records} records at a cost of "
          f"{migration.migration_operations} server operations")
    print(f"  per-server storage now {ir.per_server_storage_blocks()} "
          f"blocks, per-query epsilon still {ir.epsilon:.4f}\n")

    spot_checks = [0, N // 3, N - 1]
    for i in spot_checks:
        answer = None
        while answer is None:
            answer = ir.query(i)
        assert answer == blocks[i]
    print(f"retrieval preserved after reshard (spot-checked "
          f"{spot_checks}; the ledger opened a fresh epoch for the new "
          "shard set)")
    print("\nDone.")


if __name__ == "__main__":
    main()
