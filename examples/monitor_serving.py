"""Online leakage monitoring: catching an under-padded scheme live.

The paper's lower bounds say meaningful privacy at small overhead is a
tight trade: a DP-IR instance that promises a small ε must pad its
download sets accordingly.  This example serves two schemes through
``repro.serve`` with ``ServingConfig(monitor=True)``:

* an **honest** DP-IR built for a tight ε target — at n=512 the
  cheapest pad honoring it is the full database, so the streaming
  membership attacker learns nothing and stays at a coin flip;
* an **under-padded cheat** that claims the same ε but secretly
  downloads only the real block — the monitor's empirical adversary
  success races past the ε-implied ceiling and trips.

The monitor plays one hypothesis-testing game per serving round (the
true operand versus a fresh decoy, guessed by membership in the
observed transcript) and only trips once the empirical rate clears the
theoretical bound plus a Hoeffding confidence slack, so finite-sample
noise cannot fire a false alarm.  Run with::

    python examples/monitor_serving.py
"""

from repro import DPIR, SeededRandomSource, ServingConfig, serve
from repro.storage.blocks import integer_database

N = 512
EPSILON_TARGET = 1.0
CLIENTS = 4
REQUESTS = 48
SEED = 5


class UnderPaddedDPIR(DPIR):
    """A cheat: claims the honest scheme's ε but skips the padding.

    Overriding the pad-set draw to return only the real index is
    exactly the failure mode a deployment bug (or a malicious build)
    would produce: every answer is still correct, every counter looks
    normal, only the *transcript* leaks — which is what the online
    monitor watches.
    """

    def _draw_set(self, index: int):
        return [index], True


def run(label: str, scheme) -> bool:
    config = ServingConfig(
        clients=CLIENTS,
        requests_per_client=REQUESTS,
        scheduler="fifo",
        seed=SEED,
        monitor=True,
    )
    report = serve(scheme, config)
    print(f"-- {label} --")
    for leakage in report.leakage:
        print(f"  {leakage.to_text()}")
    print(f"  completed {report.completed} requests, "
          f"monitor tripped: {report.leakage_tripped}\n")
    return report.leakage_tripped


def main() -> None:
    print(f"== Online leakage monitors (n={N}, "
          f"eps target {EPSILON_TARGET}) ==\n")
    rng = SeededRandomSource(2026)
    database = integer_database(N)

    honest = DPIR(
        database, epsilon=EPSILON_TARGET, alpha=0.05, rng=rng.spawn("honest")
    )
    print(f"honest pad: {honest.pad_size}/{N} blocks per query "
          f"(exact eps = {honest.epsilon:.4f})\n")
    honest_tripped = run("honest DP-IR", honest)

    cheat = UnderPaddedDPIR(
        database, epsilon=EPSILON_TARGET, alpha=0.05, rng=rng.spawn("cheat")
    )
    cheat_tripped = run("under-padded cheat (same eps claim)", cheat)

    assert not honest_tripped, "honest scheme must stay within its bound"
    assert cheat_tripped, "the cheat must trip the monitor"
    print("the monitor cleared the honest scheme and caught the cheat.")
    print("Done.")


if __name__ == "__main__":
    main()
