"""Tracing a cluster run: spans, metrics, and the exact ε timeline.

Drives a 4-shard DP-IR cluster through a batched parallel workload with
the full observability stack attached: a deterministic span tracer (the
same span *tree* every run — serial, parallel or simulated), a metrics
registry exported in Prometheus text format, and a budget timeline that
receives every ledger charge as an exact Fraction.  Run with::

    python examples/trace_cluster.py
"""

import json
from fractions import Fraction

from repro.cluster.config import ClusterConfig
from repro.cluster.service import cluster
from repro.obs import (
    BudgetTimeline,
    MetricsRegistry,
    Tracer,
    canonical_trace,
    summary_to_text,
    trace_summary,
)

SHARDS = 4
REQUESTS = 64
SEED = 2026


def main() -> None:
    print(f"== Tracing a {SHARDS}-shard cluster "
          f"({REQUESTS} requests, batched parallel fan-out) ==\n")

    tracer = Tracer("trace_cluster")
    registry = MetricsRegistry()
    timeline = BudgetTimeline(cap=Fraction(200))
    report = cluster("dp_ir", ClusterConfig(
        shards=SHARDS, replicas=1, n=512, requests=REQUESTS,
        pad_size=16, seed=SEED, executor="parallel", batch=8,
        tracer=tracer, metrics_registry=registry, timeline=timeline,
    ))
    print(f"completed {report.completed}/{report.requests} requests, "
          f"overlap speedup {report.overlap_speedup:.2f}x\n")

    trace = tracer.export()
    roots = sum(1 for span in trace["spans"] if span["parent"] is None)
    print(f"-- span tree: {len(trace['spans'])} spans, {roots} roots --")
    for span in trace["spans"][:6]:
        depth = span["id"].count(".")
        labels = ",".join(f"{k}={v}"
                          for k, v in sorted(span["labels"].items()))
        print(f"  {'  ' * depth}{span['id']:<8} {span['name']} [{labels}]")
    print("  ...")

    print("\n-- per-round critical paths (straggler legs) --")
    summary = trace_summary(trace)
    dispatch_rounds = [entry for entry in summary["rounds"]
                       if entry["name"] == "cluster.query_many"]
    print(summary_to_text({"spans": summary["spans"],
                           "rounds": dispatch_rounds}))

    print("\n-- Prometheus scrape --")
    for line in registry.to_prometheus().splitlines():
        if "epsilon" in line or "repro_queries" in line:
            print(f"  {line}")

    print("\n-- exact epsilon spend timeline --")
    print(timeline.to_text())
    total = timeline.total_spent
    print(f"  total spent (exact): {total.numerator}/{total.denominator}")

    # The determinism contract: the canonical trace (wall-clock fields
    # stripped) is bit-identical across same-seed runs and executors.
    replay = Tracer("trace_cluster")
    cluster("dp_ir", ClusterConfig(
        shards=SHARDS, replicas=1, n=512, requests=REQUESTS,
        pad_size=16, seed=SEED, executor="serial", batch=8,
        tracer=replay,
    ))
    identical = (
        json.dumps(canonical_trace(trace), sort_keys=True)
        == json.dumps(canonical_trace(replay.export()), sort_keys=True)
    )
    print(f"\nserial replay emits an identical canonical trace: "
          f"{identical}")
    assert identical
    print("Done.")


if __name__ == "__main__":
    main()
