"""The overhead gap: DP-RAM vs Path ORAM as the database grows.

The paper's core trade: obliviousness costs Ω(log n) per query (and Path
ORAM pays 2·Z·(log n + 1)), while ε = Θ(log n) differential privacy costs
a flat 3 blocks.  This example sweeps n and prints the widening factor,
plus client-memory figures for both schemes.

Run with::

    python examples/oram_comparison.py
"""

from repro import DPRAM, PathORAM, SeededRandomSource
from repro.simulation.harness import run_ram_trace
from repro.simulation.reporting import format_table
from repro.storage.blocks import integer_database
from repro.workloads.generators import read_write_trace

QUERIES = 200

rng = SeededRandomSource(5)
rows = []
for exponent in (8, 10, 12, 14):
    n = 2**exponent
    database = integer_database(n)
    trace = read_write_trace(n, QUERIES, rng.spawn(f"trace-{n}"),
                             write_fraction=0.3)

    dpram = DPRAM(database, rng=rng.spawn(f"dpram-{n}"))
    oram = PathORAM(database, rng=rng.spawn(f"oram-{n}"))

    dpram_metrics = run_ram_trace(dpram, trace, initial=database)
    oram_metrics = run_ram_trace(oram, trace, initial=database)
    assert dpram_metrics.mismatches == 0
    assert oram_metrics.mismatches == 0

    rows.append([
        f"2^{exponent}",
        dpram_metrics.blocks_per_operation,
        round(oram_metrics.blocks_per_operation, 1),
        round(oram_metrics.blocks_per_operation
              / dpram_metrics.blocks_per_operation, 1),
        dpram.stash_peak,
        oram.stash_peak,
        round(dpram.params.epsilon_bound, 1),
    ])

print(format_table(
    ["n", "DP-RAM blk/op", "ORAM blk/op", "factor",
     "DP-RAM stash", "ORAM stash", "DP-RAM eps bound"],
    rows,
    title=f"{QUERIES} mixed reads/writes per scheme",
))
print()
print("DP-RAM's column never moves: 1 download + 1 download + 1 upload,")
print("independent of n (Theorem 6.1). Path ORAM's grows with log n, so")
print("the factor keeps widening — the price of hiding *everything*")
print("rather than each individual query (epsilon = Theta(log n)).")
