"""Legacy setup shim.

``pip install -e .`` needs the ``wheel`` package for PEP 660 editable
builds; on offline machines without it, ``python setup.py develop`` keeps
working through this shim.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
