"""repro — differentially private storage access with small overhead.

A full reproduction of Patel, Persiano and Yeo, *"What Storage Access
Privacy is Achievable with Small Overhead?"* (PODS 2019): the DP-IR,
DP-RAM and DP-KVS constructions, the lower bounds they match, the
oblivious two-choice hashing substrate, oblivious baselines (Path ORAM,
linear PIR), and the privacy-audit machinery used to verify every claim
empirically.

Quickstart::

    import repro

    ram = repro.build("dp_ram", n=1024)   # eps = O(log n), 3 blocks/query
    value = ram.read(7)
    ram.write(7, b"new".ljust(64, b"\\x00"))

Every scheme is registered in :mod:`repro.api` and constructible by name
via :func:`repro.build`; direct class construction (``DPRAM(blocks)``)
keeps working.  See README.md for the architecture overview and
``python -m repro experiments`` for the paper-versus-measured results.
"""

from repro.analysis.datasheet import PrivacyDatasheet, datasheet_for
from repro.analysis.ledger import BudgetExceededError, PrivacyLedger
from repro.api import (
    PrivateIR,
    PrivateKVS,
    PrivateRAM,
    Scheme,
    available_schemes,
    build,
    register_scheme,
    schemes,
)
from repro.baselines import (
    LinearScanPIR,
    ORAMKeyValueStore,
    PathORAM,
    PlaintextKVS,
    PlaintextRAM,
    RecursivePathORAM,
)
from repro.core import (
    BatchDPIR,
    BucketDPRAM,
    DPIR,
    DPIRParams,
    DPKVS,
    DPKVSParams,
    DPRAM,
    DPRAMParams,
    MultiServerDPIR,
    ReadOnlyDPRAM,
    ShardedDPIR,
    StrawmanIR,
)
# repro.cluster stays the (callable) subpackage: ``repro.cluster(...)``
# runs a deployment, ``repro.cluster.ClusterIR`` still resolves.
import repro.cluster as cluster  # noqa: F401
from repro.cluster import (
    ClusterConfig,
    ClusterIR,
    ClusterKVS,
    ClusterLedger,
    ClusterReport,
)
from repro.crypto import PRF, SeededRandomSource, SystemRandomSource
from repro.obs import (
    BudgetTimeline,
    LeakageReport,
    MetricsRegistry,
    NullTracer,
    Tracer,
    TracingExecutor,
    default_monitors,
    diff_traces,
    evaluate_slo,
    instrument_scheme,
    trace_profile,
    trace_summary,
    watch_scheme,
)
from repro.parallel import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    SimulatedParallelExecutor,
    resolve_executor,
)
from repro.serving import (
    ContinuousBatchScheduler,
    FIFOScheduler,
    RequestScheduler,
    ServingConfig,
    ServingReport,
    WindowedBatchScheduler,
    register_scheduler,
    serve,
)
from repro.serving import scheduler_listings as schedulers
from repro.storage import (
    InMemoryBackend,
    SlabBackend,
    NetworkBackend,
    ServerPool,
    StorageBackend,
    StorageServer,
    Transcript,
)
from repro.storage.network import LAN, MOBILE, WAN, NetworkModel

__version__ = "1.0.0"

__all__ = [
    "BatchDPIR",
    "BucketDPRAM",
    "BudgetExceededError",
    "BudgetTimeline",
    "ClusterConfig",
    "ClusterIR",
    "ClusterKVS",
    "ClusterLedger",
    "ClusterReport",
    "ContinuousBatchScheduler",
    "DPIR",
    "DPIRParams",
    "DPKVS",
    "DPKVSParams",
    "DPRAM",
    "DPRAMParams",
    "Executor",
    "FIFOScheduler",
    "InMemoryBackend",
    "LAN",
    "LeakageReport",
    "LinearScanPIR",
    "MOBILE",
    "MetricsRegistry",
    "MultiServerDPIR",
    "NetworkBackend",
    "NetworkModel",
    "NullTracer",
    "ORAMKeyValueStore",
    "PRF",
    "ParallelExecutor",
    "PathORAM",
    "PlaintextKVS",
    "PlaintextRAM",
    "PrivacyDatasheet",
    "PrivacyLedger",
    "PrivateIR",
    "PrivateKVS",
    "PrivateRAM",
    "ReadOnlyDPRAM",
    "RecursivePathORAM",
    "RequestScheduler",
    "Scheme",
    "SeededRandomSource",
    "SerialExecutor",
    "ServerPool",
    "ServingConfig",
    "ServingReport",
    "ShardedDPIR",
    "SimulatedParallelExecutor",
    "SlabBackend",
    "StorageBackend",
    "StorageServer",
    "StrawmanIR",
    "SystemRandomSource",
    "Tracer",
    "TracingExecutor",
    "Transcript",
    "WAN",
    "WindowedBatchScheduler",
    "available_schemes",
    "build",
    "cluster",
    "datasheet_for",
    "default_monitors",
    "diff_traces",
    "evaluate_slo",
    "instrument_scheme",
    "register_scheduler",
    "register_scheme",
    "resolve_executor",
    "schedulers",
    "schemes",
    "serve",
    "trace_profile",
    "trace_summary",
    "watch_scheme",
]
