"""repro — differentially private storage access with small overhead.

A full reproduction of Patel, Persiano and Yeo, *"What Storage Access
Privacy is Achievable with Small Overhead?"* (PODS 2019): the DP-IR,
DP-RAM and DP-KVS constructions, the lower bounds they match, the
oblivious two-choice hashing substrate, oblivious baselines (Path ORAM,
linear PIR), and the privacy-audit machinery used to verify every claim
empirically.

Quickstart::

    from repro import DPRAM
    from repro.storage.blocks import integer_database

    db = integer_database(1024)
    ram = DPRAM(db)              # eps = O(log n), 3 blocks per query
    value = ram.read(7)
    ram.write(7, b"new".ljust(64, b"\\x00"))

See README.md for the architecture overview and EXPERIMENTS.md for the
paper-versus-measured results.
"""

from repro.analysis.datasheet import PrivacyDatasheet, datasheet_for
from repro.analysis.ledger import BudgetExceededError, PrivacyLedger
from repro.baselines import (
    LinearScanPIR,
    ORAMKeyValueStore,
    PathORAM,
    PlaintextKVS,
    PlaintextRAM,
    RecursivePathORAM,
)
from repro.core import (
    BatchDPIR,
    BucketDPRAM,
    DPIR,
    DPIRParams,
    DPKVS,
    DPKVSParams,
    DPRAM,
    DPRAMParams,
    MultiServerDPIR,
    ReadOnlyDPRAM,
    ShardedDPIR,
    StrawmanIR,
)
from repro.crypto import PRF, SeededRandomSource, SystemRandomSource
from repro.storage import ServerPool, StorageServer, Transcript
from repro.storage.network import LAN, MOBILE, WAN, NetworkModel

__version__ = "1.0.0"

__all__ = [
    "BatchDPIR",
    "BucketDPRAM",
    "BudgetExceededError",
    "DPIR",
    "DPIRParams",
    "DPKVS",
    "DPKVSParams",
    "DPRAM",
    "DPRAMParams",
    "LAN",
    "LinearScanPIR",
    "MOBILE",
    "MultiServerDPIR",
    "NetworkModel",
    "ORAMKeyValueStore",
    "PRF",
    "PathORAM",
    "PlaintextKVS",
    "PlaintextRAM",
    "PrivacyDatasheet",
    "PrivacyLedger",
    "ReadOnlyDPRAM",
    "RecursivePathORAM",
    "SeededRandomSource",
    "ServerPool",
    "ShardedDPIR",
    "StorageServer",
    "StrawmanIR",
    "SystemRandomSource",
    "Transcript",
    "WAN",
    "datasheet_for",
]
