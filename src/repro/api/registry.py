"""Scheme registry and the ``repro.build`` factory.

Every scheme ships with a *builder* — a keyword-only callable that turns
deployment-level parameters (``n``, ``block_size``, ``seed``, ``backend``,
scheme-specific knobs) into a configured instance.  Builders register
themselves under a stable snake_case name with :func:`register_scheme`;
consumers construct any scheme by name::

    import repro

    ram = repro.build("dp_ram", n=4096, seed=7)
    kvs = repro.build("dp_kvs", n=1024, value_size=16)
    ir = repro.build("dp_ir", n=2**16, epsilon=11.1, backend="network",
                     network="wan")

The registry is the one place that knows the full scheme catalogue, so
the CLI's ``run`` subcommand, the conformance test suite and future
benchmark sweeps all enumerate :func:`available_schemes` instead of
hard-coding class lists.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Callable

from repro.api.protocols import Scheme

_BUILDERS_MODULE = "repro.api.builders"


@dataclass(frozen=True)
class SchemeSpec:
    """One registry entry.

    Attributes:
        name: the stable snake_case registry key (e.g. ``"dp_ram"``).
        kind: the protocol the built scheme implements — ``"ir"``,
            ``"ram"`` or ``"kvs"``.
        builder: keyword-only callable returning a configured instance.
        summary: one-line description for ``--help`` style listings.
    """

    name: str
    kind: str
    builder: Callable[..., Scheme]
    summary: str


_REGISTRY: dict[str, SchemeSpec] = {}

# Hyphenated and contracted spellings people naturally type map onto the
# registry's snake_case catalogue ("batch-dpir" -> "batch_dp_ir").  Every
# name-accepting entry point (build(), the run/serve CLIs, serve()) goes
# through scheme_spec(), so the aliases work uniformly.
_ALIASES = {
    "dpir": "dp_ir",
    "batch_dpir": "batch_dp_ir",
    "multi_server_dpir": "multi_server_dp_ir",
    "sharded_dpir": "sharded_dp_ir",
    "dpram": "dp_ram",
    "read_only_dpram": "read_only_dp_ram",
    "bucket_dpram": "bucket_dp_ram",
    "dpkvs": "dp_kvs",
    "cluster_dpir": "cluster_dp_ir",
    "cluster_batch_dpir": "cluster_batch_dp_ir",
    "cluster_dpkvs": "cluster_dp_kvs",
}


def resolve_scheme_name(name: str) -> str:
    """Normalize a user-facing scheme spelling to its registry key."""
    key = name.strip().lower().replace("-", "_")
    return _ALIASES.get(key, key)


def register_scheme(
    name: str, *, kind: str, summary: str = ""
) -> Callable[[Callable[..., Scheme]], Callable[..., Scheme]]:
    """Class decorator-style registration of a scheme builder.

    Args:
        name: registry key; must be unique.
        kind: ``"ir"``, ``"ram"`` or ``"kvs"``.
        summary: one-line description shown by listings.

    Returns:
        A decorator that records the builder and returns it unchanged.
    """
    if kind not in ("ir", "ram", "kvs"):
        raise ValueError(f"unknown scheme kind {kind!r}; expected ir/ram/kvs")

    def decorator(builder: Callable[..., Scheme]) -> Callable[..., Scheme]:
        if name in _REGISTRY:
            raise ValueError(f"scheme {name!r} is already registered")
        _REGISTRY[name] = SchemeSpec(
            name=name,
            kind=kind,
            builder=builder,
            summary=summary or (builder.__doc__ or "").strip().split("\n")[0],
        )
        return builder

    return decorator


def _ensure_builders_loaded() -> None:
    """Import the stock builders exactly once.

    Deferred so that scheme modules can import
    :mod:`repro.api.protocols` without creating an import cycle through
    the builder catalogue (which imports every scheme module).
    """
    importlib.import_module(_BUILDERS_MODULE)


def available_schemes(kind: str | None = None) -> tuple[str, ...]:
    """Registered scheme names, optionally filtered by ``kind``."""
    _ensure_builders_loaded()
    names = (
        name
        for name, spec in _REGISTRY.items()
        if kind is None or spec.kind == kind
    )
    return tuple(sorted(names))


@dataclass(frozen=True)
class SchemeListing:
    """One catalogue row of :func:`schemes`: a name plus its aliases.

    Attributes:
        name: the stable registry key.
        kind: ``"ir"``, ``"ram"`` or ``"kvs"``.
        summary: one-line description.
        aliases: contracted spellings that resolve to ``name`` (the
            hyphenated variants follow by substituting ``-`` for ``_``).
    """

    name: str
    kind: str
    summary: str
    aliases: tuple[str, ...]


def schemes(kind: str | None = None) -> tuple[SchemeListing, ...]:
    """The full catalogue — registered names *and* their aliases.

    Used by CLI ``--scheme`` validation and ``--help`` text, and by any
    consumer that wants to show users every accepted spelling rather
    than just the canonical registry keys.
    """
    _ensure_builders_loaded()
    listings = []
    for name in available_schemes(kind):
        spec = _REGISTRY[name]
        aliases = tuple(sorted(
            alias for alias, target in _ALIASES.items() if target == name
        ))
        listings.append(SchemeListing(
            name=name, kind=spec.kind, summary=spec.summary, aliases=aliases,
        ))
    return tuple(listings)


def scheme_spec(name: str) -> SchemeSpec:
    """The :class:`SchemeSpec` registered under ``name``.

    Accepts the hyphenated/contracted aliases of
    :func:`resolve_scheme_name` (``"batch-dpir"`` finds ``batch_dp_ir``).

    Raises:
        ValueError: for unknown names (listing what is available).
    """
    _ensure_builders_loaded()
    try:
        return _REGISTRY[resolve_scheme_name(name)]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(
            f"unknown scheme {name!r}; registered schemes: {known}"
        ) from None


def build(name: str, **kwargs: object) -> Scheme:
    """Construct the scheme registered under ``name``.

    All keyword arguments are forwarded to the scheme's builder; common
    ones are ``n`` (database size / key capacity), ``block_size``,
    ``seed`` (deterministic randomness), ``backend`` (``"memory"`` /
    ``"network"`` or a backend factory) and ``network`` (a link name or
    :class:`~repro.storage.network.NetworkModel`).

    Raises:
        ValueError: for unknown scheme names.
    """
    return scheme_spec(name).builder(**kwargs)
