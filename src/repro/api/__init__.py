"""The unified scheme API: protocols, backends, registry and factory.

This package is the seam between scheme implementations and everything
that drives them (harness, CLI, examples, benchmarks)::

    consumers (harness / CLI / examples / benchmarks)
          │  talk only to…
          ▼
    repro.api  — PrivateIR / PrivateRAM / PrivateKVS protocols,
          │      repro.build(name, ...) factory, scheme registry
          ▼
    repro.core + repro.baselines — the constructions
          │  store blocks through…
          ▼
    repro.storage — StorageServer over pluggable StorageBackend
                    (in-memory, simulated network links, …)

Typical use::

    import repro

    ram = repro.build("dp_ram", n=4096, seed=7)
    ram.write(3, b"hello".ljust(64, b"\\x00"))
    assert ram.read(3).startswith(b"hello")

    for name in repro.available_schemes("kvs"):
        print(name)

New schemes register a builder with
:func:`~repro.api.registry.register_scheme` and implement the matching
protocol; nothing else in the library needs to learn about them.

The serving layer rides the same seam: :func:`repro.serving.serve` (also
reachable as ``repro.api.serve``) builds any registered scheme by name
and drives it with concurrent clients; because it dispatches through the
protocol ``*_many`` entry points, every scheme — including ones
registered by downstream code — is servable without extra wiring.

So does the cluster layer: :mod:`repro.cluster` composes any registered
IR/KVS scheme into shard groups with replicas, and the resulting
``ClusterIR`` / ``ClusterKVS`` are themselves registered
(``cluster_dp_ir`` …), so they pass the same conformance suite and are
servable like any single-node scheme.  :func:`schemes` lists the full
catalogue including the accepted alias spellings.
"""

from repro.api.protocols import PrivateIR, PrivateKVS, PrivateRAM, Scheme
from repro.api.registry import (
    SchemeListing,
    SchemeSpec,
    available_schemes,
    build,
    register_scheme,
    scheme_spec,
    schemes,
)
from repro.storage.backends import (
    BackendFactory,
    InMemoryBackend,
    SlabBackend,
    NetworkBackend,
    NetworkBackendFactory,
    StorageBackend,
)

__all__ = [
    "BackendFactory",
    "InMemoryBackend",
    "SlabBackend",
    "NetworkBackend",
    "NetworkBackendFactory",
    "PrivateIR",
    "PrivateKVS",
    "PrivateRAM",
    "Scheme",
    "SchemeListing",
    "SchemeSpec",
    "StorageBackend",
    "available_schemes",
    "build",
    "register_scheme",
    "scheme_spec",
    "schemes",
    "serve",
]


def __getattr__(name: str) -> object:
    # Lazy: repro.serving consumes this package (registry, protocols,
    # backends), so importing it eagerly here would be a cycle.
    if name == "serve":
        from repro.serving import serve

        return serve
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
