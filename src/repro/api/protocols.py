"""Typed scheme protocols: the one surface every consumer talks to.

Historically the harness, CLI, examples and benchmarks each duck-typed
the schemes (``hasattr(scheme, "server")``, ``getattr(scheme, "pool")``,
…).  This module replaces that with three abstract base classes — one per
paper primitive — plus a shared *scheme info* surface:

* :class:`Scheme` — ``n``, ``block_size``, :meth:`Scheme.servers`,
  operation counters, transcript attach/detach, and an optional client
  storage figure.  Metrics code never probes attributes again.
* :class:`PrivateIR` — ``query`` / ``query_many`` (Section 2.1's IR).
* :class:`PrivateRAM` — ``read``/``write`` and their ``*_many`` forms.
* :class:`PrivateKVS` — ``get``/``put``/``delete`` and ``get_many``.

The ``*_many`` entry points default to per-operation loops so every
scheme supports batched drivers; constructions that can genuinely
amortize (``BatchDPIR`` fetches the union of pad sets,
``MultiServerDPIR`` coalesces per-replica reads) override them.
"""

from __future__ import annotations

import abc
from typing import Iterable, Sequence

from repro.storage.server import StorageServer
from repro.storage.transcript import Transcript


class Scheme(abc.ABC):
    """Shared introspection surface of every scheme in the library."""

    #: Which primitive this scheme implements: ``"ir"``, ``"ram"`` or
    #: ``"kvs"``.  Set by the protocol subclasses.
    kind: str = "scheme"

    @property
    @abc.abstractmethod
    def n(self) -> int:
        """Database size (IR/RAM) or key capacity (KVS)."""

    @property
    @abc.abstractmethod
    def block_size(self) -> int:
        """Bytes per logical block the scheme stores or serves."""

    @abc.abstractmethod
    def servers(self) -> tuple[StorageServer, ...]:
        """Every passive server the scheme talks to.

        Single-server schemes return a 1-tuple; replicated, sharded and
        recursive constructions return one entry per server.  An empty
        tuple is legal (a scheme whose servers are not yet provisioned)
        and simply counts zero operations.
        """

    def server_counters(self) -> tuple[int, int]:
        """Total ``(reads, writes)`` across :meth:`servers`."""
        reads = 0
        writes = 0
        for server in self.servers():
            reads += server.reads
            writes += server.writes
        return reads, writes

    def server_operations(self) -> int:
        """Total operations (downloads + uploads) across :meth:`servers`."""
        reads, writes = self.server_counters()
        return reads + writes

    def wall_operations(self) -> float:
        """Overlap-accounted operation units consumed so far.

        A single-worker scheme performs its server operations one after
        another, so the default equals :meth:`server_operations`.
        Deployments that fan independent legs out concurrently (the
        cluster schemes under a parallel executor) override this with
        their per-stage max-over-legs accounting — the quantity the
        ``wall_clock_ms`` report fields price, while
        :meth:`server_operations` keeps pricing ``serial_ms``.
        """
        return float(self.server_operations())

    def attach_transcript(self, transcript: Transcript) -> None:
        """Record the adversary view of subsequent queries.

        All servers append into the same transcript, matching how the
        privacy auditors consume multi-server views.
        """
        for server in self.servers():
            server.attach_transcript(transcript)

    def detach_transcript(self) -> Transcript | None:
        """Stop recording and return the transcript, if any was attached."""
        detached: Transcript | None = None
        for server in self.servers():
            transcript = server.detach_transcript()
            if detached is None:
                detached = transcript
        return detached

    @property
    def client_peak_blocks(self) -> int | None:
        """Peak client storage in blocks; ``None`` for stateless clients."""
        return None


class PrivateIR(Scheme):
    """Read-only retrieval with a data-independent error event."""

    kind = "ir"

    @abc.abstractmethod
    def query(self, index: int) -> bytes | None:
        """Retrieve block ``index``; ``None`` on the scheme's error event."""

    def query_many(self, indices: Sequence[int]) -> list[bytes | None]:
        """Answer ``indices`` in order; default is one query per index.

        Schemes that can amortize (shared pad sets, coalesced reads)
        override this with a genuinely batched implementation.
        """
        return [self.query(index) for index in indices]


class PrivateRAM(Scheme):
    """Read/write access to ``n`` fixed-size records."""

    kind = "ram"

    #: Whether :meth:`write` is supported; read-only variants set this to
    #: ``False`` and raise on writes.
    writable: bool = True

    @abc.abstractmethod
    def read(self, index: int) -> bytes:
        """Retrieve the current version of record ``index``."""

    @abc.abstractmethod
    def write(self, index: int, value: bytes) -> None:
        """Overwrite record ``index`` with ``value``."""

    def read_many(self, indices: Sequence[int]) -> list[bytes]:
        """Read ``indices`` in order; default is one query per index."""
        return [self.read(index) for index in indices]

    def write_many(self, items: Iterable[tuple[int, bytes]]) -> None:
        """Apply ``(index, value)`` overwrites in order."""
        for index, value in items:
            self.write(index, value)


class PrivateKVS(Scheme):
    """Key-value storage over a large key universe.

    Values are exact: ``get`` returns precisely the bytes that were
    ``put``, with any fixed-size storage padding stripped by the scheme
    itself (each scheme declares its :attr:`value_size` budget).
    """

    kind = "kvs"

    @property
    @abc.abstractmethod
    def value_size(self) -> int:
        """Maximum value length in bytes accepted by :meth:`put`."""

    @abc.abstractmethod
    def get(self, key: bytes) -> bytes | None:
        """Retrieve the exact value for ``key``; ``None`` if absent (⊥)."""

    @abc.abstractmethod
    def put(self, key: bytes, value: bytes) -> None:
        """Insert or update ``key`` with ``value``."""

    @abc.abstractmethod
    def delete(self, key: bytes) -> bool:
        """Remove ``key`` if present; returns whether it existed."""

    def get_many(self, keys: Sequence[bytes]) -> list[bytes | None]:
        """Retrieve ``keys`` in order; default is one query per key."""
        return [self.get(key) for key in keys]
