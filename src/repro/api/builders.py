"""Stock builders: every core and baseline scheme, registered by name.

Builders translate deployment-level keyword arguments into scheme
constructor calls:

* ``n`` — database size (IR/RAM) or key capacity (KVS).
* ``block_size`` — record size in bytes for index-addressed schemes.
* ``blocks`` — an explicit initial database (overrides ``n``/``block_size``;
  ``n`` then defaults to ``len(blocks)``).
* ``seed`` — deterministic randomness (mutually exclusive with ``rng``).
* ``backend`` — ``"memory"`` (default), ``"network"``, or any
  :data:`~repro.storage.backends.BackendFactory`.
* ``network`` — ``"lan"`` / ``"wan"`` / ``"mobile"`` or a
  :class:`~repro.storage.network.NetworkModel`; implies
  ``backend="network"``.

Scheme-specific knobs (``epsilon``, ``alpha``, ``phi``, ``value_size``,
``server_count``, …) pass straight through to the constructors.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Sequence

if TYPE_CHECKING:
    from repro.cluster.scheme import ClusterIR, ClusterKVS

from repro.api.registry import register_scheme
from repro.baselines.linear_pir import LinearScanPIR
from repro.baselines.oram_kvs import ORAMKeyValueStore
from repro.baselines.path_oram import PathORAM
from repro.baselines.plaintext import PlaintextKVS, PlaintextRAM
from repro.baselines.recursive_oram import RecursivePathORAM
from repro.core.batch_ir import BatchDPIR
from repro.core.bucket_ram import BucketDPRAM
from repro.core.dp_ir import DPIR
from repro.core.dp_kvs import DPKVS
from repro.core.dp_ram import DPRAM, ReadOnlyDPRAM
from repro.core.multi_server import MultiServerDPIR
from repro.core.sharded_ir import ShardedDPIR
from repro.core.strawman import StrawmanIR
from repro.crypto.rng import RandomSource, SeededRandomSource, SystemRandomSource
from repro.storage.backends import (
    BackendFactory,
    NetworkBackendFactory,
    SlabBackend,
)
from repro.storage.blocks import DEFAULT_BLOCK_SIZE, integer_database
from repro.storage.network import LAN, MOBILE, WAN, NetworkModel

_NETWORKS = {"lan": LAN, "wan": WAN, "mobile": MOBILE}


def resolve_network(network: NetworkModel | str) -> NetworkModel:
    """Map a link name (``lan``/``wan``/``mobile``) to its model."""
    if isinstance(network, NetworkModel):
        return network
    try:
        return _NETWORKS[network.lower()]
    except KeyError:
        known = ", ".join(sorted(_NETWORKS))
        raise ValueError(
            f"unknown network {network!r}; expected one of {known} "
            "or a NetworkModel"
        ) from None


def resolve_backend(
    backend: BackendFactory | str | None,
    network: NetworkModel | str | None = None,
) -> BackendFactory | None:
    """Turn the ``backend``/``network`` kwargs into a backend factory.

    An explicit ``backend="memory"`` always keeps the in-memory default
    (even when a ``network`` is also given); ``backend="slab"`` stores
    every server's slots in one contiguous
    :class:`~repro.storage.backends.SlabBackend`; ``backend="network"``
    — or a ``network`` argument with ``backend`` unset — builds a
    :class:`~repro.storage.backends.NetworkBackendFactory` so simulated
    link time is accounted across all of a scheme's servers.
    """
    if backend == "memory":
        return None
    if backend == "slab":
        return SlabBackend
    if backend is None:
        if network is None:
            return None
        return NetworkBackendFactory(resolve_network(network))
    if backend == "network":
        return NetworkBackendFactory(resolve_network(network or WAN))
    if isinstance(backend, str):
        raise ValueError(
            f"unknown backend {backend!r}; expected 'memory', 'slab', "
            "'network' or a backend factory"
        )
    return backend


def _resolve_rng(
    rng: RandomSource | None, seed: int | bytes | str | None
) -> RandomSource:
    if rng is not None and seed is not None:
        raise ValueError("provide at most one of rng and seed")
    if rng is not None:
        return rng
    if seed is not None:
        return SeededRandomSource(seed)
    return SystemRandomSource()


def _resolve_blocks(
    n: int | None,
    block_size: int,
    blocks: Sequence[bytes] | None,
) -> list[bytes]:
    if blocks is not None:
        return [bytes(block) for block in blocks]
    return integer_database(n if n is not None else 1024, block_size)


def _default_epsilon(data: Sequence[bytes]) -> float:
    """The ``eps = ln n`` sweet spot (constant bandwidth, Theorem 3.4)."""
    return math.log(max(len(data), 2))


@register_scheme("dp_ir", kind="ir",
                 summary="Algorithm 1: single-server ε-DP-IR with error α")
def build_dp_ir(
    *,
    n: int | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    blocks: Sequence[bytes] | None = None,
    epsilon: float | None = None,
    pad_size: int | None = None,
    alpha: float = 0.05,
    seed: int | bytes | str | None = None,
    rng: RandomSource | None = None,
    backend: BackendFactory | str | None = None,
    network: NetworkModel | str | None = None,
    batched: bool = True,
) -> DPIR:
    """Build a :class:`~repro.core.dp_ir.DPIR` (ε defaults to ``ln n``)."""
    data = _resolve_blocks(n, block_size, blocks)
    if epsilon is None and pad_size is None:
        epsilon = _default_epsilon(data)
    return DPIR(
        data,
        epsilon=epsilon,
        pad_size=pad_size,
        alpha=alpha,
        rng=_resolve_rng(rng, seed),
        backend_factory=resolve_backend(backend, network),
        batched=batched,
    )


@register_scheme("batch_dp_ir", kind="ir",
                 summary="DP-IR batching independent queries into one round")
def build_batch_dp_ir(
    *,
    n: int | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    blocks: Sequence[bytes] | None = None,
    epsilon: float | None = None,
    pad_size: int | None = None,
    alpha: float = 0.05,
    seed: int | bytes | str | None = None,
    rng: RandomSource | None = None,
    backend: BackendFactory | str | None = None,
    network: NetworkModel | str | None = None,
) -> BatchDPIR:
    """Build a :class:`~repro.core.batch_ir.BatchDPIR`."""
    data = _resolve_blocks(n, block_size, blocks)
    if epsilon is None and pad_size is None:
        epsilon = _default_epsilon(data)
    return BatchDPIR(
        data,
        epsilon=epsilon,
        pad_size=pad_size,
        alpha=alpha,
        rng=_resolve_rng(rng, seed),
        backend_factory=resolve_backend(backend, network),
    )


@register_scheme("multi_server_dp_ir", kind="ir",
                 summary="Appendix C replicated DP-IR over non-colluding servers")
def build_multi_server_dp_ir(
    *,
    n: int | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    blocks: Sequence[bytes] | None = None,
    server_count: int = 2,
    epsilon: float | None = None,
    pad_size: int | None = None,
    alpha: float = 0.05,
    seed: int | bytes | str | None = None,
    rng: RandomSource | None = None,
    backend: BackendFactory | str | None = None,
    network: NetworkModel | str | None = None,
    executor: Any = None,
) -> MultiServerDPIR:
    """Build a :class:`~repro.core.multi_server.MultiServerDPIR`."""
    data = _resolve_blocks(n, block_size, blocks)
    if epsilon is None and pad_size is None:
        epsilon = _default_epsilon(data)
    return MultiServerDPIR(
        data,
        server_count=server_count,
        epsilon=epsilon,
        pad_size=pad_size,
        alpha=alpha,
        rng=_resolve_rng(rng, seed),
        backend_factory=resolve_backend(backend, network),
        executor=executor,
    )


@register_scheme("sharded_dp_ir", kind="ir",
                 summary="DP-IR over contiguous shards (n/D storage per server)")
def build_sharded_dp_ir(
    *,
    n: int | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    blocks: Sequence[bytes] | None = None,
    shard_count: int = 2,
    epsilon: float | None = None,
    pad_size: int | None = None,
    alpha: float = 0.05,
    seed: int | bytes | str | None = None,
    rng: RandomSource | None = None,
    backend: BackendFactory | str | None = None,
    network: NetworkModel | str | None = None,
) -> ShardedDPIR:
    """Build a :class:`~repro.core.sharded_ir.ShardedDPIR`."""
    data = _resolve_blocks(n, block_size, blocks)
    if epsilon is None and pad_size is None:
        epsilon = _default_epsilon(data)
    return ShardedDPIR(
        data,
        shard_count=shard_count,
        epsilon=epsilon,
        pad_size=pad_size,
        alpha=alpha,
        rng=_resolve_rng(rng, seed),
        backend_factory=resolve_backend(backend, network),
    )


@register_scheme("strawman_ir", kind="ir",
                 summary="the insecure Section 4 strawman (demo only)")
def build_strawman_ir(
    *,
    n: int | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    blocks: Sequence[bytes] | None = None,
    seed: int | bytes | str | None = None,
    rng: RandomSource | None = None,
    backend: BackendFactory | str | None = None,
    network: NetworkModel | str | None = None,
) -> StrawmanIR:
    """Build a :class:`~repro.core.strawman.StrawmanIR`."""
    return StrawmanIR(
        _resolve_blocks(n, block_size, blocks),
        rng=_resolve_rng(rng, seed),
        backend_factory=resolve_backend(backend, network),
    )


@register_scheme("linear_pir", kind="ir",
                 summary="errorless oblivious IR scanning all n records")
def build_linear_pir(
    *,
    n: int | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    blocks: Sequence[bytes] | None = None,
    backend: BackendFactory | str | None = None,
    network: NetworkModel | str | None = None,
    seed: int | bytes | str | None = None,
    rng: RandomSource | None = None,
) -> LinearScanPIR:
    """Build a :class:`~repro.baselines.linear_pir.LinearScanPIR`."""
    del seed, rng  # accepted for uniformity; the scheme is deterministic
    return LinearScanPIR(
        _resolve_blocks(n, block_size, blocks),
        backend_factory=resolve_backend(backend, network),
    )


@register_scheme("dp_ram", kind="ram",
                 summary="Algorithms 2-3: errorless DP-RAM, 3 blocks/query")
def build_dp_ram(
    *,
    n: int | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    blocks: Sequence[bytes] | None = None,
    stash_probability: float | None = None,
    phi: int | None = None,
    seed: int | bytes | str | None = None,
    rng: RandomSource | None = None,
    backend: BackendFactory | str | None = None,
    network: NetworkModel | str | None = None,
) -> DPRAM:
    """Build a :class:`~repro.core.dp_ram.DPRAM`."""
    return DPRAM(
        _resolve_blocks(n, block_size, blocks),
        stash_probability=stash_probability,
        phi=phi,
        rng=_resolve_rng(rng, seed),
        backend_factory=resolve_backend(backend, network),
    )


@register_scheme("read_only_dp_ram", kind="ram",
                 summary="encryption-free DP-RAM for public read-only data")
def build_read_only_dp_ram(
    *,
    n: int | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    blocks: Sequence[bytes] | None = None,
    stash_probability: float | None = None,
    phi: int | None = None,
    seed: int | bytes | str | None = None,
    rng: RandomSource | None = None,
    backend: BackendFactory | str | None = None,
    network: NetworkModel | str | None = None,
) -> ReadOnlyDPRAM:
    """Build a :class:`~repro.core.dp_ram.ReadOnlyDPRAM`."""
    return ReadOnlyDPRAM(
        _resolve_blocks(n, block_size, blocks),
        stash_probability=stash_probability,
        phi=phi,
        rng=_resolve_rng(rng, seed),
        backend_factory=resolve_backend(backend, network),
    )


@register_scheme("bucket_dp_ram", kind="ram",
                 summary="Appendix E bucket DP-RAM (single-node buckets)")
def build_bucket_dp_ram(
    *,
    n: int | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    blocks: Sequence[bytes] | None = None,
    buckets: Sequence[tuple[int, ...]] | None = None,
    stash_probability: float = 0.05,
    seed: int | bytes | str | None = None,
    rng: RandomSource | None = None,
    backend: BackendFactory | str | None = None,
    network: NetworkModel | str | None = None,
) -> BucketDPRAM:
    """Build a :class:`~repro.core.bucket_ram.BucketDPRAM`.

    Without an explicit repertoire this uses one single-node bucket per
    record, the degenerate instance equivalent to the Section 6 scheme.
    """
    data = _resolve_blocks(n, block_size, blocks)
    if buckets is None:
        buckets = [(i,) for i in range(len(data))]
    return BucketDPRAM(
        data,
        buckets,
        stash_probability=stash_probability,
        rng=_resolve_rng(rng, seed),
        backend_factory=resolve_backend(backend, network),
    )


@register_scheme("plaintext_ram", kind="ram",
                 summary="direct access, no privacy (the overhead denominator)")
def build_plaintext_ram(
    *,
    n: int | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    blocks: Sequence[bytes] | None = None,
    backend: BackendFactory | str | None = None,
    network: NetworkModel | str | None = None,
    seed: int | bytes | str | None = None,
    rng: RandomSource | None = None,
) -> PlaintextRAM:
    """Build a :class:`~repro.baselines.plaintext.PlaintextRAM`."""
    del seed, rng  # accepted for uniformity; the scheme is deterministic
    return PlaintextRAM(
        _resolve_blocks(n, block_size, blocks),
        backend_factory=resolve_backend(backend, network),
    )


@register_scheme("path_oram", kind="ram",
                 summary="Path ORAM [48], the Θ(log n)-overhead comparator")
def build_path_oram(
    *,
    n: int | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    blocks: Sequence[bytes] | None = None,
    bucket_size: int = 4,
    seed: int | bytes | str | None = None,
    rng: RandomSource | None = None,
    backend: BackendFactory | str | None = None,
    network: NetworkModel | str | None = None,
) -> PathORAM:
    """Build a :class:`~repro.baselines.path_oram.PathORAM`."""
    return PathORAM(
        _resolve_blocks(n, block_size, blocks),
        bucket_size=bucket_size,
        rng=_resolve_rng(rng, seed),
        backend_factory=resolve_backend(backend, network),
    )


@register_scheme("recursive_path_oram", kind="ram",
                 summary="Path ORAM with recursively outsourced position maps")
def build_recursive_path_oram(
    *,
    n: int | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    blocks: Sequence[bytes] | None = None,
    positions_per_block: int = 8,
    client_map_limit: int = 64,
    bucket_size: int = 4,
    seed: int | bytes | str | None = None,
    rng: RandomSource | None = None,
    backend: BackendFactory | str | None = None,
    network: NetworkModel | str | None = None,
) -> RecursivePathORAM:
    """Build a :class:`~repro.baselines.recursive_oram.RecursivePathORAM`."""
    return RecursivePathORAM(
        _resolve_blocks(n, block_size, blocks),
        positions_per_block=positions_per_block,
        client_map_limit=client_map_limit,
        bucket_size=bucket_size,
        rng=_resolve_rng(rng, seed),
        backend_factory=resolve_backend(backend, network),
    )


@register_scheme("dp_kvs", kind="kvs",
                 summary="Section 7 DP key-value store, O(log log n) overhead")
def build_dp_kvs(
    *,
    n: int = 1024,
    key_size: int = 16,
    value_size: int = 32,
    node_capacity: int = 4,
    phi: int | None = None,
    leaves_per_tree: int | None = None,
    enforce_super_root_capacity: bool = False,
    seed: int | bytes | str | None = None,
    rng: RandomSource | None = None,
    backend: BackendFactory | str | None = None,
    network: NetworkModel | str | None = None,
) -> DPKVS:
    """Build a :class:`~repro.core.dp_kvs.DPKVS`."""
    return DPKVS(
        n,
        key_size=key_size,
        value_size=value_size,
        node_capacity=node_capacity,
        phi=phi,
        leaves_per_tree=leaves_per_tree,
        enforce_super_root_capacity=enforce_super_root_capacity,
        rng=_resolve_rng(rng, seed),
        backend_factory=resolve_backend(backend, network),
    )


@register_scheme("oram_kvs", kind="kvs",
                 summary="oblivious KVS on Path ORAM, the pre-DP state of the art")
def build_oram_kvs(
    *,
    n: int = 1024,
    key_size: int = 16,
    value_size: int = 32,
    bucket_capacity: int | None = None,
    seed: int | bytes | str | None = None,
    rng: RandomSource | None = None,
    backend: BackendFactory | str | None = None,
    network: NetworkModel | str | None = None,
) -> ORAMKeyValueStore:
    """Build a :class:`~repro.baselines.oram_kvs.ORAMKeyValueStore`."""
    return ORAMKeyValueStore(
        n,
        key_size=key_size,
        value_size=value_size,
        bucket_capacity=bucket_capacity,
        rng=_resolve_rng(rng, seed),
        backend_factory=resolve_backend(backend, network),
    )


def _build_cluster_ir(
    base: str,
    *,
    n: int | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    blocks: Sequence[bytes] | None = None,
    shard_count: int = 2,
    replica_count: int = 2,
    placement: str = "range",
    epsilon: float | None = None,
    pad_size: int | None = None,
    alpha: float = 0.05,
    authenticated: bool = True,
    failure_rate: float | Sequence[float] = 0.0,
    corruption_rate: float | Sequence[float] = 0.0,
    seed: int | bytes | str | None = None,
    rng: RandomSource | None = None,
    backend: BackendFactory | str | None = None,
    network: NetworkModel | str | None = None,
    executor: Any = None,
) -> "ClusterIR":
    """Shared implementation of the registered ClusterIR builders."""
    from repro.cluster.scheme import ClusterIR

    return ClusterIR(
        _resolve_blocks(n, block_size, blocks),
        base=base,
        shard_count=shard_count,
        replica_count=replica_count,
        placement=placement,
        epsilon=epsilon,
        pad_size=pad_size,
        alpha=alpha,
        authenticated=authenticated,
        failure_rate=failure_rate,
        corruption_rate=corruption_rate,
        rng=_resolve_rng(rng, seed),
        backend_factory=resolve_backend(backend, network),
        executor=executor,
        network=network,
    )


@register_scheme("cluster_dp_ir", kind="ir",
                 summary="N shard groups x R replicas of DP-IR with failover")
def build_cluster_dp_ir(**kwargs: Any) -> "ClusterIR":
    """Build a :class:`~repro.cluster.scheme.ClusterIR` over ``dp_ir`` bases."""
    return _build_cluster_ir("dp_ir", **kwargs)


@register_scheme("cluster_batch_dp_ir", kind="ir",
                 summary="sharded+replicated BatchDPIR (batching compounds "
                         "with sharding)")
def build_cluster_batch_dp_ir(**kwargs: Any) -> "ClusterIR":
    """Build a :class:`~repro.cluster.scheme.ClusterIR` over ``batch_dp_ir``."""
    return _build_cluster_ir("batch_dp_ir", **kwargs)


@register_scheme("cluster_dp_kvs", kind="kvs",
                 summary="sharded+replicated DP-KVS with fail-stop failover")
def build_cluster_dp_kvs(
    *,
    n: int = 1024,
    value_size: int = 32,
    shard_count: int = 2,
    replica_count: int = 2,
    capacity_slack: float = 1.5,
    failure_rate: float | Sequence[float] = 0.0,
    corruption_rate: float | Sequence[float] = 0.0,
    seed: int | bytes | str | None = None,
    rng: RandomSource | None = None,
    backend: BackendFactory | str | None = None,
    network: NetworkModel | str | None = None,
    executor: Any = None,
) -> "ClusterKVS":
    """Build a :class:`~repro.cluster.scheme.ClusterKVS` over ``dp_kvs``."""
    from repro.cluster.scheme import ClusterKVS

    return ClusterKVS(
        n,
        base="dp_kvs",
        shard_count=shard_count,
        replica_count=replica_count,
        value_size=value_size,
        capacity_slack=capacity_slack,
        failure_rate=failure_rate,
        corruption_rate=corruption_rate,
        executor=executor,
        network=network,
        rng=_resolve_rng(rng, seed),
        backend_factory=resolve_backend(backend, network),
    )


@register_scheme("plaintext_kvs", kind="kvs",
                 summary="direct-access KVS, no privacy (overhead denominator)")
def build_plaintext_kvs(
    *,
    n: int = 1024,
    value_size: int = 32,
    backend: BackendFactory | str | None = None,
    network: NetworkModel | str | None = None,
    seed: int | bytes | str | None = None,
    rng: RandomSource | None = None,
) -> PlaintextKVS:
    """Build a :class:`~repro.baselines.plaintext.PlaintextKVS`."""
    del seed, rng  # accepted for uniformity; the scheme is deterministic
    return PlaintextKVS(
        n,
        value_size=value_size,
        backend_factory=resolve_backend(backend, network),
    )
