"""Drive schemes over workload traces with correctness checking.

The harness dispatches on the :mod:`repro.api` protocols:

* :class:`~repro.api.protocols.PrivateIR` — ``query`` (DP-IR, strawman,
  linear PIR, batch/multi-server/sharded DP-IR).
* :class:`~repro.api.protocols.PrivateRAM` — ``read``/``write`` (DP-RAM,
  Path ORAM, plaintext RAM).
* :class:`~repro.api.protocols.PrivateKVS` — ``get``/``put``/``delete``
  (DP-KVS, ORAM-KVS, plaintext KVS).

Operation counters, multi-server aggregation and client-storage figures
all come from the shared :class:`~repro.api.protocols.Scheme` surface —
no attribute probing.  Every run keeps a client-side reference model (a
plain dict) and counts mismatches, so the experiments measure
privacy/bandwidth of schemes that are *demonstrably correct* on the same
trace.
"""

from __future__ import annotations

import time

from repro.api.protocols import PrivateIR, PrivateKVS, PrivateRAM, Scheme
from repro.simulation.metrics import RunMetrics
from repro.storage.backends import NetworkBackend
from repro.storage.faults import scheme_fault_counters
from repro.workloads.kv_traces import KVOpKind, KVTrace
from repro.workloads.trace import OpKind, Trace


def simulated_network_ms(scheme: Scheme) -> float | None:
    """Total simulated link time across the scheme's servers.

    ``None`` when no server runs over a latency-accounting
    :class:`~repro.storage.backends.NetworkBackend` — the distinction
    lets callers tell "zero milliseconds" from "not simulated at all".
    """
    total = 0.0
    found = False
    for server in scheme.servers():
        backend = server.backend
        if isinstance(backend, NetworkBackend):
            total += backend.simulated_ms
            found = True
    return total if found else None


class _LatencyProbe:
    """Record per-operation simulated latency deltas into a metrics bundle.

    A no-op for purely in-memory schemes; over network backends each
    ``sample()`` appends the link time spent since the previous sample,
    giving the per-query response-time stream the tail statistics need.
    """

    def __init__(self, scheme: Scheme, metrics: RunMetrics) -> None:
        self._scheme = scheme
        self._metrics = metrics
        self._last = simulated_network_ms(scheme)

    def sample(self) -> None:
        if self._last is None:
            return
        now = simulated_network_ms(self._scheme)
        self._metrics.latencies_ms.append(now - self._last)
        self._last = now


def _price_overlap(
    scheme: Scheme, metrics: RunMetrics, wall_before: float
) -> None:
    """Fill the metrics' serial vs wall-clock figures for the run.

    Both are priced under the LAN reference link (one roundtrip plus
    one block transfer per operation) so they are comparable across
    schemes; they differ exactly when the scheme overlapped independent
    legs (:meth:`~repro.api.protocols.Scheme.wall_operations`).
    """
    from repro.storage.network import LAN

    per_op = LAN.rtt_ms + LAN.transfer_ms(scheme.block_size)
    metrics.serial_ms = metrics.blocks_total * per_op
    metrics.wall_clock_ms = (
        scheme.wall_operations() - wall_before
    ) * per_op


def _server_counters(scheme) -> tuple[int, int]:
    """(reads, writes) across every server the scheme exposes.

    A scheme with no provisioned servers counts zero operations — it is
    not an error (the old duck-typed probe silently *skipped* an empty
    ``pool``, which this replaces).
    """
    if not isinstance(scheme, Scheme):
        raise TypeError(
            f"{type(scheme).__name__} does not implement the "
            "repro.api.Scheme protocol"
        )
    return scheme.server_counters()


def run_trace(scheme: Scheme, trace, **kwargs) -> RunMetrics:
    """Run ``trace`` against ``scheme``, dispatching on its protocol.

    ``Trace`` workloads go to :func:`run_ir_trace` or
    :func:`run_ram_trace` depending on the scheme; :class:`KVTrace`
    workloads go to :func:`run_kv_trace`.  Keyword arguments pass
    through to the protocol-specific runner.
    """
    if isinstance(trace, KVTrace):
        if not isinstance(scheme, PrivateKVS):
            raise TypeError(
                f"{type(scheme).__name__} cannot run a KV trace"
            )
        return run_kv_trace(scheme, trace, **kwargs)
    if isinstance(scheme, PrivateIR):
        return run_ir_trace(scheme, trace, **kwargs)
    if isinstance(scheme, PrivateRAM):
        return run_ram_trace(scheme, trace, **kwargs)
    raise TypeError(
        f"{type(scheme).__name__} implements no runnable protocol"
    )


def run_ir_trace(
    scheme: PrivateIR, trace: Trace, expected: list[bytes] | None = None
) -> RunMetrics:
    """Run a read-only trace against an IR scheme.

    Args:
        scheme: a :class:`~repro.api.protocols.PrivateIR`.
        trace: the workload (must be read-only).
        expected: plaintext database for correctness checking; mismatches
            are counted only for non-errored queries.
    """
    reads_before, writes_before = _server_counters(scheme)
    wall_before = scheme.wall_operations()
    metrics = RunMetrics(scheme=type(scheme).__name__, trace=trace.name)
    probe = _LatencyProbe(scheme, metrics)
    started = time.perf_counter()
    for operation in trace:
        if operation.kind is not OpKind.READ:
            raise ValueError("IR schemes only support reads")
        answer = scheme.query(operation.index)
        probe.sample()
        metrics.operations += 1
        if answer is None:
            metrics.errors += 1
        elif expected is not None and answer != expected[operation.index]:
            metrics.mismatches += 1
    metrics.elapsed_seconds = time.perf_counter() - started
    reads_after, writes_after = _server_counters(scheme)
    metrics.blocks_downloaded = reads_after - reads_before
    metrics.blocks_uploaded = writes_after - writes_before
    metrics.client_peak_blocks = scheme.client_peak_blocks
    metrics.fault_counters = scheme_fault_counters(scheme)
    _price_overlap(scheme, metrics, wall_before)
    return metrics


def run_ram_trace(
    scheme: PrivateRAM, trace: Trace, initial: list[bytes] | None = None
) -> RunMetrics:
    """Run a read/write trace against a RAM scheme.

    Args:
        scheme: a :class:`~repro.api.protocols.PrivateRAM`.
        trace: the workload.
        initial: initial database contents for the reference model; when
            omitted, reads are only checked against writes the trace
            itself performed.
    """
    reads_before, writes_before = _server_counters(scheme)
    wall_before = scheme.wall_operations()
    metrics = RunMetrics(scheme=type(scheme).__name__, trace=trace.name)
    reference: dict[int, bytes] = (
        {i: bytes(b) for i, b in enumerate(initial)} if initial else {}
    )
    probe = _LatencyProbe(scheme, metrics)
    started = time.perf_counter()
    for operation in trace:
        if operation.kind is OpKind.READ:
            answer = scheme.read(operation.index)
            metrics.operations += 1
            if operation.index in reference and answer != reference[operation.index]:
                metrics.mismatches += 1
        else:
            scheme.write(operation.index, operation.value)
            reference[operation.index] = operation.value
            metrics.operations += 1
        probe.sample()
    metrics.elapsed_seconds = time.perf_counter() - started
    reads_after, writes_after = _server_counters(scheme)
    metrics.blocks_downloaded = reads_after - reads_before
    metrics.blocks_uploaded = writes_after - writes_before
    metrics.client_peak_blocks = scheme.client_peak_blocks
    metrics.fault_counters = scheme_fault_counters(scheme)
    _price_overlap(scheme, metrics, wall_before)
    return metrics


def run_kv_trace(
    scheme: PrivateKVS, trace: KVTrace, check: bool = True
) -> RunMetrics:
    """Run a key-value trace against a KVS scheme.

    Args:
        scheme: a :class:`~repro.api.protocols.PrivateKVS`.
        trace: the workload.
        check: maintain a reference dict and count mismatches, including
            missing-key lookups that must return ``None``.

    The protocol guarantees exact values — schemes strip their own
    storage padding — so the reference comparison is plain equality.
    """
    reads_before, writes_before = _server_counters(scheme)
    wall_before = scheme.wall_operations()
    metrics = RunMetrics(scheme=type(scheme).__name__, trace=trace.name)
    reference: dict[bytes, bytes] = {}
    probe = _LatencyProbe(scheme, metrics)
    started = time.perf_counter()
    for operation in trace:
        if operation.kind is KVOpKind.GET:
            answer = scheme.get(operation.key)
            metrics.operations += 1
            if check and answer != reference.get(operation.key):
                metrics.mismatches += 1
        else:
            scheme.put(operation.key, operation.value)
            reference[operation.key] = operation.value
            metrics.operations += 1
        probe.sample()
    metrics.elapsed_seconds = time.perf_counter() - started
    reads_after, writes_after = _server_counters(scheme)
    metrics.blocks_downloaded = reads_after - reads_before
    metrics.blocks_uploaded = writes_after - writes_before
    metrics.client_peak_blocks = scheme.client_peak_blocks
    metrics.fault_counters = scheme_fault_counters(scheme)
    _price_overlap(scheme, metrics, wall_before)
    return metrics
