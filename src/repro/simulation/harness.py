"""Drive schemes over workload traces with correctness checking.

The harness knows three scheme shapes:

* **IR schemes** — expose ``query(index) -> bytes | None`` and a
  ``server`` with operation counters (DP-IR, strawman, linear PIR,
  multi-server DP-IR via its pool).
* **RAM schemes** — expose ``read(index)`` / ``write(index, value)``
  (DP-RAM, Path ORAM, plaintext RAM).
* **KVS schemes** — expose ``get(key)`` / ``put(key, value)`` and
  optionally ``delete(key)`` (DP-KVS, ORAM-KVS, plaintext KVS).

Every run keeps a client-side reference model (a plain dict) and counts
mismatches, so the experiments measure privacy/bandwidth of schemes that
are *demonstrably correct* on the same trace.
"""

from __future__ import annotations

import time

from repro.simulation.metrics import RunMetrics
from repro.workloads.kv_traces import KVOpKind, KVTrace
from repro.workloads.trace import OpKind, Trace


def _server_counters(scheme) -> tuple[int, int]:
    """(reads, writes) across whatever servers the scheme exposes.

    Recognized shapes: a single ``server``, a multi-replica ``pool``, or a
    ``servers`` iterable (e.g. the per-level servers of the recursive
    ORAM).
    """
    if hasattr(scheme, "server"):
        return scheme.server.reads, scheme.server.writes
    group = getattr(scheme, "pool", None) or getattr(scheme, "servers", None)
    if group is not None:
        servers = list(group)
        reads = sum(server.reads for server in servers)
        writes = sum(server.writes for server in servers)
        return reads, writes
    raise TypeError(
        f"{type(scheme).__name__} exposes none of server/pool/servers"
    )


def _client_peak(scheme) -> int | None:
    for attribute in ("client_peak_blocks", "stash_peak"):
        if hasattr(scheme, attribute):
            return getattr(scheme, attribute)
    return None


def run_ir_trace(
    scheme, trace: Trace, expected: list[bytes] | None = None
) -> RunMetrics:
    """Run a read-only trace against an IR scheme.

    Args:
        scheme: an object with ``query(index) -> bytes | None``.
        trace: the workload (must be read-only).
        expected: plaintext database for correctness checking; mismatches
            are counted only for non-errored queries.
    """
    reads_before, writes_before = _server_counters(scheme)
    metrics = RunMetrics(scheme=type(scheme).__name__, trace=trace.name)
    started = time.perf_counter()
    for operation in trace:
        if operation.kind is not OpKind.READ:
            raise ValueError("IR schemes only support reads")
        answer = scheme.query(operation.index)
        metrics.operations += 1
        if answer is None:
            metrics.errors += 1
        elif expected is not None and answer != expected[operation.index]:
            metrics.mismatches += 1
    metrics.elapsed_seconds = time.perf_counter() - started
    reads_after, writes_after = _server_counters(scheme)
    metrics.blocks_downloaded = reads_after - reads_before
    metrics.blocks_uploaded = writes_after - writes_before
    metrics.client_peak_blocks = _client_peak(scheme)
    return metrics


def run_ram_trace(
    scheme, trace: Trace, initial: list[bytes] | None = None
) -> RunMetrics:
    """Run a read/write trace against a RAM scheme.

    Args:
        scheme: an object with ``read(index)`` and (for write traces)
            ``write(index, value)``.
        trace: the workload.
        initial: initial database contents for the reference model; when
            omitted, reads are only checked against writes the trace
            itself performed.
    """
    reads_before, writes_before = _server_counters(scheme)
    metrics = RunMetrics(scheme=type(scheme).__name__, trace=trace.name)
    reference: dict[int, bytes] = (
        {i: bytes(b) for i, b in enumerate(initial)} if initial else {}
    )
    started = time.perf_counter()
    for operation in trace:
        if operation.kind is OpKind.READ:
            answer = scheme.read(operation.index)
            metrics.operations += 1
            if operation.index in reference and answer != reference[operation.index]:
                metrics.mismatches += 1
        else:
            scheme.write(operation.index, operation.value)
            reference[operation.index] = operation.value
            metrics.operations += 1
    metrics.elapsed_seconds = time.perf_counter() - started
    reads_after, writes_after = _server_counters(scheme)
    metrics.blocks_downloaded = reads_after - reads_before
    metrics.blocks_uploaded = writes_after - writes_before
    metrics.client_peak_blocks = _client_peak(scheme)
    return metrics


def run_kv_trace(scheme, trace: KVTrace, check: bool = True) -> RunMetrics:
    """Run a key-value trace against a KVS scheme.

    Args:
        scheme: an object with ``get(key)`` and ``put(key, value)``.
        trace: the workload.
        check: maintain a reference dict and count mismatches, including
            missing-key lookups that must return ``None``.
    """
    reads_before, writes_before = _server_counters(scheme)
    metrics = RunMetrics(scheme=type(scheme).__name__, trace=trace.name)
    reference: dict[bytes, bytes] = {}
    started = time.perf_counter()
    for operation in trace:
        if operation.kind is KVOpKind.GET:
            answer = scheme.get(operation.key)
            metrics.operations += 1
            if check:
                expected = reference.get(operation.key)
                if expected is None:
                    if answer is not None:
                        metrics.mismatches += 1
                elif answer is None or not answer.startswith(expected):
                    # KVS schemes return fixed-size zero-padded values;
                    # prefix comparison tolerates the padding.
                    metrics.mismatches += 1
        else:
            scheme.put(operation.key, operation.value)
            reference[operation.key] = operation.value
            metrics.operations += 1
    metrics.elapsed_seconds = time.perf_counter() - started
    reads_after, writes_after = _server_counters(scheme)
    metrics.blocks_downloaded = reads_after - reads_before
    metrics.blocks_uploaded = writes_after - writes_before
    metrics.client_peak_blocks = _client_peak(scheme)
    return metrics
