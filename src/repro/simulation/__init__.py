"""Experiment harness: run schemes over traces, collect metrics, report.

* :mod:`repro.simulation.metrics` — the per-run measurement bundle.
* :mod:`repro.simulation.harness` — drive RAM/IR/KVS schemes over
  workload traces with reference-model correctness checking.
* :mod:`repro.simulation.reporting` — ascii/markdown tables for the
  experiment outputs.
* :mod:`repro.simulation.experiments` — the E1..E12 experiment drivers
  shared by the benchmark suite and the CLI
  (``python -m repro.simulation.experiments``).
"""

from repro.simulation.harness import (
    run_ir_trace,
    run_kv_trace,
    run_ram_trace,
    run_trace,
    simulated_network_ms,
)
from repro.simulation.metrics import LatencySummary, RunMetrics, percentile
from repro.simulation.reporting import (
    ExperimentTable,
    format_table,
    latency_rows,
)

__all__ = [
    "ExperimentTable",
    "LatencySummary",
    "RunMetrics",
    "format_table",
    "latency_rows",
    "percentile",
    "run_ir_trace",
    "run_kv_trace",
    "run_ram_trace",
    "run_trace",
    "simulated_network_ms",
]
