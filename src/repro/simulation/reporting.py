"""Plain-text and markdown tables for experiment output."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.simulation.metrics import LatencySummary


def _render(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str | None = None
) -> str:
    """Render an aligned ascii table."""
    rendered = [[_render(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells for {len(headers)} headers"
            )
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def latency_rows(
    summary: LatencySummary, label: str = "latency"
) -> list[list]:
    """``[metric, value]`` rows for a latency summary.

    Shared by ``python -m repro run`` (single-client tails over a network
    backend) and the serving report so both render percentiles the same
    way.
    """
    return [
        [f"{label} p50 ms", f"{summary.p50_ms:.2f}"],
        [f"{label} p95 ms", f"{summary.p95_ms:.2f}"],
        [f"{label} p99 ms", f"{summary.p99_ms:.2f}"],
        [f"{label} p99.9 ms", f"{summary.p999_ms:.2f}"],
        [f"{label} mean ms", f"{summary.mean_ms:.2f}"],
        [f"{label} max ms", f"{summary.max_ms:.2f}"],
    ]


def latency_rows_from(summary: dict, label: str = "latency") -> list[list]:
    """Dict-keyed twin of :func:`latency_rows`.

    The report classes render their text tables from their ``to_dict()``
    views (the single source of truth for ``--json`` parity), so their
    latency sections start from the exported mapping rather than the
    live :class:`LatencySummary`.
    """
    return [
        [f"{label} p50 ms", f"{summary['p50']:.2f}"],
        [f"{label} p95 ms", f"{summary['p95']:.2f}"],
        [f"{label} p99 ms", f"{summary['p99']:.2f}"],
        [f"{label} p99.9 ms", f"{summary['p999']:.2f}"],
        [f"{label} mean ms", f"{summary['mean']:.2f}"],
        [f"{label} max ms", f"{summary['max']:.2f}"],
    ]


@dataclass
class ExperimentTable:
    """A named experiment result: headers, rows, and provenance notes.

    The benchmark files build these and print them; the EXPERIMENTS.md
    generator renders them as markdown.
    """

    experiment: str
    claim: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells) -> None:
        """Append one result row."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"{len(cells)} cells for {len(self.headers)} headers"
            )
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        """Append a free-form provenance note."""
        self.notes.append(note)

    def to_text(self) -> str:
        """Render as an aligned ascii table with the claim as title."""
        body = format_table(
            self.headers, self.rows, title=f"{self.experiment}: {self.claim}"
        )
        if self.notes:
            body += "\n" + "\n".join(f"  note: {note}" for note in self.notes)
        return body

    def to_markdown(self) -> str:
        """Render as a markdown section."""
        lines = [f"### {self.experiment} — {self.claim}", ""]
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(_render(cell) for cell in row) + " |")
        for note in self.notes:
            lines.append("")
            lines.append(f"*{note}*")
        return "\n".join(lines)
