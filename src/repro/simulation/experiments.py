"""Experiment drivers E1..E12 — one per paper claim (see DESIGN.md §4).

Each function returns an :class:`~repro.simulation.reporting.ExperimentTable`
whose rows pair the paper's predicted quantity with the measured one.  The
benchmark files call these with their default (fast) parameters; running
``python -m repro.simulation.experiments`` prints every table, and the
EXPERIMENTS.md in the repository root was generated from exactly these
drivers.

The paper is a theory paper with no numbered tables or figures; its
evaluation is the set of theorems, so the experiment ids map to theorems
(the mapping is DESIGN.md §4's index).
"""

from __future__ import annotations

import math

from repro.analysis import attacks, bounds, dp_ir_exact, dp_ram_exact, tails
from repro.baselines.linear_pir import LinearScanPIR
from repro.baselines.oram_kvs import ORAMKeyValueStore
from repro.baselines.path_oram import PathORAM
from repro.baselines.plaintext import PlaintextKVS, PlaintextRAM
from repro.core.dp_ir import DPIR
from repro.core.dp_kvs import DPKVS
from repro.core.dp_ram import DPRAM
from repro.core.multi_server import MultiServerDPIR
from repro.core.params import default_phi
from repro.core.strawman import StrawmanIR
from repro.crypto.prf import PRF
from repro.crypto.rng import SeededRandomSource
from repro.hashing.padded import PaddedTwoChoiceStore
from repro.hashing.tree_buckets import TreeBucketLayout, TreeOccupancySimulator
from repro.hashing.two_choice import DChoiceTable
from repro.simulation.harness import run_ir_trace, run_kv_trace, run_ram_trace
from repro.simulation.reporting import ExperimentTable
from repro.storage.blocks import integer_database
from repro.workloads.generators import read_write_trace, uniform_trace, zipf_trace
from repro.workloads.kv_traces import ycsb_trace


def experiment_e01_errorless_ir(
    sizes: tuple[int, ...] = (256, 512, 1024), queries: int = 20, seed: int = 1
) -> ExperimentTable:
    """E1 / Theorem 3.3: errorless DP-IR must move ≥ (1−δ)·n blocks."""
    table = ExperimentTable(
        experiment="E1",
        claim="errorless (eps,delta)-DP-IR moves >= (1-delta)*n blocks (Thm 3.3)",
        headers=["n", "bound (delta=0)", "measured blocks/query", "meets bound"],
    )
    rng = SeededRandomSource(seed)
    for n in sizes:
        database = integer_database(n)
        scheme = LinearScanPIR(database)
        trace = uniform_trace(n, queries, rng.spawn(f"e1-{n}"))
        metrics = run_ir_trace(scheme, trace, expected=database)
        bound = bounds.dp_ir_errorless_lower_bound(n)
        measured = metrics.blocks_per_operation
        table.add_row(n, bound, measured, measured >= bound)
    table.add_note(
        "linear-scan PIR realizes the bound with equality; Thm 3.3 says no "
        "errorless scheme can do better for any epsilon"
    )
    return table


def experiment_e02_dpir_lower_bound(
    n: int = 1024,
    alpha: float = 0.05,
    epsilons: tuple[float, ...] | None = None,
    queries: int = 300,
    seed: int = 2,
) -> ExperimentTable:
    """E2 / Theorem 3.4: DP-IR(α) bandwidth vs the Ω((1−α−δ)n/e^ε) floor."""
    if epsilons is None:
        log_n = math.log(n)
        epsilons = (0.5 * log_n, 0.75 * log_n, log_n, 1.25 * log_n, 2 * log_n)
    table = ExperimentTable(
        experiment="E2",
        claim="DP-IR with error alpha moves >= (n-1)(1-alpha-delta)/e^eps (Thm 3.4)",
        headers=[
            "n", "target eps", "exact eps", "pad K",
            "bound blocks/query", "measured blocks/query", "meets bound",
        ],
    )
    rng = SeededRandomSource(seed)
    database = integer_database(n)
    for epsilon in epsilons:
        scheme = DPIR(database, epsilon=epsilon, alpha=alpha,
                      rng=rng.spawn(f"e2-{epsilon:.3f}"))
        trace = uniform_trace(n, queries, rng.spawn(f"e2-trace-{epsilon:.3f}"))
        metrics = run_ir_trace(scheme, trace, expected=database)
        floor = bounds.dp_ir_error_lower_bound(n, scheme.epsilon, alpha)
        measured = metrics.blocks_per_operation
        table.add_row(
            n, round(epsilon, 3), round(scheme.epsilon, 3), scheme.pad_size,
            floor, measured, measured >= floor,
        )
    table.add_note(
        "the construction's exact epsilon makes the bound tight up to the "
        "alpha factor: K = ceil((1-alpha)n/(alpha(e^eps - 1)))"
    )
    return table


def experiment_e03_dpir_construction(
    sizes: tuple[int, ...] = (256, 1024, 4096),
    alphas: tuple[float, ...] = (0.01, 0.05, 0.1),
    queries: int = 400,
    seed: int = 3,
) -> ExperimentTable:
    """E3 / Theorem 5.1: constant bandwidth at ε = Θ(log n), error ≈ α."""
    table = ExperimentTable(
        experiment="E3",
        claim="eps-DP-IR with eps = ln(n) uses O(1) blocks, errs w.p. alpha (Thm 5.1)",
        headers=[
            "n", "alpha", "pad K", "exact eps", "eps/ln(n)",
            "measured blocks/query", "measured error rate",
        ],
    )
    rng = SeededRandomSource(seed)
    for n in sizes:
        database = integer_database(n)
        for alpha in alphas:
            epsilon = math.log(n)
            scheme = DPIR(database, epsilon=epsilon, alpha=alpha,
                          rng=rng.spawn(f"e3-{n}-{alpha}"))
            trace = zipf_trace(n, queries, rng.spawn(f"e3-trace-{n}-{alpha}"))
            metrics = run_ir_trace(scheme, trace, expected=database)
            table.add_row(
                n, alpha, scheme.pad_size, round(scheme.epsilon, 3),
                round(scheme.epsilon / math.log(n), 3),
                metrics.blocks_per_operation, round(metrics.error_rate, 4),
            )
    table.add_note("pad size stays O(1) across n because eps tracks ln(n)")
    return table


def experiment_e04_strawman(
    sizes: tuple[int, ...] = (64, 256, 1024), trials: int = 2000, seed: int = 4
) -> ExperimentTable:
    """E4 / Section 4: the strawman's δ → (n−1)/n and attack success → 1."""
    table = ExperimentTable(
        experiment="E4",
        claim="the Section 4 strawman has delta = (n-1)/n: no privacy",
        headers=[
            "n", "exact delta (strawman)", "attack success (strawman)",
            "attack success (DP-IR)", "DP-IR ceiling 1-(1-d)/2e^eps",
        ],
    )
    rng = SeededRandomSource(seed)
    for n in sizes:
        database = integer_database(n)
        strawman = StrawmanIR(database, rng=rng.spawn(f"e4-straw-{n}"))
        dpir = DPIR(database, epsilon=math.log(n), alpha=0.25,
                    rng=rng.spawn(f"e4-dpir-{n}"))
        attack_rng = rng.spawn(f"e4-attack-{n}")
        straw_result = attacks.membership_attack(
            strawman.sample_query_set, 0, 1, trials, attack_rng
        )
        dpir_result = attacks.membership_attack(
            dpir.sample_query_set, 0, 1, trials, attack_rng,
            epsilon=dpir.epsilon,
        )
        table.add_row(
            n,
            round(dp_ir_exact.strawman_exact_delta(n, epsilon=math.log(n)), 4),
            round(straw_result.success_rate, 4),
            round(dpir_result.success_rate, 4),
            round(dpir_result.bound, 4),
        )
    table.add_note(
        "the membership distinguisher wins ~ (1 - 1/2n ...) against the "
        "strawman while staying below the DP ceiling against Algorithm 1"
    )
    return table


def experiment_e05_dpram_lower_bound(
    n: int = 1024, client_blocks: int = 32, seed: int = 5
) -> ExperimentTable:
    """E5 / Theorem 3.7: the log_c((1−α)n/e^ε) floor vs the construction."""
    table = ExperimentTable(
        experiment="E5",
        claim="eps-DP-RAM with client storage c moves >= log_c((1-a)n/e^eps) (Thm 3.7)",
        headers=[
            "n", "eps", "bound blocks/query (c=32)",
            "DP-RAM blocks/query", "meets bound",
        ],
    )
    del seed  # analytic sweep; the measured column is structural (3 blocks)
    log_n = math.log(n)
    for factor in (0.0, 0.25, 0.5, 0.75, 1.0, 1.5):
        epsilon = factor * log_n
        floor = bounds.dp_ram_lower_bound(n, epsilon, client_blocks)
        measured = 3.0  # Algorithm 3 moves exactly 3 blocks per query
        table.add_row(n, round(epsilon, 3), round(floor, 3), measured,
                      measured >= floor)
    table.add_note(
        "at eps = Theta(log n) the floor drops below the construction's "
        "3 blocks/query; at constant eps the floor is Omega(log_c n), "
        "matching the ORAM regime"
    )
    return table


def experiment_e06_dpram_construction(
    sizes: tuple[int, ...] = (256, 1024, 4096),
    queries: int = 400,
    seed: int = 6,
) -> ExperimentTable:
    """E6 / Theorem 6.1 + Lemma D.1: 3 blocks/query, stash ≈ Φ(n), ε = O(log n)."""
    table = ExperimentTable(
        experiment="E6",
        claim="DP-RAM: 3 blocks/query, stash <= e*phi w.h.p., eps = O(log n) (Thm 6.1)",
        headers=[
            "n", "phi", "blocks/query", "stash peak", "e*phi cap",
            "analytic eps bound", "eps bound/ln(n)", "mismatches",
        ],
    )
    rng = SeededRandomSource(seed)
    for n in sizes:
        database = integer_database(n)
        scheme = DPRAM(database, rng=rng.spawn(f"e6-{n}"))
        trace = read_write_trace(n, queries, rng.spawn(f"e6-trace-{n}"),
                                 write_fraction=0.3)
        metrics = run_ram_trace(scheme, trace, initial=database)
        phi = default_phi(n)
        table.add_row(
            n, phi, metrics.blocks_per_operation, scheme.stash_peak,
            round(math.e * phi, 1),
            round(scheme.params.epsilon_bound, 2),
            round(scheme.params.epsilon_bound / math.log(n), 2),
            metrics.mismatches,
        )
    table.add_note("blocks/query is exactly 3 independent of n — the O(1) claim")
    return table


def experiment_e07_dpram_ratios(
    n: int = 8, length: int = 4, trials: int = 1500, seed: int = 7
) -> ExperimentTable:
    """E7 / Lemmas 6.4-6.5: exact transcript ratios vs the analytic budget."""
    table = ExperimentTable(
        experiment="E7",
        claim="exact transcript log-ratios stay under 3*ln(n^3/p^2) (Lemmas 6.4/6.5+6.7)",
        headers=[
            "n", "p", "queries l", "sampled max |log ratio|",
            "exact worst-case eps", "analytic eps bound", "within bound",
        ],
    )
    rng = SeededRandomSource(seed)
    for p in (0.1, 0.25, 0.5):
        queries_a = [rng.randbelow(n) for _ in range(length)]
        position = rng.randbelow(length)
        queries_b = list(queries_a)
        queries_b[position] = (queries_a[position] + 1 +
                               rng.randbelow(n - 1)) % n
        worst_sampled = dp_ram_exact.empirical_epsilon(
            queries_a, queries_b, n, p, rng.spawn(f"e7-{p}"), trials=trials
        )
        try:
            worst_exact = dp_ram_exact.worst_case_log_ratio_exact(
                queries_a, queries_b, n, p
            )
        except ValueError:
            worst_exact = float("nan")
        budget = dp_ram_exact.dp_ram_analytic_epsilon(n, p)
        within = worst_sampled <= budget and (
            worst_exact != worst_exact or worst_exact <= budget
        )
        table.add_row(n, p, length, round(worst_sampled, 3),
                      round(worst_exact, 3), round(budget, 3), within)
    table.add_note(
        "ratios are exact per transcript (chain-factorized likelihoods); "
        "the exact worst case enumerates transcript classes over the <=3 "
        "positions Lemma 6.7 identifies"
    )
    return table


def experiment_e08_two_choice(
    sizes: tuple[int, ...] = (1024, 4096, 16384), seed: int = 8
) -> ExperimentTable:
    """E8 / Theorem A.1: one- vs two- vs three-choice max loads."""
    table = ExperimentTable(
        experiment="E8",
        claim="two choices collapse max load from ~log n/log log n to ~log log n (Thm A.1)",
        headers=[
            "n", "d=1 max load", "d=2 max load", "d=3 max load",
            "log2(n)/log2(log2 n)", "log2(log2 n)",
        ],
    )
    rng = SeededRandomSource(seed)
    for n in sizes:
        row = [n]
        for choices in (1, 2, 3):
            table_ = DChoiceTable(bins=n, choices=choices)
            source = rng.spawn(f"e8-{n}-{choices}")
            for _ in range(n):
                table_.insert_random(source)
            row.append(table_.max_load())
        loglog = math.log2(math.log2(n))
        row.append(round(math.log2(n) / loglog, 2))
        row.append(round(loglog, 2))
        table.add_row(*row)
    table.add_note("the d=1 column grows with n; d=2 and d=3 stay ~log log n")
    return table


def experiment_e09_tree_hashing(
    sizes: tuple[int, ...] = (4096, 16384, 65536),
    node_capacity: int = 4,
    seed: int = 9,
) -> ExperimentTable:
    """E9 / Theorem 7.2 + Lemma 7.3: super-root load and level occupancy."""
    table = ExperimentTable(
        experiment="E9",
        claim="inserting n keys puts <= phi(n) = omega(log n) keys in the super root (Thm 7.2)",
        headers=[
            "n", "buckets", "server nodes", "super-root load", "phi(n)",
            "within phi", "filled leaves H_0", "beta_0 bound",
        ],
    )
    rng = SeededRandomSource(seed)
    for n in sizes:
        layout = TreeBucketLayout.for_capacity(n, node_capacity=node_capacity)
        simulator = TreeOccupancySimulator(layout)
        source = rng.spawn(f"e9-{n}")
        for _ in range(n):
            simulator.insert_random(source)
        phi = default_phi(n)
        occupancy = simulator.level_occupancy()
        beta0 = tails.beta_sequence_closed_form(n, 0)
        table.add_row(
            n, layout.bucket_count, layout.node_count,
            simulator.super_root_load, phi,
            simulator.super_root_load <= phi,
            occupancy[0], round(beta0, 1),
        )
    table.add_note(
        "server storage is ~2n/leaves trees * (2*leaves-1) nodes = O(n); "
        "level occupancies decay doubly exponentially per Lemma 7.3"
    )
    return table


def experiment_e10_dpkvs(
    sizes: tuple[int, ...] = (256, 1024, 4096),
    operations: int = 200,
    seed: int = 10,
) -> ExperimentTable:
    """E10 / Theorem 7.5: DP-KVS overhead O(log log n), storage O(n)."""
    table = ExperimentTable(
        experiment="E10",
        claim="DP-KVS: O(log log n) blocks/op and O(n) server storage (Thm 7.5)",
        headers=[
            "n", "path len (loglog n)", "blocks/op measured", "6*path len",
            "server nodes / n", "padded-bins slots / n", "mismatches",
        ],
    )
    rng = SeededRandomSource(seed)
    for n in sizes:
        scheme = DPKVS(n, rng=rng.spawn(f"e10-{n}"))
        trace = ycsb_trace(max(8, n // 8), operations, rng.spawn(f"e10-t-{n}"),
                           profile="B")
        metrics = run_kv_trace(scheme, trace)
        padded = PaddedTwoChoiceStore(n, PRF(b"e10-padded"))
        shape = scheme.params.shape
        table.add_row(
            n, shape.path_length, round(metrics.blocks_per_operation, 2),
            6 * shape.path_length,
            round(scheme.server_node_count / n, 3),
            round(padded.server_slots / n, 3),
            metrics.mismatches,
        )
    table.add_note(
        "tree sharing keeps server nodes ~2n while padded bins pay the "
        "full log log n multiple"
    )
    return table


def experiment_e11_vs_oram(
    sizes: tuple[int, ...] = (256, 1024, 4096),
    queries: int = 200,
    seed: int = 11,
) -> ExperimentTable:
    """E11 / headline: DP-RAM O(1) vs Path ORAM Θ(log n) bandwidth."""
    table = ExperimentTable(
        experiment="E11",
        claim="DP-RAM's O(1) overhead vs Path ORAM's Theta(log n)",
        headers=[
            "n", "plaintext blocks/op", "DP-RAM blocks/op",
            "Path ORAM blocks/op", "ORAM/DP-RAM factor",
        ],
    )
    rng = SeededRandomSource(seed)
    for n in sizes:
        database = integer_database(n)
        plain = PlaintextRAM(database)
        dpram = DPRAM(database, rng=rng.spawn(f"e11-dpram-{n}"))
        oram = PathORAM(database, rng=rng.spawn(f"e11-oram-{n}"))
        trace = read_write_trace(n, queries, rng.spawn(f"e11-trace-{n}"),
                                 write_fraction=0.3)
        plain_metrics = run_ram_trace(plain, trace, initial=database)
        dpram_metrics = run_ram_trace(dpram, trace, initial=database)
        oram_metrics = run_ram_trace(oram, trace, initial=database)
        assert plain_metrics.mismatches == 0
        assert dpram_metrics.mismatches == 0
        assert oram_metrics.mismatches == 0
        factor = (
            oram_metrics.blocks_per_operation
            / dpram_metrics.blocks_per_operation
        )
        table.add_row(
            n, plain_metrics.blocks_per_operation,
            dpram_metrics.blocks_per_operation,
            oram_metrics.blocks_per_operation, round(factor, 1),
        )
    table.add_note(
        "the ORAM/DP-RAM factor grows ~ (8/3)*log2(n): the privacy/overhead "
        "trade the paper quantifies"
    )
    return table


def experiment_e11b_kvs_vs_oram(
    sizes: tuple[int, ...] = (256, 1024),
    operations: int = 120,
    seed: int = 115,
) -> ExperimentTable:
    """E11b: DP-KVS O(log log n) vs ORAM-KVS Θ(log n) block overhead."""
    table = ExperimentTable(
        experiment="E11b",
        claim="DP-KVS's O(log log n) node blocks vs ORAM-KVS's Theta(log n) bucket blocks",
        headers=[
            "n", "plaintext blocks/op", "DP-KVS blocks/op",
            "ORAM-KVS blocks/op", "ORAM-KVS/DP-KVS factor",
        ],
    )
    rng = SeededRandomSource(seed)
    for n in sizes:
        trace = ycsb_trace(max(8, n // 8), operations, rng.spawn(f"e11b-{n}"),
                           profile="B")
        plain = PlaintextKVS(n)
        dpkvs = DPKVS(n, rng=rng.spawn(f"e11b-dpkvs-{n}"))
        oramkvs = ORAMKeyValueStore(n, rng=rng.spawn(f"e11b-oram-{n}"))
        plain_metrics = run_kv_trace(plain, trace)
        dpkvs_metrics = run_kv_trace(dpkvs, trace)
        oram_metrics = run_kv_trace(oramkvs, trace)
        assert plain_metrics.mismatches == 0
        assert dpkvs_metrics.mismatches == 0
        assert oram_metrics.mismatches == 0
        factor = (
            oram_metrics.blocks_per_operation
            / dpkvs_metrics.blocks_per_operation
        )
        table.add_row(
            n, plain_metrics.blocks_per_operation,
            round(dpkvs_metrics.blocks_per_operation, 2),
            round(oram_metrics.blocks_per_operation, 2), round(factor, 2),
        )
    return table


def experiment_e12_multi_server(
    n: int = 1024,
    server_count: int = 4,
    alpha: float = 0.05,
    queries: int = 300,
    seed: int = 12,
) -> ExperimentTable:
    """E12 / Theorem C.1: multi-server DP-IR vs the t-fraction floor."""
    table = ExperimentTable(
        experiment="E12",
        claim="D-server DP-IR moves >= ((1-a)t - d)n/e^eps total (Thm C.1)",
        headers=[
            "D", "corrupted t", "eps (upper)", "total blocks/query",
            "corrupted-view blocks/query", "bound", "meets bound",
        ],
    )
    rng = SeededRandomSource(seed)
    database = integer_database(n)
    epsilon = math.log(n)
    for corrupted_count in range(1, server_count + 1):
        scheme = MultiServerDPIR(
            database, server_count=server_count, epsilon=epsilon, alpha=alpha,
            rng=rng.spawn(f"e12-{corrupted_count}"),
        )
        corrupted = set(range(corrupted_count))
        trace = uniform_trace(n, queries, rng.spawn(f"e12-t-{corrupted_count}"))
        metrics = run_ir_trace(scheme, trace, expected=database)
        view_rng = rng.spawn(f"e12-view-{corrupted_count}")
        visible = 0
        samples = 200
        for _ in range(samples):
            query = view_rng.randbelow(n)
            visible += len(scheme.sample_corrupted_view(query, corrupted))
        t = corrupted_count / server_count
        floor = bounds.multi_server_ir_lower_bound(n, scheme.epsilon, alpha, t)
        total = metrics.blocks_per_operation
        table.add_row(
            server_count, round(t, 2), round(scheme.epsilon, 3), total,
            round(visible / samples, 2), round(floor, 3), total >= floor,
        )
    table.add_note(
        "total work is t-independent (the paper: the [49]-style scheme is "
        "optimal for constant t); the corrupted view scales with t"
    )
    return table


def experiment_e13_roundtrips(
    sizes: tuple[int, ...] = (256, 1024, 4096),
    queries: int = 60,
    seed: int = 13,
) -> ExperimentTable:
    """E13 / Related Work [50]: roundtrips — recursion vs DP-RAM's O(1).

    The paper: Wagh et al.'s Path-ORAM-based DP-RAM "requires recursively
    stored position maps which requires Θ(log n) client-to-server
    roundtrips"; this repo's DP-RAM answers in two.
    """
    from repro.baselines.recursive_oram import RecursivePathORAM

    table = ExperimentTable(
        experiment="E13",
        claim="recursive position maps cost Theta(log n) roundtrips; DP-RAM costs 2",
        headers=[
            "n", "recursive ORAM levels", "recursive roundtrips/op",
            "recursive client map", "DP-RAM roundtrips/op",
            "recursive blocks/op", "DP-RAM blocks/op", "mismatches",
        ],
    )
    rng = SeededRandomSource(seed)
    for n in sizes:
        database = integer_database(n)
        recursive = RecursivePathORAM(
            database, positions_per_block=8, client_map_limit=32,
            rng=rng.spawn(f"e13-r-{n}"),
        )
        dpram = DPRAM(database, rng=rng.spawn(f"e13-d-{n}"))
        trace = read_write_trace(n, queries, rng.spawn(f"e13-t-{n}"),
                                 write_fraction=0.3)
        recursive_metrics = run_ram_trace(recursive, trace, initial=database)
        dpram_metrics = run_ram_trace(dpram, trace, initial=database)
        table.add_row(
            n, recursive.levels, recursive.roundtrips_per_access,
            recursive.client_position_entries, 2,
            round(recursive_metrics.blocks_per_operation, 1),
            dpram_metrics.blocks_per_operation,
            recursive_metrics.mismatches + dpram_metrics.mismatches,
        )
    table.add_note(
        "DP-RAM's two roundtrips are the download phase and the overwrite "
        "phase; recursion adds one sequential map level per chi-factor of n"
    )
    return table


def experiment_e14_response_times(
    n: int = 4096,
    queries: int = 100,
    block_bytes: int = 4096,
    seed: int = 14,
) -> ExperimentTable:
    """E14 / intro motivation: simulated response times on LAN/WAN/mobile.

    Converts each scheme's measured blocks-per-op and roundtrips into
    response times under the :mod:`repro.storage.network` link models —
    the "degradation in response time" the introduction argues rules out
    ORAM/PIR for heavily-trafficked systems.
    """
    from repro.baselines.recursive_oram import RecursivePathORAM
    from repro.storage.network import LAN, MOBILE, WAN

    table = ExperimentTable(
        experiment="E14",
        claim="response-time impact: DP schemes vs oblivious schemes per link",
        headers=[
            "scheme", "roundtrips", "blocks/op",
            "LAN ms", "WAN ms", "mobile ms",
        ],
    )
    rng = SeededRandomSource(seed)
    database = integer_database(n)
    trace = read_write_trace(n, queries, rng.spawn("e14-t"),
                             write_fraction=0.3)
    read_trace = uniform_trace(n, queries, rng.spawn("e14-rt"))

    plain = PlaintextRAM(database)
    plain_metrics = run_ram_trace(plain, trace, initial=database)
    dpram = DPRAM(database, rng=rng.spawn("e14-d"))
    dpram_metrics = run_ram_trace(dpram, trace, initial=database)
    dpir = DPIR(database, epsilon=math.log(n), alpha=0.05,
                rng=rng.spawn("e14-i"))
    dpir_metrics = run_ir_trace(dpir, read_trace, expected=database)
    oram = PathORAM(database, rng=rng.spawn("e14-o"))
    oram_metrics = run_ram_trace(oram, trace, initial=database)
    recursive = RecursivePathORAM(database, rng=rng.spawn("e14-r"))
    recursive_metrics = run_ram_trace(recursive, trace, initial=database)
    pir = LinearScanPIR(database)
    pir_metrics = run_ir_trace(pir, read_trace, expected=database)

    entries = [
        ("plaintext", 1, plain_metrics.blocks_per_operation),
        ("DP-IR (alpha=0.05)", 1, dpir_metrics.blocks_per_operation),
        ("DP-RAM", 2, dpram_metrics.blocks_per_operation),
        ("Path ORAM", 2, oram_metrics.blocks_per_operation),
        ("recursive ORAM", recursive.roundtrips_per_access,
         recursive_metrics.blocks_per_operation),
        ("linear PIR", 1, pir_metrics.blocks_per_operation),
    ]
    for name, roundtrips, blocks in entries:
        table.add_row(
            name, roundtrips, round(blocks, 1),
            round(LAN.response_time_ms(roundtrips, blocks, block_bytes), 2),
            round(WAN.response_time_ms(roundtrips, blocks, block_bytes), 1),
            round(MOBILE.response_time_ms(roundtrips, blocks, block_bytes), 1),
        )
    table.add_note(
        f"link models: LAN 0.5ms/10Gbps, WAN 40ms/100Mbps, mobile "
        f"80ms/20Mbps; {block_bytes}-byte blocks at n={n}"
    )
    return table


ALL_EXPERIMENTS = (
    experiment_e01_errorless_ir,
    experiment_e02_dpir_lower_bound,
    experiment_e03_dpir_construction,
    experiment_e04_strawman,
    experiment_e05_dpram_lower_bound,
    experiment_e06_dpram_construction,
    experiment_e07_dpram_ratios,
    experiment_e08_two_choice,
    experiment_e09_tree_hashing,
    experiment_e10_dpkvs,
    experiment_e11_vs_oram,
    experiment_e11b_kvs_vs_oram,
    experiment_e12_multi_server,
    experiment_e13_roundtrips,
    experiment_e14_response_times,
)


def run_all(markdown: bool = False) -> str:
    """Run every experiment and render the combined report."""
    sections = []
    for driver in ALL_EXPERIMENTS:
        result = driver()
        sections.append(result.to_markdown() if markdown else result.to_text())
    return "\n\n".join(sections)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    import sys

    print(run_all(markdown="--markdown" in sys.argv))
