"""Measurement bundle for one scheme-over-trace run."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class RunMetrics:
    """What a run measured.

    Attributes:
        scheme: label of the scheme under test.
        trace: label of the workload.
        operations: logical queries executed.
        blocks_downloaded: server→client block transfers.
        blocks_uploaded: client→server block transfers.
        errors: queries that returned no answer (DP-IR's α events).
        mismatches: reference-model disagreements (must be 0 for
            errorless schemes; errored queries are not counted).
        client_peak_blocks: peak client storage in blocks, when the scheme
            reports it.
        elapsed_seconds: wall-clock time of the run.
    """

    scheme: str
    trace: str
    operations: int = 0
    blocks_downloaded: int = 0
    blocks_uploaded: int = 0
    errors: int = 0
    mismatches: int = 0
    client_peak_blocks: int | None = None
    elapsed_seconds: float = 0.0

    @property
    def blocks_total(self) -> int:
        """Total block transfers."""
        return self.blocks_downloaded + self.blocks_uploaded

    @property
    def blocks_per_operation(self) -> float:
        """Average block transfers per logical query."""
        if self.operations == 0:
            return 0.0
        return self.blocks_total / self.operations

    @property
    def error_rate(self) -> float:
        """Fraction of queries that errored."""
        if self.operations == 0:
            return 0.0
        return self.errors / self.operations

    def overhead_versus(self, baseline_blocks_per_op: float) -> float:
        """Block overhead relative to a baseline (usually plaintext = 1)."""
        if baseline_blocks_per_op <= 0:
            raise ValueError("baseline must be positive")
        return self.blocks_per_operation / baseline_blocks_per_op
