"""Measurement bundle for one scheme-over-trace run, plus latency tails.

Path ORAM's evaluation style reports response-time *distributions*, not
just operation counts; :func:`percentile` and :class:`LatencySummary`
bring the same discipline here.  The single-client harness records a
per-operation simulated latency stream when the scheme runs over a
:class:`~repro.storage.backends.NetworkBackend`, and the serving layer
builds its p50/p95/p99 report from the same helpers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence


def percentile(values: Sequence[float], fraction: float) -> float:
    """The ``fraction``-quantile of ``values`` with linear interpolation.

    ``fraction`` is in ``[0, 1]`` (``0.5`` is the median).  Uses the
    standard "linear between closest ranks" definition, so
    ``percentile(v, 0.0) == min(v)`` and ``percentile(v, 1.0) == max(v)``.

    Raises:
        ValueError: on an empty sequence or a fraction outside ``[0, 1]``.
    """
    if not values:
        raise ValueError("cannot take a percentile of no values")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    return _interpolate(sorted(values), fraction)


def _interpolate(ordered: Sequence[float], fraction: float) -> float:
    rank = fraction * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    weight = rank - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


#: The tails every report shows by default.  Cluster-scale runs care
#: about deeper tails than p99, hence p99.9 — callers with different
#: needs pass their own fraction list to :func:`percentile_map`.
DEFAULT_PERCENTILES = (0.50, 0.95, 0.99, 0.999)


def percentile_label(fraction: float) -> str:
    """The conventional name of a quantile: ``0.999`` → ``"p99.9"``."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    return f"p{100.0 * fraction:g}"


def percentile_map(
    values: Sequence[float],
    fractions: Sequence[float] = DEFAULT_PERCENTILES,
) -> dict[str, float]:
    """Quantiles of ``values`` at each fraction, keyed by ``pXX`` label.

    One sort serves every requested fraction.  An empty sample maps every
    label to ``0.0`` (matching :meth:`LatencySummary.from_values`).
    """
    labels = [percentile_label(fraction) for fraction in fractions]
    if not values:
        return {label: 0.0 for label in labels}
    ordered = sorted(values)
    return {
        label: _interpolate(ordered, fraction)
        for label, fraction in zip(labels, fractions)
    }


@dataclass(frozen=True)
class LatencySummary:
    """Tail statistics of a latency sample, in milliseconds.

    Attributes:
        count: number of observations summarized.
        mean_ms: arithmetic mean.
        p50_ms: median.
        p95_ms: 95th percentile.
        p99_ms: 99th percentile.
        max_ms: worst observation.
        p999_ms: 99.9th percentile (cluster-scale tail; defaults to 0.0
            so summaries built by older call sites stay valid).
    """

    count: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float
    p999_ms: float = 0.0

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "LatencySummary":
        """Summarize a latency sample (all zeros for an empty sample)."""
        if not values:
            return cls(count=0, mean_ms=0.0, p50_ms=0.0, p95_ms=0.0,
                       p99_ms=0.0, max_ms=0.0, p999_ms=0.0)
        ordered = sorted(values)
        return cls(
            count=len(ordered),
            mean_ms=sum(ordered) / len(ordered),
            p50_ms=_interpolate(ordered, 0.50),
            p95_ms=_interpolate(ordered, 0.95),
            p99_ms=_interpolate(ordered, 0.99),
            max_ms=ordered[-1],
            p999_ms=_interpolate(ordered, 0.999),
        )

    def to_dict(self) -> dict[str, float]:
        """The JSON view the report classes embed (``p50`` … ``max``)."""
        return {
            "p50": self.p50_ms,
            "p95": self.p95_ms,
            "p99": self.p99_ms,
            "p999": self.p999_ms,
            "mean": self.mean_ms,
            "max": self.max_ms,
        }


@dataclass
class RunMetrics:
    """What a run measured.

    Attributes:
        scheme: label of the scheme under test.
        trace: label of the workload.
        operations: logical queries executed.
        blocks_downloaded: server→client block transfers.
        blocks_uploaded: client→server block transfers.
        errors: queries that returned no answer (DP-IR's α events).
        mismatches: reference-model disagreements (must be 0 for
            errorless schemes; errored queries are not counted).
        client_peak_blocks: peak client storage in blocks, when the scheme
            reports it.
        elapsed_seconds: wall-clock time of the run.
        latencies_ms: per-operation simulated response times, recorded
            when the scheme runs over a latency-accounting backend.
        fault_counters: injected/observed fault totals aggregated from
            the scheme's fault wrappers; empty for fault-free runs.
        serial_ms: simulated time for the run's server operations priced
            one after another under the LAN reference link.
        wall_clock_ms: the same operations under the scheme's overlap
            accounting (:meth:`repro.api.protocols.Scheme.wall_operations`)
            — below :attr:`serial_ms` exactly when the scheme fanned
            independent legs out concurrently, equal otherwise.
    """

    scheme: str
    trace: str
    operations: int = 0
    blocks_downloaded: int = 0
    blocks_uploaded: int = 0
    errors: int = 0
    mismatches: int = 0
    client_peak_blocks: int | None = None
    elapsed_seconds: float = 0.0
    latencies_ms: list[float] = field(default_factory=list)
    fault_counters: dict[str, int] = field(default_factory=dict)
    serial_ms: float = 0.0
    wall_clock_ms: float = 0.0

    @property
    def overlap_speedup(self) -> float:
        """Serial over wall-clock time (1.0 when nothing overlapped)."""
        if self.wall_clock_ms <= 0.0:
            return 1.0
        return self.serial_ms / self.wall_clock_ms

    @property
    def blocks_total(self) -> int:
        """Total block transfers."""
        return self.blocks_downloaded + self.blocks_uploaded

    @property
    def blocks_per_operation(self) -> float:
        """Average block transfers per logical query."""
        if self.operations == 0:
            return 0.0
        return self.blocks_total / self.operations

    @property
    def error_rate(self) -> float:
        """Fraction of queries that errored."""
        if self.operations == 0:
            return 0.0
        return self.errors / self.operations

    @property
    def latency_summary(self) -> LatencySummary | None:
        """Tail statistics of the recorded latencies, if any were taken."""
        if not self.latencies_ms:
            return None
        return LatencySummary.from_values(self.latencies_ms)

    def overhead_versus(self, baseline_blocks_per_op: float) -> float:
        """Block overhead relative to a baseline (usually plaintext = 1)."""
        if baseline_blocks_per_op <= 0:
            raise ValueError("baseline must be positive")
        return self.blocks_per_operation / baseline_blocks_per_op
