"""The cluster run's configuration surface: one frozen dataclass.

Mirrors :class:`repro.serving.config.ServingConfig` for the deployment
layer: every knob ``cluster()`` grew across PRs (executor, batching,
fault coins, trace/metrics sinks, budget timeline, monitors) lives on
:class:`ClusterConfig`, the documented way to parameterize
:func:`repro.cluster`::

    import repro
    from repro.cluster import ClusterConfig

    config = ClusterConfig(shards=4, replicas=2, seed=7)
    report = repro.cluster("dp_ir", config)

The old keyword signature still works — ``cluster()`` folds legacy
kwargs into a config and emits a single :class:`DeprecationWarning` —
and the CLI builds configs via :meth:`ClusterConfig.from_cli_args`.
"""

from __future__ import annotations

import argparse
import dataclasses
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeline import BudgetTimeline
from repro.obs.tracer import Tracer
from repro.simulation.metrics import DEFAULT_PERCENTILES
from repro.storage.blocks import DEFAULT_BLOCK_SIZE


@dataclass(frozen=True)
class ClusterConfig:
    """Everything a cluster run needs besides the base-scheme name.

    Attributes:
        shards: number of shard groups ``D``.
        replicas: replicas per group ``R``.
        n: logical database size / key capacity.
        requests: operations to drive through the cluster.
        workload: trace shape (``uniform`` / ``zipf`` / ``ycsb-a`` …).
        placement: ``"range"`` or ``"hash"`` (IR clusters).
        epsilon: cluster-wide privacy target (IR; default ``ln n``).
        pad_size: explicit global pad size ``K`` (IR alternative).
        alpha: per-query error probability of the IR base instances.
        authenticated: authenticated storage encryption (IR).
        failure_rate: flaky-node rate, scalar or per-replica sequence.
        corruption_rate: bit-flip rate, scalar or per-replica.
        block_size: record bytes for IR databases.
        value_size: KVS value budget.
        seed: deterministic randomness; ``None`` uses system entropy.
        network: link model pricing server operations into simulated ms.
        backend: per-replica slot-storage backend name (``memory`` /
            ``slab`` / ``network``); ``None`` keeps the in-memory
            default.
        executor: cross-shard fan-out policy (``serial`` / ``parallel``
            / ``simulated``).
        batch: requests dispatched per round through the batched entry
            points.
        percentiles: quantile fractions for the report's tail set.
        tracer: optional :class:`~repro.obs.tracer.Tracer`.
        metrics_registry: optional
            :class:`~repro.obs.metrics.MetricsRegistry`.
        timeline: optional :class:`~repro.obs.timeline.BudgetTimeline`
            receiving one exact spend event per ledger charge.
        fault_coin_mode: ``"per_slot"`` or ``"per_round"``.
        monitor: attach online leakage monitors.
        base_kwargs: extra keyword arguments forwarded to the base
            scheme's builder.
    """

    shards: int = 4
    replicas: int = 2
    n: int = 1024
    requests: int = 256
    workload: str = "uniform"
    placement: str = "range"
    epsilon: float | None = None
    pad_size: int | None = None
    alpha: float = 0.05
    authenticated: bool = True
    failure_rate: float | Sequence[float] = 0.0
    corruption_rate: float | Sequence[float] = 0.0
    block_size: int = DEFAULT_BLOCK_SIZE
    value_size: int = 32
    seed: int | bytes | str | None = None
    network: str = "lan"
    backend: str | None = None
    executor: str | None = None
    batch: int = 1
    percentiles: Sequence[float] = DEFAULT_PERCENTILES
    tracer: Tracer | None = None
    metrics_registry: MetricsRegistry | None = None
    timeline: BudgetTimeline | None = None
    fault_coin_mode: str = "per_slot"
    monitor: bool = False
    base_kwargs: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError(
                f"requests must be at least 1, got {self.requests}"
            )
        if self.batch < 1:
            raise ValueError(f"batch must be at least 1, got {self.batch}")

    def replace(self, **changes: Any) -> "ClusterConfig":
        """A copy with ``changes`` applied (frozen-dataclass idiom)."""
        return dataclasses.replace(self, **changes)

    @classmethod
    def from_cli_args(
        cls,
        args: argparse.Namespace,
        *,
        tracer: Tracer | None = None,
        metrics_registry: MetricsRegistry | None = None,
        timeline: BudgetTimeline | None = None,
    ) -> "ClusterConfig":
        """Build a config from the ``repro cluster``/``audit`` namespace.

        Flags absent from a subcommand (``repro audit`` has no
        ``--placement``, ``--no-auth``, fault-rate or ``--monitor``
        flags) fall back to the field defaults, so both CLIs share one
        construction path.
        """
        return cls(
            shards=args.shards,
            replicas=args.replicas,
            n=args.n,
            requests=args.requests,
            workload=args.workload,
            placement=getattr(args, "placement", "range"),
            epsilon=args.epsilon,
            pad_size=args.pad_size,
            alpha=getattr(args, "alpha", 0.05),
            authenticated=not getattr(args, "no_auth", False),
            failure_rate=getattr(args, "failure_rate", 0.0),
            corruption_rate=getattr(args, "corruption_rate", 0.0),
            value_size=getattr(args, "value_size", 32),
            seed=args.seed,
            network=getattr(args, "network", "lan"),
            backend=getattr(args, "backend", None),
            executor=args.executor,
            batch=args.batch,
            tracer=tracer,
            metrics_registry=metrics_registry,
            timeline=timeline,
            fault_coin_mode=getattr(args, "fault_coins", "per_slot"),
            monitor=getattr(args, "monitor", False),
        )


#: ClusterConfig field names accepted by the deprecated keyword path of
#: :func:`repro.cluster` (everything except ``base_kwargs``, the
#: catch-all for base-scheme builder keywords).
CLUSTER_CONFIG_FIELDS: frozenset[str] = frozenset(
    f.name for f in dataclasses.fields(ClusterConfig)
) - {"base_kwargs"}
