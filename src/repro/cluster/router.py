"""Shard placement: mapping logical indices and keys to shard groups.

Two policies, both deterministic:

* :class:`RangeRouter` — contiguous index ranges (the layout of
  :class:`~repro.core.sharded_ir.ShardedDPIR`), natural for
  index-addressed IR databases and the only policy that supports
  load-weighted :meth:`~RangeRouter.rebalanced` boundaries.
* :class:`HashRouter` — SHA-256 placement of indices or keys, the usual
  choice for KVS key universes (uniform spread, no boundary metadata).

Routers are pure placement metadata: they never touch servers, so the
cluster can build a candidate router (say, rebalanced boundaries) and
inspect the resulting assignment before migrating anything.
"""

from __future__ import annotations

import abc
import hashlib
from typing import Sequence


class ShardRouter(abc.ABC):
    """Placement policy of a cluster: which shard owns which record."""

    #: Policy name recorded in reports (``"range"`` / ``"hash"``).
    policy: str = "router"

    def __init__(self, n: int, shard_count: int) -> None:
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if shard_count <= 0:
            raise ValueError(
                f"shard count must be positive, got {shard_count}"
            )
        if shard_count > n:
            raise ValueError(
                f"cannot split {n} records into {shard_count} shards"
            )
        self._n = n
        self._shard_count = shard_count

    @property
    def n(self) -> int:
        """Size of the logical index space."""
        return self._n

    @property
    def shard_count(self) -> int:
        """Number of shard groups ``D``."""
        return self._shard_count

    @abc.abstractmethod
    def shard_of(self, index: int) -> int:
        """The shard group owning logical ``index``."""

    def shard_of_key(self, key: bytes) -> int:
        """The shard group owning ``key`` (hash placement by default)."""
        return hash_shard_of_key(key, self._shard_count)

    def assignment(self) -> list[list[int]]:
        """Per-shard lists of owned global indices, in index order."""
        shards: list[list[int]] = [[] for _ in range(self._shard_count)]
        for index in range(self._n):
            shards[self.shard_of(index)].append(index)
        return shards

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self._n:
            raise ValueError(f"index {index} out of range for n={self._n}")


class RangeRouter(ShardRouter):
    """Contiguous-range placement: shard ``s`` owns ``[starts[s], starts[s+1])``.

    Args:
        n: logical index space size.
        shard_count: number of shards ``D``.
        boundaries: optional explicit start offsets (``D + 1`` ascending
            values from 0 to ``n``); the default splits evenly.
    """

    policy = "range"

    def __init__(
        self,
        n: int,
        shard_count: int,
        boundaries: Sequence[int] | None = None,
    ) -> None:
        super().__init__(n, shard_count)
        if boundaries is None:
            base, extra = divmod(n, shard_count)
            starts = [0]
            for shard in range(shard_count):
                starts.append(starts[-1] + base + (1 if shard < extra else 0))
        else:
            starts = list(boundaries)
            if len(starts) != shard_count + 1:
                raise ValueError(
                    f"expected {shard_count + 1} boundaries, got {len(starts)}"
                )
            if starts[0] != 0 or starts[-1] != n:
                raise ValueError("boundaries must span [0, n]")
            if any(hi <= lo for lo, hi in zip(starts, starts[1:])):
                raise ValueError("every shard range must be non-empty")
        self._starts = starts

    @property
    def boundaries(self) -> tuple[int, ...]:
        """The ``D + 1`` range start offsets."""
        return tuple(self._starts)

    def shard_of(self, index: int) -> int:
        """Binary search over the range boundaries."""
        self._check_index(index)
        lo, hi = 0, self._shard_count - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._starts[mid] <= index:
                lo = mid
            else:
                hi = mid - 1
        return lo

    def rebalanced(self, loads: Sequence[float]) -> "RangeRouter":
        """New boundaries equalizing the *observed* per-shard load.

        Each current shard's load is assumed uniform over its own range
        (the cluster only tracks per-shard counters, not per-index
        ones); the cumulative load curve is then cut into ``D`` equal
        parts.  A hot shard gets split across more of the new shards, a
        cold one is merged into fewer — the classic range-rebalance
        move.

        Args:
            loads: per-shard observed load (operation counts); all-zero
                loads fall back to the even split.
        """
        if len(loads) != self._shard_count:
            raise ValueError(
                f"expected {self._shard_count} loads, got {len(loads)}"
            )
        if any(load < 0 for load in loads):
            raise ValueError("loads must be non-negative")
        total = float(sum(loads))
        if total == 0.0:
            return RangeRouter(self._n, self._shard_count)
        # Per-index load density, uniform within each current range.
        density = []
        for shard, load in enumerate(loads):
            size = self._starts[shard + 1] - self._starts[shard]
            density.extend([load / size] * size)
        target = total / self._shard_count
        starts = [0]
        cumulative = 0.0
        for index, weight in enumerate(density):
            cumulative += weight
            while (
                len(starts) < self._shard_count
                and cumulative >= target * len(starts)
                and index + 1 > starts[-1]
                # Leave enough indices for the remaining shards.
                and self._n - (index + 1) >= self._shard_count - len(starts)
            ):
                starts.append(index + 1)
        while len(starts) < self._shard_count:
            starts.append(self._n - (self._shard_count - len(starts)))
        starts.append(self._n)
        return RangeRouter(self._n, self._shard_count, boundaries=starts)


class HashRouter(ShardRouter):
    """Deterministic hash placement of indices and keys.

    Keys (an unbounded universe) place by SHA-256 modulo ``D``.  The
    *finite* index space instead orders all indices by their hash and
    deals them round-robin, which keeps the pseudorandom spread but
    guarantees every shard owns ``⌈n/D⌉`` or ``⌊n/D⌋`` records — plain
    ``hash mod D`` can leave a shard empty for small ``n/D``, which
    would be an unbuildable (and unstorable) shard group.
    """

    policy = "hash"

    def __init__(self, n: int, shard_count: int) -> None:
        super().__init__(n, shard_count)
        ranked = sorted(
            range(n), key=lambda i: (_hash_bytes(i.to_bytes(8, "big")), i)
        )
        self._shard_of_index = [0] * n
        for position, index in enumerate(ranked):
            self._shard_of_index[index] = position % shard_count

    def shard_of(self, index: int) -> int:
        self._check_index(index)
        return self._shard_of_index[index]


def _hash_bytes(data: bytes) -> int:
    digest = hashlib.sha256(b"shard:" + data).digest()
    return int.from_bytes(digest[:8], "big")


def hash_shard_of_key(key: bytes, shard_count: int) -> int:
    """The shard owning ``key`` under plain hash placement.

    The one routing rule for unbounded key universes; KVS clusters use
    it directly (no index table to precompute), and
    :meth:`ShardRouter.shard_of_key` delegates here.
    """
    if shard_count <= 0:
        raise ValueError(f"shard count must be positive, got {shard_count}")
    return _hash_bytes(key) % shard_count


def make_router(
    placement: str | ShardRouter, n: int, shard_count: int
) -> ShardRouter:
    """Resolve a placement name (``"range"`` / ``"hash"``) to a router."""
    if isinstance(placement, ShardRouter):
        return placement
    if placement == "range":
        return RangeRouter(n, shard_count)
    if placement == "hash":
        return HashRouter(n, shard_count)
    raise ValueError(
        f"unknown placement {placement!r}; expected 'range', 'hash' "
        "or a ShardRouter"
    )
