"""Sharded + replicated multi-node deployment of any registered scheme.

The ROADMAP north star is a production-scale system; this package is
the deployment layer that takes any registered IR or KVS scheme and
runs it as **N shard groups × R replicas**::

    client query / key
         │
         ▼
    ShardRouter ── contiguous-range or hash placement maps the logical
         │         index / key to its owning shard group
         ▼
    shard group s ── R independently built base-scheme instances over
         │           the shard's ≈ n/D records; reads rotate across
         │           replicas and FAIL OVER on ServerFault or on an
         │           authenticated-decryption failure (tampering)
         ▼
    ClusterLedger ── per-shard ε ledgers composed into cluster-wide
                     budgets via repro.analysis.composition

Because :class:`~repro.cluster.scheme.ClusterIR` and
:class:`~repro.cluster.scheme.ClusterKVS` implement the ordinary
:mod:`repro.api` protocols, the harness, the conformance suite and the
:mod:`repro.serving` simulator drive a cluster unchanged — registered
as ``cluster_dp_ir`` / ``cluster_batch_dp_ir`` / ``cluster_dp_kvs``.
``reshard()`` and ``rebalance()`` migrate key ranges online; per-shard
load counters make the load-hiding gap of sharding (one hot shard
serves more traffic) measurable as a Jain index.

Privacy model, stated honestly: the per-shard pad splits as ``K/D`` so
each shard instance's exact budget over its ``n/D`` records equals the
single-server budget over ``n`` — but the *routing* of a query to its
owner shard is only hidden from non-colluding shard operators.  The
:class:`~repro.cluster.ledger.ClusterLedger` reports both that model's
binding budget (worst single shard) and the colluding upper bound.

Entry points: :func:`~repro.cluster.service.cluster` (re-exported as
``repro.cluster``), the ``python -m repro cluster`` CLI subcommand, and
``benchmarks/bench_cluster.py``.
"""

import sys
from types import ModuleType
from typing import Any

from repro.cluster.config import ClusterConfig
from repro.cluster.group import (
    DEFAULT_MAX_ATTEMPTS,
    GroupExhaustedError,
    KVShardGroup,
    ShardGroup,
)
from repro.cluster.ledger import ClusterBudgetReport, ClusterLedger
from repro.cluster.report import ClusterReport, ShardReport, jain_index
from repro.cluster.router import (
    HashRouter,
    RangeRouter,
    ShardRouter,
    make_router,
)
from repro.cluster.scheme import ClusterIR, ClusterKVS, MigrationReport
from repro.cluster.service import cluster

__all__ = [
    "ClusterBudgetReport",
    "ClusterConfig",
    "ClusterIR",
    "ClusterKVS",
    "ClusterLedger",
    "ClusterReport",
    "DEFAULT_MAX_ATTEMPTS",
    "GroupExhaustedError",
    "HashRouter",
    "KVShardGroup",
    "MigrationReport",
    "RangeRouter",
    "ShardGroup",
    "ShardReport",
    "ShardRouter",
    "cluster",
    "jain_index",
    "make_router",
]


class _CallableClusterModule(ModuleType):
    """Make ``repro.cluster(...)`` run a deployment while keeping this a
    real subpackage (``repro.cluster.ClusterIR``, ``import
    repro.cluster.router`` and friends all keep working)."""

    def __call__(self, *args: Any, **kwargs: Any) -> ClusterReport:
        return cluster(*args, **kwargs)


sys.modules[__name__].__class__ = _CallableClusterModule
