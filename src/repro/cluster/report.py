"""Cluster run reporting: per-shard load, failover, budget, tails."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.cluster.ledger import ClusterBudgetReport
from repro.obs.monitor import LeakageReport
from repro.simulation.metrics import (
    DEFAULT_PERCENTILES,
    LatencySummary,
    percentile_map,
)
from repro.simulation.reporting import format_table, latency_rows_from


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index over per-shard loads.

    1.0 means perfectly even load; ``1/D`` means one of ``D`` shards
    absorbed everything — the quantitative form of the load-hiding gap
    the sharded construction gives up versus replication.  An all-zero
    load vector is trivially even (1.0).
    """
    if not values:
        return 1.0
    if any(value < 0 for value in values):
        raise ValueError("loads must be non-negative")
    sum_of_squares = sum(value * value for value in values)
    if sum_of_squares == 0.0:
        return 1.0
    return sum(values) ** 2 / (len(values) * sum_of_squares)


@dataclass
class ShardReport:
    """One shard group's slice of a cluster run."""

    shard: int
    records: int
    queries: int
    server_operations: int
    failovers: int
    epsilon_spent: float


@dataclass
class ClusterReport:
    """The outcome of one :func:`repro.cluster.service.cluster` run.

    Simulated milliseconds come from the run's network model (one
    roundtrip plus serialization per slot access — the same pricing the
    serving simulator uses), so reports are deterministic.
    """

    scheme: str
    base: str
    placement: str
    shards: int
    replicas: int
    n: int
    requests: int
    completed: int
    errors: int
    #: Answers that disagreed with the reference model.  Zero whenever
    #: failover + authenticated storage hold; positive under *silent*
    #: (unauthenticated) corruption — the detected-vs-silent contrast.
    mismatches: int
    network: str
    latency: LatencySummary
    server_operations: int
    per_server_storage_blocks: int
    total_storage_blocks: int
    load_jain_index: float
    budget: ClusterBudgetReport
    shard_reports: list[ShardReport] = field(default_factory=list)
    faults: dict = field(default_factory=dict)
    #: Extra quantiles beyond the summary's fixed fields, keyed ``pXX``.
    percentiles: dict = field(default_factory=dict)
    #: The run's cross-shard fan-out policy (``serial`` / ``parallel``
    #: / ``simulated``).
    executor: str = "serial"
    #: Requests dispatched per round through the batched entry points.
    batch: int = 1
    #: Total simulated time with every shard leg run back-to-back.
    serial_ms: float = 0.0
    #: Total simulated time under the executor's overlap accounting
    #: (equals :attr:`serial_ms` for the serial executor).
    wall_clock_ms: float = 0.0
    #: Online leakage-monitor verdicts when the run was driven with
    #: ``monitor=True``; empty otherwise.
    leakage: list[LeakageReport] = field(default_factory=list)

    @property
    def leakage_tripped(self) -> bool:
        """True when any online monitor exceeded its ε-implied ceiling."""
        return any(report.tripped for report in self.leakage)

    @property
    def ops_per_request(self) -> float:
        """Server operations per completed request."""
        if self.completed == 0:
            return 0.0
        return self.server_operations / self.completed

    @property
    def overlap_speedup(self) -> float:
        """Serial over wall-clock time — the cross-shard parallel payoff
        (1.0 when nothing overlapped)."""
        if self.wall_clock_ms <= 0.0:
            return 1.0
        return self.serial_ms / self.wall_clock_ms

    def to_rows(self, data: dict | None = None) -> list[list]:
        """``[metric, value]`` rows for the summary table.

        Rendered from the :meth:`to_dict` view — the JSON export is the
        single source of truth, so every figure the text table shows is
        also present (same value, machine-readable) under ``--json``.
        """
        if data is None:
            data = self.to_dict()
        budget = data["budget"]
        rows = [
            ["scheme", data["scheme"]],
            ["base scheme", data["base"]],
            ["placement", data["placement"]],
            ["shard groups", data["shards"]],
            ["replicas / group", data["replicas"]],
            ["records (n)", data["n"]],
            ["requests", data["requests"]],
            ["completed", data["completed"]],
            ["errors (alpha events)", data["errors"]],
            ["mismatches", data["mismatches"]],
            ["network", data["network"]],
            ["executor", data["executor"]],
            ["dispatch batch", data["batch"]],
            ["serial ms", f"{data['serial_ms']:.2f}"],
            ["wall-clock ms", f"{data['wall_clock_ms']:.2f}"],
            ["overlap speedup", f"{data['overlap_speedup']:.2f}x"],
            ["server operations", data["server_operations"]],
            ["ops / request", f"{data['ops_per_request']:.2f}"],
            ["per-server storage blocks", data["per_server_storage_blocks"]],
            ["total storage blocks", data["total_storage_blocks"]],
            ["shard load balance (Jain)", f"{data['load_jain_index']:.3f}"],
            ["budget epochs", budget["epochs"]],
            ["per-query epsilon", f"{budget['per_query_epsilon']:.4f}"],
            ["worst-shard epsilon spent",
             f"{budget['worst_shard_epsilon']:.2f}"],
            ["colluding epsilon bound",
             f"{budget['colluding_epsilon']:.2f}"],
        ]
        rows.extend(latency_rows_from(data["latency_ms"]))
        faults = data["faults"]
        for name in sorted(faults):
            rows.append([f"faults: {name}", faults[name]])
        for entry in data.get("leakage", []):
            verdict = "TRIPPED" if entry["tripped"] else "ok"
            rows.append([
                f"leakage: {entry['attack']}",
                f"{verdict} emp={entry['empirical_success']:.3f} "
                f"bound={entry['bound']:.3f} trials={entry['trials']}",
            ])
        return rows

    def to_text(self) -> str:
        """Render the summary and per-shard tables (from :meth:`to_dict`)."""
        data = self.to_dict()
        summary = format_table(
            ["metric", "value"],
            self.to_rows(data),
            title=(
                f"Cluster: {data['shards']}x{data['replicas']} "
                f"{data['base']} shard groups "
                f"({data['placement']} placement)"
            ),
        )
        shard_rows = [
            [s["shard"], s["records"], s["queries"], s["server_operations"],
             s["failovers"], f"{s['epsilon_spent']:.2f}"]
            for s in data["shards_detail"]
        ]
        shards = format_table(
            ["shard", "records", "queries", "server ops", "failovers",
             "eps spent"],
            shard_rows,
            title="Per-shard load",
        )
        return summary + "\n\n" + shards

    def to_dict(self) -> dict:
        """A JSON-serializable view (for ``--json`` and bench artifacts).

        The single source of truth: :meth:`to_rows` / :meth:`to_text`
        render from this mapping, so the text table can never show a
        figure the JSON export omits.
        """
        return {
            "scheme": self.scheme,
            "base": self.base,
            "placement": self.placement,
            "shards": self.shards,
            "replicas": self.replicas,
            "n": self.n,
            "requests": self.requests,
            "completed": self.completed,
            "errors": self.errors,
            "mismatches": self.mismatches,
            "network": self.network,
            "executor": self.executor,
            "batch": self.batch,
            "serial_ms": self.serial_ms,
            "wall_clock_ms": self.wall_clock_ms,
            "overlap_speedup": self.overlap_speedup,
            "server_operations": self.server_operations,
            "ops_per_request": self.ops_per_request,
            "per_server_storage_blocks": self.per_server_storage_blocks,
            "total_storage_blocks": self.total_storage_blocks,
            "load_jain_index": self.load_jain_index,
            "latency_ms": self.latency.to_dict(),
            # The configurable quantile list, kept apart from the fixed
            # summary fields so each tail has exactly one source of truth.
            "percentiles": dict(self.percentiles),
            "budget": {
                "queries": self.budget.queries,
                "per_query_epsilon": self.budget.per_query_epsilon,
                "worst_shard_epsilon": self.budget.worst_shard_epsilon,
                "colluding_epsilon": self.budget.colluding_epsilon,
                "epochs": self.budget.epochs,
            },
            "faults": dict(self.faults),
            "leakage": [report.to_dict() for report in self.leakage],
            "leakage_tripped": self.leakage_tripped,
            "shards_detail": [
                {
                    "shard": s.shard,
                    "records": s.records,
                    "queries": s.queries,
                    "server_operations": s.server_operations,
                    "failovers": s.failovers,
                    "epsilon_spent": s.epsilon_spent,
                }
                for s in self.shard_reports
            ],
        }


def extra_percentiles(
    latencies: Sequence[float],
    fractions: Sequence[float] = DEFAULT_PERCENTILES,
) -> dict[str, float]:
    """The configurable quantile set for :attr:`ClusterReport.percentiles`."""
    return percentile_map(latencies, fractions)
