"""Shard groups: R replicas of one scheme instance, with read failover.

A :class:`ShardGroup` owns one shard's records and hosts ``R``
independently-built replica instances of the base scheme.  Reads rotate
across replicas for load spreading and *fail over*: a replica that
raises :class:`~repro.storage.faults.ServerFault` (flaky node) — or
whose answer fails authenticated decryption
(:class:`~repro.crypto.encryption.IntegrityError`, a tampering node) —
is skipped and the read retries on the next replica.

Failure semantics differ by protocol, deliberately:

* **IR replicas** are client-stateless, so a faulted query is safely
  retryable on the *same* replica later — faults are treated as
  transient and attempts cycle through all replicas up to a cap.
* **KVS replicas** mutate client *and* server state on every operation
  (DP-KVS reads evict), so a fault mid-operation can leave the replica
  internally inconsistent.  A faulted KVS replica is marked dead and
  never used again (fail-stop), and reads continue on the survivors.
"""

from __future__ import annotations

from typing import Sequence

from repro.api.protocols import PrivateIR, PrivateKVS
from repro.crypto.encryption import (
    IntegrityError,
    SecretKey,
    decrypt_authenticated,
)
from repro.storage.faults import ServerFault
from repro.storage.server import StorageServer

#: Attempt cap for transient-fault retries on IR reads.  Generous on
#: purpose: a flaky node fails each *slot* access independently, so a
#: pad-set query against a 10 %-flaky server fails much more often than
#: 10 % — the cap bounds pathological runs, not the common case.
DEFAULT_MAX_ATTEMPTS = 32


class GroupExhaustedError(ServerFault):
    """Every replica of a shard group failed to serve an operation."""


class _GroupCounters:
    """Shared failover bookkeeping for both group flavours."""

    def __init__(self) -> None:
        self.failovers = 0
        self.detected_corruptions = 0
        self.faulted_reads = 0

    def fault_counters(self) -> dict[str, int]:
        counters: dict[str, int] = {}
        if self.failovers:
            counters["failovers"] = self.failovers
        if self.detected_corruptions:
            counters["detected_corruptions"] = self.detected_corruptions
        if self.faulted_reads:
            counters["faulted_reads"] = self.faulted_reads
        return counters


class ShardGroup:
    """One shard's records behind ``R`` IR replicas with read failover.

    Args:
        shard_id: position in the cluster (for reports).
        replicas: independently built base-scheme instances, each
            loaded with this shard's (possibly encrypted) records.
        key: authenticated-encryption key when the cluster stores
            ciphertexts; ``None`` stores plaintext (corruption is then
            silent, exactly as in the single-node fault tests).
        max_attempts: transient-fault retry cap per logical query.
    """

    def __init__(
        self,
        shard_id: int,
        replicas: Sequence[PrivateIR],
        key: SecretKey | None = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    ) -> None:
        if not replicas:
            raise ValueError("a shard group needs at least one replica")
        if max_attempts < 1:
            raise ValueError(
                f"max_attempts must be at least 1, got {max_attempts}"
            )
        self.shard_id = shard_id
        self._replicas = list(replicas)
        self._key = key
        self._max_attempts = max_attempts
        self._next_primary = 0
        self._counters = _GroupCounters()
        self._draws = 0

    # -- introspection -----------------------------------------------------

    @property
    def replica_count(self) -> int:
        """Number of replicas ``R``."""
        return len(self._replicas)

    @property
    def replicas(self) -> list[PrivateIR]:
        """The replica instances (exposed for tests and reports)."""
        return list(self._replicas)

    @property
    def draws(self) -> int:
        """Per-query pad-set draws served by replicas, retries included.

        Every attempt — even one a flaky node aborts partway — exposes
        an (at least partial) independently drawn pad set to that
        replica's operator, so the privacy ledger charges each draw.
        """
        return self._draws

    @property
    def local_n(self) -> int:
        """Records owned by this shard."""
        return self._replicas[0].n

    @property
    def epsilon(self) -> float:
        """The replicas' exact per-query budget (0.0 for ε-free bases)."""
        return getattr(self._replicas[0], "epsilon", 0.0)

    @property
    def failovers(self) -> int:
        """Reads that had to move to another replica (or retry)."""
        return self._counters.failovers

    @property
    def detected_corruptions(self) -> int:
        """Answers rejected by authenticated decryption."""
        return self._counters.detected_corruptions

    def fault_counters(self) -> dict[str, int]:
        """Failover totals in the uniform fault-counter vocabulary."""
        return self._counters.fault_counters()

    def servers(self) -> tuple[StorageServer, ...]:
        """Every server behind every replica."""
        servers: list[StorageServer] = []
        for replica in self._replicas:
            servers.extend(replica.servers())
        return tuple(servers)

    def operations(self) -> int:
        """Total server operations across the group."""
        return sum(replica.server_operations() for replica in self._replicas)

    # -- reads -------------------------------------------------------------

    def query(self, local_index: int) -> bytes | None:
        """Serve one read with failover; ``None`` only on the α event."""
        start = self._rotate()
        for attempt in range(self._max_attempts):
            replica = self._replicas[(start + attempt) % len(self._replicas)]
            self._draws += 1
            try:
                answer = replica.query(local_index)
            except ServerFault:
                self._counters.faulted_reads += 1
                self._counters.failovers += 1
                continue
            if answer is None:
                # The α-error event is a *scheme* coin, not a fault —
                # retrying would distort the error distribution.
                return None
            try:
                return self._decode(answer)
            except IntegrityError:
                self._counters.detected_corruptions += 1
                self._counters.failovers += 1
        raise GroupExhaustedError(
            f"shard {self.shard_id}: all {self._max_attempts} attempts "
            f"across {len(self._replicas)} replicas failed"
        )

    def query_many(self, local_indices: Sequence[int]) -> list[bytes | None]:
        """Serve a batch through one replica's ``query_many``, failing over.

        A :class:`ServerFault` mid-batch retries the whole batch on the
        next replica (IR batches are stateless, so redrawing pad sets is
        safe); per-answer integrity failures fall back to single-read
        failover for just the affected indices.
        """
        if not local_indices:
            return []
        start = self._rotate()
        answers: list[bytes | None] | None = None
        for attempt in range(self._max_attempts):
            replica = self._replicas[(start + attempt) % len(self._replicas)]
            self._draws += len(local_indices)
            try:
                answers = replica.query_many(list(local_indices))
            except ServerFault:
                self._counters.faulted_reads += 1
                self._counters.failovers += 1
                continue
            break
        if answers is None:
            raise GroupExhaustedError(
                f"shard {self.shard_id}: batched read failed on every "
                "attempt"
            )
        decoded: list[bytes | None] = []
        for local_index, answer in zip(local_indices, answers):
            if answer is None:
                decoded.append(None)
                continue
            try:
                decoded.append(self._decode(answer))
            except IntegrityError:
                self._counters.detected_corruptions += 1
                self._counters.failovers += 1
                decoded.append(self.query(local_index))
        return decoded

    # -- internals ---------------------------------------------------------

    def _rotate(self) -> int:
        start = self._next_primary
        self._next_primary = (start + 1) % len(self._replicas)
        return start

    def _decode(self, block: bytes) -> bytes:
        if self._key is None:
            return block
        return decrypt_authenticated(self._key, block)


class KVShardGroup:
    """One shard's key range behind ``R`` KVS replicas (fail-stop).

    Writes go to every live replica so reads can be served by any of
    them; a replica that faults mid-operation is marked dead (its
    client-side state may be inconsistent — see the module docstring)
    and the group continues on the survivors.
    """

    def __init__(
        self, shard_id: int, replicas: Sequence[PrivateKVS]
    ) -> None:
        if not replicas:
            raise ValueError("a shard group needs at least one replica")
        self.shard_id = shard_id
        self._replicas = list(replicas)
        self._alive = [True] * len(replicas)
        self._next_primary = 0
        self._counters = _GroupCounters()
        self._draws = 0

    # -- introspection -----------------------------------------------------

    @property
    def replica_count(self) -> int:
        """Number of replicas ``R`` (dead ones included)."""
        return len(self._replicas)

    @property
    def live_replicas(self) -> int:
        """Replicas still serving."""
        return sum(self._alive)

    @property
    def replicas(self) -> list[PrivateKVS]:
        """The replica instances (exposed for tests and reports)."""
        return list(self._replicas)

    @property
    def draws(self) -> int:
        """Replica operations attempted, failovers and write fan-out
        included — each is an independent mechanism invocation visible
        to that replica's operator, so the ledger charges each one."""
        return self._draws

    @property
    def value_size(self) -> int:
        """The replicas' value budget."""
        return self._replicas[0].value_size

    @property
    def epsilon(self) -> float:
        """The replicas' exact per-operation budget, when they report one."""
        return getattr(self._replicas[0], "epsilon", 0.0)

    @property
    def failovers(self) -> int:
        """Reads that had to move to another replica."""
        return self._counters.failovers

    def fault_counters(self) -> dict[str, int]:
        """Failover totals in the uniform fault-counter vocabulary."""
        counters = self._counters.fault_counters()
        dead = len(self._replicas) - self.live_replicas
        if dead:
            counters["dead_replicas"] = dead
        return counters

    def servers(self) -> tuple[StorageServer, ...]:
        """Every server behind every replica (dead ones included)."""
        servers: list[StorageServer] = []
        for replica in self._replicas:
            servers.extend(replica.servers())
        return tuple(servers)

    def operations(self) -> int:
        """Total server operations across the group."""
        return sum(replica.server_operations() for replica in self._replicas)

    # -- operations --------------------------------------------------------

    def get(self, key: bytes) -> bytes | None:
        """Read ``key`` from the first live replica that serves it."""
        start = self._rotate()
        count = len(self._replicas)
        for offset in range(count):
            position = (start + offset) % count
            if not self._alive[position]:
                continue
            self._draws += 1
            try:
                return self._replicas[position].get(key)
            except ServerFault:
                self._mark_dead(position)
        raise GroupExhaustedError(
            f"shard {self.shard_id}: no live replicas left for get"
        )

    def get_many(self, keys: Sequence[bytes]) -> list[bytes | None]:
        """Per-key reads with failover (KVS bases do not batch)."""
        return [self.get(key) for key in keys]

    def put(self, key: bytes, value: bytes) -> None:
        """Write to every live replica; dead ones are skipped."""
        self._fan_out("put", key, value)

    def delete(self, key: bytes) -> bool:
        """Delete from every live replica; result from the first survivor."""
        return bool(self._fan_out("delete", key))

    # -- internals ---------------------------------------------------------

    def _fan_out(self, operation: str, *args):
        result = None
        first = True
        any_succeeded = False
        for position, replica in enumerate(self._replicas):
            if not self._alive[position]:
                continue
            self._draws += 1
            try:
                outcome = getattr(replica, operation)(*args)
            except ServerFault:
                self._mark_dead(position)
                continue
            any_succeeded = True
            if first:
                result = outcome
                first = False
        if not any_succeeded:
            raise GroupExhaustedError(
                f"shard {self.shard_id}: no live replicas left for "
                f"{operation}"
            )
        return result

    def _mark_dead(self, position: int) -> None:
        self._counters.faulted_reads += 1
        self._counters.failovers += 1
        self._alive[position] = False

    def _rotate(self) -> int:
        start = self._next_primary
        self._next_primary = (start + 1) % len(self._replicas)
        return start
