"""Shard groups: R replicas of one scheme instance, with read failover.

A :class:`ShardGroup` owns one shard's records and hosts ``R``
independently-built replica instances of the base scheme.  Reads rotate
across replicas for load spreading and *fail over*: a replica that
raises :class:`~repro.storage.faults.ServerFault` (flaky node) — or
whose answer fails authenticated decryption
(:class:`~repro.crypto.encryption.IntegrityError`, a tampering node) —
is skipped and the read retries on the next replica.

Failure semantics differ by protocol, deliberately:

* **IR replicas** are client-stateless, so a faulted query is safely
  retryable on the *same* replica later — faults are treated as
  transient and attempts cycle through all replicas up to a cap.
* **KVS replicas** mutate client *and* server state on every operation
  (DP-KVS reads evict), so a fault mid-operation can leave the replica
  internally inconsistent.  A faulted KVS replica is marked dead and
  never used again (fail-stop), and reads continue on the survivors.

Executors and wall-clock accounting (:mod:`repro.parallel`): a group
accepts an :class:`~repro.parallel.executor.Executor` and keeps two
operation counters — :meth:`ShardGroup.operations` (every server
operation, the serial cost) and :meth:`ShardGroup.wall_operations`
(overlap-accounted op-units).  Legs that are independent race for real
under a concurrent executor (KVS write fan-out hits ``R`` disjoint
replica instances); legs that share client state — the rotation
pointer, the draw ledger, integrity-fallback re-reads — execute in
deterministic order (``ordered=True``) and are only *accounted* as
racing.  Failover retries themselves stay sequential in *draw* terms
everywhere: a retry is causally dependent on the previous attempt's
failure, and racing it would multiply the privacy charge — the
executor must never change what the ledger sees.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.api.protocols import PrivateIR, PrivateKVS
from repro.crypto.encryption import (
    IntegrityError,
    SecretKey,
    decrypt_authenticated,
)
from repro.parallel.executor import Executor, SerialExecutor
from repro.storage.faults import ServerFault
from repro.storage.server import StorageServer

#: Attempt cap for transient-fault retries on IR reads.  Generous on
#: purpose: a flaky node fails each *slot* access independently, so a
#: pad-set query against a 10 %-flaky server fails much more often than
#: 10 % — the cap bounds pathological runs, not the common case.
DEFAULT_MAX_ATTEMPTS = 32


class GroupExhaustedError(ServerFault):
    """Every replica of a shard group failed to serve an operation."""


class _GroupCounters:
    """Shared failover bookkeeping for both group flavours."""

    def __init__(self) -> None:
        self.failovers = 0
        self.detected_corruptions = 0
        self.faulted_reads = 0

    def fault_counters(self) -> dict[str, int]:
        counters: dict[str, int] = {}
        if self.failovers:
            counters["failovers"] = self.failovers
        if self.detected_corruptions:
            counters["detected_corruptions"] = self.detected_corruptions
        if self.faulted_reads:
            counters["faulted_reads"] = self.faulted_reads
        return counters


class ShardGroup:
    """One shard's records behind ``R`` IR replicas with read failover.

    Args:
        shard_id: position in the cluster (for reports).
        replicas: independently built base-scheme instances, each
            loaded with this shard's (possibly encrypted) records.
        key: authenticated-encryption key when the cluster stores
            ciphertexts; ``None`` stores plaintext (corruption is then
            silent, exactly as in the single-node fault tests).
        max_attempts: transient-fault retry cap per logical query.
        executor: fan-out policy for integrity-fallback re-reads and
            the group's wall-clock accounting; defaults to serial.
    """

    def __init__(
        self,
        shard_id: int,
        replicas: Sequence[PrivateIR],
        key: SecretKey | None = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        executor: Executor | None = None,
    ) -> None:
        if not replicas:
            raise ValueError("a shard group needs at least one replica")
        if max_attempts < 1:
            raise ValueError(
                f"max_attempts must be at least 1, got {max_attempts}"
            )
        self.shard_id = shard_id
        self._replicas = list(replicas)
        self._key = key
        self._max_attempts = max_attempts
        self._executor = executor if executor is not None else SerialExecutor()
        self._next_primary = 0
        self._counters = _GroupCounters()
        self._draws = 0
        self._wall_ops = 0.0

    # -- introspection -----------------------------------------------------

    @property
    def replica_count(self) -> int:
        """Number of replicas ``R``."""
        return len(self._replicas)

    @property
    def replicas(self) -> list[PrivateIR]:
        """The replica instances (exposed for tests and reports)."""
        return list(self._replicas)

    @property
    def draws(self) -> int:
        """Per-query pad-set draws served by replicas, retries included.

        Every attempt — even one a flaky node aborts partway — exposes
        an (at least partial) independently drawn pad set to that
        replica's operator, so the privacy ledger charges each draw.
        """
        return self._draws

    @property
    def local_n(self) -> int:
        """Records owned by this shard."""
        return self._replicas[0].n

    @property
    def epsilon(self) -> float:
        """The replicas' exact per-query budget (0.0 for ε-free bases)."""
        return getattr(self._replicas[0], "epsilon", 0.0)

    @property
    def failovers(self) -> int:
        """Reads that had to move to another replica (or retry)."""
        return self._counters.failovers

    @property
    def detected_corruptions(self) -> int:
        """Answers rejected by authenticated decryption."""
        return self._counters.detected_corruptions

    def fault_counters(self) -> dict[str, int]:
        """Failover totals in the uniform fault-counter vocabulary."""
        return self._counters.fault_counters()

    def servers(self) -> tuple[StorageServer, ...]:
        """Every server behind every replica."""
        servers: list[StorageServer] = []
        for replica in self._replicas:
            servers.extend(replica.servers())
        return tuple(servers)

    def operations(self) -> int:
        """Total server operations across the group."""
        return sum(replica.server_operations() for replica in self._replicas)

    def wall_operations(self) -> float:
        """Overlap-accounted op-units served through the group's entry
        points; equals :meth:`operations` under the serial executor."""
        return self._wall_ops

    # -- reads -------------------------------------------------------------

    def query(self, local_index: int) -> bytes | None:
        """Serve one read with failover; ``None`` only on the α event.

        Failover attempts are causally dependent (each retry exists only
        because the previous attempt failed), so they cost serial
        wall-clock under every executor.
        """
        before = self.operations()
        try:
            return self._query_with_failover(local_index)
        finally:
            self._wall_ops += self.operations() - before

    def _query_with_failover(self, local_index: int) -> bytes | None:
        start = self._rotate()
        for attempt in range(self._max_attempts):
            replica = self._replicas[(start + attempt) % len(self._replicas)]
            self._draws += 1
            try:
                answer = replica.query(local_index)
            except ServerFault:
                self._counters.faulted_reads += 1
                self._counters.failovers += 1
                continue
            if answer is None:
                # The α-error event is a *scheme* coin, not a fault —
                # retrying would distort the error distribution.
                return None
            try:
                return self._decode(answer)
            except IntegrityError:
                self._counters.detected_corruptions += 1
                self._counters.failovers += 1
        raise GroupExhaustedError(
            f"shard {self.shard_id}: all {self._max_attempts} attempts "
            f"across {len(self._replicas)} replicas failed"
        )

    def query_many(self, local_indices: Sequence[int]) -> list[bytes | None]:
        """Serve a batch through one replica's ``query_many``, failing over.

        A :class:`ServerFault` mid-batch retries the whole batch on the
        next replica (IR batches are stateless, so redrawing pad sets is
        safe); per-answer integrity failures fall back to single-read
        failover for just the affected indices.  The fallback re-reads
        target distinct indices and race under a concurrent executor —
        they run in deterministic order (group state is shared) but the
        stage's wall-clock is the slowest leg, not the sum.
        """
        if not local_indices:
            return []
        batch_before = self.operations()
        start = self._rotate()
        answers: list[bytes | None] | None = None
        for attempt in range(self._max_attempts):
            replica = self._replicas[(start + attempt) % len(self._replicas)]
            self._draws += len(local_indices)
            try:
                answers = replica.query_many(list(local_indices))
            except ServerFault:
                self._counters.faulted_reads += 1
                self._counters.failovers += 1
                continue
            break
        self._wall_ops += self.operations() - batch_before
        if answers is None:
            raise GroupExhaustedError(
                f"shard {self.shard_id}: batched read failed on every "
                "attempt"
            )
        decoded: list[bytes | None] = []
        fallbacks: list[tuple[int, int]] = []
        for local_index, answer in zip(local_indices, answers):
            if answer is None:
                decoded.append(None)
                continue
            try:
                decoded.append(self._decode(answer))
            except IntegrityError:
                self._counters.detected_corruptions += 1
                self._counters.failovers += 1
                fallbacks.append((len(decoded), local_index))
                decoded.append(None)
        if fallbacks:
            leg_ops = [0.0] * len(fallbacks)
            results = self._executor.fan_out(
                [
                    self._fallback_task(local_index, leg_ops, slot)
                    for slot, (_, local_index) in enumerate(fallbacks)
                ],
                ordered=True,
            )
            self._wall_ops += self._executor.stage_cost(leg_ops)
            for (position, _), result in zip(fallbacks, results):
                decoded[position] = result.unwrap()
        return decoded

    def _fallback_task(
        self, local_index: int, leg_ops: list[float], slot: int
    ) -> Callable[[], bytes | None]:
        """One integrity-fallback leg, recording its op cost into
        ``leg_ops[slot]`` (the legs run in order — see ``ordered=True``)."""

        def run() -> bytes | None:
            before = self.operations()
            try:
                return self._query_with_failover(local_index)
            finally:
                leg_ops[slot] = float(self.operations() - before)

        return run

    # -- internals ---------------------------------------------------------

    def _rotate(self) -> int:
        start = self._next_primary
        self._next_primary = (start + 1) % len(self._replicas)
        return start

    def _decode(self, block: bytes) -> bytes:
        if self._key is None:
            return block
        return decrypt_authenticated(self._key, block)


class KVShardGroup:
    """One shard's key range behind ``R`` KVS replicas (fail-stop).

    Writes go to every live replica so reads can be served by any of
    them; a replica that faults mid-operation is marked dead (its
    client-side state may be inconsistent — see the module docstring)
    and the group continues on the survivors.
    """

    def __init__(
        self,
        shard_id: int,
        replicas: Sequence[PrivateKVS],
        executor: Executor | None = None,
    ) -> None:
        if not replicas:
            raise ValueError("a shard group needs at least one replica")
        self.shard_id = shard_id
        self._replicas = list(replicas)
        self._alive = [True] * len(replicas)
        self._executor = executor if executor is not None else SerialExecutor()
        self._next_primary = 0
        self._counters = _GroupCounters()
        self._draws = 0
        self._wall_ops = 0.0

    # -- introspection -----------------------------------------------------

    @property
    def replica_count(self) -> int:
        """Number of replicas ``R`` (dead ones included)."""
        return len(self._replicas)

    @property
    def live_replicas(self) -> int:
        """Replicas still serving."""
        return sum(self._alive)

    @property
    def replicas(self) -> list[PrivateKVS]:
        """The replica instances (exposed for tests and reports)."""
        return list(self._replicas)

    @property
    def draws(self) -> int:
        """Replica operations attempted, failovers and write fan-out
        included — each is an independent mechanism invocation visible
        to that replica's operator, so the ledger charges each one."""
        return self._draws

    @property
    def value_size(self) -> int:
        """The replicas' value budget."""
        return self._replicas[0].value_size

    @property
    def epsilon(self) -> float:
        """The replicas' exact per-operation budget, when they report one."""
        return getattr(self._replicas[0], "epsilon", 0.0)

    @property
    def failovers(self) -> int:
        """Reads that had to move to another replica."""
        return self._counters.failovers

    def fault_counters(self) -> dict[str, int]:
        """Failover totals in the uniform fault-counter vocabulary."""
        counters = self._counters.fault_counters()
        dead = len(self._replicas) - self.live_replicas
        if dead:
            counters["dead_replicas"] = dead
        return counters

    def servers(self) -> tuple[StorageServer, ...]:
        """Every server behind every replica (dead ones included)."""
        servers: list[StorageServer] = []
        for replica in self._replicas:
            servers.extend(replica.servers())
        return tuple(servers)

    def operations(self) -> int:
        """Total server operations across the group."""
        return sum(replica.server_operations() for replica in self._replicas)

    def wall_operations(self) -> float:
        """Overlap-accounted op-units served through the group's entry
        points; equals :meth:`operations` under the serial executor."""
        return self._wall_ops

    # -- operations --------------------------------------------------------

    def get(self, key: bytes) -> bytes | None:
        """Read ``key`` from the first live replica that serves it."""
        before = self.operations()
        try:
            return self._get_with_failover(key)
        finally:
            self._wall_ops += self.operations() - before

    def _get_with_failover(self, key: bytes) -> bytes | None:
        start = self._rotate()
        count = len(self._replicas)
        for offset in range(count):
            position = (start + offset) % count
            if not self._alive[position]:
                continue
            self._draws += 1
            try:
                return self._replicas[position].get(key)
            except ServerFault:
                self._mark_dead(position)
        raise GroupExhaustedError(
            f"shard {self.shard_id}: no live replicas left for get"
        )

    def get_many(self, keys: Sequence[bytes]) -> list[bytes | None]:
        """Per-key reads with failover (KVS bases do not batch).

        Distinct keys are independent requests and race under a
        concurrent executor; they execute in deterministic order
        (rotation pointer and liveness marks are shared) while the
        stage's wall-clock is the slowest key, not the sum.
        """
        if not keys:
            return []
        leg_ops = [0.0] * len(keys)
        results = self._executor.fan_out(
            [
                self._get_task(key, leg_ops, slot)
                for slot, key in enumerate(keys)
            ],
            ordered=True,
        )
        self._wall_ops += self._executor.stage_cost(leg_ops)
        return [result.unwrap() for result in results]

    def _get_task(
        self, key: bytes, leg_ops: list[float], slot: int
    ) -> Callable[[], bytes | None]:
        def run() -> bytes | None:
            before = self.operations()
            try:
                return self._get_with_failover(key)
            finally:
                leg_ops[slot] = float(self.operations() - before)

        return run

    def put(self, key: bytes, value: bytes) -> None:
        """Write to every live replica; dead ones are skipped."""
        self._fan_out("put", key, value)

    def delete(self, key: bytes) -> bool:
        """Delete from every live replica; result from the first survivor."""
        return bool(self._fan_out("delete", key))

    # -- internals ---------------------------------------------------------

    def _fan_out(self, operation: str, *args: bytes) -> object:
        """Apply one write to every live replica, racing when possible.

        Replicas are disjoint object graphs, so their legs genuinely run
        concurrently under a threaded executor; liveness marks and draw
        charges are applied from the coordinating thread afterwards.
        The ledger draw count (one per live replica attempted) and the
        first-survivor result are executor-independent.
        """
        live = [
            (position, replica)
            for position, replica in enumerate(self._replicas)
            if self._alive[position]
        ]
        if not live:
            raise GroupExhaustedError(
                f"shard {self.shard_id}: no live replicas left for "
                f"{operation}"
            )
        self._draws += len(live)
        ops_before = [replica.server_operations() for _, replica in live]
        results = self._executor.fan_out(
            [
                (lambda replica=replica: getattr(replica, operation)(*args))
                for _, replica in live
            ]
        )
        leg_ops = [
            float(replica.server_operations() - before)
            for (_, replica), before in zip(live, ops_before)
        ]
        self._wall_ops += self._executor.stage_cost(leg_ops)
        result = None
        first = True
        any_succeeded = False
        failure: BaseException | None = None
        # Every leg ran (capture-all contract), so process every
        # outcome before raising: a non-fault error from one replica
        # must not leave a sibling's ServerFault unrecorded — the
        # faulted sibling is inconsistent and has to go fail-stop dead.
        for (position, _), outcome in zip(live, results):
            if outcome.error is not None:
                if isinstance(outcome.error, ServerFault):
                    self._mark_dead(position)
                elif failure is None:
                    failure = outcome.error
                continue
            any_succeeded = True
            if first:
                result = outcome.value
                first = False
        if failure is not None:
            raise failure
        if not any_succeeded:
            raise GroupExhaustedError(
                f"shard {self.shard_id}: no live replicas left for "
                f"{operation}"
            )
        return result

    def _mark_dead(self, position: int) -> None:
        self._counters.faulted_reads += 1
        self._counters.failovers += 1
        self._alive[position] = False

    def _rotate(self) -> int:
        start = self._next_primary
        self._next_primary = (start + 1) % len(self._replicas)
        return start
