"""Cluster schemes: N shard groups × R replicas behind the protocols.

:class:`ClusterIR` and :class:`ClusterKVS` implement the ordinary
:class:`~repro.api.protocols.PrivateIR` / ``PrivateKVS`` protocols, so
the harness, conformance suite and serving simulator drive a whole
cluster exactly like a single-node scheme.  Internally a
:class:`~repro.cluster.router.ShardRouter` maps each logical index (or
key) to one shard group; the group hosts ``R`` independently built
instances of any registered base scheme over that shard's records and
fails reads over between them (see :mod:`repro.cluster.group`).

Privacy model — stated honestly: within a shard, the base instance's
exact per-query ε (over its ``n/D`` records, with a ``K/D`` pad) equals
the single-server budget over all ``n`` records with pad ``K``, because
``ε = ln((1−α)·n/(α·K) + 1)`` is invariant under scaling ``n`` and ``K``
together.  *Across* shards, the routing of a query to its owner group is
visible to whoever can observe all groups — the cluster accounting
therefore assumes non-colluding shard operators (each sees only its own
traffic) and reports the colluding basic-composition bound separately
via the :class:`~repro.cluster.ledger.ClusterLedger`.
"""

from __future__ import annotations

import inspect
import math
from dataclasses import dataclass
from typing import Sequence

from repro.api.protocols import PrivateIR, PrivateKVS
from repro.api.registry import scheme_spec
from repro.cluster.group import (
    DEFAULT_MAX_ATTEMPTS,
    KVShardGroup,
    ShardGroup,
)
from repro.cluster.ledger import ClusterLedger
from repro.cluster.report import jain_index
from repro.cluster.router import (
    RangeRouter,
    ShardRouter,
    hash_shard_of_key,
    make_router,
)
from repro.core.params import DPIRParams
from repro.crypto.encryption import encrypt_authenticated, generate_key
from repro.crypto.rng import RandomSource, SystemRandomSource
from repro.storage.faults import (
    CorruptingServer,
    FlakyServer,
    wrap_scheme_servers,
)
from repro.storage.server import StorageServer


@dataclass(frozen=True)
class MigrationReport:
    """What one :meth:`ClusterIR.reshard` / ``rebalance`` call did.

    Attributes:
        shards_before: shard-group count before the migration.
        shards_after: shard-group count after.
        moved_records: records whose owning shard changed.
        migration_operations: server operations spent reading the data
            out of the old layout (the measurable cost of going online).
    """

    shards_before: int
    shards_after: int
    moved_records: int
    migration_operations: int


def _rate_per_replica(
    rate: float | Sequence[float], replica_count: int, label: str
) -> list[float]:
    """Broadcast a scalar fault rate, or validate a per-replica list."""
    if isinstance(rate, (int, float)):
        rates = [float(rate)] * replica_count
    else:
        rates = [float(value) for value in rate]
        if len(rates) != replica_count:
            raise ValueError(
                f"expected {replica_count} per-replica {label}s, "
                f"got {len(rates)}"
            )
    for value in rates:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{label} must be in [0, 1], got {value}")
    return rates


def _build_base(base: str, **kwargs):
    """Build the base scheme, dropping kwargs its builder cannot take.

    Only the *cluster-supplied* tuning kwargs (pad size, error rate) are
    filtered — bases like ``linear_pir`` take neither and should simply
    be built without them.  Caller-supplied ``base_kwargs`` pass through
    unfiltered so typos still fail loudly.
    """
    spec = scheme_spec(base)
    parameters = inspect.signature(spec.builder).parameters
    takes_any = any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in parameters.values()
    )
    filtered = {
        key: value
        for key, value in kwargs.items()
        if takes_any
        or key in parameters
        or key not in ("pad_size", "alpha", "epsilon")
    }
    return spec.builder(**filtered)


def _inject_faults(
    replica,
    failure_rate: float,
    corruption_rate: float,
    rng: RandomSource,
) -> None:
    """Wrap every server of a built replica in the requested fault layers."""
    if failure_rate <= 0.0 and corruption_rate <= 0.0:
        return

    def wrap(server: StorageServer):
        wrapped = server
        if failure_rate > 0.0:
            wrapped = FlakyServer(wrapped, failure_rate, rng.spawn("flaky"))
        if corruption_rate > 0.0:
            wrapped = CorruptingServer(
                wrapped, corruption_rate, rng.spawn("corrupt")
            )
        return wrapped

    wrap_scheme_servers(replica, wrap)


class ClusterIR(PrivateIR):
    """Sharded + replicated deployment of any registered IR base scheme.

    Args:
        blocks: the logical database ``B_1..B_n``.
        base: registry name of the per-shard scheme (``dp_ir``,
            ``batch_dp_ir``, ``linear_pir``, …).
        shard_count: number of shard groups ``D``.
        replica_count: replicas per group ``R``.
        placement: ``"range"`` (contiguous, rebalance-capable) or
            ``"hash"``; a :class:`~repro.cluster.router.ShardRouter`
            instance is also accepted.
        epsilon: cluster-wide target budget, resolved to a global pad
            size exactly like the single-server scheme and split as
            ``K/D`` per shard (keeping the exact budget invariant).
            Mutually exclusive with ``pad_size``.
        pad_size: explicit global pad size ``K``.
        alpha: error probability of the per-shard base instances.
        authenticated: store authenticated ciphertexts so tampered
            answers are *detected* and fail over; ``False`` stores
            plaintext (corruption is silent).
        failure_rate: flaky-node rate — a scalar for every replica or a
            per-replica sequence (``(1.0, 0.0)`` kills replica 0).
        corruption_rate: bit-flip rate, scalar or per-replica.
        max_attempts: transient-fault retry cap per logical read.
        epsilon_cap: optional per-shard ledger cap.
        rng: randomness source.
        backend_factory: slot-storage backend for every replica server.
        **base_kwargs: forwarded verbatim to the base scheme's builder.
    """

    def __init__(
        self,
        blocks: Sequence[bytes],
        *,
        base: str = "dp_ir",
        shard_count: int = 2,
        replica_count: int = 2,
        placement: str | ShardRouter = "range",
        epsilon: float | None = None,
        pad_size: int | None = None,
        alpha: float = 0.05,
        authenticated: bool = True,
        failure_rate: float | Sequence[float] = 0.0,
        corruption_rate: float | Sequence[float] = 0.0,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        epsilon_cap: float | None = None,
        rng: RandomSource | None = None,
        backend_factory=None,
        **base_kwargs,
    ) -> None:
        if not blocks:
            raise ValueError("the database must contain at least one block")
        if replica_count <= 0:
            raise ValueError(
                f"replica count must be positive, got {replica_count}"
            )
        spec = scheme_spec(base)
        if spec.kind != "ir":
            raise ValueError(
                f"ClusterIR needs an IR base scheme, got {base!r} "
                f"({spec.kind})"
            )
        data = [bytes(block) for block in blocks]
        n = len(data)
        self._n = n
        self._block_size = len(data[0])
        self._base = spec.name
        self._replica_count = replica_count
        self._alpha = alpha
        self._max_attempts = max_attempts
        self._epsilon_cap = epsilon_cap
        self._backend_factory = backend_factory
        self._base_kwargs = dict(base_kwargs)
        self._rng = rng if rng is not None else SystemRandomSource()
        self._failure_rates = _rate_per_replica(
            failure_rate, replica_count, "failure rate"
        )
        self._corruption_rates = _rate_per_replica(
            corruption_rate, replica_count, "corruption rate"
        )
        self._key = (
            generate_key(self._rng.spawn("cluster-key"))
            if authenticated
            else None
        )

        # Resolve the *global* pad budget once; every (re)sharding splits
        # it as K/D so the exact per-shard budget stays put.
        if epsilon is not None and pad_size is not None:
            raise ValueError("provide at most one of epsilon or pad_size")
        if pad_size is not None:
            self._global_params = DPIRParams.from_pad_size(n, pad_size, alpha)
        else:
            self._global_params = DPIRParams.from_epsilon(
                n, epsilon if epsilon is not None else math.log(max(n, 2)),
                alpha,
            )

        router = make_router(placement, n, shard_count)
        self._generation = 0
        self._install(router, data)

        self._queries = 0
        self._errors = 0
        self._reshard_count = 0

    # -- layout ------------------------------------------------------------

    def _install(self, router: ShardRouter, blocks: list[bytes]) -> None:
        """(Re)build every shard group for ``router``'s assignment."""
        assignment = router.assignment()
        groups: list[ShardGroup] = []
        locate: dict[int, tuple[int, int]] = {}
        generation = self._generation
        self._generation += 1
        for shard, owned in enumerate(assignment):
            for local, global_index in enumerate(owned):
                locate[global_index] = (shard, local)
            shard_pad = min(
                len(owned),
                max(1, math.ceil(
                    self._global_params.pad_size / router.shard_count
                )),
            )
            replicas = []
            for replica in range(self._replica_count):
                label = f"g{generation}/s{shard}/r{replica}"
                stored = self._stored_blocks(blocks, owned, label)
                instance = _build_base(
                    self._base,
                    blocks=stored,
                    pad_size=shard_pad,
                    alpha=self._alpha,
                    rng=self._rng.spawn(f"scheme/{label}"),
                    backend=self._backend_factory,
                    **self._base_kwargs,
                )
                _inject_faults(
                    instance,
                    self._failure_rates[replica],
                    self._corruption_rates[replica],
                    self._rng.spawn(f"faults/{label}"),
                )
                replicas.append(instance)
            groups.append(ShardGroup(
                shard, replicas, key=self._key,
                max_attempts=self._max_attempts,
            ))
        self._router = router
        self._groups = groups
        self._locate = locate
        self._shard_queries = [0] * router.shard_count
        self._ledger = ClusterLedger(
            router.shard_count, epsilon_cap=self._epsilon_cap
        )

    def _stored_blocks(
        self, blocks: list[bytes], owned: Sequence[int], label: str
    ) -> list[bytes]:
        if self._key is None:
            return [blocks[index] for index in owned]
        enc_rng = self._rng.spawn(f"enc/{label}")
        return [
            encrypt_authenticated(self._key, blocks[index], enc_rng)
            for index in owned
        ]

    # -- scheme info -------------------------------------------------------

    @property
    def n(self) -> int:
        """Logical database size."""
        return self._n

    @property
    def block_size(self) -> int:
        """Bytes per *logical* record (before any storage encryption)."""
        return self._block_size

    @property
    def base(self) -> str:
        """Registry name of the per-shard base scheme."""
        return self._base

    @property
    def shard_count(self) -> int:
        """Number of shard groups ``D``."""
        return len(self._groups)

    @property
    def replica_count(self) -> int:
        """Replicas per shard group ``R``."""
        return self._replica_count

    @property
    def router(self) -> ShardRouter:
        """The active placement policy."""
        return self._router

    @property
    def groups(self) -> list[ShardGroup]:
        """The shard groups (exposed for tests and reports)."""
        return list(self._groups)

    @property
    def authenticated(self) -> bool:
        """Whether stored blocks carry authentication tags."""
        return self._key is not None

    @property
    def epsilon(self) -> float:
        """Worst per-shard exact budget — the cluster's per-query ε."""
        return max(group.epsilon for group in self._groups)

    @property
    def ledger(self) -> ClusterLedger:
        """The cluster-wide privacy account."""
        return self._ledger

    @property
    def query_count(self) -> int:
        """Logical queries issued so far."""
        return self._queries

    @property
    def error_count(self) -> int:
        """Queries that hit the α-error event."""
        return self._errors

    @property
    def reshard_count(self) -> int:
        """Completed reshard/rebalance migrations."""
        return self._reshard_count

    def servers(self) -> tuple[StorageServer, ...]:
        """Every server behind every replica of every group."""
        servers: list[StorageServer] = []
        for group in self._groups:
            servers.extend(group.servers())
        return tuple(servers)

    def fault_counters(self) -> dict[str, int]:
        """Cluster-level failover totals, merged across shard groups."""
        totals: dict[str, int] = {}
        for group in self._groups:
            for key, value in group.fault_counters().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    # -- storage figures ---------------------------------------------------

    def per_server_storage_blocks(self) -> int:
        """Largest single server, in stored blocks — the ≈ n/D figure."""
        return max(server.capacity for server in self.servers())

    def total_storage_blocks(self) -> int:
        """Total stored blocks across the cluster — ``R·n``."""
        return sum(server.capacity for server in self.servers())

    # -- load metrics ------------------------------------------------------

    def shard_loads(self) -> list[int]:
        """Per-shard server operations (the measurable hot-spot signal)."""
        return [group.operations() for group in self._groups]

    def shard_query_counts(self) -> list[int]:
        """Logical queries routed to each shard."""
        return list(self._shard_queries)

    def load_balance_index(self) -> float:
        """Jain index over per-shard server operations."""
        return jain_index(self.shard_loads())

    # -- querying ----------------------------------------------------------

    def query(self, index: int) -> bytes | None:
        """Retrieve block ``index``; ``None`` on the α-error event."""
        shard, local = self._locate_index(index)
        group = self._groups[shard]
        before = group.draws
        try:
            answer = group.query(local)
        finally:
            # Failover retries expose extra pad-set draws to the shard
            # operator; every draw is charged, even on a failed query.
            self._charge(shard, queries=1, draws=group.draws - before)
        if answer is None:
            self._errors += 1
        return answer

    def query_many(self, indices: Sequence[int]) -> list[bytes | None]:
        """Serve ``indices`` in one round, batching per shard group.

        Indices owned by the same group go through the group's
        ``query_many`` (so a ``batch_dp_ir`` base downloads one pad-set
        union per shard per round — batching and sharding compound).
        """
        if not indices:
            return []
        per_shard: dict[int, list[tuple[int, int]]] = {}
        for position, index in enumerate(indices):
            shard, local = self._locate_index(index)
            per_shard.setdefault(shard, []).append((position, local))
        answers: list[bytes | None] = [None] * len(indices)
        for shard, entries in per_shard.items():
            group = self._groups[shard]
            locals_ = [local for _, local in entries]
            before = group.draws
            try:
                results = group.query_many(locals_)
            finally:
                self._charge(shard, queries=len(entries),
                             draws=group.draws - before)
            for (position, _), answer in zip(entries, results):
                answers[position] = answer
                if answer is None:
                    self._errors += 1
        return answers

    def _locate_index(self, index: int) -> tuple[int, int]:
        try:
            return self._locate[index]
        except KeyError:
            raise ValueError(
                f"index {index} out of range for n={self.n}"
            ) from None

    def _charge(self, shard: int, queries: int, draws: int) -> None:
        """Count logical queries and charge the ledger per visible draw."""
        self._queries += queries
        self._shard_queries[shard] += queries
        epsilon = self._groups[shard].epsilon
        for _ in range(draws):
            self._ledger.charge(shard, epsilon)

    # -- online migration --------------------------------------------------

    def reshard(
        self,
        shard_count: int | None = None,
        placement: str | ShardRouter | None = None,
    ) -> MigrationReport:
        """Migrate to a new shard count and/or placement, online.

        Reads every record out of the old layout through the normal
        failover path (so migration works over faulty replicas too),
        rebuilds the groups under the new router with a ``K/D′`` pad
        split, and reports the measured migration cost.  The privacy
        ledger restarts with the new shard set; migration reads touch
        *every* record in index order — a data-independent maintenance
        scan, not client queries — so they are not charged.

        Resharding to the *same* shard count reuses the active router
        (custom boundaries included) and just rebuilds the groups; a
        custom :class:`~repro.cluster.router.ShardRouter` subclass must
        pass ``placement`` explicitly to change its shard count.
        """
        new_count = shard_count if shard_count is not None else self.shard_count
        if placement is not None:
            router = make_router(placement, self.n, new_count)
        elif new_count == self.shard_count:
            router = self._router
        elif self._router.policy in ("range", "hash"):
            router = make_router(self._router.policy, self.n, new_count)
        else:
            raise ValueError(
                f"cannot re-derive a {type(self._router).__name__} for "
                f"{new_count} shards; pass placement= explicitly"
            )
        return self._migrate(router)

    def rebalance(self) -> MigrationReport:
        """Recut range boundaries so observed per-shard load evens out.

        Only meaningful for range placement (hash placement has no
        boundaries to move).
        """
        if not isinstance(self._router, RangeRouter):
            raise ValueError(
                "rebalance() needs range placement; "
                f"active policy is {self._router.policy!r}"
            )
        loads = [float(load) for load in self.shard_loads()]
        return self._migrate(self._router.rebalanced(loads))

    def _migrate(self, router: ShardRouter) -> MigrationReport:
        before_ops = sum(self.shard_loads())
        shards_before = self.shard_count
        # Drain the current layout: a full scan through the failover
        # path, retrying the α-error coin until each record is read.
        recovered: list[bytes] = []
        for index in range(self.n):
            shard, local = self._locate_index(index)
            group = self._groups[shard]
            answer = None
            for _ in range(self._max_attempts * 8):
                answer = group.query(local)
                if answer is not None:
                    break
            if answer is None:
                raise RuntimeError(
                    f"migration could not read record {index} "
                    "(persistent alpha errors)"
                )
            recovered.append(answer)
        migration_ops = sum(self.shard_loads()) - before_ops
        moved = sum(
            1
            for index in range(self.n)
            if self._locate[index][0] != router.shard_of(index)
        )
        self._install(router, recovered)
        self._reshard_count += 1
        return MigrationReport(
            shards_before=shards_before,
            shards_after=router.shard_count,
            moved_records=moved,
            migration_operations=migration_ops,
        )


class ClusterKVS(PrivateKVS):
    """Sharded + replicated deployment of any registered KVS base scheme.

    Keys hash to shard groups; each group hosts ``R`` replicas of the
    base KVS over a slice of the key-capacity budget (with head-room for
    hash skew).  Writes fan out to every live replica, reads fail over
    (fail-stop — see :mod:`repro.cluster.group`).  The cluster keeps a
    client-side key *directory* (keys only, no values) so
    :meth:`reshard` can enumerate what to migrate.

    Args:
        n: cluster-wide key capacity.
        base: registry name of the per-shard KVS scheme.
        shard_count: number of shard groups ``D``.
        replica_count: replicas per group ``R``.
        value_size: maximum value bytes accepted by :meth:`put`.
        capacity_slack: per-shard over-provisioning factor absorbing
            hash skew (shard capacity ``≈ slack · n/D``).
        failure_rate: flaky-node rate, scalar or per-replica sequence.
        corruption_rate: bit-flip rate, scalar or per-replica (KVS
            corruption is *silent* — the base schemes authenticate
            nothing at the cluster boundary; the IR cluster's
            ``authenticated`` mode is the contrast).
        epsilon_cap: optional per-shard ledger cap.
        rng: randomness source.
        backend_factory: slot-storage backend for every replica server.
        **base_kwargs: forwarded verbatim to the base scheme's builder.
    """

    def __init__(
        self,
        n: int = 1024,
        *,
        base: str = "dp_kvs",
        shard_count: int = 2,
        replica_count: int = 2,
        value_size: int = 32,
        capacity_slack: float = 1.5,
        failure_rate: float | Sequence[float] = 0.0,
        corruption_rate: float | Sequence[float] = 0.0,
        epsilon_cap: float | None = None,
        rng: RandomSource | None = None,
        backend_factory=None,
        **base_kwargs,
    ) -> None:
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if shard_count <= 0:
            raise ValueError(
                f"shard count must be positive, got {shard_count}"
            )
        if replica_count <= 0:
            raise ValueError(
                f"replica count must be positive, got {replica_count}"
            )
        if capacity_slack < 1.0:
            raise ValueError(
                f"capacity slack must be at least 1.0, got {capacity_slack}"
            )
        spec = scheme_spec(base)
        if spec.kind != "kvs":
            raise ValueError(
                f"ClusterKVS needs a KVS base scheme, got {base!r} "
                f"({spec.kind})"
            )
        self._n = n
        self._base = spec.name
        self._replica_count = replica_count
        self._value_size = value_size
        self._capacity_slack = capacity_slack
        self._epsilon_cap = epsilon_cap
        self._base_kwargs = dict(base_kwargs)
        self._backend_factory = backend_factory
        self._rng = rng if rng is not None else SystemRandomSource()
        self._failure_rates = _rate_per_replica(
            failure_rate, replica_count, "failure rate"
        )
        self._corruption_rates = _rate_per_replica(
            corruption_rate, replica_count, "corruption rate"
        )
        self._generation = 0
        self._keys: set[bytes] = set()
        self._install(shard_count)
        self._operations = 0
        self._reshard_count = 0

    def _install(self, shard_count: int) -> None:
        local_n = max(4, math.ceil(
            self._capacity_slack * self._n / shard_count
        ))
        generation = self._generation
        self._generation += 1
        groups: list[KVShardGroup] = []
        for shard in range(shard_count):
            replicas = []
            for replica in range(self._replica_count):
                label = f"g{generation}/s{shard}/r{replica}"
                instance = _build_base(
                    self._base,
                    n=local_n,
                    value_size=self._value_size,
                    rng=self._rng.spawn(f"scheme/{label}"),
                    backend=self._backend_factory,
                    **self._base_kwargs,
                )
                _inject_faults(
                    instance,
                    self._failure_rates[replica],
                    self._corruption_rates[replica],
                    self._rng.spawn(f"faults/{label}"),
                )
                replicas.append(instance)
            groups.append(KVShardGroup(shard, replicas))
        self._groups = groups
        self._shard_queries = [0] * shard_count
        self._ledger = ClusterLedger(
            shard_count, epsilon_cap=self._epsilon_cap
        )

    # -- scheme info -------------------------------------------------------

    @property
    def n(self) -> int:
        """Cluster-wide key capacity."""
        return self._n

    @property
    def value_size(self) -> int:
        """Maximum value length accepted by :meth:`put`."""
        return self._value_size

    @property
    def block_size(self) -> int:
        """Bytes per transferred block (the base scheme's node size)."""
        return self._groups[0].replicas[0].block_size

    @property
    def base(self) -> str:
        """Registry name of the per-shard base scheme."""
        return self._base

    @property
    def shard_count(self) -> int:
        """Number of shard groups ``D``."""
        return len(self._groups)

    @property
    def replica_count(self) -> int:
        """Replicas per shard group ``R``."""
        return self._replica_count

    @property
    def groups(self) -> list[KVShardGroup]:
        """The shard groups (exposed for tests and reports)."""
        return list(self._groups)

    @property
    def size(self) -> int:
        """Keys currently stored (from the client-side directory)."""
        return len(self._keys)

    @property
    def ledger(self) -> ClusterLedger:
        """The cluster-wide privacy account."""
        return self._ledger

    @property
    def operation_count(self) -> int:
        """Logical KVS operations issued so far."""
        return self._operations

    @property
    def reshard_count(self) -> int:
        """Completed reshard migrations."""
        return self._reshard_count

    def servers(self) -> tuple[StorageServer, ...]:
        """Every server behind every replica of every group."""
        servers: list[StorageServer] = []
        for group in self._groups:
            servers.extend(group.servers())
        return tuple(servers)

    def fault_counters(self) -> dict[str, int]:
        """Cluster-level failover totals, merged across shard groups."""
        totals: dict[str, int] = {}
        for group in self._groups:
            for key, value in group.fault_counters().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def shard_loads(self) -> list[int]:
        """Per-shard server operations."""
        return [group.operations() for group in self._groups]

    def shard_query_counts(self) -> list[int]:
        """Logical operations routed to each shard."""
        return list(self._shard_queries)

    def load_balance_index(self) -> float:
        """Jain index over per-shard server operations."""
        return jain_index(self.shard_loads())

    def per_server_storage_blocks(self) -> int:
        """Largest single server, in stored blocks."""
        return max(server.capacity for server in self.servers())

    def total_storage_blocks(self) -> int:
        """Total stored blocks across the cluster."""
        return sum(server.capacity for server in self.servers())

    # -- operations --------------------------------------------------------

    def get(self, key: bytes) -> bytes | None:
        """Retrieve the exact value for ``key``; ``None`` if absent."""
        shard = self._shard_of(key)
        group = self._groups[shard]
        before = group.draws
        try:
            value = group.get(key)
        finally:
            self._charge(shard, group.draws - before)
        return value

    def get_many(self, keys: Sequence[bytes]) -> list[bytes | None]:
        """Retrieve ``keys`` in order, routing each to its shard."""
        return [self.get(key) for key in keys]

    def put(self, key: bytes, value: bytes) -> None:
        """Insert or update ``key`` on every live replica of its shard."""
        shard = self._shard_of(key)
        group = self._groups[shard]
        before = group.draws
        try:
            group.put(key, value)
        finally:
            self._charge(shard, group.draws - before)
        self._keys.add(bytes(key))

    def delete(self, key: bytes) -> bool:
        """Remove ``key``; returns whether it existed."""
        shard = self._shard_of(key)
        group = self._groups[shard]
        before = group.draws
        try:
            existed = group.delete(key)
        finally:
            self._charge(shard, group.draws - before)
        self._keys.discard(bytes(key))
        return existed

    def _shard_of(self, key: bytes) -> int:
        return hash_shard_of_key(key, self.shard_count)

    def _charge(self, shard: int, draws: int) -> None:
        """Count one logical operation; charge the ledger per replica
        operation attempted (write fan-out and failovers each expose an
        independent mechanism invocation to a replica's operator)."""
        self._operations += 1
        self._shard_queries[shard] += 1
        epsilon = self._groups[shard].epsilon
        for _ in range(draws):
            self._ledger.charge(shard, epsilon)

    # -- online migration --------------------------------------------------

    def reshard(self, shard_count: int | None = None) -> MigrationReport:
        """Migrate every stored key to a new shard count, online.

        Values are read out through the failover path using the
        client-side key directory, the groups are rebuilt, and every
        pair is re-inserted under the new hash placement.
        """
        new_count = shard_count if shard_count is not None else self.shard_count
        before_ops = sum(self.shard_loads())
        shards_before = self.shard_count
        snapshot: list[tuple[bytes, bytes]] = []
        for key in sorted(self._keys):
            value = self._groups[self._shard_of(key)].get(key)
            if value is not None:
                snapshot.append((key, value))
        migration_ops = sum(self.shard_loads()) - before_ops
        self._install(new_count)
        moved = sum(
            1
            for key, _ in snapshot
            if hash_shard_of_key(key, shards_before)
            != hash_shard_of_key(key, new_count)
        )
        self._keys = set()
        for key, value in snapshot:
            self._groups[self._shard_of(key)].put(key, value)
            self._keys.add(key)
        self._reshard_count += 1
        return MigrationReport(
            shards_before=shards_before,
            shards_after=new_count,
            moved_records=moved,
            migration_operations=migration_ops,
        )
