"""Cluster schemes: N shard groups × R replicas behind the protocols.

:class:`ClusterIR` and :class:`ClusterKVS` implement the ordinary
:class:`~repro.api.protocols.PrivateIR` / ``PrivateKVS`` protocols, so
the harness, conformance suite and serving simulator drive a whole
cluster exactly like a single-node scheme.  Internally a
:class:`~repro.cluster.router.ShardRouter` maps each logical index (or
key) to one shard group; the group hosts ``R`` independently built
instances of any registered base scheme over that shard's records and
fails reads over between them (see :mod:`repro.cluster.group`).

Privacy model — stated honestly: within a shard, the base instance's
exact per-query ε (over its ``n/D`` records, with a ``K/D`` pad) equals
the single-server budget over all ``n`` records with pad ``K``, because
``ε = ln((1−α)·n/(α·K) + 1)`` is invariant under scaling ``n`` and ``K``
together.  *Across* shards, the routing of a query to its owner group is
visible to whoever can observe all groups — the cluster accounting
therefore assumes non-colluding shard operators (each sees only its own
traffic) and reports the colluding basic-composition bound separately
via the :class:`~repro.cluster.ledger.ClusterLedger`.
"""

from __future__ import annotations

import inspect
import math
from dataclasses import dataclass
from typing import Any, Sequence

from repro.api.protocols import PrivateIR, PrivateKVS
from repro.api.registry import scheme_spec
from repro.cluster.group import (
    DEFAULT_MAX_ATTEMPTS,
    KVShardGroup,
    ShardGroup,
)
from repro.cluster.ledger import ClusterLedger
from repro.cluster.report import jain_index
from repro.cluster.router import (
    RangeRouter,
    ShardRouter,
    hash_shard_of_key,
    make_router,
)
from repro.core.params import DPIRParams
from repro.crypto.encryption import encrypt_authenticated_many, generate_key
from repro.crypto.rng import RandomSource, SystemRandomSource
from repro.obs.executor import TracingExecutor
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.parallel.executor import Executor, resolve_executor
from repro.storage.faults import (
    CorruptingServer,
    FlakyServer,
    wrap_scheme_servers,
)
from repro.storage.backends import BackendFactory
from repro.storage.network import LAN, NetworkModel
from repro.storage.server import StorageServer


@dataclass(frozen=True)
class MigrationReport:
    """What one :meth:`ClusterIR.reshard` / ``rebalance`` call did.

    Attributes:
        shards_before: shard-group count before the migration.
        shards_after: shard-group count after.
        moved_records: records whose owning shard changed.
        migration_operations: server operations spent reading the data
            out of the old layout (the measurable cost of going online).
        serial_ms: the drain scan priced one shard after another under
            the cluster's network model.
        wall_clock_ms: the same scan under the cluster's executor —
            per-shard drain legs are independent and overlap, so a
            concurrent executor pays the slowest shard, not the sum.
    """

    shards_before: int
    shards_after: int
    moved_records: int
    migration_operations: int
    serial_ms: float = 0.0
    wall_clock_ms: float = 0.0


def _resolve_model(network: NetworkModel | str | None) -> NetworkModel:
    """The link model pricing a cluster's ms figures (LAN by default)."""
    if network is None:
        return LAN
    if isinstance(network, NetworkModel):
        return network
    from repro.api.builders import resolve_network

    return resolve_network(network)


def _rate_per_replica(
    rate: float | Sequence[float], replica_count: int, label: str
) -> list[float]:
    """Broadcast a scalar fault rate, or validate a per-replica list."""
    if isinstance(rate, (int, float)):
        rates = [float(rate)] * replica_count
    else:
        rates = [float(value) for value in rate]
        if len(rates) != replica_count:
            raise ValueError(
                f"expected {replica_count} per-replica {label}s, "
                f"got {len(rates)}"
            )
    for value in rates:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{label} must be in [0, 1], got {value}")
    return rates


def _build_base(base: str, **kwargs: Any) -> Any:
    """Build the base scheme, dropping kwargs its builder cannot take.

    Only the *cluster-supplied* tuning kwargs (pad size, error rate) are
    filtered — bases like ``linear_pir`` take neither and should simply
    be built without them.  Caller-supplied ``base_kwargs`` pass through
    unfiltered so typos still fail loudly.
    """
    spec = scheme_spec(base)
    parameters = inspect.signature(spec.builder).parameters
    takes_any = any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in parameters.values()
    )
    filtered = {
        key: value
        for key, value in kwargs.items()
        if takes_any
        or key in parameters
        or key not in ("pad_size", "alpha", "epsilon")
    }
    return spec.builder(**filtered)


def _inject_faults(
    replica: Any,
    failure_rate: float,
    corruption_rate: float,
    rng: RandomSource,
    coin_mode: str = "per_slot",
) -> None:
    """Wrap every server of a built replica in the requested fault layers."""
    if failure_rate <= 0.0 and corruption_rate <= 0.0:
        return

    def wrap(server: StorageServer) -> StorageServer:
        wrapped = server
        if failure_rate > 0.0:
            wrapped = FlakyServer(
                wrapped, failure_rate, rng.spawn("flaky"),
                coin_mode=coin_mode,
            )
        if corruption_rate > 0.0:
            wrapped = CorruptingServer(
                wrapped, corruption_rate, rng.spawn("corrupt"),
                coin_mode=coin_mode,
            )
        return wrapped

    wrap_scheme_servers(replica, wrap)


class ClusterIR(PrivateIR):
    """Sharded + replicated deployment of any registered IR base scheme.

    Args:
        blocks: the logical database ``B_1..B_n``.
        base: registry name of the per-shard scheme (``dp_ir``,
            ``batch_dp_ir``, ``linear_pir``, …).
        shard_count: number of shard groups ``D``.
        replica_count: replicas per group ``R``.
        placement: ``"range"`` (contiguous, rebalance-capable) or
            ``"hash"``; a :class:`~repro.cluster.router.ShardRouter`
            instance is also accepted.
        epsilon: cluster-wide target budget, resolved to a global pad
            size exactly like the single-server scheme and split as
            ``K/D`` per shard (keeping the exact budget invariant).
            Mutually exclusive with ``pad_size``.
        pad_size: explicit global pad size ``K``.
        alpha: error probability of the per-shard base instances.
        authenticated: store authenticated ciphertexts so tampered
            answers are *detected* and fail over; ``False`` stores
            plaintext (corruption is silent).
        failure_rate: flaky-node rate — a scalar for every replica or a
            per-replica sequence (``(1.0, 0.0)`` kills replica 0).
        corruption_rate: bit-flip rate, scalar or per-replica.
        max_attempts: transient-fault retry cap per logical read.
        epsilon_cap: optional per-shard ledger cap.
        rng: randomness source.
        backend_factory: slot-storage backend for every replica server.
        executor: cross-shard fan-out policy (``"serial"``,
            ``"parallel"``, ``"simulated"`` or an
            :class:`~repro.parallel.executor.Executor`).  Changes
            wall-clock accounting and real concurrency only — answers,
            draw sequences and privacy budgets are executor-invariant.
        network: link model pricing the ``*_ms`` figures (LAN default).
        tracer: optional :class:`~repro.obs.tracer.Tracer`; entry
            points and shard legs emit spans (answers, draws and
            budgets stay bit-identical to an untraced run).  The
            default :data:`~repro.obs.tracer.NULL_TRACER` costs one
            ``enabled`` check per entry point.
        fault_coin_mode: ``"per_slot"`` (slot-exact fault coins) or
            ``"per_round"`` (one coin per batched round — chaos at
            batched speed).
        **base_kwargs: forwarded verbatim to the base scheme's builder.
    """

    def __init__(
        self,
        blocks: Sequence[bytes],
        *,
        base: str = "dp_ir",
        shard_count: int = 2,
        replica_count: int = 2,
        placement: str | ShardRouter = "range",
        epsilon: float | None = None,
        pad_size: int | None = None,
        alpha: float = 0.05,
        authenticated: bool = True,
        failure_rate: float | Sequence[float] = 0.0,
        corruption_rate: float | Sequence[float] = 0.0,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        epsilon_cap: float | None = None,
        rng: RandomSource | None = None,
        backend_factory: BackendFactory | str | None = None,
        executor: Executor | str | None = None,
        network: NetworkModel | str | None = None,
        tracer: Tracer | None = None,
        fault_coin_mode: str = "per_slot",
        **base_kwargs: Any,
    ) -> None:
        if not blocks:
            raise ValueError("the database must contain at least one block")
        if replica_count <= 0:
            raise ValueError(
                f"replica count must be positive, got {replica_count}"
            )
        spec = scheme_spec(base)
        if spec.kind != "ir":
            raise ValueError(
                f"ClusterIR needs an IR base scheme, got {base!r} "
                f"({spec.kind})"
            )
        data = [bytes(block) for block in blocks]
        n = len(data)
        self._n = n
        self._block_size = len(data[0])
        self._base = spec.name
        self._replica_count = replica_count
        self._alpha = alpha
        self._max_attempts = max_attempts
        self._epsilon_cap = epsilon_cap
        self._backend_factory = backend_factory
        self._base_kwargs = dict(base_kwargs)
        self._rng = rng if rng is not None else SystemRandomSource()
        self._owns_executor = not isinstance(executor, Executor)
        self._executor = resolve_executor(executor)
        self.attach_tracer(tracer)
        self._network_model = _resolve_model(network)
        self._fault_coin_mode = fault_coin_mode
        self._failure_rates = _rate_per_replica(
            failure_rate, replica_count, "failure rate"
        )
        self._corruption_rates = _rate_per_replica(
            corruption_rate, replica_count, "corruption rate"
        )
        self._key = (
            generate_key(self._rng.spawn("cluster-key"))
            if authenticated
            else None
        )

        # Resolve the *global* pad budget once; every (re)sharding splits
        # it as K/D so the exact per-shard budget stays put.
        if epsilon is not None and pad_size is not None:
            raise ValueError("provide at most one of epsilon or pad_size")
        if pad_size is not None:
            self._global_params = DPIRParams.from_pad_size(n, pad_size, alpha)
        else:
            self._global_params = DPIRParams.from_epsilon(
                n, epsilon if epsilon is not None else math.log(max(n, 2)),
                alpha,
            )

        router = make_router(placement, n, shard_count)
        self._generation = 0
        self._install(router, data)

        self._queries = 0
        self._errors = 0
        self._reshard_count = 0
        # Cumulative op-unit accounting across generations (reshard
        # rebuilds the groups and their server counters, these survive).
        self._serial_ops = 0
        self._wall_ops = 0.0

    # -- layout ------------------------------------------------------------

    def _install(self, router: ShardRouter, blocks: list[bytes]) -> None:
        """(Re)build every shard group for ``router``'s assignment."""
        assignment = router.assignment()
        groups: list[ShardGroup] = []
        locate: dict[int, tuple[int, int]] = {}
        generation = self._generation
        self._generation += 1
        for shard, owned in enumerate(assignment):
            for local, global_index in enumerate(owned):
                locate[global_index] = (shard, local)
            shard_pad = min(
                len(owned),
                max(1, math.ceil(
                    self._global_params.pad_size / router.shard_count
                )),
            )
            replicas = []
            for replica in range(self._replica_count):
                label = f"g{generation}/s{shard}/r{replica}"
                stored = self._stored_blocks(blocks, owned, label)
                instance = _build_base(
                    self._base,
                    blocks=stored,
                    pad_size=shard_pad,
                    alpha=self._alpha,
                    rng=self._rng.spawn(f"scheme/{label}"),
                    backend=self._backend_factory,
                    **self._base_kwargs,
                )
                _inject_faults(
                    instance,
                    self._failure_rates[replica],
                    self._corruption_rates[replica],
                    self._rng.spawn(f"faults/{label}"),
                    coin_mode=self._fault_coin_mode,
                )
                replicas.append(instance)
            groups.append(ShardGroup(
                shard, replicas, key=self._key,
                max_attempts=self._max_attempts,
                executor=self._executor,
            ))
        self._router = router
        self._groups = groups
        self._locate = locate
        self._shard_queries = [0] * router.shard_count
        # Resharding must not launder spent budget: the drained epoch's
        # ledger seeds the new one so lifetime accounting stays honest.
        self._ledger = ClusterLedger(
            router.shard_count,
            epsilon_cap=self._epsilon_cap,
            carried_from=getattr(self, "_ledger", None),
        )

    def _stored_blocks(
        self, blocks: list[bytes], owned: Sequence[int], label: str
    ) -> list[bytes]:
        if self._key is None:
            return [blocks[index] for index in owned]
        enc_rng = self._rng.spawn(f"enc/{label}")
        return encrypt_authenticated_many(
            self._key, [blocks[index] for index in owned], enc_rng
        )

    # -- scheme info -------------------------------------------------------

    @property
    def n(self) -> int:
        """Logical database size."""
        return self._n

    @property
    def block_size(self) -> int:
        """Bytes per *logical* record (before any storage encryption)."""
        return self._block_size

    @property
    def base(self) -> str:
        """Registry name of the per-shard base scheme."""
        return self._base

    @property
    def shard_count(self) -> int:
        """Number of shard groups ``D``."""
        return len(self._groups)

    @property
    def replica_count(self) -> int:
        """Replicas per shard group ``R``."""
        return self._replica_count

    @property
    def router(self) -> ShardRouter:
        """The active placement policy."""
        return self._router

    @property
    def groups(self) -> list[ShardGroup]:
        """The shard groups (exposed for tests and reports)."""
        return list(self._groups)

    @property
    def authenticated(self) -> bool:
        """Whether stored blocks carry authentication tags."""
        return self._key is not None

    @property
    def epsilon(self) -> float:
        """Worst per-shard exact budget — the cluster's per-query ε."""
        return max(group.epsilon for group in self._groups)

    @property
    def ledger(self) -> ClusterLedger:
        """The cluster-wide privacy account."""
        return self._ledger

    @property
    def executor(self) -> Executor:
        """The cross-shard fan-out policy."""
        return self._executor

    @property
    def tracer(self) -> Tracer:
        """The attached tracer (the shared no-op one by default)."""
        return self._tracer

    def attach_tracer(self, tracer: Tracer | None) -> None:
        """Emit spans to ``tracer`` (``None`` restores the no-op default).

        Tracing never touches answers, draw sequences or ledger
        charges; leg spans are pre-allocated in submission order, so
        serial/parallel/simulated executors emit identical span trees.
        """
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._texec = TracingExecutor(self._executor, self._tracer)

    @property
    def network_model(self) -> NetworkModel:
        """The link model pricing this cluster's millisecond figures."""
        return self._network_model

    @property
    def query_count(self) -> int:
        """Logical queries issued so far."""
        return self._queries

    @property
    def error_count(self) -> int:
        """Queries that hit the α-error event."""
        return self._errors

    @property
    def reshard_count(self) -> int:
        """Completed reshard/rebalance migrations."""
        return self._reshard_count

    def servers(self) -> tuple[StorageServer, ...]:
        """Every server behind every replica of every group."""
        servers: list[StorageServer] = []
        for group in self._groups:
            servers.extend(group.servers())
        return tuple(servers)

    def fault_counters(self) -> dict[str, int]:
        """Cluster-level failover totals, merged across shard groups."""
        totals: dict[str, int] = {}
        for group in self._groups:
            for key, value in group.fault_counters().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    # -- storage figures ---------------------------------------------------

    def per_server_storage_blocks(self) -> int:
        """Largest single server, in stored blocks — the ≈ n/D figure."""
        return max(server.capacity for server in self.servers())

    def total_storage_blocks(self) -> int:
        """Total stored blocks across the cluster — ``R·n``."""
        return sum(server.capacity for server in self.servers())

    # -- overlap accounting ------------------------------------------------

    def serial_operations(self) -> int:
        """Op-units through the cluster entry points, priced serially.

        Unlike :meth:`~repro.api.protocols.Scheme.server_operations`
        (the live generation's server counters), this survives reshard
        migrations — it is the cumulative serial cost of everything the
        cluster did, drain scans included.
        """
        return self._serial_ops

    def wall_operations(self) -> float:
        """Overlap-accounted op-units: each cross-shard stage costs what
        its executor says (max over concurrent legs under a parallel
        executor, the plain sum under the serial one)."""
        return self._wall_ops

    def _per_op_ms(self) -> float:
        return self._network_model.rtt_ms + self._network_model.transfer_ms(
            self.block_size
        )

    def serial_ms(self) -> float:
        """Cumulative simulated time with every leg run back-to-back."""
        return self.serial_operations() * self._per_op_ms()

    def wall_clock_ms(self) -> float:
        """Cumulative simulated time under the configured executor."""
        return self.wall_operations() * self._per_op_ms()

    def _account_stage(
        self, leg_serial: Sequence[int], leg_wall: Sequence[float]
    ) -> None:
        self._serial_ops += sum(leg_serial)
        self._wall_ops += self._executor.stage_cost(leg_wall)

    def close(self) -> None:
        """Release executor worker threads.

        Only shuts down an executor the cluster resolved itself from a
        name; a caller-supplied :class:`Executor` instance stays alive
        for its owner to reuse.  Safe to call more than once, and a
        no-op for poolless executors.
        """
        if self._owns_executor:
            self._executor.close()

    def __enter__(self) -> "ClusterIR":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- load metrics ------------------------------------------------------

    def shard_loads(self) -> list[int]:
        """Per-shard server operations (the measurable hot-spot signal)."""
        return [group.operations() for group in self._groups]

    def shard_query_counts(self) -> list[int]:
        """Logical queries routed to each shard."""
        return list(self._shard_queries)

    def load_balance_index(self) -> float:
        """Jain index over per-shard server operations."""
        return jain_index(self.shard_loads())

    # -- querying ----------------------------------------------------------

    def query(self, index: int) -> bytes | None:
        """Retrieve block ``index``; ``None`` on the α-error event."""
        shard, local = self._locate_index(index)
        group = self._groups[shard]
        before = group.draws
        ops_before = group.operations()
        wall_before = group.wall_operations()
        with self._tracer.span("cluster.query", shard=shard):
            try:
                answer = group.query(local)
            finally:
                # Failover retries expose extra pad-set draws to the
                # shard operator; every draw is charged, even on a
                # failed query.
                self._charge(shard, queries=1, draws=group.draws - before)
                self._account_stage(
                    [group.operations() - ops_before],
                    [group.wall_operations() - wall_before],
                )
        if answer is None:
            self._errors += 1
        return answer

    def query_many(self, indices: Sequence[int]) -> list[bytes | None]:
        """Serve ``indices`` in one round, batching per shard group.

        Indices owned by the same group go through the group's
        ``query_many`` (so a ``batch_dp_ir`` base downloads one pad-set
        union per shard per round — batching and sharding compound).
        The per-shard sub-batches are independent legs confined to
        disjoint groups: under a concurrent executor they genuinely run
        in parallel and the round's wall-clock is the slowest shard's
        leg plus dispatch overhead, not the sum.  Answers, per-group
        draw sequences and ledger charges are executor-invariant, and a
        leg that exhausts its replicas does not poison its siblings —
        the healthy shards' draws are charged before the fault
        propagates.
        """
        if not indices:
            return []
        per_shard: dict[int, list[tuple[int, int]]] = {}
        for position, index in enumerate(indices):
            shard, local = self._locate_index(index)
            per_shard.setdefault(shard, []).append((position, local))
        shards = sorted(per_shard)
        draws_before = {s: self._groups[s].draws for s in shards}
        ops_before = {s: self._groups[s].operations() for s in shards}
        wall_before = {s: self._groups[s].wall_operations() for s in shards}
        tasks = []
        for shard in shards:
            locals_ = [local for _, local in per_shard[shard]]
            tasks.append(
                lambda group=self._groups[shard], batch=locals_:
                    group.query_many(batch)
            )
        with self._tracer.span(
            "cluster.query_many", batch=len(indices), shards=len(shards),
        ):
            results = self._texec.fan_out(
                tasks,
                name="cluster.shard_leg",
                leg_labels=[{"shard": shard} for shard in shards],
            )
            answers: list[bytes | None] = [None] * len(indices)
            failure: BaseException | None = None
            leg_serial: list[int] = []
            leg_wall: list[float] = []
            for shard, result in zip(shards, results):
                group = self._groups[shard]
                entries = per_shard[shard]
                self._charge(shard, queries=len(entries),
                             draws=group.draws - draws_before[shard])
                leg_serial.append(group.operations() - ops_before[shard])
                leg_wall.append(
                    group.wall_operations() - wall_before[shard]
                )
                if result.error is not None:
                    if failure is None:
                        failure = result.error
                    continue
                for (position, _), answer in zip(entries, result.value):
                    answers[position] = answer
                    if answer is None:
                        self._errors += 1
            self._account_stage(leg_serial, leg_wall)
        if failure is not None:
            raise failure
        return answers

    def locate(self, index: int) -> tuple[int, int]:
        """Public ``(shard, local_slot)`` image of a global index.

        The placement a colluding observer can reconstruct anyway —
        routing is deterministic — exposed so the leakage monitors
        (``repro.obs.monitor``) can address candidates in the same
        per-shard namespace the transcripts record.

        Raises:
            ValueError: if ``index`` is out of range.
        """
        return self._locate_index(index)

    def _locate_index(self, index: int) -> tuple[int, int]:
        try:
            return self._locate[index]
        except KeyError:
            raise ValueError(
                f"index {index} out of range for n={self.n}"
            ) from None

    def _charge(self, shard: int, queries: int, draws: int) -> None:
        """Count logical queries and charge the ledger per visible draw."""
        self._queries += queries
        self._shard_queries[shard] += queries
        epsilon = self._groups[shard].epsilon
        for _ in range(draws):
            self._ledger.charge(shard, epsilon)

    # -- online migration --------------------------------------------------

    def reshard(
        self,
        shard_count: int | None = None,
        placement: str | ShardRouter | None = None,
    ) -> MigrationReport:
        """Migrate to a new shard count and/or placement, online.

        Reads every record out of the old layout through the normal
        failover path (so migration works over faulty replicas too),
        rebuilds the groups under the new router with a ``K/D′`` pad
        split, and reports the measured migration cost.  The privacy
        ledger carries the drained epoch's per-operator spend into the
        new shard set (budgets compose over the cluster's lifetime —
        they never reset); migration reads touch *every* record in
        index order — a data-independent maintenance scan, not client
        queries — so they are not charged.

        Resharding to the *same* shard count reuses the active router
        (custom boundaries included) and just rebuilds the groups; a
        custom :class:`~repro.cluster.router.ShardRouter` subclass must
        pass ``placement`` explicitly to change its shard count.
        """
        new_count = shard_count if shard_count is not None else self.shard_count
        if placement is not None:
            router = make_router(placement, self.n, new_count)
        elif new_count == self.shard_count:
            router = self._router
        elif self._router.policy in ("range", "hash"):
            router = make_router(self._router.policy, self.n, new_count)
        else:
            raise ValueError(
                f"cannot re-derive a {type(self._router).__name__} for "
                f"{new_count} shards; pass placement= explicitly"
            )
        return self._migrate(router)

    def rebalance(self) -> MigrationReport:
        """Recut range boundaries so observed per-shard load evens out.

        Only meaningful for range placement (hash placement has no
        boundaries to move).
        """
        if not isinstance(self._router, RangeRouter):
            raise ValueError(
                "rebalance() needs range placement; "
                f"active policy is {self._router.policy!r}"
            )
        loads = [float(load) for load in self.shard_loads()]
        return self._migrate(self._router.rebalanced(loads))

    def _migrate(self, router: ShardRouter) -> MigrationReport:
        shards_before = self.shard_count
        # Drain the current layout: a full scan through the failover
        # path, retrying the α-error coin until each record is read.
        # Each shard's drain leg touches only its own group, so the
        # legs overlap under a concurrent executor — migration pays the
        # slowest shard, not the sum.
        per_shard_indices: dict[int, list[int]] = {}
        for index in range(self.n):
            shard, _ = self._locate_index(index)
            per_shard_indices.setdefault(shard, []).append(index)
        shards = sorted(per_shard_indices)
        ops_before = {s: self._groups[s].operations() for s in shards}
        wall_before = {s: self._groups[s].wall_operations() for s in shards}
        with self._tracer.span(
            "cluster.reshard",
            shards_before=shards_before,
            shards_after=router.shard_count,
        ):
            results = self._texec.fan_out(
                [
                    (lambda shard=shard: self._drain_shard(
                        shard, per_shard_indices[shard]
                    ))
                    for shard in shards
                ],
                name="cluster.drain_leg",
                leg_labels=[{"shard": shard} for shard in shards],
            )
        leg_serial = [
            self._groups[s].operations() - ops_before[s] for s in shards
        ]
        leg_wall = [
            self._groups[s].wall_operations() - wall_before[s] for s in shards
        ]
        migration_ops = sum(leg_serial)
        wall_units = self._executor.stage_cost(leg_wall)
        self._serial_ops += migration_ops
        self._wall_ops += wall_units
        recovered: list[bytes | None] = [None] * self.n
        for result in results:
            for index, block in result.unwrap():
                recovered[index] = block
        moved = sum(
            1
            for index in range(self.n)
            if self._locate[index][0] != router.shard_of(index)
        )
        self._install(router, [bytes(block) for block in recovered])
        self._reshard_count += 1
        per_op = self._per_op_ms()
        return MigrationReport(
            shards_before=shards_before,
            shards_after=router.shard_count,
            moved_records=moved,
            migration_operations=migration_ops,
            serial_ms=migration_ops * per_op,
            wall_clock_ms=wall_units * per_op,
        )

    def _drain_shard(
        self, shard: int, indices: Sequence[int]
    ) -> list[tuple[int, bytes]]:
        """Read one shard's records out through the failover path."""
        group = self._groups[shard]
        drained: list[tuple[int, bytes]] = []
        for index in indices:
            _, local = self._locate[index]
            answer = None
            for _ in range(self._max_attempts * 8):
                answer = group.query(local)
                if answer is not None:
                    break
            if answer is None:
                raise RuntimeError(
                    f"migration could not read record {index} "
                    "(persistent alpha errors)"
                )
            drained.append((index, answer))
        return drained


class ClusterKVS(PrivateKVS):
    """Sharded + replicated deployment of any registered KVS base scheme.

    Keys hash to shard groups; each group hosts ``R`` replicas of the
    base KVS over a slice of the key-capacity budget (with head-room for
    hash skew).  Writes fan out to every live replica, reads fail over
    (fail-stop — see :mod:`repro.cluster.group`).  The cluster keeps a
    client-side key *directory* (keys only, no values) so
    :meth:`reshard` can enumerate what to migrate.

    Args:
        n: cluster-wide key capacity.
        base: registry name of the per-shard KVS scheme.
        shard_count: number of shard groups ``D``.
        replica_count: replicas per group ``R``.
        value_size: maximum value bytes accepted by :meth:`put`.
        capacity_slack: per-shard over-provisioning factor absorbing
            hash skew (shard capacity ``≈ slack · n/D``).
        failure_rate: flaky-node rate, scalar or per-replica sequence.
        corruption_rate: bit-flip rate, scalar or per-replica (KVS
            corruption is *silent* — the base schemes authenticate
            nothing at the cluster boundary; the IR cluster's
            ``authenticated`` mode is the contrast).
        epsilon_cap: optional per-shard ledger cap.
        rng: randomness source.
        backend_factory: slot-storage backend for every replica server.
        executor: cross-shard fan-out policy (``"serial"``,
            ``"parallel"``, ``"simulated"`` or an
            :class:`~repro.parallel.executor.Executor`); wall-clock
            accounting and real concurrency only, never the draw
            sequence the ledger charges.
        network: link model pricing the ``*_ms`` figures (LAN default).
        tracer: optional :class:`~repro.obs.tracer.Tracer` (see
            :class:`ClusterIR`); no-op by default.
        fault_coin_mode: ``"per_slot"`` or ``"per_round"`` fault-coin
            granularity for the injected fault wrappers.
        **base_kwargs: forwarded verbatim to the base scheme's builder.
    """

    def __init__(
        self,
        n: int = 1024,
        *,
        base: str = "dp_kvs",
        shard_count: int = 2,
        replica_count: int = 2,
        value_size: int = 32,
        capacity_slack: float = 1.5,
        failure_rate: float | Sequence[float] = 0.0,
        corruption_rate: float | Sequence[float] = 0.0,
        epsilon_cap: float | None = None,
        rng: RandomSource | None = None,
        backend_factory: BackendFactory | str | None = None,
        executor: Executor | str | None = None,
        network: NetworkModel | str | None = None,
        tracer: Tracer | None = None,
        fault_coin_mode: str = "per_slot",
        **base_kwargs: Any,
    ) -> None:
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if shard_count <= 0:
            raise ValueError(
                f"shard count must be positive, got {shard_count}"
            )
        if replica_count <= 0:
            raise ValueError(
                f"replica count must be positive, got {replica_count}"
            )
        if capacity_slack < 1.0:
            raise ValueError(
                f"capacity slack must be at least 1.0, got {capacity_slack}"
            )
        spec = scheme_spec(base)
        if spec.kind != "kvs":
            raise ValueError(
                f"ClusterKVS needs a KVS base scheme, got {base!r} "
                f"({spec.kind})"
            )
        self._n = n
        self._base = spec.name
        self._replica_count = replica_count
        self._value_size = value_size
        self._capacity_slack = capacity_slack
        self._epsilon_cap = epsilon_cap
        self._base_kwargs = dict(base_kwargs)
        self._backend_factory = backend_factory
        self._rng = rng if rng is not None else SystemRandomSource()
        self._owns_executor = not isinstance(executor, Executor)
        self._executor = resolve_executor(executor)
        self.attach_tracer(tracer)
        self._network_model = _resolve_model(network)
        self._fault_coin_mode = fault_coin_mode
        self._failure_rates = _rate_per_replica(
            failure_rate, replica_count, "failure rate"
        )
        self._corruption_rates = _rate_per_replica(
            corruption_rate, replica_count, "corruption rate"
        )
        self._generation = 0
        self._keys: set[bytes] = set()
        self._install(shard_count)
        self._operations = 0
        self._reshard_count = 0
        self._serial_ops = 0
        self._wall_ops = 0.0

    def _install(self, shard_count: int) -> None:
        local_n = max(4, math.ceil(
            self._capacity_slack * self._n / shard_count
        ))
        generation = self._generation
        self._generation += 1
        groups: list[KVShardGroup] = []
        for shard in range(shard_count):
            replicas = []
            for replica in range(self._replica_count):
                label = f"g{generation}/s{shard}/r{replica}"
                instance = _build_base(
                    self._base,
                    n=local_n,
                    value_size=self._value_size,
                    rng=self._rng.spawn(f"scheme/{label}"),
                    backend=self._backend_factory,
                    **self._base_kwargs,
                )
                _inject_faults(
                    instance,
                    self._failure_rates[replica],
                    self._corruption_rates[replica],
                    self._rng.spawn(f"faults/{label}"),
                    coin_mode=self._fault_coin_mode,
                )
                replicas.append(instance)
            groups.append(KVShardGroup(
                shard, replicas, executor=self._executor,
            ))
        self._groups = groups
        self._shard_queries = [0] * shard_count
        # Same epoch carry as ClusterIR: reshard composes, never resets.
        self._ledger = ClusterLedger(
            shard_count,
            epsilon_cap=self._epsilon_cap,
            carried_from=getattr(self, "_ledger", None),
        )

    # -- scheme info -------------------------------------------------------

    @property
    def n(self) -> int:
        """Cluster-wide key capacity."""
        return self._n

    @property
    def value_size(self) -> int:
        """Maximum value length accepted by :meth:`put`."""
        return self._value_size

    @property
    def block_size(self) -> int:
        """Bytes per transferred block (the base scheme's node size)."""
        return self._groups[0].replicas[0].block_size

    @property
    def base(self) -> str:
        """Registry name of the per-shard base scheme."""
        return self._base

    @property
    def shard_count(self) -> int:
        """Number of shard groups ``D``."""
        return len(self._groups)

    @property
    def replica_count(self) -> int:
        """Replicas per shard group ``R``."""
        return self._replica_count

    @property
    def groups(self) -> list[KVShardGroup]:
        """The shard groups (exposed for tests and reports)."""
        return list(self._groups)

    @property
    def size(self) -> int:
        """Keys currently stored (from the client-side directory)."""
        return len(self._keys)

    @property
    def ledger(self) -> ClusterLedger:
        """The cluster-wide privacy account."""
        return self._ledger

    @property
    def operation_count(self) -> int:
        """Logical KVS operations issued so far."""
        return self._operations

    @property
    def reshard_count(self) -> int:
        """Completed reshard migrations."""
        return self._reshard_count

    def servers(self) -> tuple[StorageServer, ...]:
        """Every server behind every replica of every group."""
        servers: list[StorageServer] = []
        for group in self._groups:
            servers.extend(group.servers())
        return tuple(servers)

    def fault_counters(self) -> dict[str, int]:
        """Cluster-level failover totals, merged across shard groups."""
        totals: dict[str, int] = {}
        for group in self._groups:
            for key, value in group.fault_counters().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def shard_loads(self) -> list[int]:
        """Per-shard server operations."""
        return [group.operations() for group in self._groups]

    def shard_query_counts(self) -> list[int]:
        """Logical operations routed to each shard."""
        return list(self._shard_queries)

    def load_balance_index(self) -> float:
        """Jain index over per-shard server operations."""
        return jain_index(self.shard_loads())

    def per_server_storage_blocks(self) -> int:
        """Largest single server, in stored blocks."""
        return max(server.capacity for server in self.servers())

    def total_storage_blocks(self) -> int:
        """Total stored blocks across the cluster."""
        return sum(server.capacity for server in self.servers())

    # -- overlap accounting ------------------------------------------------

    @property
    def executor(self) -> Executor:
        """The cross-shard fan-out policy."""
        return self._executor

    @property
    def tracer(self) -> Tracer:
        """The attached tracer (the shared no-op one by default)."""
        return self._tracer

    def attach_tracer(self, tracer: Tracer | None) -> None:
        """Emit spans to ``tracer`` (see :meth:`ClusterIR.attach_tracer`)."""
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._texec = TracingExecutor(self._executor, self._tracer)

    @property
    def network_model(self) -> NetworkModel:
        """The link model pricing this cluster's millisecond figures."""
        return self._network_model

    def serial_operations(self) -> int:
        """Cumulative op-units through the entry points, priced serially
        (survives reshard migrations, unlike the server counters)."""
        return self._serial_ops

    def wall_operations(self) -> float:
        """Overlap-accounted op-units under the configured executor."""
        return self._wall_ops

    def _per_op_ms(self) -> float:
        return self._network_model.rtt_ms + self._network_model.transfer_ms(
            self.block_size
        )

    def serial_ms(self) -> float:
        """Cumulative simulated time with every leg run back-to-back."""
        return self.serial_operations() * self._per_op_ms()

    def wall_clock_ms(self) -> float:
        """Cumulative simulated time under the configured executor."""
        return self.wall_operations() * self._per_op_ms()

    def _account_stage(
        self, leg_serial: Sequence[int], leg_wall: Sequence[float]
    ) -> None:
        self._serial_ops += sum(leg_serial)
        self._wall_ops += self._executor.stage_cost(leg_wall)

    def close(self) -> None:
        """Release executor worker threads (see :meth:`ClusterIR.close`)."""
        if self._owns_executor:
            self._executor.close()

    def __enter__(self) -> "ClusterKVS":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- operations --------------------------------------------------------

    def get(self, key: bytes) -> bytes | None:
        """Retrieve the exact value for ``key``; ``None`` if absent."""
        shard = self._shard_of(key)
        group = self._groups[shard]
        before = group.draws
        ops_before = group.operations()
        wall_before = group.wall_operations()
        with self._tracer.span("cluster.get", shard=shard):
            try:
                value = group.get(key)
            finally:
                self._charge(shard, group.draws - before)
                self._account_stage(
                    [group.operations() - ops_before],
                    [group.wall_operations() - wall_before],
                )
        return value

    def get_many(self, keys: Sequence[bytes]) -> list[bytes | None]:
        """Retrieve ``keys`` in order, batching per shard group.

        Keys owned by different groups are independent legs confined to
        disjoint object graphs: a concurrent executor runs them in
        parallel and the round costs the slowest shard's leg, not the
        sum.  Values, draw sequences and ledger charges are
        executor-invariant; a leg whose group is exhausted does not
        poison its siblings (their draws are charged before the fault
        propagates).
        """
        if not keys:
            return []
        per_shard: dict[int, list[tuple[int, bytes]]] = {}
        for position, key in enumerate(keys):
            shard = self._shard_of(key)
            per_shard.setdefault(shard, []).append((position, bytes(key)))
        shards = sorted(per_shard)
        draws_before = {s: self._groups[s].draws for s in shards}
        ops_before = {s: self._groups[s].operations() for s in shards}
        wall_before = {s: self._groups[s].wall_operations() for s in shards}
        tasks = []
        for shard in shards:
            shard_keys = [key for _, key in per_shard[shard]]
            tasks.append(
                lambda group=self._groups[shard], batch=shard_keys:
                    group.get_many(batch)
            )
        with self._tracer.span(
            "cluster.get_many", batch=len(keys), shards=len(shards),
        ):
            results = self._texec.fan_out(
                tasks,
                name="cluster.shard_leg",
                leg_labels=[{"shard": shard} for shard in shards],
            )
            values: list[bytes | None] = [None] * len(keys)
            failure: BaseException | None = None
            leg_serial: list[int] = []
            leg_wall: list[float] = []
            for shard, result in zip(shards, results):
                group = self._groups[shard]
                entries = per_shard[shard]
                self._charge_many(
                    shard, count=len(entries),
                    draws=group.draws - draws_before[shard],
                )
                leg_serial.append(group.operations() - ops_before[shard])
                leg_wall.append(
                    group.wall_operations() - wall_before[shard]
                )
                if result.error is not None:
                    if failure is None:
                        failure = result.error
                    continue
                for (position, _), value in zip(entries, result.value):
                    values[position] = value
            self._account_stage(leg_serial, leg_wall)
        if failure is not None:
            raise failure
        return values

    def put(self, key: bytes, value: bytes) -> None:
        """Insert or update ``key`` on every live replica of its shard."""
        shard = self._shard_of(key)
        group = self._groups[shard]
        before = group.draws
        ops_before = group.operations()
        wall_before = group.wall_operations()
        with self._tracer.span("cluster.put", shard=shard):
            try:
                group.put(key, value)
            finally:
                self._charge(shard, group.draws - before)
                self._account_stage(
                    [group.operations() - ops_before],
                    [group.wall_operations() - wall_before],
                )
        self._keys.add(bytes(key))

    def delete(self, key: bytes) -> bool:
        """Remove ``key``; returns whether it existed."""
        shard = self._shard_of(key)
        group = self._groups[shard]
        before = group.draws
        ops_before = group.operations()
        wall_before = group.wall_operations()
        with self._tracer.span("cluster.delete", shard=shard):
            try:
                existed = group.delete(key)
            finally:
                self._charge(shard, group.draws - before)
                self._account_stage(
                    [group.operations() - ops_before],
                    [group.wall_operations() - wall_before],
                )
        self._keys.discard(bytes(key))
        return existed

    def _shard_of(self, key: bytes) -> int:
        return hash_shard_of_key(key, self.shard_count)

    def _charge(self, shard: int, draws: int) -> None:
        """Count one logical operation; charge the ledger per replica
        operation attempted (write fan-out and failovers each expose an
        independent mechanism invocation to a replica's operator)."""
        self._charge_many(shard, count=1, draws=draws)

    def _charge_many(self, shard: int, count: int, draws: int) -> None:
        self._operations += count
        self._shard_queries[shard] += count
        epsilon = self._groups[shard].epsilon
        for _ in range(draws):
            self._ledger.charge(shard, epsilon)

    # -- online migration --------------------------------------------------

    def reshard(self, shard_count: int | None = None) -> MigrationReport:
        """Migrate every stored key to a new shard count, online.

        Values are read out through the failover path using the
        client-side key directory — one independent drain leg per shard
        group, overlapped under a concurrent executor — the groups are
        rebuilt, and every pair is re-inserted under the new hash
        placement.  The privacy ledger carries the drained epoch's
        per-operator spend forward; re-insertion writes are maintenance
        traffic and are not charged.
        """
        new_count = shard_count if shard_count is not None else self.shard_count
        shards_before = self.shard_count
        per_shard_keys: dict[int, list[bytes]] = {}
        for key in sorted(self._keys):
            per_shard_keys.setdefault(self._shard_of(key), []).append(key)
        shards = sorted(per_shard_keys)
        ops_before = {s: self._groups[s].operations() for s in shards}
        wall_before = {s: self._groups[s].wall_operations() for s in shards}
        with self._tracer.span(
            "cluster.reshard",
            shards_before=shards_before,
            shards_after=new_count,
        ):
            results = self._texec.fan_out(
                [
                    (
                        lambda group=self._groups[shard],
                        keys=per_shard_keys[shard]:
                            list(zip(keys, group.get_many(keys)))
                    )
                    for shard in shards
                ],
                name="cluster.drain_leg",
                leg_labels=[{"shard": shard} for shard in shards],
            )
        leg_serial = [
            self._groups[s].operations() - ops_before[s] for s in shards
        ]
        leg_wall = [
            self._groups[s].wall_operations() - wall_before[s] for s in shards
        ]
        migration_ops = sum(leg_serial)
        wall_units = self._executor.stage_cost(leg_wall)
        self._serial_ops += migration_ops
        self._wall_ops += wall_units
        snapshot: list[tuple[bytes, bytes]] = []
        for result in results:
            for key, value in result.unwrap():
                if value is not None:
                    snapshot.append((key, value))
        snapshot.sort()
        self._install(new_count)
        moved = sum(
            1
            for key, _ in snapshot
            if hash_shard_of_key(key, shards_before)
            != hash_shard_of_key(key, new_count)
        )
        self._keys = set()
        for key, value in snapshot:
            self._groups[self._shard_of(key)].put(key, value)
            self._keys.add(key)
        self._reshard_count += 1
        per_op = self._per_op_ms()
        return MigrationReport(
            shards_before=shards_before,
            shards_after=new_count,
            moved_records=moved,
            migration_operations=migration_ops,
            serial_ms=migration_ops * per_op,
            wall_clock_ms=wall_units * per_op,
        )
