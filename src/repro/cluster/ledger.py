"""Cluster-wide privacy accounting: per-shard ledgers, composed budgets.

Each shard group hosts an independent DP scheme over its own records, so
privacy spend is naturally *per shard*: a query routed to shard ``s``
charges that shard's :class:`~repro.analysis.ledger.PrivacyLedger` with
the shard instance's exact per-query ε.  The cluster-wide figures then
come from :mod:`repro.analysis.composition`:

* **non-colluding operators** (the deployment model: each shard group is
  run by a separate operator who sees only its own traffic) — the
  binding budget is the worst single shard's composed spend;
* **colluding upper bound** — basic composition across every charge on
  every shard, the figure to quote if all operators pool their views.

The cross-shard *routing* channel (which shard a query went to) is not
a DP-protected quantity; see the :mod:`repro.cluster` package docstring
and the ROADMAP open item for the honest statement of that gap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.ledger import BudgetReport, PrivacyLedger


@dataclass(frozen=True)
class ClusterBudgetReport:
    """Cluster-wide privacy spend.

    Attributes:
        queries: total charged mechanism draws across all shards.  One
            per logical query in the fault-free case; failover retries
            and replica write fan-out each charge separately, since
            every draw is independently visible to a shard operator.
        per_query_epsilon: worst per-query ε charged anywhere (0.0 until
            the first charge) — directly comparable to a single-server
            scheme's exact budget.
        worst_shard_epsilon: largest per-shard basic-composition total —
            the binding budget against non-colluding shard operators.
        colluding_epsilon: basic composition over every charge — the
            upper bound if all shard operators pool their transcripts.
        per_shard: one :class:`~repro.analysis.ledger.BudgetReport` per
            shard group, in shard order.
    """

    queries: int
    per_query_epsilon: float
    worst_shard_epsilon: float
    colluding_epsilon: float
    per_shard: tuple[BudgetReport, ...]


class ClusterLedger:
    """Running (ε, δ) account for a sharded deployment.

    Args:
        shard_count: number of shard groups.
        epsilon_cap: optional per-shard hard budget — a charge that
            would push any single shard past it raises
            :class:`~repro.analysis.ledger.BudgetExceededError` (caps
            are per-operator in the non-colluding model).
        delta_slack: the δ' used for advanced-composition reporting.
    """

    def __init__(
        self,
        shard_count: int,
        epsilon_cap: float | None = None,
        delta_slack: float = 1e-9,
    ) -> None:
        if shard_count <= 0:
            raise ValueError(
                f"shard count must be positive, got {shard_count}"
            )
        self._shards = [
            PrivacyLedger(epsilon_cap=epsilon_cap, delta_slack=delta_slack)
            for _ in range(shard_count)
        ]
        self._per_query_epsilon = 0.0

    @property
    def shard_count(self) -> int:
        """Number of per-shard ledgers."""
        return len(self._shards)

    @property
    def queries(self) -> int:
        """Total queries charged across all shards."""
        return sum(ledger.queries for ledger in self._shards)

    @property
    def per_query_epsilon(self) -> float:
        """Worst per-query ε charged so far (0.0 before any charge)."""
        return self._per_query_epsilon

    def shard_ledger(self, shard: int) -> PrivacyLedger:
        """The underlying ledger of one shard group."""
        return self._shards[shard]

    def charge(self, shard: int, epsilon: float, delta: float = 0.0) -> None:
        """Charge one query against ``shard``'s budget.

        Raises:
            BudgetExceededError: when a per-shard cap would be exceeded.
        """
        self._shards[shard].charge(epsilon, delta)
        self._per_query_epsilon = max(self._per_query_epsilon, epsilon)

    def report(self) -> ClusterBudgetReport:
        """Compose the per-shard spends into the cluster-wide budgets."""
        per_shard = tuple(ledger.report() for ledger in self._shards)
        worst = max(
            (shard.basic_epsilon for shard in per_shard), default=0.0
        )
        # Colluding upper bound: every charge on every shard composes
        # sequentially, and the per-shard totals are already basic
        # compositions — so the cross-shard composition is their sum.
        colluding = sum(shard.basic_epsilon for shard in per_shard)
        return ClusterBudgetReport(
            queries=self.queries,
            per_query_epsilon=self._per_query_epsilon,
            worst_shard_epsilon=worst,
            colluding_epsilon=colluding,
            per_shard=per_shard,
        )
