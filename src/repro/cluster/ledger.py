"""Cluster-wide privacy accounting: per-shard ledgers, composed budgets.

Each shard group hosts an independent DP scheme over its own records, so
privacy spend is naturally *per shard*: a query routed to shard ``s``
charges that shard's :class:`~repro.analysis.ledger.PrivacyLedger` with
the shard instance's exact per-query ε.  The cluster-wide figures then
come from :mod:`repro.analysis.composition`:

* **non-colluding operators** (the deployment model: each shard group is
  run by a separate operator who sees only its own traffic) — the
  binding budget is the worst single operator's composed spend;
* **colluding upper bound** — basic composition across every charge on
  every shard, the figure to quote if all operators pool their views.

Reshard epochs compose.  A migration rebuilds the shard groups, but the
traffic the *old* layout served was still seen by its operators — a
cluster's privacy spend is monotone over its lifetime.  The ledger
therefore carries every drained epoch's exact per-operator totals
forward (composed via
:func:`repro.analysis.composition.compose_totals_exact`) and reports
lifetime budgets; per-shard figures for the current epoch remain
available in :attr:`ClusterBudgetReport.per_shard`.  Operators are
matched across epochs by shard id: the operator who ran shard ``i``
before a reshard runs shard ``i`` after it (extra operators from a
shrunk layout keep their historical spend).

All totals accumulate as :class:`fractions.Fraction` and convert to
float only in the report, per the ``float-budget`` lint rule.

The cross-shard *routing* channel (which shard a query went to) is not
a DP-protected quantity; see the :mod:`repro.cluster` package docstring
and the ROADMAP open item for the honest statement of that gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import TYPE_CHECKING

from repro.analysis.composition import compose_totals_exact
from repro.analysis.ledger import (
    CAP_SLACK,
    BudgetExceededError,
    BudgetReport,
    PrivacyLedger,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a hard dep
    from repro.obs.timeline import BudgetTimeline


@dataclass(frozen=True)
class ClusterBudgetReport:
    """Cluster-wide privacy spend, composed over the cluster's lifetime.

    Attributes:
        queries: total charged mechanism draws across all shards and
            all reshard epochs.  One per logical query in the
            fault-free case; failover retries and replica write fan-out
            each charge separately, since every draw is independently
            visible to a shard operator.
        per_query_epsilon: worst per-query ε charged anywhere, any
            epoch (0.0 until the first charge) — directly comparable to
            a single-server scheme's exact budget.
        worst_shard_epsilon: largest per-operator composed total across
            the cluster's lifetime — the binding budget against
            non-colluding shard operators (an operator's view spans
            reshard epochs).
        colluding_epsilon: basic composition over every charge in every
            epoch — the upper bound if all shard operators pool their
            transcripts.
        per_shard: one :class:`~repro.analysis.ledger.BudgetReport` per
            shard group of the *current* epoch, in shard order.
        epochs: reshard epochs composed into the lifetime figures
            (1 for a never-resharded cluster).
    """

    queries: int
    per_query_epsilon: float
    worst_shard_epsilon: float
    colluding_epsilon: float
    per_shard: tuple[BudgetReport, ...]
    epochs: int = 1


class ClusterLedger:
    """Running (ε, δ) account for a sharded deployment.

    Args:
        shard_count: number of shard groups.
        epsilon_cap: optional per-operator hard budget — a charge that
            would push any single operator's *lifetime* spend past it
            raises :class:`~repro.analysis.ledger.BudgetExceededError`
            (caps are per-operator in the non-colluding model, and an
            operator's view survives resharding).
        delta_slack: the δ' used for advanced-composition reporting.
        carried_from: the previous epoch's ledger, when resharding.
            Its lifetime per-operator spends (its own carried epochs
            included) seed this ledger's carried totals, so cluster
            budgets stay honest over the deployment's lifetime.
    """

    def __init__(
        self,
        shard_count: int,
        epsilon_cap: float | Fraction | None = None,
        delta_slack: float = 1e-9,
        carried_from: "ClusterLedger | None" = None,
    ) -> None:
        if shard_count <= 0:
            raise ValueError(
                f"shard count must be positive, got {shard_count}"
            )
        # Per-shard caps are enforced here against lifetime spend, so
        # the epoch-scoped PrivacyLedgers stay uncapped.
        self._cap = Fraction(epsilon_cap) if epsilon_cap is not None else None
        self._shards = [
            PrivacyLedger(delta_slack=delta_slack)
            for _ in range(shard_count)
        ]
        if carried_from is None:
            self._carried_epsilon: list[Fraction] = []
            self._carried_delta: list[Fraction] = []
            self._carried_queries = 0
            self._per_query_epsilon = Fraction(0)
            self._epochs = 1
            self._timeline: "BudgetTimeline | None" = None
        else:
            lifetime = carried_from._lifetime_per_operator()
            self._carried_epsilon = [eps for eps, _ in lifetime]
            self._carried_delta = [delta for _, delta in lifetime]
            self._carried_queries = carried_from.queries
            self._per_query_epsilon = carried_from._per_query_epsilon
            self._epochs = carried_from._epochs + 1
            # Spend events keep flowing to the same timeline across
            # reshard epochs — an operator's view never resets.
            self._timeline = carried_from._timeline

    @property
    def shard_count(self) -> int:
        """Number of per-shard ledgers in the current epoch."""
        return len(self._shards)

    @property
    def epochs(self) -> int:
        """Reshard epochs composed into this ledger (≥ 1)."""
        return self._epochs

    @property
    def queries(self) -> int:
        """Total queries charged across all shards and epochs."""
        current = sum(ledger.queries for ledger in self._shards)
        return self._carried_queries + current

    @property
    def per_query_epsilon(self) -> float:
        """Worst per-query ε charged so far (0.0 before any charge)."""
        return float(self._per_query_epsilon)

    def shard_ledger(self, shard: int) -> PrivacyLedger:
        """The current epoch's ledger of one shard group."""
        return self._shards[shard]

    def attach_timeline(self, timeline: "BudgetTimeline | None") -> None:
        """Emit every charge as an exact spend event onto ``timeline``.

        Events carry the shard id as the operator (``shard-<i>``) and
        the current reshard epoch, so ``repro audit --timeline`` can
        plot cumulative per-operator spend against caps.  Pass ``None``
        to detach.
        """
        self._timeline = timeline

    def _carried_for(self, shard: int) -> tuple[Fraction, Fraction]:
        """Earlier epochs' exact (ε, δ) spend of operator ``shard``."""
        if shard < len(self._carried_epsilon):
            return self._carried_epsilon[shard], self._carried_delta[shard]
        return Fraction(0), Fraction(0)

    def _lifetime_per_operator(self) -> list[tuple[Fraction, Fraction]]:
        """Exact lifetime (ε, δ) totals per operator, carried + current."""
        operators = max(len(self._shards), len(self._carried_epsilon))
        totals: list[tuple[Fraction, Fraction]] = []
        for operator in range(operators):
            carried_epsilon, carried_delta = self._carried_for(operator)
            if operator < len(self._shards):
                ledger = self._shards[operator]
                epoch_epsilon = ledger.epsilon_spent_exact
                epoch_delta = ledger.delta_spent_exact
            else:
                epoch_epsilon = Fraction(0)
                epoch_delta = Fraction(0)
            totals.append(
                compose_totals_exact(
                    [
                        (carried_epsilon, carried_delta),
                        (epoch_epsilon, epoch_delta),
                    ]
                )
            )
        return totals

    def charge(
        self,
        shard: int,
        epsilon: float | Fraction,
        delta: float | Fraction = 0,
    ) -> None:
        """Charge one query against ``shard``'s budget.

        Raises:
            BudgetExceededError: when the per-operator cap would be
                exceeded by the operator's lifetime spend.
        """
        exact_epsilon = Fraction(epsilon)
        if self._cap is not None:
            carried_epsilon, _ = self._carried_for(shard)
            lifetime = (
                carried_epsilon
                + self._shards[shard].epsilon_spent_exact
                + exact_epsilon
            )
            if lifetime > self._cap + CAP_SLACK:
                raise BudgetExceededError(
                    f"charging eps={float(exact_epsilon):.4f} on shard "
                    f"{shard} would exceed the per-operator cap "
                    f"{float(self._cap):.4f} (lifetime spend "
                    f"{float(lifetime - exact_epsilon):.4f} over "
                    f"{self._epochs} epoch(s))"
                )
        self._shards[shard].charge(epsilon, delta)
        self._per_query_epsilon = max(self._per_query_epsilon, exact_epsilon)
        if self._timeline is not None:
            self._timeline.record(
                epsilon=exact_epsilon,
                delta=Fraction(delta),
                shard=shard,
                operator=f"shard-{shard}",
                epoch=self._epochs,
            )

    def report(self) -> ClusterBudgetReport:
        """Compose the per-shard spends into the cluster-wide budgets."""
        per_shard = tuple(ledger.report() for ledger in self._shards)
        lifetime = self._lifetime_per_operator()
        worst = max(
            (epsilon for epsilon, _ in lifetime), default=Fraction(0)
        )
        # Colluding upper bound: every charge in every epoch composes
        # sequentially; per-operator lifetime totals are already basic
        # compositions, so the pooled view is their exact sum.
        colluding, _ = compose_totals_exact(lifetime)
        return ClusterBudgetReport(
            queries=self.queries,
            per_query_epsilon=float(self._per_query_epsilon),
            worst_shard_epsilon=float(worst),
            colluding_epsilon=float(colluding),
            per_shard=per_shard,
            epochs=self._epochs,
        )
