"""Cluster benchmarks as reusable data: scaling curve and failover cost.

``benchmarks/bench_cluster.py`` asserts on (and renders) these rows, and
``scripts/run_benchmarks.py`` writes them to ``BENCH_cluster.json`` —
both call the same functions so the numbers cannot drift apart.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.dp_ir_exact import dpir_epsilon
from repro.cluster.config import ClusterConfig
from repro.cluster.service import cluster

#: Shard counts for the scaling curve.  The pad splits as ``K/D``, so
#: ``n`` and the pad below are chosen divisible by every entry — the
#: per-shard exact ε then *equals* the single-server budget instead of
#: merely approximating it.
DEFAULT_SHARD_COUNTS = (1, 2, 4, 8)
DEFAULT_N = 1024
DEFAULT_PAD = 64
DEFAULT_ALPHA = 0.05


def single_server_epsilon(
    n: int = DEFAULT_N,
    pad_size: int = DEFAULT_PAD,
    alpha: float = DEFAULT_ALPHA,
) -> float:
    """The unsharded exact budget the cluster must preserve."""
    return dpir_epsilon(n, pad_size, alpha)


def scaling_curve(
    shard_counts: Sequence[int] = DEFAULT_SHARD_COUNTS,
    *,
    n: int = DEFAULT_N,
    pad_size: int = DEFAULT_PAD,
    alpha: float = DEFAULT_ALPHA,
    replicas: int = 1,
    requests: int = 64,
    seed: int = 0x5EED,
    base: str = "dp_ir",
) -> list[dict]:
    """Ops/request, p95 and per-server storage versus shard count.

    The claim under test: growing ``D`` cuts the per-query pad to
    ``K/D`` (fewer ops and lower latency per request) and per-server
    storage to ``≈ n/D``, while the per-shard exact ε stays equal to the
    single-server budget.
    """
    rows = []
    for shards in shard_counts:
        report = cluster(base, ClusterConfig(
            shards=shards,
            replicas=replicas,
            n=n,
            pad_size=pad_size,
            alpha=alpha,
            requests=requests,
            seed=seed,
        ))
        rows.append({
            "shards": shards,
            "replicas": replicas,
            "ops_per_request": report.ops_per_request,
            "p95_ms": report.latency.p95_ms,
            "p999_ms": report.latency.p999_ms,
            "per_server_storage_blocks": report.per_server_storage_blocks,
            "total_storage_blocks": report.total_storage_blocks,
            "per_query_epsilon": report.budget.per_query_epsilon,
            "load_jain_index": report.load_jain_index,
            "completed": report.completed,
            "errors": report.errors,
            "mismatches": report.mismatches,
        })
    return rows


def failover_curve(
    flake_rates: Sequence[float] = (0.0, 0.05, 0.10),
    *,
    n: int = 256,
    pad_size: int = 32,
    alpha: float = 0.01,
    shards: int = 4,
    replicas: int = 2,
    requests: int = 64,
    seed: int = 0xFA11,
    base: str = "dp_ir",
) -> list[dict]:
    """Failover overhead and correctness versus per-node flake rate.

    With ``R`` replicas per shard a flaky node costs retries, not
    answers: every completed request must still be correct, and the
    extra server operations relative to the fault-free run are the
    measured failover overhead.
    """
    rows = []
    baseline_ops = None
    for rate in flake_rates:
        report = cluster(base, ClusterConfig(
            shards=shards,
            replicas=replicas,
            n=n,
            pad_size=pad_size,
            alpha=alpha,
            requests=requests,
            seed=seed,
            failure_rate=rate,
        ))
        if baseline_ops is None:
            baseline_ops = report.ops_per_request
        overhead = (
            report.ops_per_request / baseline_ops - 1.0
            if baseline_ops else 0.0
        )
        rows.append({
            "flake_rate": rate,
            "shards": shards,
            "replicas": replicas,
            "completed": report.completed,
            "requests": report.requests,
            "errors": report.errors,
            "mismatches": report.mismatches,
            "ops_per_request": report.ops_per_request,
            "failover_overhead": overhead,
            "failovers": report.faults.get("failovers", 0),
            "failed_operations": report.faults.get("failed_operations", 0),
            "p95_ms": report.latency.p95_ms,
        })
    return rows


def detection_comparison(
    *,
    n: int = 128,
    pad_size: int = 16,
    alpha: float = 0.01,
    shards: int = 2,
    replicas: int = 2,
    requests: int = 48,
    corruption_rate: float = 0.3,
    seed: int = 0xC0DE,
) -> list[dict]:
    """Detected-versus-silent corruption: authenticated on and off.

    A corrupting replica behind authenticated storage is *detected*
    (failover serves the right answer); the same replica behind plain
    storage silently garbles answers — the mismatch counter shows it.
    """
    rows = []
    for authenticated in (True, False):
        report = cluster("dp_ir", ClusterConfig(
            shards=shards,
            replicas=replicas,
            n=n,
            pad_size=pad_size,
            alpha=alpha,
            requests=requests,
            seed=seed,
            authenticated=authenticated,
            corruption_rate=(corruption_rate, 0.0),
        ))
        rows.append({
            "authenticated": authenticated,
            "completed": report.completed,
            "mismatches": report.mismatches,
            "corrupted_reads": report.faults.get("corrupted_reads", 0),
            "detected_corruptions": report.faults.get(
                "detected_corruptions", 0
            ),
            "failovers": report.faults.get("failovers", 0),
        })
    return rows
