"""``cluster()``: registry-driven construction and run of a deployment.

The one-call entry point behind ``repro.cluster`` and the
``python -m repro cluster`` CLI subcommand: build a sharded + replicated
cluster around any registered IR or KVS base scheme, drive a workload
trace through it, and report ops/request, tail latency (priced by the
network model), per-shard load balance, failover totals and the
cluster-wide privacy budget::

    import repro
    from repro.cluster import ClusterConfig

    report = repro.cluster("dp_ir", ClusterConfig(shards=4, replicas=2,
                                                  seed=7))
    print(report.to_text())
    print(report.ops_per_request, report.budget.per_query_epsilon)

The pre-config keyword signature (``repro.cluster("dp_ir", shards=4)``)
still works: keywords fold into a
:class:`~repro.cluster.config.ClusterConfig` behind a single
:class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from typing import Any

from repro.api.registry import resolve_scheme_name, scheme_spec
from repro.cluster.config import CLUSTER_CONFIG_FIELDS, ClusterConfig
from repro.cluster.report import (
    ClusterReport,
    ShardReport,
    extra_percentiles,
    jain_index,
)
from repro.cluster.scheme import ClusterIR, ClusterKVS
from repro.crypto.rng import SeededRandomSource, SystemRandomSource
from repro.obs.instrument import instrument_scheme
from repro.obs.metrics import collect_scheme_metrics
from repro.obs.monitor import SchemeWatch, default_monitors, watch_scheme
from repro.simulation.metrics import LatencySummary
from repro.storage.blocks import integer_database
from repro.storage.faults import scheme_fault_counters
from repro.workloads import catalogue


def _chunks(items: list, size: int) -> list[list]:
    return [items[start:start + size] for start in range(0, len(items), size)]


def _config_from_kwargs(kwargs: dict[str, Any]) -> ClusterConfig:
    """Fold the deprecated keyword surface into a ClusterConfig.

    Splits recognised config fields from base-scheme builder keywords
    and emits ONE DeprecationWarning naming what should move.
    """
    config_kwargs = {
        key: kwargs.pop(key) for key in list(kwargs)
        if key in CLUSTER_CONFIG_FIELDS
    }
    named = ", ".join(sorted(config_kwargs)) or "(defaults only)"
    warnings.warn(
        f"cluster(scheme, {named}, ...) keywords are deprecated; pass "
        "repro.cluster(scheme, ClusterConfig(...)) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return ClusterConfig(base_kwargs=dict(kwargs), **config_kwargs)


def cluster(
    scheme: str = "dp_ir",
    config: ClusterConfig | None = None,
    /,
    **kwargs: Any,
) -> ClusterReport:
    """Run a workload against a sharded + replicated cluster.

    Args:
        scheme: registry name of the *base* scheme each shard group
            hosts (IR or KVS; hyphenated aliases accepted).
        config: the run's :class:`~repro.cluster.config.ClusterConfig`.
            This is the documented calling convention; see the config
            class for every knob (shards, replicas, fault rates,
            executor, batching, observability sinks, …).
        **kwargs: the deprecated pre-config surface.  Recognised config
            fields (``shards=``, ``replicas=``, ``seed=``, …) fold into
            a :class:`ClusterConfig` behind a single
            :class:`DeprecationWarning`; anything else is forwarded to
            the base scheme's builder exactly as before.  Mixing
            ``config`` with keywords is an error.

    Returns:
        The run's :class:`~repro.cluster.report.ClusterReport`.
    """
    if config is not None:
        if kwargs:
            unknown = ", ".join(sorted(kwargs))
            raise ValueError(
                f"pass either a ClusterConfig or keywords, not both "
                f"(got config= plus {unknown}); base-scheme keywords go "
                "in ClusterConfig.base_kwargs"
            )
    else:
        config = _config_from_kwargs(kwargs)
    return _cluster(scheme, config)


def _cluster(scheme: str, config: ClusterConfig) -> ClusterReport:
    """Run one cluster deployment from a resolved config."""
    from repro.api.builders import resolve_network

    shards = config.shards
    replicas = config.replicas
    n = config.n
    requests = config.requests
    workload = config.workload
    placement = config.placement
    epsilon = config.epsilon
    pad_size = config.pad_size
    alpha = config.alpha
    authenticated = config.authenticated
    failure_rate = config.failure_rate
    corruption_rate = config.corruption_rate
    block_size = config.block_size
    value_size = config.value_size
    seed = config.seed
    network = config.network
    executor = config.executor
    batch = config.batch
    percentiles = config.percentiles
    tracer = config.tracer
    metrics_registry = config.metrics_registry
    timeline = config.timeline
    fault_coin_mode = config.fault_coin_mode
    monitor = config.monitor
    base_kwargs = dict(config.base_kwargs)
    if config.backend is not None:
        # ClusterIR/ClusterKVS pass the factory (or its name) through to
        # every replica's base builder, which resolves strings itself.
        base_kwargs.setdefault("backend_factory", config.backend)

    base = resolve_scheme_name(scheme)
    spec = scheme_spec(base)
    if spec.kind == "ram":
        raise ValueError(
            f"cluster bases must be IR or KVS schemes; {base!r} is RAM"
        )
    root = (
        SeededRandomSource(seed) if seed is not None else SystemRandomSource()
    )
    model = resolve_network(network)

    if spec.kind == "ir":
        database = integer_database(n, block_size)
        instance = ClusterIR(
            database,
            base=base,
            shard_count=shards,
            replica_count=replicas,
            placement=placement,
            epsilon=epsilon,
            pad_size=pad_size,
            alpha=alpha,
            authenticated=authenticated,
            failure_rate=failure_rate,
            corruption_rate=corruption_rate,
            rng=root.spawn("cluster"),
            executor=executor,
            network=model,
            tracer=tracer,
            fault_coin_mode=fault_coin_mode,
            **base_kwargs,
        )
        trace = catalogue.index_trace(
            workload, n, requests, root.spawn("trace"), write_fraction=0.0,
        )
        operations = [op.index for op in trace]
        expected = database
    else:
        instance = ClusterKVS(
            n,
            base=base,
            shard_count=shards,
            replica_count=replicas,
            value_size=value_size,
            failure_rate=failure_rate,
            corruption_rate=corruption_rate,
            rng=root.spawn("cluster"),
            executor=executor,
            network=model,
            tracer=tracer,
            fault_coin_mode=fault_coin_mode,
            **base_kwargs,
        )
        # kv_trace itself aliases index-workload names to their KV analogue.
        trace = catalogue.kv_trace(
            workload, n, requests, root.spawn("trace"),
            value_size=value_size,
        )
        operations = list(trace)
        expected = None

    if tracer is not None or metrics_registry is not None:
        instrument_scheme(instance, tracer=tracer, registry=metrics_registry)
    if timeline is not None:
        instance.ledger.attach_timeline(timeline)
    watch: SchemeWatch | None = None
    if monitor:
        watch = watch_scheme(
            instance,
            default_monitors(instance, rng=root.spawn("monitor")),
        )

    try:
        per_op = model.rtt_ms + model.transfer_ms(instance.block_size)
        latencies: list[float] = []
        completed = 0
        errors = 0
        mismatches = 0
        last_wall = instance.wall_operations()
        if spec.kind == "ir":
            for chunk in _chunks(operations, batch):
                answers = (
                    instance.query_many(chunk) if len(chunk) > 1
                    else [instance.query(chunk[0])]
                )
                now_wall = instance.wall_operations()
                # A round's requests complete together at the round's
                # (overlap-accounted) wall-clock cost.
                round_ms = (now_wall - last_wall) * per_op
                last_wall = now_wall
                for index, answer in zip(chunk, answers):
                    latencies.append(round_ms)
                    completed += 1
                    if answer is None:
                        errors += 1
                    elif expected is not None and answer != expected[index]:
                        mismatches += 1
        else:
            from repro.workloads.kv_traces import KVOpKind

            reference: dict[bytes, bytes] = {}
            rounds: list[list] = []
            for operation in operations:
                if (
                    batch > 1
                    and operation.kind is KVOpKind.GET
                    and rounds
                    and rounds[-1][0].kind is KVOpKind.GET
                    and len(rounds[-1]) < batch
                ):
                    rounds[-1].append(operation)
                else:
                    rounds.append([operation])
            for round_ops in rounds:
                if round_ops[0].kind is KVOpKind.GET and len(round_ops) > 1:
                    answers = instance.get_many(
                        [operation.key for operation in round_ops]
                    )
                elif round_ops[0].kind is KVOpKind.GET:
                    answers = [instance.get(round_ops[0].key)]
                else:
                    instance.put(round_ops[0].key, round_ops[0].value)
                    reference[round_ops[0].key] = round_ops[0].value
                    answers = None
                now_wall = instance.wall_operations()
                round_ms = (now_wall - last_wall) * per_op
                last_wall = now_wall
                if answers is None:
                    latencies.append(round_ms)
                    completed += 1
                    continue
                for operation, answer in zip(round_ops, answers):
                    latencies.append(round_ms)
                    completed += 1
                    if answer != reference.get(operation.key):
                        mismatches += 1

    finally:
        if watch is not None:
            watch.unwatch()
        # Success or not, release any worker threads the
        # instance's own executor spawned (pool-backed executors
        # recreate them if the instance is reused).
        instance.close()

    if metrics_registry is not None:
        collect_scheme_metrics(instance, metrics_registry)
    loads = instance.shard_loads()
    budget = instance.ledger.report()
    assignment = (
        instance.router.assignment() if spec.kind == "ir" else None
    )
    shard_reports = []
    for shard, group in enumerate(instance.groups):
        shard_reports.append(ShardReport(
            shard=shard,
            records=(
                len(assignment[shard]) if assignment is not None
                else group.replicas[0].n
            ),
            queries=instance.shard_query_counts()[shard],
            server_operations=loads[shard],
            failovers=group.failovers,
            epsilon_spent=budget.per_shard[shard].basic_epsilon,
        ))

    return ClusterReport(
        scheme=type(instance).__name__,
        base=base,
        placement=(
            instance.router.policy if spec.kind == "ir" else "hash"
        ),
        shards=shards,
        replicas=replicas,
        n=n,
        requests=len(operations),
        completed=completed,
        errors=errors,
        mismatches=mismatches,
        network=network if isinstance(network, str) else "custom",
        executor=instance.executor.name,
        batch=batch,
        serial_ms=instance.serial_ms(),
        wall_clock_ms=instance.wall_clock_ms(),
        latency=LatencySummary.from_values(latencies),
        server_operations=sum(loads),
        per_server_storage_blocks=instance.per_server_storage_blocks(),
        total_storage_blocks=instance.total_storage_blocks(),
        load_jain_index=jain_index(loads),
        budget=budget,
        shard_reports=shard_reports,
        faults=scheme_fault_counters(instance),
        percentiles=extra_percentiles(latencies, percentiles),
        leakage=watch.reports() if watch is not None else [],
    )
