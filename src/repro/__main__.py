"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run`` — build any registered scheme, drive any named workload
  against it, and print the measured metrics.
* ``serve`` — run N concurrent client sessions against a scheme through
  the request scheduler and print throughput + latency percentiles.
* ``cluster`` — deploy a scheme as N shard groups x R replicas with
  failover and print load balance, tails and the cluster-wide budget.
* ``experiments`` — run the E1..E14 claim tables (all or a subset).
* ``audit`` — run a cluster workload with an ε-budget timeline attached
  and report cumulative spend against a cap (first crossing flagged).
* ``bounds`` — evaluate the paper's lower bounds for given parameters,
  answering the title question for your workload.
* ``lint`` — run the privacy & determinism linter (``repro.lint``)
  over the source tree and fail on unbaselined findings.
* ``demo`` — a one-minute tour of the three constructions.
"""

from __future__ import annotations

import argparse
import math
import sys


def _observability(args: argparse.Namespace):
    """Build (tracer, registry) from the shared --trace/--metrics flags."""
    from repro.obs import MetricsRegistry, Tracer

    tracer = (
        Tracer(args.command) if getattr(args, "trace", None) else None
    )
    registry = MetricsRegistry() if getattr(args, "metrics", False) else None
    return tracer, registry


def _emit_observability(args: argparse.Namespace, tracer, registry) -> None:
    """Write the trace JSON and emit the metrics export."""
    import json

    if tracer is not None:
        with open(args.trace, "w", encoding="utf-8") as handle:
            json.dump(tracer.export(), handle, indent=2)
            handle.write("\n")
        print(f"trace written to {args.trace} "
              f"({len(tracer.spans())} spans)", file=sys.stderr)
    if registry is not None:
        destination = getattr(args, "metrics", False)
        if isinstance(destination, str):
            with open(destination, "w", encoding="utf-8") as handle:
                json.dump(registry.to_json(), handle, indent=2)
                handle.write("\n")
            print(f"metrics written to {destination} "
                  f"({len(registry.collect())} series)", file=sys.stderr)
        else:
            print(registry.to_prometheus(), end="")


def _add_observability_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record a deterministic span trace and write it as JSON",
    )
    parser.add_argument(
        "--metrics", nargs="?", const=True, default=False, metavar="PATH",
        help="collect metrics; bare prints Prometheus text, with PATH "
             "writes the JSON export there",
    )


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.storage.errors import ReproError

    try:
        return _cmd_run_checked(args)
    except (ReproError, ValueError) as exc:
        # User-level configuration mistakes (unknown scheme/workload/
        # network, invalid sizes) get a message, not a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_run_checked(args: argparse.Namespace) -> int:
    from repro.api import available_schemes, build, scheme_spec
    from repro.crypto.rng import SeededRandomSource, SystemRandomSource
    from repro.simulation.harness import run_trace, simulated_network_ms
    from repro.simulation.reporting import format_table, latency_rows
    from repro.workloads import catalogue

    if args.list:
        rows = [
            [name, scheme_spec(name).kind, scheme_spec(name).summary]
            for name in available_schemes()
        ]
        print(format_table(["scheme", "kind", "summary"], rows,
                           title="Registered schemes"))
        return 0
    spec = scheme_spec(args.scheme)
    rng = (
        SeededRandomSource(args.seed)
        if args.seed is not None
        else SystemRandomSource()
    )
    build_kwargs: dict = {
        "n": args.n,
        "rng": rng.spawn("scheme"),
        "backend": args.backend,
    }
    if args.network is not None:
        build_kwargs["network"] = args.network
    if spec.kind == "kvs":
        build_kwargs["value_size"] = args.value_size
        workload = args.workload
        if workload in catalogue.INDEX_WORKLOADS:
            # Index workloads have a natural KV analogue: a mixed
            # insert/lookup stream over the same operation budget.
            workload = "insert-lookup"
        trace = catalogue.kv_trace(
            workload, args.n, args.ops, rng.spawn("trace"),
            value_size=args.value_size,
        )
    else:
        workload = args.workload
        if workload in catalogue.KV_WORKLOADS:
            print(f"workload {workload!r} needs a KVS scheme", file=sys.stderr)
            return 1
        if spec.kind == "ir" and workload == "readwrite":
            print("IR schemes are read-only; pick another workload",
                  file=sys.stderr)
            return 1
        trace = catalogue.index_trace(
            workload, args.n, args.ops, rng.spawn("trace"),
            write_fraction=args.write_fraction,
        )
    scheme = build(args.scheme, **build_kwargs)
    if workload == "readwrite" and not getattr(scheme, "writable", True):
        print(f"scheme {args.scheme!r} is read-only; pick a read workload",
              file=sys.stderr)
        return 1
    tracer, registry = _observability(args)
    if tracer is not None or registry is not None:
        from repro.obs import instrument_scheme

        instrument_scheme(scheme, tracer=tracer, registry=registry)

    if spec.kind == "kvs":
        metrics = run_trace(scheme, trace)
    else:
        # The builders load integer_database(n) by default, so the same
        # database doubles as the correctness reference.
        from repro.storage.blocks import integer_database

        database = integer_database(args.n)
        if spec.kind == "ir":
            metrics = run_trace(scheme, trace, expected=database)
        else:
            metrics = run_trace(scheme, trace, initial=database)

    rows = [
        ["scheme", args.scheme],
        ["workload", trace.name],
        ["operations", metrics.operations],
        ["blocks downloaded", metrics.blocks_downloaded],
        ["blocks uploaded", metrics.blocks_uploaded],
        ["blocks / operation", f"{metrics.blocks_per_operation:.2f}"],
        ["errors (alpha events)", metrics.errors],
        ["mismatches", metrics.mismatches],
        ["client peak blocks",
         "stateless" if metrics.client_peak_blocks is None
         else metrics.client_peak_blocks],
        ["elapsed seconds", f"{metrics.elapsed_seconds:.3f}"],
    ]
    simulated = simulated_network_ms(scheme)
    if simulated is not None:
        rows.append(["simulated network ms", f"{simulated:.1f}"])
    for name in sorted(metrics.fault_counters):
        rows.append([f"faults: {name}", metrics.fault_counters[name]])
    summary = metrics.latency_summary
    if summary is not None:
        rows.extend(latency_rows(summary))
    print(format_table(["metric", "value"], rows,
                       title=f"Run: {args.scheme} over {args.workload}"))
    if registry is not None:
        from repro.obs import collect_scheme_metrics

        collect_scheme_metrics(scheme, registry)
    _emit_observability(args, tracer, registry)
    if metrics.mismatches:
        print("correctness mismatches detected!", file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.storage.errors import ReproError

    try:
        return _cmd_serve_checked(args)
    except (ReproError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_serve_checked(args: argparse.Namespace) -> int:
    import json

    from repro.api import scheme_spec
    from repro.serving import ServingConfig, serve

    # Validate the scheme spelling up front: unknown names exit 2 with
    # the registry catalogue (ValueError above) and can never surface
    # as a raw KeyError from some deeper lookup.
    scheme_spec(args.scheme)

    tracer, registry = _observability(args)
    config = ServingConfig.from_cli_args(
        args, tracer=tracer, metrics_registry=registry
    )
    report = serve(args.scheme, config)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.to_text())
    _emit_observability(args, tracer, registry)
    if report.leakage_tripped:
        for leakage in report.leakage:
            if leakage.tripped:
                print(f"leakage monitor tripped: {leakage.to_text()}",
                      file=sys.stderr)
        return 1
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    from repro.storage.errors import ReproError

    try:
        return _cmd_cluster_checked(args)
    except (ReproError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_cluster_checked(args: argparse.Namespace) -> int:
    import json

    from repro.api import scheme_spec, schemes
    from repro.cluster import ClusterConfig, cluster
    from repro.simulation.reporting import format_table

    if not args.list:
        # Validate the scheme spelling up front (unknown names exit 2
        # with the catalogue, never a raw KeyError traceback).
        scheme_spec(args.scheme)

    if args.list:
        rows = [
            [listing.name, listing.kind,
             ", ".join(listing.aliases) or "-", listing.summary]
            for listing in schemes()
            if listing.kind in ("ir", "kvs")
        ]
        print(format_table(
            ["scheme", "kind", "aliases", "summary"], rows,
            title="Cluster-capable base schemes (IR and KVS)",
        ))
        return 0

    tracer, registry = _observability(args)
    config = ClusterConfig.from_cli_args(
        args, tracer=tracer, metrics_registry=registry
    )
    report = cluster(args.scheme, config)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.to_text())
    _emit_observability(args, tracer, registry)
    if report.mismatches:
        print("correctness mismatches detected!", file=sys.stderr)
        return 1
    if report.leakage_tripped:
        for leakage in report.leakage:
            if leakage.tripped:
                print(f"leakage monitor tripped: {leakage.to_text()}",
                      file=sys.stderr)
        return 1
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.simulation import experiments

    selected = []
    wanted = {name.upper() for name in args.only} if args.only else None
    for driver in experiments.ALL_EXPERIMENTS:
        table = None
        if wanted is not None:
            # Resolve the experiment id lazily from the driver name,
            # e.g. experiment_e06_dpram_construction -> E06/E6.
            token = driver.__name__.split("_")[1].upper()  # 'E06', 'E11B'
            normalized = token.lstrip("E").lstrip("0")
            if token not in wanted and f"E{normalized}" not in wanted:
                continue
        table = driver()
        selected.append(table)
    if not selected:
        print("no experiments matched", file=sys.stderr)
        return 1
    renderer = (lambda t: t.to_markdown()) if args.markdown else (
        lambda t: t.to_text()
    )
    print("\n\n".join(renderer(table) for table in selected))
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.storage.errors import ReproError

    try:
        return _cmd_audit_checked(args)
    except (ReproError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_audit_checked(args: argparse.Namespace) -> int:
    import json
    from fractions import Fraction

    from repro.api import scheme_spec
    from repro.cluster import ClusterConfig, cluster
    from repro.obs import BudgetTimeline

    scheme_spec(args.scheme)

    # The cap lives on the *timeline*, not the cluster ledger: the run
    # completes and the audit flags the first crossing instead of dying
    # on a BudgetExceededError mid-workload.  Fraction(str(...)) keeps a
    # decimal cap like 0.5 (or a rational like 7/3) exact rather than
    # its float image.
    cap = Fraction(str(args.cap)) if args.cap is not None else None
    timeline = BudgetTimeline(cap=cap)
    config = ClusterConfig.from_cli_args(args, timeline=timeline)
    report = cluster(args.scheme, config)

    slo_report = None
    if args.slo:
        from repro.obs import evaluate_slo

        if args.slo_budget is not None:
            slo_budget = Fraction(str(args.slo_budget))
        elif cap is not None:
            slo_budget = cap
        else:
            raise ValueError("--slo needs --slo-budget or --cap")
        slo_report = evaluate_slo(
            timeline,
            budget=slo_budget,
            horizon=args.slo_horizon,
            fast_window=args.slo_fast_window,
            slow_window=args.slo_slow_window,
            fast_burn=Fraction(str(args.slo_fast_burn)),
            slow_burn=Fraction(str(args.slo_slow_burn)),
        )

    if args.json:
        payload = timeline.to_dict()
        if slo_report is not None:
            payload["slo"] = slo_report.to_dict()
        print(json.dumps(payload, indent=2))
    elif args.timeline:
        print(timeline.to_text())
        if slo_report is not None:
            print(slo_report.to_text())
    else:
        per_operator = timeline.per_operator()
        print(f"audit: {report.requests} requests over "
              f"{args.shards} shards ({len(timeline.events)} charges)")
        print(f"  total epsilon spent: {float(timeline.total_spent):.4f}")
        for operator in sorted(per_operator):
            print(f"  {operator}: "
                  f"{float(per_operator[operator]):.4f}")
        if cap is not None and timeline.first_crossing is None:
            print(f"  cap {float(cap):.4f}: never crossed")
        if slo_report is not None:
            print(slo_report.to_text())
    crossing = timeline.first_crossing
    if crossing is not None:
        print(
            f"budget cap crossed at charge #{crossing.sequence} "
            f"(operator {crossing.operator}, epoch {crossing.epoch})",
            file=sys.stderr,
        )
        return 1
    if slo_report is not None and slo_report.breached:
        for alert in slo_report.alerts:
            print(
                f"slo burn-rate alert: {alert.scope} at charge "
                f"#{alert.sequence} (fast {float(alert.fast_rate):.1f}x, "
                f"slow {float(alert.slow_rate):.1f}x)",
                file=sys.stderr,
            )
        return 1
    return 0


def _cmd_trace_diff(args: argparse.Namespace) -> int:
    import json

    from repro.obs import diff_traces

    if args.tolerance < 0:
        print("error: --tolerance must be >= 0", file=sys.stderr)
        return 2
    payloads = []
    for path in (args.trace_a, args.trace_b):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payloads.append(json.load(handle))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read trace {path}: {exc}", file=sys.stderr)
            return 2
    diff = diff_traces(payloads[0], payloads[1], tolerance=args.tolerance)
    if args.json:
        print(json.dumps(diff.to_dict(), indent=2))
    else:
        print(diff.to_text())
    return 0 if diff.identical else 1


def _cmd_trace_summary(args: argparse.Namespace) -> int:
    import json

    from repro.obs import (
        DEFAULT_STRAGGLER_THRESHOLD,
        profile_to_text,
        summary_to_text,
        trace_profile,
        trace_summary,
    )

    try:
        with open(args.trace, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read trace {args.trace}: {exc}",
              file=sys.stderr)
        return 2
    try:
        if args.profile:
            profile = trace_profile(payload)
            if args.json:
                print(json.dumps(profile, indent=2))
            else:
                print(profile_to_text(profile))
            return 0
        threshold = (
            args.straggler_threshold
            if args.straggler_threshold is not None
            else DEFAULT_STRAGGLER_THRESHOLD
        )
        summary = trace_summary(payload, straggler_threshold=threshold)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        print(summary_to_text(summary))
    return 0


def _cmd_bounds(args: argparse.Namespace) -> int:
    from repro.analysis import bounds

    n = args.n
    print(f"n = {n}, alpha = {args.alpha}, client blocks = {args.client}")
    print(f"  errorless DP-IR floor (Thm 3.3): "
          f"{bounds.dp_ir_errorless_lower_bound(n):.0f} blocks/query")
    eps_ir = bounds.min_epsilon_for_ir_bandwidth(n, args.bandwidth, args.alpha)
    eps_ram = bounds.min_epsilon_for_ram_bandwidth(n, args.bandwidth,
                                                   args.client)
    print(f"  at {args.bandwidth} blocks/query:")
    print(f"    DP-IR needs  eps >= {eps_ir:.2f}  "
          f"({eps_ir / math.log(n):.2f} x ln n)   [Thm 3.4]")
    print(f"    DP-RAM needs eps >= {eps_ram:.2f}  "
          f"({eps_ram / math.log(n):.2f} x ln n)   [Thm 3.7]")
    print("  -> with small overhead, eps = Theta(log n) is the best "
          "achievable privacy (the paper's answer).")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import run_lint

    return run_lint(args)


def _cmd_demo(args: argparse.Namespace) -> int:
    del args
    from repro import DPIR, DPKVS, DPRAM, SeededRandomSource
    from repro.storage.blocks import integer_database

    rng = SeededRandomSource(0)
    n = 512
    database = integer_database(n)

    ram = DPRAM(database, rng=rng.spawn("ram"))
    ram.read(1)
    ram.write(1, b"hello".ljust(64, b"\x00"))
    print(f"DP-RAM  : 2 ops -> {ram.server.operations} block transfers "
          f"({ram.server.operations / 2:.0f}/query), stash={ram.stash_size}")

    ir = DPIR(database, epsilon=math.log(n), alpha=0.05, rng=rng.spawn("ir"))
    answer = ir.query(5)
    print(f"DP-IR   : pad K={ir.pad_size}, exact eps={ir.epsilon:.2f}, "
          f"query(5) -> {'ok' if answer is not None else 'error (alpha)'}")

    kv = DPKVS(n, rng=rng.spawn("kv"))
    kv.put(b"k", b"v")
    print(f"DP-KVS  : blocks/op={kv.blocks_per_operation()}, "
          f"server nodes={kv.server_node_count} (~"
          f"{kv.server_node_count / n:.2f} n), get(k)="
          f"{kv.get(b'k').rstrip(bytes(1))!r}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="DP storage access (Patel-Persiano-Yeo, PODS 2019) "
                    "— reproduction toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser(
        "run",
        help="build a registered scheme and drive a named workload",
    )
    run_parser.add_argument(
        "--scheme", default="dp_ram",
        help="registry name (see --list); default dp_ram",
    )
    run_parser.add_argument(
        "--workload", default="uniform",
        help="workload name: uniform, sequential, zipf, hotspot, "
             "readwrite (RAM), ycsb-a/b/c, insert-lookup (KVS)",
    )
    run_parser.add_argument("--n", type=int, default=1024,
                            help="database size / key capacity (default 1024)")
    run_parser.add_argument("--ops", type=int, default=200,
                            help="operations to run (default 200)")
    run_parser.add_argument("--seed", type=int, default=None,
                            help="deterministic randomness seed")
    run_parser.add_argument("--value-size", type=int, default=32,
                            help="KVS value size in bytes (default 32)")
    run_parser.add_argument("--write-fraction", type=float, default=0.5,
                            help="write fraction for the readwrite workload")
    run_parser.add_argument("--backend", default=None,
                            choices=("memory", "slab", "network"),
                            help="slot-storage backend (default memory; "
                                 "slab packs fixed-size blocks into one "
                                 "contiguous buffer)")
    run_parser.add_argument("--network", default=None,
                            choices=("lan", "wan", "mobile"),
                            help="link model for the network backend")
    run_parser.add_argument("--list", action="store_true",
                            help="list registered schemes and exit")
    _add_observability_arguments(run_parser)
    run_parser.set_defaults(handler=_cmd_run)

    serve_parser = commands.add_parser(
        "serve",
        help="serve N concurrent client sessions through a scheduler",
    )
    serve_parser.add_argument(
        "--scheme", default="dp_ir",
        help="registry name; hyphenated aliases like batch-dpir accepted",
    )
    serve_parser.add_argument("--clients", type=int, default=8,
                              help="concurrent tenant sessions (default 8)")
    serve_parser.add_argument("--requests", type=int, default=32,
                              help="requests per client (default 32)")
    serve_parser.add_argument("--scheduler", default="window",
                              choices=("fifo", "window", "continuous",
                                       "batch"),
                              help="dispatch policy (default window; "
                                   "'batch' is a legacy alias for window, "
                                   "'continuous' pipelines dispatch groups "
                                   "with admission control)")
    serve_parser.add_argument("--window-ms", type=float, default=2.0,
                              help="batching window in ms (default 2)")
    serve_parser.add_argument("--max-batch", type=int, default=16,
                              help="dispatch group size cap (default 16)")
    serve_parser.add_argument("--max-in-flight", type=int, default=4,
                              help="concurrent dispatch groups for the "
                                   "continuous scheduler (default 4)")
    serve_parser.add_argument("--tenant-credits", type=int, default=None,
                              help="per-tenant outstanding-request cap for "
                                   "the continuous scheduler (default: "
                                   "admission control off)")
    serve_parser.add_argument("--queue-cap", type=int, default=None,
                              help="global pending-queue cap for the "
                                   "continuous scheduler (default: off)")
    serve_parser.add_argument("--load", default="open",
                              choices=("open", "closed"),
                              help="open-loop Poisson or closed-loop think")
    serve_parser.add_argument("--rate", type=float, default=100.0,
                              help="open-loop arrivals/s per client")
    serve_parser.add_argument("--think-ms", type=float, default=5.0,
                              help="closed-loop mean think time in ms")
    serve_parser.add_argument(
        "--workload", default="uniform",
        help="per-tenant trace: uniform, sequential, zipf, hotspot, "
             "readwrite (RAM), ycsb-a/b/c (KVS)",
    )
    serve_parser.add_argument("--n", type=int, default=1024,
                              help="database size / key capacity")
    serve_parser.add_argument("--seed", type=int, default=None,
                              help="deterministic randomness seed")
    serve_parser.add_argument("--network", default="lan",
                              choices=("lan", "wan", "mobile"),
                              help="link model pricing simulated time")
    serve_parser.add_argument("--backend", default=None,
                              choices=("memory", "slab", "network"),
                              help="slot-storage backend override "
                                   "(default: scheme default; slab packs "
                                   "blocks into one contiguous buffer)")
    serve_parser.add_argument("--value-size", type=int, default=32,
                              help="KVS value size in bytes (default 32)")
    serve_parser.add_argument("--executor", default=None,
                              choices=("serial", "parallel", "simulated"),
                              help="cross-shard fan-out policy for "
                                   "cluster schemes (default serial)")
    serve_parser.add_argument("--monitor", action="store_true",
                              help="attach online leakage monitors; exit 1 "
                                   "if empirical adversary success exceeds "
                                   "the eps-implied ceiling")
    serve_parser.add_argument("--json", action="store_true",
                              help="emit the report as JSON")
    _add_observability_arguments(serve_parser)
    serve_parser.set_defaults(handler=_cmd_serve)

    cluster_parser = commands.add_parser(
        "cluster",
        help="deploy a scheme as N shard groups x R replicas with failover",
    )
    cluster_parser.add_argument(
        "--scheme", default="dp_ir",
        help="base scheme each shard group hosts (IR or KVS; see --list)",
    )
    cluster_parser.add_argument("--shards", type=int, default=4,
                                help="shard groups D (default 4)")
    cluster_parser.add_argument("--replicas", type=int, default=2,
                                help="replicas per group R (default 2)")
    cluster_parser.add_argument("--n", type=int, default=1024,
                                help="database size / key capacity")
    cluster_parser.add_argument("--requests", type=int, default=256,
                                help="operations to drive (default 256)")
    cluster_parser.add_argument(
        "--workload", default="uniform",
        help="trace shape: uniform, sequential, zipf, hotspot (IR); "
             "ycsb-a/b/c, insert-lookup (KVS)",
    )
    cluster_parser.add_argument("--placement", default="range",
                                choices=("range", "hash"),
                                help="shard placement policy (IR clusters)")
    cluster_parser.add_argument("--epsilon", type=float, default=None,
                                help="cluster-wide privacy target "
                                     "(default ln n)")
    cluster_parser.add_argument("--pad-size", type=int, default=None,
                                help="explicit global pad size K")
    cluster_parser.add_argument("--alpha", type=float, default=0.05,
                                help="per-query error probability")
    cluster_parser.add_argument("--no-auth", action="store_true",
                                help="store plaintext instead of "
                                     "authenticated ciphertexts")
    cluster_parser.add_argument("--failure-rate", type=float, default=0.0,
                                help="flaky-node rate per replica")
    cluster_parser.add_argument("--corruption-rate", type=float, default=0.0,
                                help="bit-flip rate per replica")
    cluster_parser.add_argument("--value-size", type=int, default=32,
                                help="KVS value size in bytes (default 32)")
    cluster_parser.add_argument("--seed", type=int, default=None,
                                help="deterministic randomness seed")
    cluster_parser.add_argument("--network", default="lan",
                                choices=("lan", "wan", "mobile"),
                                help="link model pricing simulated time")
    cluster_parser.add_argument("--backend", default=None,
                                choices=("memory", "slab", "network"),
                                help="per-replica slot-storage backend "
                                     "(default memory; slab packs blocks "
                                     "into one contiguous buffer)")
    cluster_parser.add_argument("--executor", default="serial",
                                choices=("serial", "parallel", "simulated"),
                                help="cross-shard fan-out policy "
                                     "(default serial)")
    cluster_parser.add_argument("--batch", type=int, default=1,
                                help="requests dispatched per round; a "
                                     "round spanning several shards is "
                                     "what a parallel executor overlaps "
                                     "(default 1)")
    cluster_parser.add_argument("--fault-coins", default="per_slot",
                                choices=("per_slot", "per_round"),
                                help="fault-coin granularity for injected "
                                     "faults (default per_slot)")
    cluster_parser.add_argument("--monitor", action="store_true",
                                help="attach online leakage monitors "
                                     "(membership + shard routing); exit 1 "
                                     "if empirical success exceeds the "
                                     "eps-implied ceiling")
    cluster_parser.add_argument("--json", action="store_true",
                                help="emit the report as JSON")
    cluster_parser.add_argument("--list", action="store_true",
                                help="list cluster-capable base schemes "
                                     "(names + aliases) and exit")
    _add_observability_arguments(cluster_parser)
    cluster_parser.set_defaults(handler=_cmd_cluster)

    audit_parser = commands.add_parser(
        "audit",
        help="run a cluster workload with an eps-budget timeline attached",
    )
    audit_parser.add_argument(
        "--scheme", default="dp_ir",
        help="base scheme each shard group hosts (IR or KVS)",
    )
    audit_parser.add_argument("--shards", type=int, default=4,
                              help="shard groups D (default 4)")
    audit_parser.add_argument("--replicas", type=int, default=1,
                              help="replicas per group R (default 1)")
    audit_parser.add_argument("--n", type=int, default=1024,
                              help="database size / key capacity")
    audit_parser.add_argument("--requests", type=int, default=64,
                              help="operations to drive (default 64)")
    audit_parser.add_argument("--workload", default="uniform",
                              help="trace shape (uniform, zipf, ...)")
    audit_parser.add_argument("--epsilon", type=float, default=None,
                              help="cluster-wide privacy target "
                                   "(default ln n)")
    audit_parser.add_argument("--pad-size", type=int, default=None,
                              help="explicit global pad size K")
    audit_parser.add_argument("--seed", type=int, default=None,
                              help="deterministic randomness seed")
    audit_parser.add_argument("--executor", default="serial",
                              choices=("serial", "parallel", "simulated"),
                              help="cross-shard fan-out policy")
    audit_parser.add_argument("--batch", type=int, default=1,
                              help="requests dispatched per round")
    audit_parser.add_argument("--cap", default=None, metavar="EPS",
                              help="budget cap to audit cumulative spend "
                                   "against (flags the first crossing); "
                                   "decimals and rationals like 7/3 stay "
                                   "exact")
    audit_parser.add_argument("--timeline", action="store_true",
                              help="plot the cumulative spend timeline")
    audit_parser.add_argument("--slo", action="store_true",
                              help="evaluate the two-window eps burn-rate "
                                   "SLO (per tenant and per operator); "
                                   "exit 1 on a breach")
    audit_parser.add_argument("--slo-budget", default=None, metavar="EPS",
                              help="SLO budget (exact; defaults to --cap)")
    audit_parser.add_argument("--slo-horizon", type=int, default=None,
                              help="SLO period in spend events "
                                   "(default: the run length)")
    audit_parser.add_argument("--slo-fast-window", type=int, default=None,
                              help="fast window in events "
                                   "(default horizon/50)")
    audit_parser.add_argument("--slo-slow-window", type=int, default=None,
                              help="slow window in events "
                                   "(default horizon/10)")
    audit_parser.add_argument("--slo-fast-burn", default="14",
                              metavar="RATE",
                              help="fast-window burn threshold (default 14)")
    audit_parser.add_argument("--slo-slow-burn", default="6",
                              metavar="RATE",
                              help="slow-window burn threshold (default 6)")
    audit_parser.add_argument("--json", action="store_true",
                              help="emit the timeline (and SLO) as JSON")
    audit_parser.set_defaults(handler=_cmd_audit)

    diff_parser = commands.add_parser(
        "trace-diff",
        help="structurally compare two exported traces (regression gate)",
    )
    diff_parser.add_argument("trace_a", metavar="A.json",
                             help="baseline trace JSON")
    diff_parser.add_argument("trace_b", metavar="B.json",
                             help="candidate trace JSON")
    diff_parser.add_argument("--tolerance", type=float, default=1e-6,
                             help="relative tolerance for simulated-time "
                                  "fields and numeric labels "
                                  "(default 1e-6)")
    diff_parser.add_argument("--json", action="store_true",
                            help="emit the diff as JSON")
    diff_parser.set_defaults(handler=_cmd_trace_diff)

    summary_parser = commands.add_parser(
        "trace-summary",
        help="summarize an exported trace (fan-out rounds, stragglers, "
             "or a --profile cost attribution)",
    )
    summary_parser.add_argument("trace", metavar="TRACE.json",
                                help="exported trace JSON")
    summary_parser.add_argument("--profile", action="store_true",
                                help="self-vs-child cost attribution with "
                                     "critical-path share instead of the "
                                     "round summary")
    summary_parser.add_argument(
        "--straggler-threshold", type=float, default=None, metavar="RATIO",
        help="flag rounds whose slowest leg costs at least RATIO times "
             "the mean leg (default 1.5)",
    )
    summary_parser.add_argument("--json", action="store_true",
                                help="emit the summary as JSON")
    summary_parser.set_defaults(handler=_cmd_trace_summary)

    experiments_parser = commands.add_parser(
        "experiments", help="run the claim-table experiments"
    )
    experiments_parser.add_argument(
        "--only", nargs="*", metavar="EXP",
        help="experiment ids to run (e.g. E3 E11b); default: all",
    )
    experiments_parser.add_argument(
        "--markdown", action="store_true", help="emit markdown tables"
    )
    experiments_parser.set_defaults(handler=_cmd_experiments)

    bounds_parser = commands.add_parser(
        "bounds", help="evaluate the lower bounds for your parameters"
    )
    bounds_parser.add_argument("--n", type=int, default=2**20,
                               help="database size (default 2^20)")
    bounds_parser.add_argument("--bandwidth", type=float, default=3.0,
                               help="blocks per query you can afford")
    bounds_parser.add_argument("--alpha", type=float, default=0.05,
                               help="tolerable error probability")
    bounds_parser.add_argument("--client", type=int, default=64,
                               help="client storage in blocks")
    bounds_parser.set_defaults(handler=_cmd_bounds)

    lint_parser = commands.add_parser(
        "lint",
        help="run the privacy & determinism linter over the source tree",
    )
    from repro.lint.cli import add_lint_arguments

    add_lint_arguments(lint_parser)
    lint_parser.set_defaults(handler=_cmd_lint)

    demo_parser = commands.add_parser("demo", help="one-minute tour")
    demo_parser.set_defaults(handler=_cmd_demo)

    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - entry point
    raise SystemExit(main())
