"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``experiments`` — run the E1..E14 claim tables (all or a subset).
* ``bounds`` — evaluate the paper's lower bounds for given parameters,
  answering the title question for your workload.
* ``demo`` — a one-minute tour of the three constructions.
"""

from __future__ import annotations

import argparse
import math
import sys


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.simulation import experiments

    selected = []
    wanted = {name.upper() for name in args.only} if args.only else None
    for driver in experiments.ALL_EXPERIMENTS:
        table = None
        if wanted is not None:
            # Resolve the experiment id lazily from the driver name,
            # e.g. experiment_e06_dpram_construction -> E06/E6.
            token = driver.__name__.split("_")[1].upper()  # 'E06', 'E11B'
            normalized = token.lstrip("E").lstrip("0")
            if token not in wanted and f"E{normalized}" not in wanted:
                continue
        table = driver()
        selected.append(table)
    if not selected:
        print("no experiments matched", file=sys.stderr)
        return 1
    renderer = (lambda t: t.to_markdown()) if args.markdown else (
        lambda t: t.to_text()
    )
    print("\n\n".join(renderer(table) for table in selected))
    return 0


def _cmd_bounds(args: argparse.Namespace) -> int:
    from repro.analysis import bounds

    n = args.n
    print(f"n = {n}, alpha = {args.alpha}, client blocks = {args.client}")
    print(f"  errorless DP-IR floor (Thm 3.3): "
          f"{bounds.dp_ir_errorless_lower_bound(n):.0f} blocks/query")
    eps_ir = bounds.min_epsilon_for_ir_bandwidth(n, args.bandwidth, args.alpha)
    eps_ram = bounds.min_epsilon_for_ram_bandwidth(n, args.bandwidth,
                                                   args.client)
    print(f"  at {args.bandwidth} blocks/query:")
    print(f"    DP-IR needs  eps >= {eps_ir:.2f}  "
          f"({eps_ir / math.log(n):.2f} x ln n)   [Thm 3.4]")
    print(f"    DP-RAM needs eps >= {eps_ram:.2f}  "
          f"({eps_ram / math.log(n):.2f} x ln n)   [Thm 3.7]")
    print("  -> with small overhead, eps = Theta(log n) is the best "
          "achievable privacy (the paper's answer).")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    del args
    from repro import DPIR, DPKVS, DPRAM, SeededRandomSource
    from repro.storage.blocks import integer_database

    rng = SeededRandomSource(0)
    n = 512
    database = integer_database(n)

    ram = DPRAM(database, rng=rng.spawn("ram"))
    ram.read(1)
    ram.write(1, b"hello".ljust(64, b"\x00"))
    print(f"DP-RAM  : 2 ops -> {ram.server.operations} block transfers "
          f"({ram.server.operations / 2:.0f}/query), stash={ram.stash_size}")

    ir = DPIR(database, epsilon=math.log(n), alpha=0.05, rng=rng.spawn("ir"))
    answer = ir.query(5)
    print(f"DP-IR   : pad K={ir.pad_size}, exact eps={ir.epsilon:.2f}, "
          f"query(5) -> {'ok' if answer is not None else 'error (alpha)'}")

    kv = DPKVS(n, rng=rng.spawn("kv"))
    kv.put(b"k", b"v")
    print(f"DP-KVS  : blocks/op={kv.blocks_per_operation()}, "
          f"server nodes={kv.server_node_count} (~"
          f"{kv.server_node_count / n:.2f} n), get(k)="
          f"{kv.get(b'k').rstrip(bytes(1))!r}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="DP storage access (Patel-Persiano-Yeo, PODS 2019) "
                    "— reproduction toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    experiments_parser = commands.add_parser(
        "experiments", help="run the claim-table experiments"
    )
    experiments_parser.add_argument(
        "--only", nargs="*", metavar="EXP",
        help="experiment ids to run (e.g. E3 E11b); default: all",
    )
    experiments_parser.add_argument(
        "--markdown", action="store_true", help="emit markdown tables"
    )
    experiments_parser.set_defaults(handler=_cmd_experiments)

    bounds_parser = commands.add_parser(
        "bounds", help="evaluate the lower bounds for your parameters"
    )
    bounds_parser.add_argument("--n", type=int, default=2**20,
                               help="database size (default 2^20)")
    bounds_parser.add_argument("--bandwidth", type=float, default=3.0,
                               help="blocks per query you can afford")
    bounds_parser.add_argument("--alpha", type=float, default=0.05,
                               help="tolerable error probability")
    bounds_parser.add_argument("--client", type=int, default=64,
                               help="client storage in blocks")
    bounds_parser.set_defaults(handler=_cmd_bounds)

    demo_parser = commands.add_parser("demo", help="one-minute tour")
    demo_parser.set_defaults(handler=_cmd_demo)

    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - entry point
    raise SystemExit(main())
