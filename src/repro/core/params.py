"""Parameter calculators connecting privacy budgets to scheme knobs.

The constructions expose three tunable quantities:

* **DP-IR** — the pad size ``K``.  Algorithm 1 sets
  ``K = ⌈(1−α)·n / (e^ε − 1)⌉`` and Appendix B shows the *exact* privacy is
  ``ε = ln((1−α)·n / (α·K) + 1)``.
* **DP-RAM** — the stash probability ``p``.  Theorem 6.1 requires
  ``p ≤ Φ(n)/n`` with ``Φ(n) = ω(log n)``; the proof (Lemmas 6.4/6.5 applied
  to the ≤ 3 positions identified by Lemma 6.7) yields the conservative
  closed-form budget ``ε ≤ 3·ln(n³/p²)``.
* **DP-KVS** — the tree layout (Section 7.2): ``Θ(n/log n)`` trees with
  ``Θ(log n)`` leaves, node capacity ``t = Θ(1)``, and a client super root
  with capacity ``Φ(n)``.

Everything here is a pure function of ``n`` and the privacy knobs so that
experiments, docs and the schemes themselves agree on a single source of
truth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def default_phi(n: int) -> int:
    """A concrete ``Φ(n) = ω(log n)``: ``⌈(log₂ n)^1.5⌉``, at least 8.

    Any super-logarithmic function works for the paper's "except with
    probability negl(n)" statements; ``log^1.5`` keeps client storage small
    at practical sizes (Φ(2^20) = 90) while growing strictly faster than
    ``log n``.
    """
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    return max(8, math.ceil(math.log2(max(n, 2)) ** 1.5))


# -- DP-IR (Section 5 / Appendix B) -----------------------------------------


def dp_ir_pad_size(n: int, epsilon: float, alpha: float) -> int:
    """Smallest pad size whose *exact* budget (Appendix B) is ≤ ``epsilon``.

    Appendix B shows Algorithm 1 with pad size ``K`` achieves exactly
    ``ε = ln((1−α)n/(αK) + 1)``; inverting gives
    ``K = ⌈(1−α)·n / (α·(e^ε − 1))⌉`` (clamped to ``[1, n]``).

    Note the pseudocode in the paper's Appendix G omits the ``α`` in the
    denominator; that variant (:func:`dp_ir_pad_size_paper`) has the same
    ``O(n/e^ε)`` asymptotics but lands ``ln(1/α)`` above the requested
    budget.  This resolver guarantees the achieved ε never exceeds the
    target.
    """
    _check_n(n)
    _check_alpha(alpha)
    if epsilon < 0:
        raise ValueError(f"epsilon must be non-negative, got {epsilon}")
    if epsilon == 0:
        return n
    raw = math.ceil((1.0 - alpha) * n / (alpha * (math.exp(epsilon) - 1.0)))
    return max(1, min(n, raw))


def dp_ir_pad_size_paper(n: int, epsilon: float, alpha: float) -> int:
    """The literal Appendix G formula ``K = ⌈(1−α)·n/(e^ε−1)⌉``.

    Kept for faithfulness comparisons; see :func:`dp_ir_pad_size` for why
    the library resolver includes the ``α`` factor.
    """
    _check_n(n)
    _check_alpha(alpha)
    if epsilon < 0:
        raise ValueError(f"epsilon must be non-negative, got {epsilon}")
    if epsilon == 0:
        return n
    raw = math.ceil((1.0 - alpha) * n / (math.exp(epsilon) - 1.0))
    return max(1, min(n, raw))


def dp_ir_exact_epsilon(n: int, pad_size: int, alpha: float) -> float:
    """Exact privacy of Algorithm 1 with pad size ``K`` (Appendix B).

    ``ε = ln((1−α)·n/(α·K) + 1)``.  When ``K = n`` every query downloads
    the whole database and the scheme is perfectly oblivious (ε = 0).
    """
    _check_n(n)
    _check_alpha(alpha)
    if not 1 <= pad_size <= n:
        raise ValueError(f"pad size must be in [1, {n}], got {pad_size}")
    if pad_size == n:
        return 0.0
    return math.log((1.0 - alpha) * n / (alpha * pad_size) + 1.0)


@dataclass(frozen=True)
class DPIRParams:
    """Resolved DP-IR parameters.

    Attributes:
        n: database size.
        alpha: error probability (must be in (0, 1)).
        pad_size: number of blocks downloaded per query (``K``).
        epsilon: the exact privacy budget achieved by this ``K``.
    """

    n: int
    alpha: float
    pad_size: int
    epsilon: float

    @classmethod
    def from_epsilon(cls, n: int, epsilon: float, alpha: float) -> "DPIRParams":
        """Resolve parameters from a target privacy budget."""
        pad = dp_ir_pad_size(n, epsilon, alpha)
        return cls(n=n, alpha=alpha, pad_size=pad,
                   epsilon=dp_ir_exact_epsilon(n, pad, alpha))

    @classmethod
    def from_pad_size(cls, n: int, pad_size: int, alpha: float) -> "DPIRParams":
        """Resolve parameters from an explicit pad size."""
        return cls(n=n, alpha=alpha, pad_size=pad_size,
                   epsilon=dp_ir_exact_epsilon(n, pad_size, alpha))


# -- DP-RAM (Section 6) ------------------------------------------------------


def dp_ram_epsilon_upper_bound(n: int, stash_probability: float) -> float:
    """Conservative analytic budget ``3·ln(n³/p²)`` for Algorithms 2–3.

    Lemma 6.4 bounds each download factor by ``n²/p`` and Lemma 6.5 each
    overwrite factor by ``n/p``; Lemma 6.7 shows at most three positions
    contribute, giving a worst-case transcript ratio of ``(n³/p²)³``.  With
    ``p = Φ(n)/n`` this is ``ε ≤ 15·ln n − 6·ln Φ(n) = O(log n)``.
    """
    _check_n(n)
    _check_probability(stash_probability)
    return 3.0 * math.log(n**3 / stash_probability**2)


@dataclass(frozen=True)
class DPRAMParams:
    """Resolved DP-RAM parameters.

    Attributes:
        n: database size.
        stash_probability: per-record stash probability ``p``.
        expected_stash: ``p·n`` — the expected client stash size.
        epsilon_bound: the analytic privacy budget for this ``p``.
    """

    n: int
    stash_probability: float
    expected_stash: float
    epsilon_bound: float

    @classmethod
    def from_phi(cls, n: int, phi: int | None = None) -> "DPRAMParams":
        """Resolve from a stash budget ``Φ(n)`` (defaults to :func:`default_phi`)."""
        _check_n(n)
        budget = default_phi(n) if phi is None else phi
        if budget <= 0:
            raise ValueError(f"phi must be positive, got {budget}")
        p = min(1.0, budget / n)
        return cls(n=n, stash_probability=p, expected_stash=p * n,
                   epsilon_bound=dp_ram_epsilon_upper_bound(n, p))

    @classmethod
    def from_probability(cls, n: int, stash_probability: float) -> "DPRAMParams":
        """Resolve from an explicit stash probability ``p``."""
        _check_n(n)
        _check_probability(stash_probability)
        return cls(n=n, stash_probability=stash_probability,
                   expected_stash=stash_probability * n,
                   epsilon_bound=dp_ram_epsilon_upper_bound(n, stash_probability))


# -- DP-KVS tree layout (Section 7.2) ----------------------------------------

# TreeShape lives with the tree-bucket implementation to keep the import
# graph acyclic; re-exported here because it is a scheme parameter.
from repro.hashing.tree_buckets import TreeShape  # noqa: E402


@dataclass(frozen=True)
class DPKVSParams:
    """Resolved DP-KVS parameters: tree shape + stash/super-root budgets.

    Attributes:
        n: key capacity.
        shape: the tree-bucket geometry.
        phi: super-root capacity ``Φ(n)`` (also drives the bucket stash
            probability ``p = Φ(n)/leaf_count``).
        stash_probability: per-bucket stash probability of the underlying
            bucket DP-RAM.
        choices: ``k(n) = 2`` hash choices per key.
    """

    n: int
    shape: TreeShape
    phi: int
    stash_probability: float
    choices: int = 2

    @classmethod
    def for_capacity(
        cls,
        n: int,
        node_capacity: int = 4,
        phi: int | None = None,
        leaves_per_tree: int | None = None,
    ) -> "DPKVSParams":
        """Resolve all DP-KVS knobs from the key capacity ``n``."""
        shape = TreeShape.for_capacity(
            n, node_capacity=node_capacity, leaves_per_tree=leaves_per_tree
        )
        budget = default_phi(n) if phi is None else phi
        if budget <= 0:
            raise ValueError(f"phi must be positive, got {budget}")
        p = min(1.0, budget / shape.leaf_count)
        return cls(n=n, shape=shape, phi=budget, stash_probability=p)

    def blocks_per_operation(self) -> int:
        """Node blocks moved per KVS operation.

        Each of the ``k = 2`` bucket queries downloads two paths and
        uploads one (Section 6 applied per Appendix E):
        ``2 · 3 · path_length``.
        """
        return self.choices * 3 * self.shape.path_length


# -- shared validation -------------------------------------------------------


def _check_n(n: int) -> None:
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")


def _check_alpha(alpha: float) -> None:
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")


def _check_probability(p: float) -> None:
    if not 0.0 < p <= 1.0:
        raise ValueError(f"probability must be in (0, 1], got {p}")
