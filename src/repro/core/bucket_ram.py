"""DP-RAM over a repertoire of (possibly overlapping) buckets — Appendix E.

Section 7 runs the Section 6 DP-RAM not over single records but over a
repertoire ``Σ`` of ``b`` *buckets*, each a fixed tuple of node slots, where
different buckets may share slots (the tree-shared paths of Section 7.2).
A bucket query downloads every node of a bucket in the download phase and
re-uploads every node of a bucket in the overwrite phase; the stash holds
whole buckets with probability ``p``.  The per-query adversary view is the
pair of bucket indices ``(d_j, o_j)`` — identical in distribution to the
Section 6 analysis, so the privacy argument carries over with ``ε`` scaled
by the number of bucket queries per logical operation (Theorem 7.1).

**Consistency with overlap** (the modification Appendix E prescribes):
when a stashed bucket's nodes have stale server copies, any other bucket
reading a shared node must be served the client's copy, and updates must
refresh both copies.  We maintain:

* ``_stashed`` — the set of bucket ids currently in the stash;
* ``_overlay`` — authoritative plaintext for every node whose server copy
  may be stale *or* that belongs to a stashed bucket (so a stashed bucket
  can be answered without any real download);
* ``_pins`` — for each node, how many stashed buckets contain it.

Overlay entries are only dropped right after a fresh ciphertext of the
node is uploaded and no stashed bucket pins it; this guarantees a stale
server copy can never be served.

The two phases are exposed separately (:meth:`begin_query` /
:meth:`finish_query`) so DP-KVS can download both hash-choice buckets,
run the storing algorithm on their joint contents, and only then perform
the overwrite phases — fusing the paper's "k retrievals + k updates" into
k queries with an unchanged per-query transcript distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.api.protocols import PrivateRAM
from repro.crypto.encryption import (
    SecretKey,
    decrypt_many,
    decrypt_reference,
    encrypt_many,
    encrypt_reference,
    generate_key,
)
from repro.crypto.rng import RandomSource, SystemRandomSource
from repro.storage.backends import BackendFactory
from repro.storage.errors import RetrievalError, StorageError
from repro.storage.server import StorageServer


@dataclass
class PendingQuery:
    """State between the download and overwrite phases of one bucket query.

    Attributes:
        bucket: the queried bucket id.
        download_bucket: the bucket whose nodes were downloaded (``d_j``).
        contents: authoritative plaintext per node of ``bucket``.
    """

    bucket: int
    download_bucket: int
    contents: dict[int, bytes]
    _finished: bool = False


class BucketDPRAM(PrivateRAM):
    """The Section 6 DP-RAM generalized to an overlapping-bucket repertoire.

    Args:
        node_blocks: initial plaintext content of every node slot.
        buckets: the repertoire ``Σ`` — bucket id → tuple of node ids.
        stash_probability: per-bucket stash probability ``p``.
        rng: randomness source (defaults to system entropy).
        key: symmetric key; freshly sampled when omitted.
        backend_factory: optional slot-storage backend for the server.
        bulk: route node re-encryption rounds through the bulk cipher
            path (default).  ``False`` keeps the seed per-block reference
            implementation — slower, bit-identical, and the baseline the
            benchmark invariance witnesses compare against.
    """

    def __init__(
        self,
        node_blocks: Sequence[bytes],
        buckets: Sequence[tuple[int, ...]],
        stash_probability: float,
        rng: RandomSource | None = None,
        key: SecretKey | None = None,
        backend_factory: BackendFactory | None = None,
        bulk: bool = True,
    ) -> None:
        if not node_blocks:
            raise ValueError("need at least one node block")
        if not buckets:
            raise ValueError("need at least one bucket")
        if not 0.0 < stash_probability <= 1.0:
            raise ValueError(
                f"stash probability must be in (0, 1], got {stash_probability}"
            )
        node_count = len(node_blocks)
        for bucket_id, nodes in enumerate(buckets):
            if not nodes:
                raise ValueError(f"bucket {bucket_id} is empty")
            for node in nodes:
                if not 0 <= node < node_count:
                    raise StorageError(
                        f"bucket {bucket_id} references node {node} "
                        f"outside [0, {node_count})"
                    )
        self._buckets = [tuple(nodes) for nodes in buckets]
        self._p = stash_probability
        self._rng = rng if rng is not None else SystemRandomSource()
        self._key = key if key is not None else generate_key(self._rng)
        self._bulk = bulk

        self._block_size = len(node_blocks[0])
        self._server = StorageServer(
            node_count,
            backend=backend_factory(node_count) if backend_factory else None,
        )
        self._server.load(self._encrypt_blocks(node_blocks))

        self._stashed: set[int] = set()
        self._overlay: dict[int, bytes] = {}
        self._pins: dict[int, int] = {}
        self._pending: set[int] = set()
        self._client_peak = 0

        # Setup: stash each bucket independently with probability p,
        # mirroring Algorithm 2's per-record coin.
        for bucket_id, nodes in enumerate(self._buckets):
            if self._rng.random() < self._p:
                self._stashed.add(bucket_id)
                for node in nodes:
                    self._overlay[node] = bytes(node_blocks[node])
                    self._pin(node)
        self._note_peak()

        self._queries = 0
        self._pairs: list[tuple[int, int]] = []

    # -- accounting ----------------------------------------------------------

    @property
    def n(self) -> int:
        """Size of the repertoire ``Σ`` (the addressable units)."""
        return len(self._buckets)

    @property
    def bucket_count(self) -> int:
        """Size of the repertoire ``Σ``."""
        return len(self._buckets)

    @property
    def block_size(self) -> int:
        """Bytes per plaintext node block."""
        return self._block_size

    @property
    def stash_probability(self) -> float:
        """The per-bucket stash probability ``p``."""
        return self._p

    @property
    def server(self) -> StorageServer:
        """The passive server of node slots (exposes operation counters)."""
        return self._server

    def servers(self) -> tuple[StorageServer, ...]:
        """The single node-slot server."""
        return (self._server,)

    @property
    def stashed_buckets(self) -> int:
        """Buckets currently in the stash."""
        return len(self._stashed)

    @property
    def client_blocks(self) -> int:
        """Node blocks currently held on the client (the overlay)."""
        return len(self._overlay)

    @property
    def client_peak_blocks(self) -> int:
        """Largest overlay occupancy observed."""
        return self._client_peak

    @property
    def query_count(self) -> int:
        """Completed bucket queries."""
        return self._queries

    @property
    def transcript_pairs(self) -> list[tuple[int, int]]:
        """Bucket-granular ``(d_j, o_j)`` pairs — the adversary view."""
        return list(self._pairs)

    def bucket_nodes(self, bucket: int) -> tuple[int, ...]:
        """Node ids of ``bucket``."""
        return self._buckets[bucket]

    # -- the two phases --------------------------------------------------------

    def begin_query(self, bucket: int) -> PendingQuery:
        """Run the download phase for ``bucket``.

        Returns a :class:`PendingQuery` carrying the authoritative contents
        of every node of the bucket; pass it to :meth:`finish_query` to run
        the overwrite phase.
        """
        if not 0 <= bucket < len(self._buckets):
            raise RetrievalError(
                f"bucket {bucket} out of range for {len(self._buckets)}"
            )
        if bucket in self._pending:
            raise RetrievalError(
                f"bucket {bucket} already has an unfinished query; "
                "interleaved queries must target distinct buckets"
            )
        self._pending.add(bucket)
        self._server.begin_query(self._queries)
        nodes = self._buckets[bucket]
        if bucket in self._stashed:
            download_bucket = self._rng.randbelow(len(self._buckets))
            # Cover traffic, discarded — one batched round for the bucket.
            self._server.read_many(self._buckets[download_bucket])
            contents = {node: self._overlay[node] for node in nodes}
            self._stashed.remove(bucket)
            for node in nodes:
                self._unpin(node)
            # Overlay entries persist: the server copies are still stale
            # until the overwrite phase uploads fresh ciphertexts.
        else:
            download_bucket = bucket
            contents = {}
            ciphertexts = self._server.read_many(nodes)
            plaintexts = iter(
                self._decrypt_blocks(
                    [
                        ciphertext
                        for node, ciphertext in zip(nodes, ciphertexts)
                        if node not in self._overlay
                    ]
                )
            )
            for node in nodes:
                if node in self._overlay:
                    contents[node] = self._overlay[node]
                else:
                    contents[node] = next(plaintexts)
        return PendingQuery(
            bucket=bucket, download_bucket=download_bucket, contents=contents
        )

    def finish_query(
        self,
        pending: PendingQuery,
        new_contents: Mapping[int, bytes] | None = None,
    ) -> None:
        """Run the overwrite phase.

        Args:
            pending: the handle returned by :meth:`begin_query`.
            new_contents: replacement plaintext for any subset of the
                bucket's nodes; omitted nodes keep their downloaded
                contents.  ``None`` performs a fake update (contents
                unchanged), which is what read operations use.
        """
        if pending._finished:
            raise RetrievalError("finish_query called twice on the same handle")
        pending._finished = True
        bucket = pending.bucket
        self._pending.discard(bucket)
        nodes = self._buckets[bucket]
        contents = dict(pending.contents)
        if new_contents is not None:
            for node, block in new_contents.items():
                if node not in contents:
                    raise StorageError(
                        f"node {node} is not part of bucket {bucket}"
                    )
                contents[node] = bytes(block)

        # Both overwrite branches move a whole bucket: one batched
        # download round, then one batched upload round (the per-query
        # event multiset is unchanged; only the within-query interleaving
        # goes from read/write per node to reads-then-writes).
        if self._rng.random() < self._p:
            # Re-stash the queried bucket; cover-rewrite a random bucket.
            self._stashed.add(bucket)
            for node in nodes:
                self._overlay[node] = contents[node]
                self._pin(node)
            overwrite_bucket = self._rng.randbelow(len(self._buckets))
            overwrite_nodes = self._buckets[overwrite_bucket]
            ciphertexts = self._server.read_many(overwrite_nodes)
            # Decrypts consume no client randomness, so hoisting them
            # ahead of the whole-bucket bulk re-encrypt preserves the
            # rng draw order of the per-node formulation exactly.
            plaintexts = iter(
                self._decrypt_blocks(
                    [
                        ciphertext
                        for node, ciphertext in zip(overwrite_nodes, ciphertexts)
                        if node not in self._overlay
                    ]
                )
            )
            authoritative = [
                self._overlay[node]
                if node in self._overlay
                else next(plaintexts)
                for node in overwrite_nodes
            ]
            self._server.write_many(
                list(
                    zip(
                        overwrite_nodes,
                        self._encrypt_blocks(authoritative),
                    )
                )
            )
            for node in overwrite_nodes:
                self._evict_if_unpinned(node)
        else:
            overwrite_bucket = bucket
            self._server.read_many(nodes)  # downloaded and discarded
            self._server.write_many(
                list(
                    zip(
                        nodes,
                        self._encrypt_blocks([contents[node] for node in nodes]),
                    )
                )
            )
            for node in nodes:
                if node in self._overlay:
                    # A stashed sibling pins this node; keep the overlay in
                    # sync with the value just uploaded.
                    self._overlay[node] = contents[node]
                self._evict_if_unpinned(node)

        self._note_peak()
        self._pairs.append((pending.download_bucket, overwrite_bucket))
        self._queries += 1

    # -- the RAM interface over single-node buckets ---------------------------

    def read(self, index: int) -> bytes:
        """Record-level read of bucket ``index``.

        Only meaningful for single-node buckets (the degenerate repertoire
        equivalent to the Section 6 scheme); multi-node repertoires go
        through :meth:`begin_query`/:meth:`finish_query`.

        Raises:
            StorageError: if bucket ``index`` holds more than one node.
        """
        node = self._single_node(index)
        return self.query(index)[node]

    def write(self, index: int, value: bytes) -> None:
        """Record-level overwrite of bucket ``index`` (single-node only).

        Raises:
            StorageError: if bucket ``index`` holds more than one node.
        """
        node = self._single_node(index)
        self.query(index, {node: bytes(value)})

    def _single_node(self, index: int) -> int:
        if not 0 <= index < len(self._buckets):
            raise RetrievalError(
                f"bucket {index} out of range for {len(self._buckets)}"
            )
        nodes = self._buckets[index]
        if len(nodes) != 1:
            raise StorageError(
                f"bucket {index} spans {len(nodes)} nodes; record-level "
                "read/write needs single-node buckets"
            )
        return nodes[0]

    def query(
        self,
        bucket: int,
        new_contents: Mapping[int, bytes] | None = None,
    ) -> dict[int, bytes]:
        """Convenience: both phases back to back.

        Returns the bucket contents as seen by the download phase (before
        ``new_contents`` is applied).
        """
        pending = self.begin_query(bucket)
        snapshot = dict(pending.contents)
        self.finish_query(pending, new_contents)
        return snapshot

    # -- cipher routing ----------------------------------------------------------

    def _encrypt_blocks(self, blocks: Sequence[bytes]) -> list[bytes]:
        if self._bulk:
            return encrypt_many(self._key, blocks, self._rng)
        return [encrypt_reference(self._key, b, self._rng) for b in blocks]

    def _decrypt_blocks(self, ciphertexts: Sequence[bytes]) -> list[bytes]:
        if self._bulk:
            return decrypt_many(self._key, ciphertexts)
        return [decrypt_reference(self._key, c) for c in ciphertexts]

    # -- overlay / pin bookkeeping ----------------------------------------------

    def _pin(self, node: int) -> None:
        self._pins[node] = self._pins.get(node, 0) + 1

    def _unpin(self, node: int) -> None:
        remaining = self._pins.get(node, 0) - 1
        if remaining <= 0:
            self._pins.pop(node, None)
        else:
            self._pins[node] = remaining

    def _evict_if_unpinned(self, node: int) -> None:
        """Drop an overlay entry once the server copy is fresh and no
        stashed bucket needs a client-resident copy."""
        if node not in self._pins:
            self._overlay.pop(node, None)

    def _note_peak(self) -> None:
        if len(self._overlay) > self._client_peak:
            self._client_peak = len(self._overlay)
