"""Multi-server DP-IR (Appendix C).

The database is replicated on ``D`` non-colluding servers; an adversary
corrupts a ``t = D_A/D`` fraction of them and sees only their transcripts.
Theorem C.1 lower-bounds the total expected work by
``Ω(((1−α)·t − δ)·n / e^ε)``.

The construction here is the natural multi-server analogue of Algorithm 1
(the shape of the scheme of Toledo, Danezis and Goldberg [49], which the
paper proves optimal for constant ``t``): draw a pad set exactly as in
Algorithm 1 and route every element — including the real one — to an
independently uniform server.  The real fetch is visible to the adversary
only when its server is corrupted (probability ``t``), so the adversary's
view is a further randomized projection of the single-server view and the
single-server exact budget ``ln((1−α)n/(αK)+1)`` is an upper bound on the
privacy loss; the per-corrupted-server load is ``t·K/D`` in expectation.
Experiment E12 audits the corrupted view empirically against Theorem C.1.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Sequence

from repro.api.protocols import PrivateIR
from repro.core.params import DPIRParams
from repro.core.sampling import draw_pad_set
from repro.crypto.rng import RandomSource, SystemRandomSource
from repro.parallel.executor import Executor, resolve_executor
from repro.storage.backends import BackendFactory
from repro.storage.errors import RetrievalError
from repro.storage.server import ServerPool, StorageServer


class MultiServerDPIR(PrivateIR):
    """Replicated ε-DP-IR across ``server_count`` non-colluding servers.

    Args:
        blocks: the database ``B_1..B_n``.
        server_count: number of replicas ``D``.
        epsilon: target budget, resolved to the pad size exactly as in the
            single-server scheme.  Mutually exclusive with ``pad_size``.
        pad_size: explicit total pad size ``K``.
        alpha: error probability in ``(0, 1)``.
        rng: randomness source.
        executor: fan-out policy for the one-batched-leg-per-server reads
            (``"serial"``/``"parallel"``/``"simulated"`` or an
            :class:`~repro.parallel.executor.Executor`).  Executors change
            wall-clock accounting only — every server still sees exactly
            one :meth:`~repro.storage.server.StorageServer.read_many`
            round per query, in deterministic order, so draws, answers
            and transcripts are executor-invariant.
    """

    def __init__(
        self,
        blocks: Sequence[bytes],
        server_count: int = 2,
        epsilon: float | None = None,
        pad_size: int | None = None,
        alpha: float = 0.05,
        rng: RandomSource | None = None,
        backend_factory: BackendFactory | None = None,
        executor: Executor | str | None = None,
    ) -> None:
        if not blocks:
            raise ValueError("the database must contain at least one block")
        if server_count <= 0:
            raise ValueError(f"server count must be positive, got {server_count}")
        if (epsilon is None) == (pad_size is None):
            raise ValueError("provide exactly one of epsilon or pad_size")
        n = len(blocks)
        if pad_size is not None:
            self._params = DPIRParams.from_pad_size(n, pad_size, alpha)
        else:
            self._params = DPIRParams.from_epsilon(n, epsilon, alpha)
        self._rng = rng if rng is not None else SystemRandomSource()
        self._block_size = len(blocks[0])
        self._pool = ServerPool(server_count, n, backend_factory=backend_factory)
        self._pool.load_replicas(blocks)
        self._owns_executor = not isinstance(executor, Executor)
        self._executor = resolve_executor(executor)
        self._wall_ops = 0.0
        self._queries = 0
        self._errors = 0

    # -- parameters & accounting ---------------------------------------------

    @property
    def n(self) -> int:
        """Database size."""
        return self._params.n

    @property
    def server_count(self) -> int:
        """Number of replicas ``D``."""
        return len(self._pool)

    @property
    def pad_size(self) -> int:
        """Total blocks downloaded per query across all servers."""
        return self._params.pad_size

    @property
    def alpha(self) -> float:
        """Error probability."""
        return self._params.alpha

    @property
    def epsilon(self) -> float:
        """Single-server exact budget — an upper bound on the loss against
        any corrupted subset (the corrupted view is a projection)."""
        return self._params.epsilon

    @property
    def block_size(self) -> int:
        """Bytes per database record."""
        return self._block_size

    @property
    def pool(self) -> ServerPool:
        """The replica pool (exposes per-server operation counters)."""
        return self._pool

    def servers(self) -> tuple[StorageServer, ...]:
        """Every replica server in the pool."""
        return tuple(self._pool)

    @property
    def query_count(self) -> int:
        """Number of queries issued so far."""
        return self._queries

    @property
    def error_count(self) -> int:
        """Number of queries that erred."""
        return self._errors

    def wall_operations(self) -> float:
        """Overlap-accounted op-units: each query's per-server legs cost
        what the configured executor says (max over concurrent legs, the
        plain sum under the serial default)."""
        return self._wall_ops

    def close(self) -> None:
        """Release executor worker threads.

        Only shuts down an executor this scheme resolved itself from a
        name; a caller-supplied instance stays alive for its owner.
        """
        if self._owns_executor:
            self._executor.close()

    def __enter__(self) -> "MultiServerDPIR":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- querying ------------------------------------------------------------

    def query(self, index: int) -> bytes | None:
        """Retrieve block ``index``; ``None`` on the α-error event.

        Every contacted server serves its share of the pad set as one
        batched :meth:`~repro.storage.server.StorageServer.read_many`
        round — one leg per server instead of ``K`` per-slot calls.
        """
        plan, real_server = self._draw_plan(index)
        self._pool.begin_query(self._queries)
        self._queries += 1
        result: bytes | None = None
        legs = self._read_per_server(plan)
        if real_server is not None:
            order, blocks = legs[real_server]
            result = blocks[bisect_left(order, index)]
        if real_server is None:
            self._errors += 1
            return None
        return result

    def query_many(self, indices: Sequence[int]) -> list[bytes | None]:
        """Serve ``indices`` in one round, coalescing per-replica reads.

        Each query draws its own independent plan (so the privacy
        argument is untouched — revealing the per-server unions is
        post-processing of the independent per-query transcripts), but
        slots routed to the same replica by several queries are fetched
        once — one batched leg per server, fanned out through the
        configured executor.  Transcript events for the whole batch are
        attributed to the ordinal of its first query: the coalesced
        union is a single joint observation and cannot be split per
        query (the same convention
        :class:`~repro.core.batch_ir.BatchDPIR` uses for its batch
        counter).  ``query_count`` still advances by one per logical
        query.
        """
        if not indices:
            return []
        plans = [self._draw_plan(index) for index in indices]
        per_server: list[set[int]] = [set() for _ in range(len(self._pool))]
        for plan, _ in plans:
            for server_id, slots in enumerate(plan):
                per_server[server_id].update(slots)
        self._pool.begin_query(self._queries)
        legs = self._read_per_server(per_server)
        answers: list[bytes | None] = []
        for index, (_, real_server) in zip(indices, plans):
            self._queries += 1
            if real_server is None:
                self._errors += 1
                answers.append(None)
            else:
                order, blocks = legs[real_server]
                answers.append(blocks[bisect_left(order, index)])
        return answers

    def _read_per_server(
        self, per_server: Sequence[set[int]]
    ) -> list[tuple[list[int], list[bytes]]]:
        """One batched ``read_many`` leg per server, through the executor.

        Legs run in deterministic submission order (``ordered=True``:
        the pool's servers may share one attached transcript, and the
        draw-free reads must interleave identically under every
        executor) while the stage is *accounted* as overlapped — the
        wall-clock cost is the slowest server's share of the pad set,
        not the sum.
        """
        orders = [sorted(slots) for slots in per_server]
        pool = self._pool
        results = self._executor.fan_out(
            [
                (lambda server=pool[server_id], order=order:
                    server.read_many(order))
                for server_id, order in enumerate(orders)
            ],
            ordered=True,
        )
        self._wall_ops += self._executor.stage_cost(
            [float(len(order)) for order in orders]
        )
        return [
            (order, result.unwrap())
            for order, result in zip(orders, results)
        ]

    def sample_corrupted_view(
        self, index: int, corrupted: set[int]
    ) -> frozenset[tuple[int, int]]:
        """Sample the ``(server, slot)`` pairs a corrupted subset would see.

        Draws from the same distribution as :meth:`query` without touching
        the servers; used by the E12 privacy audit.
        """
        plan, _ = self._draw_plan(index)
        view = {
            (server_id, slot)
            for server_id, slots in enumerate(plan)
            for slot in slots
            if server_id in corrupted
        }
        return frozenset(view)

    # -- internals ----------------------------------------------------------

    def _draw_plan(self, index: int) -> tuple[list[set[int]], int | None]:
        """Draw the per-server download plan for one query.

        Returns ``(plan, real_server)`` where ``plan[s]`` is the slot set
        sent to server ``s`` and ``real_server`` is the replica serving the
        real fetch (``None`` on the error event).
        """
        n = self._params.n
        if not 0 <= index < n:
            raise RetrievalError(f"index {index} out of range for n={n}")
        chosen, include_real = draw_pad_set(
            self._rng, n, self._params.pad_size, self._params.alpha, index
        )
        plan: list[set[int]] = [set() for _ in range(len(self._pool))]
        real_server: int | None = None
        for slot in chosen:
            target = self._rng.randbelow(len(self._pool))
            plan[target].add(slot)
            if include_real and slot == index:
                real_server = target
        return plan, real_server
