"""Multi-server DP-IR (Appendix C).

The database is replicated on ``D`` non-colluding servers; an adversary
corrupts a ``t = D_A/D`` fraction of them and sees only their transcripts.
Theorem C.1 lower-bounds the total expected work by
``Ω(((1−α)·t − δ)·n / e^ε)``.

The construction here is the natural multi-server analogue of Algorithm 1
(the shape of the scheme of Toledo, Danezis and Goldberg [49], which the
paper proves optimal for constant ``t``): draw a pad set exactly as in
Algorithm 1 and route every element — including the real one — to an
independently uniform server.  The real fetch is visible to the adversary
only when its server is corrupted (probability ``t``), so the adversary's
view is a further randomized projection of the single-server view and the
single-server exact budget ``ln((1−α)n/(αK)+1)`` is an upper bound on the
privacy loss; the per-corrupted-server load is ``t·K/D`` in expectation.
Experiment E12 audits the corrupted view empirically against Theorem C.1.
"""

from __future__ import annotations

from typing import Sequence

from repro.api.protocols import PrivateIR
from repro.core.params import DPIRParams
from repro.crypto.rng import RandomSource, SystemRandomSource
from repro.storage.backends import BackendFactory
from repro.storage.errors import RetrievalError
from repro.storage.server import ServerPool, StorageServer


class MultiServerDPIR(PrivateIR):
    """Replicated ε-DP-IR across ``server_count`` non-colluding servers.

    Args:
        blocks: the database ``B_1..B_n``.
        server_count: number of replicas ``D``.
        epsilon: target budget, resolved to the pad size exactly as in the
            single-server scheme.  Mutually exclusive with ``pad_size``.
        pad_size: explicit total pad size ``K``.
        alpha: error probability in ``(0, 1)``.
        rng: randomness source.
    """

    def __init__(
        self,
        blocks: Sequence[bytes],
        server_count: int = 2,
        epsilon: float | None = None,
        pad_size: int | None = None,
        alpha: float = 0.05,
        rng: RandomSource | None = None,
        backend_factory: BackendFactory | None = None,
    ) -> None:
        if not blocks:
            raise ValueError("the database must contain at least one block")
        if server_count <= 0:
            raise ValueError(f"server count must be positive, got {server_count}")
        if (epsilon is None) == (pad_size is None):
            raise ValueError("provide exactly one of epsilon or pad_size")
        n = len(blocks)
        if pad_size is not None:
            self._params = DPIRParams.from_pad_size(n, pad_size, alpha)
        else:
            self._params = DPIRParams.from_epsilon(n, epsilon, alpha)
        self._rng = rng if rng is not None else SystemRandomSource()
        self._block_size = len(blocks[0])
        self._pool = ServerPool(server_count, n, backend_factory=backend_factory)
        self._pool.load_replicas(blocks)
        self._queries = 0
        self._errors = 0

    # -- parameters & accounting ---------------------------------------------

    @property
    def n(self) -> int:
        """Database size."""
        return self._params.n

    @property
    def server_count(self) -> int:
        """Number of replicas ``D``."""
        return len(self._pool)

    @property
    def pad_size(self) -> int:
        """Total blocks downloaded per query across all servers."""
        return self._params.pad_size

    @property
    def alpha(self) -> float:
        """Error probability."""
        return self._params.alpha

    @property
    def epsilon(self) -> float:
        """Single-server exact budget — an upper bound on the loss against
        any corrupted subset (the corrupted view is a projection)."""
        return self._params.epsilon

    @property
    def block_size(self) -> int:
        """Bytes per database record."""
        return self._block_size

    @property
    def pool(self) -> ServerPool:
        """The replica pool (exposes per-server operation counters)."""
        return self._pool

    def servers(self) -> tuple[StorageServer, ...]:
        """Every replica server in the pool."""
        return tuple(self._pool)

    @property
    def query_count(self) -> int:
        """Number of queries issued so far."""
        return self._queries

    @property
    def error_count(self) -> int:
        """Number of queries that erred."""
        return self._errors

    # -- querying ------------------------------------------------------------

    def query(self, index: int) -> bytes | None:
        """Retrieve block ``index``; ``None`` on the α-error event."""
        plan, real_server = self._draw_plan(index)
        self._pool.begin_query(self._queries)
        self._queries += 1
        result: bytes | None = None
        for server_id, slots in enumerate(plan):
            server = self._pool[server_id]
            for slot in sorted(slots):
                block = server.read(slot)
                if server_id == real_server and slot == index:
                    result = block
        if real_server is None:
            self._errors += 1
            return None
        return result

    def query_many(self, indices: Sequence[int]) -> list[bytes | None]:
        """Serve ``indices`` in one round, coalescing per-replica reads.

        Each query draws its own independent plan (so the privacy
        argument is untouched — revealing the per-server unions is
        post-processing of the independent per-query transcripts), but
        slots routed to the same replica by several queries are fetched
        once.  Transcript events for the whole batch are attributed to
        the ordinal of its first query: the coalesced union is a single
        joint observation and cannot be split per query (the same
        convention :class:`~repro.core.batch_ir.BatchDPIR` uses for its
        batch counter).  ``query_count`` still advances by one per
        logical query.
        """
        if not indices:
            return []
        plans = [self._draw_plan(index) for index in indices]
        per_server: list[set[int]] = [set() for _ in range(len(self._pool))]
        for plan, _ in plans:
            for server_id, slots in enumerate(plan):
                per_server[server_id] |= slots
        self._pool.begin_query(self._queries)
        retrieved: dict[tuple[int, int], bytes] = {}
        for server_id, slots in enumerate(per_server):
            server = self._pool[server_id]
            for slot in sorted(slots):
                retrieved[(server_id, slot)] = server.read(slot)
        answers: list[bytes | None] = []
        for index, (_, real_server) in zip(indices, plans):
            self._queries += 1
            if real_server is None:
                self._errors += 1
                answers.append(None)
            else:
                answers.append(retrieved[(real_server, index)])
        return answers

    def sample_corrupted_view(
        self, index: int, corrupted: set[int]
    ) -> frozenset[tuple[int, int]]:
        """Sample the ``(server, slot)`` pairs a corrupted subset would see.

        Draws from the same distribution as :meth:`query` without touching
        the servers; used by the E12 privacy audit.
        """
        plan, _ = self._draw_plan(index)
        view = {
            (server_id, slot)
            for server_id, slots in enumerate(plan)
            for slot in slots
            if server_id in corrupted
        }
        return frozenset(view)

    # -- internals ----------------------------------------------------------

    def _draw_plan(self, index: int) -> tuple[list[set[int]], int | None]:
        """Draw the per-server download plan for one query.

        Returns ``(plan, real_server)`` where ``plan[s]`` is the slot set
        sent to server ``s`` and ``real_server`` is the replica serving the
        real fetch (``None`` on the error event).
        """
        n = self._params.n
        if not 0 <= index < n:
            raise RetrievalError(f"index {index} out of range for n={n}")
        chosen: set[int] = set()
        include_real = self._rng.random() >= self._params.alpha
        if include_real:
            chosen.add(index)
        while len(chosen) < self._params.pad_size:
            candidate = self._rng.randbelow(n)
            if candidate not in chosen:
                chosen.add(candidate)
        plan: list[set[int]] = [set() for _ in range(len(self._pool))]
        real_server: int | None = None
        for slot in chosen:
            target = self._rng.randbelow(len(self._pool))
            plan[target].add(slot)
            if include_real and slot == index:
                real_server = target
        return plan, real_server
